"""Figure 21: gradient-transfer breakdown and improvement."""

from benchmarks.conftest import emit, spec


def test_fig21(once):
    out = once(spec("fig21_comm").execute)
    emit(out)
    result = out.result
    # Baseline pays re-encryption + decryption around every link transfer.
    for row in result.rows:
        assert row.reenc_s > 0 and row.dec_s > 0
        assert row.baseline_total_s > 3 * row.link_s
    # Paper reports 18.7x; our busy/exposed accountings bracket it.
    assert result.mean_busy_improvement > 4.0
    assert result.mean_exposed_improvement > 18.7
