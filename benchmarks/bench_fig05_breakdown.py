"""Figure 5: GPT2-M breakdown, non-secure vs SGX+MGX."""

from benchmarks.conftest import emit, spec


def test_fig05(once):
    out = once(spec("fig05_breakdown").execute)
    emit(out)
    result = out.result
    ns_comm = result.comm_fraction(result.non_secure)
    base_comm = result.comm_fraction(result.baseline)
    assert base_comm > 0.25  # paper: 53%
    assert base_comm > 5 * ns_comm  # paper: 12% -> 53%
