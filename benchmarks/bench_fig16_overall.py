"""Figure 16: overall speedup across the Table-2 zoo."""

from benchmarks.conftest import emit, spec


def test_fig16(once):
    out = once(spec("fig16_overall").execute)
    emit(out)
    result = out.result
    assert 3.0 < result.mean_speedup < 5.0  # paper avg: 4.0x
    assert result.max_speedup < 7.0  # paper max: 5.5x
    assert 0.0 <= result.mean_overhead < 0.04  # paper: 2.1%
    speedups = [r.speedup for r in result.rows]
    assert speedups[-1] > 1.8 * speedups[0]  # grows with model size
