"""Figure 3: Adam slowdown under SGX vs threads."""

from benchmarks.conftest import emit, spec


def test_fig03(once):
    out = once(spec("fig03_adam_slowdown").execute)
    emit(out)
    result = out.result
    assert 3.0 < result.max_slowdown < 4.2  # paper: up to ~3.7x
    slowdowns = [row.slowdown for row in result.rows]
    assert slowdowns == sorted(slowdowns)  # grows with thread count
