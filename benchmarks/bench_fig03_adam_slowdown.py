"""Figure 3: Adam slowdown under SGX vs threads."""

from benchmarks.conftest import emit
from repro.eval import fig03_adam_slowdown as fig


def test_fig03(once):
    result = once(fig.run)
    emit("fig03_adam_slowdown", fig.render(result))
    assert 3.0 < result.max_slowdown < 4.2  # paper: up to ~3.7x
    slowdowns = [row.slowdown for row in result.rows]
    assert slowdowns == sorted(slowdowns)  # grows with thread count
