"""Figure 17: per-model stage breakdowns under all three configurations."""

from benchmarks.conftest import emit, spec


def test_fig17(once):
    out = once(spec("fig17_breakdown").execute)
    emit(out)
    result = out.result
    for by_mode in result.breakdowns.values():
        base = by_mode["sgx+mgx"].fractions()
        ours = by_mode["tensortee"].fractions()
        base_comm = base["Comm W"] + base["Comm G"]
        ours_comm = ours["Comm W"] + ours["Comm G"]
        assert base_comm > ours_comm  # comm eliminated by TensorTEE
