"""Figure 17: per-model stage breakdowns under all three configurations."""

from benchmarks.conftest import emit
from repro.eval import fig17_breakdown as fig


def test_fig17(once):
    result = once(fig.run)
    emit("fig17_breakdown", fig.render(result))
    for by_mode in result.breakdowns.values():
        base = by_mode["sgx+mgx"].fractions()
        ours = by_mode["tensortee"].fractions()
        base_comm = base["Comm W"] + base["Comm G"]
        ours_comm = ours["Comm W"] + ours["Comm G"]
        assert base_comm > ours_comm  # comm eliminated by TensorTEE
