"""Figure 4: tensor count/size characteristics."""

from benchmarks.conftest import emit, spec


def test_fig04(once):
    out = once(spec("fig04_tensor_stats").execute)
    emit(out)
    result = out.result
    assert result.max_count < 450  # "only a few hundred"
    assert all(row.max_tensor_mib > 1.0 for row in result.rows)  # MB scale
    largest = max(row.max_layer_tensor_mib for row in result.rows)
    assert largest > 100  # 100s of MB for the biggest models
