"""Benchmark harness conventions.

Each ``bench_*`` file regenerates one paper table/figure **through the
experiment registry** (``repro.eval.registry``): the benchmark times
``spec(name).execute()``, and the rendered rows/series are written to
``results/`` (and echoed through pytest's captured stdout). Shape
assertions guard the paper-claim properties so a regression in the models
fails the bench, not just the unit tests.
"""

from __future__ import annotations

import pytest

from repro.eval.registry import REGISTRY, ExperimentOutput, ExperimentSpec


def spec(name: str) -> ExperimentSpec:
    """Look up a registered experiment by its paper name."""
    return REGISTRY.get(name)


def emit(output: ExperimentOutput) -> None:
    """Persist and print a rendered experiment."""
    from repro.eval.tables import save_result

    path = save_result(output.name, output.text)
    print(f"\n[{output.name}] -> {path}\n{output.text}\n")


@pytest.fixture
def once(benchmark):
    """Run an expensive experiment exactly once under the benchmark timer."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
