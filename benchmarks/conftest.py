"""Benchmark harness conventions.

Each ``bench_*`` file regenerates one paper table/figure: the benchmark
measures the experiment's runtime, and the rendered rows/series are written
to ``results/`` (and echoed through pytest's captured stdout). Shape
assertions guard the paper-claim properties so a regression in the models
fails the bench, not just the unit tests.
"""

from __future__ import annotations

import pytest


def emit(name: str, text: str) -> None:
    """Persist and print a rendered experiment."""
    from repro.eval.tables import save_result

    path = save_result(name, text)
    print(f"\n[{name}] -> {path}\n{text}\n")


@pytest.fixture
def once(benchmark):
    """Run an expensive experiment exactly once under the benchmark timer."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
