"""Figure 18: Meta Table hit-rate convergence (scaled functional run)."""

from benchmarks.conftest import emit, spec


def test_fig18(once):
    out = once(spec("fig18_hit_rate").execute)
    emit(out)
    result = out.result
    assert result.records[1].hit_all > 0.6  # high after one iteration
    assert result.hit_in_at(5) > 0.6  # paper: ~80% by iter 5
    assert result.hit_in_at(19) > 0.9  # paper: ~95% by iter 20
    assert result.hit_in_at(19) > result.hit_in_at(1)  # converging
