"""Figure 18: Meta Table hit-rate convergence (scaled functional run)."""

from benchmarks.conftest import emit
from repro.eval import fig18_hit_rate as fig


def test_fig18(once):
    result = once(fig.run)
    emit("fig18_hit_rate", fig.render(result))
    assert result.records[1].hit_all > 0.6  # high after one iteration
    assert result.hit_in_at(5) > 0.6  # paper: ~80% by iter 5
    assert result.hit_in_at(19) > 0.9  # paper: ~95% by iter 20
    assert result.hit_in_at(19) > result.hit_in_at(1)  # converging
