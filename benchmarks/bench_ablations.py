"""Ablations of TenAnalyzer design choices (Sec. 6.2 limitations + DESIGN.md)."""

from benchmarks.conftest import emit, spec


def test_capacity_scalability(once):
    """Sec. 6.2: beyond ~512 managed tensors the benefit diminishes."""
    out = once(spec("ablation_capacity").execute)
    emit(out)
    rows = out.result
    comfortable = rows[0]  # well under capacity
    overloaded = rows[-1]  # tensors*shards far above capacity
    assert comfortable.hit_in_late > 0.95
    assert overloaded.hit_in_late < comfortable.hit_in_late


def test_replacement_policy(once):
    """Random replacement avoids LRU's cyclic-thrash pathology."""
    out = once(spec("ablation_replacement").execute)
    emit(out)
    rows = out.result
    random_row = next(r for r in rows if r.label == "random")
    lru_row = next(r for r in rows if r.label == "lru")
    assert random_row.hit_in_late >= lru_row.hit_in_late


def test_merge_window(once):
    """Larger windows converge faster (more merge candidates visible)."""
    out = once(spec("ablation_merge_window").execute)
    emit(out)
    rows = out.result
    assert rows[-1].hit_in_late >= rows[0].hit_in_late - 0.05


def test_entmf_disabled(once):
    """EnTMF=0: the unit is off, everything takes the off-chip path."""
    out = once(spec("ablation_entmf").execute)
    emit(out)
    row = out.result
    assert row.hit_in_late == 0.0
    assert row.entries == 0
