"""Ablations of TenAnalyzer design choices (Sec. 6.2 limitations + DESIGN.md)."""

from benchmarks.conftest import emit
from repro.eval import ablations


def test_capacity_scalability(once):
    """Sec. 6.2: beyond ~512 managed tensors the benefit diminishes."""
    rows = once(ablations.capacity_sweep)
    emit("ablation_capacity", ablations.render(rows, "Ablation — tensors vs Meta Table capacity"))
    comfortable = rows[0]  # well under capacity
    overloaded = rows[-1]  # tensors*shards far above capacity
    assert comfortable.hit_in_late > 0.95
    assert overloaded.hit_in_late < comfortable.hit_in_late


def test_replacement_policy(once):
    """Random replacement avoids LRU's cyclic-thrash pathology."""
    rows = once(ablations.replacement_sweep)
    emit("ablation_replacement", ablations.render(rows, "Ablation — Meta Table replacement policy"))
    random_row = next(r for r in rows if r.label == "random")
    lru_row = next(r for r in rows if r.label == "lru")
    assert random_row.hit_in_late >= lru_row.hit_in_late


def test_merge_window(once):
    """Larger windows converge faster (more merge candidates visible)."""
    rows = once(ablations.merge_window_sweep)
    emit("ablation_merge_window", ablations.render(rows, "Ablation — merge window size"))
    assert rows[-1].hit_in_late >= rows[0].hit_in_late - 0.05


def test_entmf_disabled(once):
    """EnTMF=0: the unit is off, everything takes the off-chip path."""
    row = once(ablations.entmf_disabled)
    emit("ablation_entmf", ablations.render([row], "Ablation — EnTMF disabled"))
    assert row.hit_in_late == 0.0
    assert row.entries == 0
