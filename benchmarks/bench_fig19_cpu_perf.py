"""Figure 19: CPU Adam latency — TensorTEE by iteration vs SGX/SoftVN."""

from benchmarks.conftest import emit, spec


def test_fig19(once):
    out = once(spec("fig19_cpu_perf").execute)
    emit(out)
    result = out.result
    assert result.sgx[8] > result.sgx[4] > 2.0  # SGX worsens with threads
    assert 1.0 <= result.softvn[4] < 1.15
    first = result.ours_by_iteration[1]
    last = result.ours_by_iteration[40]
    assert first[8] > 1.8  # detection iteration is expensive
    assert last[8] < 1.10  # converges near non-secure
    assert last[8] < result.softvn[8] + 0.05  # comparable to SoftVN (Sec 6.2)
