"""Figure 20: MAC granularity sweep on the NPU."""

from benchmarks.conftest import emit, spec


def test_fig20(benchmark):
    out = benchmark(spec("fig20_mac_granularity").execute)
    emit(out)
    result = out.result
    fine = result.row("64B")
    coarse = result.row("4096B")
    mid = result.row("512B")
    ours = result.row("tensor(ours)")
    assert 0.09 < fine.perf_overhead < 0.14  # paper ~12%
    assert 0.11 < coarse.perf_overhead < 0.15  # paper ~13%
    assert mid.perf_overhead < fine.perf_overhead  # dip in the middle
    assert ours.perf_overhead < 0.03 and ours.storage_overhead == 0.0
