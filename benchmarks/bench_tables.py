"""Tables 1 and 2 plus the Sec. 6.5 hardware-overhead table."""

from benchmarks.conftest import emit
from repro.core.hw_cost import HardwareBudget
from repro.eval import tables_12


def test_table1(benchmark):
    text = benchmark(tables_12.render_table1)
    emit("table1_config", text)
    assert "512x512" in text and "GDDR5" in text.replace("gddr5", "GDDR5")


def test_table2(benchmark):
    text = benchmark(tables_12.render_table2)
    emit("table2_workloads", text)
    assert "OPT-6.7B" in text and "LLAMA2-7B" in text


def test_hw_overhead(benchmark):
    text = benchmark(tables_12.render_hw_overhead)
    emit("hw_overhead", text)
    budget = HardwareBudget()
    assert abs(budget.total_kib - 24.0) < 0.6  # paper: ~24 KB
    assert abs(budget.area_mm2 - 0.0072) < 0.0005  # paper: 0.0072 mm^2
