"""Tables 1 and 2 plus the Sec. 6.5 hardware-overhead table."""

from benchmarks.conftest import emit, spec
from repro.core.hw_cost import HardwareBudget


def test_table1(benchmark):
    out = benchmark(spec("table1_config").execute)
    emit(out)
    text = out.text
    assert "512x512" in text and "GDDR5" in text.replace("gddr5", "GDDR5")


def test_table2(benchmark):
    out = benchmark(spec("table2_workloads").execute)
    emit(out)
    assert "OPT-6.7B" in out.text and "LLAMA2-7B" in out.text


def test_hw_overhead(benchmark):
    out = benchmark(spec("hw_overhead").execute)
    emit(out)
    budget = HardwareBudget()
    assert abs(budget.total_kib - 24.0) < 0.6  # paper: ~24 KB
    assert abs(budget.area_mm2 - 0.0072) < 0.0005  # paper: 0.0072 mm^2
