"""Minimal WheelFile implementation (subset of PyPA `wheel`)."""

import base64
import csv
import hashlib
import io
import os
import re
import zipfile

_DIST_INFO_RE = re.compile(
    r"^(?P<namever>(?P<name>[^\s-]+?)-(?P<ver>[^\s-]+?))(-(?P<build>\d[^\s-]*))?"
    r"-(?P<pyver>[^\s-]+?)-(?P<abi>[^\s-]+?)-(?P<plat>\S+)\.whl$"
)


def _urlsafe_b64(data):
    return base64.urlsafe_b64encode(data).rstrip(b"=").decode("ascii")


class WheelFile(zipfile.ZipFile):
    """Zip container that records file hashes and writes RECORD on close."""

    def __init__(self, file, mode="r", compression=zipfile.ZIP_DEFLATED):
        basename = os.path.basename(str(file))
        match = _DIST_INFO_RE.match(basename)
        if not match:
            raise ValueError(f"bad wheel filename {basename!r}")
        self.parsed_filename = match
        self.dist_info_path = "{}.dist-info".format(match.group("namever"))
        self.record_path = self.dist_info_path + "/RECORD"
        self._file_hashes = {}
        zipfile.ZipFile.__init__(self, file, mode, compression=compression)

    def write(self, filename, arcname=None, compress_type=None):
        with open(filename, "rb") as f:
            data = f.read()
        self.writestr(arcname or filename, data, compress_type)

    def write_files(self, base_dir):
        deferred = []
        for root, dirnames, filenames in os.walk(base_dir):
            dirnames.sort()
            for name in sorted(filenames):
                path = os.path.normpath(os.path.join(root, name))
                if not os.path.isfile(path):
                    continue
                arcname = os.path.relpath(path, base_dir).replace(os.path.sep, "/")
                if arcname == self.record_path:
                    deferred.append((path, arcname))
                else:
                    self.write(path, arcname)
        for path, arcname in deferred:
            self.write(path, arcname)

    def writestr(self, zinfo_or_arcname, data, compress_type=None):
        if isinstance(data, str):
            data = data.encode("utf-8")
        zipfile.ZipFile.writestr(self, zinfo_or_arcname, data, compress_type)
        if isinstance(zinfo_or_arcname, zipfile.ZipInfo):
            arcname = zinfo_or_arcname.filename
        else:
            arcname = zinfo_or_arcname
        if arcname != self.record_path:
            digest = hashlib.sha256(data).digest()
            self._file_hashes[arcname] = ("sha256=" + _urlsafe_b64(digest), len(data))

    def close(self):
        if self.fp is not None and self.mode == "w" and self.record_path not in self.namelist():
            out = io.StringIO()
            writer = csv.writer(out, delimiter=",", quotechar='"', lineterminator="\n")
            for arcname, (hash_str, size) in sorted(self._file_hashes.items()):
                writer.writerow((arcname, hash_str, size))
            writer.writerow((self.record_path, "", ""))
            zipfile.ZipFile.writestr(self, self.record_path, out.getvalue())
        zipfile.ZipFile.close(self)
