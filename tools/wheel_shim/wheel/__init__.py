"""Minimal offline shim for the `wheel` package.

Provides just enough of the wheel API (WheelFile, bdist_wheel) for
setuptools' PEP-660 editable installs to work in an offline environment.
"""
__version__ = "0.40.0"
