"""Minimal bdist_wheel command (subset of PyPA `wheel`): pure-Python only."""

import os

from distutils.core import Command


class bdist_wheel(Command):
    description = "create a wheel distribution (offline shim, purelib only)"
    user_options = [
        ("dist-dir=", "d", "directory to put final built distributions in"),
        ("plat-name=", "p", "platform name"),
    ]

    def initialize_options(self):
        self.dist_dir = None
        self.plat_name = None
        self.root_is_pure = True

    def finalize_options(self):
        if self.dist_dir is None:
            self.dist_dir = "dist"

    def get_tag(self):
        return ("py3", "none", "any")

    def write_wheelfile(self, wheelfile_base, generator="wheel-shim (offline)"):
        content = (
            "Wheel-Version: 1.0\n"
            "Generator: {}\n"
            "Root-Is-Purelib: {}\n"
            "Tag: {}\n"
        ).format(generator, str(self.root_is_pure).lower(), "-".join(self.get_tag()))
        path = os.path.join(wheelfile_base, "WHEEL")
        with open(path, "w", encoding="utf-8") as f:
            f.write(content)

    def run(self):
        raise NotImplementedError(
            "the offline wheel shim only supports editable installs"
        )


def _egg2dist_impl(self, egginfo_path, distinfo_path):
    import shutil

    os.makedirs(distinfo_path, exist_ok=True)
    pkg_info = os.path.join(egginfo_path, "PKG-INFO")
    if os.path.exists(pkg_info):
        shutil.copyfile(pkg_info, os.path.join(distinfo_path, "METADATA"))
    for extra in ("entry_points.txt", "top_level.txt"):
        src = os.path.join(egginfo_path, extra)
        if os.path.exists(src):
            shutil.copyfile(src, os.path.join(distinfo_path, extra))
    self.write_wheelfile(distinfo_path)


bdist_wheel.egg2dist = _egg2dist_impl
