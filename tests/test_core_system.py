"""Core system-model plumbing: configs, results records, mode dispatch."""

import pytest

from repro.core.config import (
    SystemMode,
    baseline_system,
    non_secure_system,
    tensortee_system,
)
from repro.core.results import StageBreakdown
from repro.core.system import CollaborativeSystem, compare_modes, steady_state_rates
from repro.errors import ConfigError
from repro.workloads.models import model_by_name


class TestConfigs:
    def test_factory_modes(self):
        assert non_secure_system().mode is SystemMode.NON_SECURE
        assert baseline_system().mode is SystemMode.SGX_MGX
        assert tensortee_system().mode is SystemMode.TENSORTEE

    def test_labels(self):
        assert tensortee_system().label == "tensortee"


class TestStageBreakdown:
    def test_total_and_fractions(self):
        b = StageBreakdown("m", "mode", 1.0, 2.0, 0.5, 0.5)
        assert b.total_s == 4.0
        f = b.fractions()
        assert f["NPU"] == 0.25 and f["CPU"] == 0.5
        assert sum(f.values()) == pytest.approx(1.0)

    def test_speedup_over(self):
        fast = StageBreakdown("m", "a", 1.0, 0.0, 0.0, 0.0)
        slow = StageBreakdown("m", "b", 4.0, 0.0, 0.0, 0.0)
        assert fast.speedup_over(slow) == pytest.approx(4.0)


class TestSystemDispatch:
    @pytest.mark.slow
    def test_compare_modes_returns_all_labels(self):
        model = model_by_name("GPT")
        results = compare_modes(
            model,
            {"ns": non_secure_system(), "tt": tensortee_system()},
        )
        assert set(results) == {"ns", "tt"}
        assert results["ns"].model_name == "GPT"

    def test_compare_modes_empty_rejected(self):
        with pytest.raises(ConfigError):
            compare_modes(model_by_name("GPT"), {})

    def test_steady_state_rates_cached_and_converged(self):
        rates = steady_state_rates()
        assert rates.read_hit_in > 0.95
        assert steady_state_rates() is rates  # lru_cache

    def test_npu_overhead_ordering(self):
        """Baseline 512B MAC costs more than ours; non-secure costs nothing."""
        model = model_by_name("GPT")
        ns = CollaborativeSystem(non_secure_system()).iteration_breakdown(model)
        base = CollaborativeSystem(baseline_system()).iteration_breakdown(model)
        ours = CollaborativeSystem(tensortee_system()).iteration_breakdown(model)
        assert base.npu_s > ns.npu_s
        assert ours.npu_s > ns.npu_s
        assert base.npu_s == pytest.approx(ours.npu_s, rel=0.05)

    @pytest.mark.slow
    def test_baseline_comm_never_overlaps(self):
        model = model_by_name("GPT2-M")
        base = CollaborativeSystem(baseline_system()).iteration_breakdown(model)
        assert base.comm_g_s == pytest.approx(base.comm_g_busy_s)
        ours = CollaborativeSystem(tensortee_system()).iteration_breakdown(model)
        assert ours.comm_g_s < ours.comm_g_busy_s  # hidden under compute
