"""Communication: links, engines, trusted channel, transfer timing."""

import pytest

from repro.comm.aes_engine import AesEngine
from repro.comm.channel import TensorMetadata, TrustedChannel
from repro.comm.pcie import PcieLink
from repro.comm.scheduler import (
    CommConfig,
    direct_transfer,
    graviton_transfer,
    plain_transfer,
)
from repro.errors import ConfigError, IntegrityError, ProtocolError
from repro.units import GB


def metadata(vn=3, mac=0xABC) -> TensorMetadata:
    return TensorMetadata("t", 0x1000, 0x2000, 16, vn, mac)


class TestLinkAndEngine:
    def test_transfer_time_linear_plus_latency(self):
        link = PcieLink()
        t1, t2 = link.transfer_time(1 * GB), link.transfer_time(2 * GB)
        assert t2 - t1 == pytest.approx(1 * GB / link.effective_bw)

    def test_zero_bytes_free(self):
        assert PcieLink().transfer_time(0) == 0.0

    def test_aes_engine_8gbs(self):
        engine = AesEngine()
        assert engine.crypt_time(8 * GB) == pytest.approx(1.0)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ConfigError):
            PcieLink().transfer_time(-1)
        with pytest.raises(ConfigError):
            AesEngine().crypt_time(-1)


class TestTrustedChannel:
    def _pair(self):
        return TrustedChannel(b"k" * 16, b"m" * 16), TrustedChannel(b"k" * 16, b"m" * 16)

    def test_roundtrip(self):
        sender, receiver = self._pair()
        wire = sender.send(metadata())
        assert receiver.receive(wire) == metadata()

    def test_tampered_message_rejected(self):
        sender, receiver = self._pair()
        wire = sender.send(metadata())
        wire["ciphertext"] = bytes([wire["ciphertext"][0] ^ 1]) + wire["ciphertext"][1:]
        with pytest.raises(IntegrityError):
            receiver.receive(wire)

    def test_replayed_message_rejected(self):
        sender, receiver = self._pair()
        wire = sender.send(metadata())
        receiver.receive(wire)
        with pytest.raises(ProtocolError):
            receiver.receive(wire)  # sequence number already consumed

    def test_wrong_key_rejected(self):
        sender = TrustedChannel(b"k" * 16, b"m" * 16)
        eavesdropper = TrustedChannel(b"k" * 16, b"X" * 16)
        wire = sender.send(metadata())
        with pytest.raises(IntegrityError):
            eavesdropper.receive(wire)

    def test_confidentiality(self):
        sender, _ = self._pair()
        wire = sender.send(metadata(vn=123456))
        assert b"123456" not in wire["ciphertext"]


class TestTransferTimings:
    def test_plain_overlap_hides_fraction(self):
        config = CommConfig()
        full = plain_transfer(config, 1 * GB, 0.0, 10.0)
        mostly = plain_transfer(config, 1 * GB, 0.9, 10.0)
        assert mostly.exposed_s < full.exposed_s
        assert mostly.busy_s == pytest.approx(full.busy_s)

    def test_plain_overlap_limited_by_window(self):
        config = CommConfig()
        t = plain_transfer(config, 1 * GB, 1.0, 0.01)
        assert t.exposed_s == pytest.approx(t.link_s - 0.01)

    def test_graviton_pays_four_aes_passes(self):
        config = CommConfig()
        t = graviton_transfer(config, 1 * GB, sender_is_npu=True)
        assert t.reenc_s == pytest.approx(2 * GB / config.npu_aes.total_bandwidth)
        assert t.dec_s == pytest.approx(2 * GB / config.cpu_aes.total_bandwidth)
        assert t.exposed_s == pytest.approx(t.reenc_s + t.link_s + t.dec_s)

    def test_direct_beats_graviton(self):
        config = CommConfig()
        base = graviton_transfer(config, 1 * GB, sender_is_npu=True)
        ours = direct_transfer(config, 1 * GB, 0.95, 10.0, n_tensors=24)
        assert ours.exposed_s < base.exposed_s / 5

    def test_direct_no_aes_on_path(self):
        config = CommConfig()
        ours = direct_transfer(config, 1 * GB, 0.0, 0.0)
        assert ours.reenc_s == 0.0 and ours.dec_s == 0.0
        assert ours.exposed_s == pytest.approx(
            ours.link_s + config.barrier_sync_s, rel=0.01
        )
