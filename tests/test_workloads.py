"""Workload layer: Table-2 zoo, inventories, ZeRO-Offload volumes, traces."""

import pytest

from repro.errors import ConfigError
from repro.workloads.models import MODEL_ZOO, model_by_name
from repro.workloads.traces import (
    AdamTraceConfig,
    GemmConfig,
    adam_iteration_trace,
    build_adam_groups,
    build_gemm_tensors,
    gemm_trace,
)
from repro.workloads.transformer import TransformerInventory
from repro.workloads.zero_offload import ADAM_BYTES_PER_PARAM, ZeroOffloadSchedule


class TestModelZoo:
    def test_twelve_models(self):
        assert len(MODEL_ZOO) == 12

    @pytest.mark.parametrize("model", MODEL_ZOO, ids=lambda m: m.name)
    def test_derived_params_close_to_paper(self, model):
        assert model.n_params == pytest.approx(model.paper_params, rel=0.07)

    def test_batch_sizes_match_table2(self):
        assert model_by_name("GPT").batch_size == 60
        assert model_by_name("OPT-6.7B").batch_size == 2

    def test_lookup_case_insensitive(self):
        assert model_by_name("gpt2-m").name == "GPT2-M"

    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigError):
            model_by_name("GPT-5")


class TestInventory:
    def test_tensor_count_few_hundred(self):
        # Fig. 4: tensor numbers stay at a few hundred.
        for model in MODEL_ZOO:
            inv = TransformerInventory(model)
            assert 50 <= inv.n_param_tensors <= 400

    def test_total_params_match_model(self):
        model = model_by_name("GPT2-M")
        assert TransformerInventory(model).total_params == model.n_params

    def test_comm_volumes(self):
        model = model_by_name("GPT2-M")
        inv = TransformerInventory(model)
        assert inv.grad_bytes == 4 * inv.total_params  # fp32 (Fig. 1)
        assert inv.weight_bytes == 2 * inv.total_params  # fp16

    def test_layer_grad_bytes_sum(self):
        model = model_by_name("GPT")
        inv = TransformerInventory(model)
        assert sum(inv.layer_grad_bytes()) == inv.grad_bytes


class TestZeroOffload:
    def test_adam_traffic_per_param(self):
        assert ADAM_BYTES_PER_PARAM == 30  # 4 reads + 3 writes fp32 + fp16 out

    def test_volumes_consistent(self):
        schedule = ZeroOffloadSchedule(model_by_name("GPT"))
        v = schedule.volumes()
        assert v.cpu_adam_bytes == v.n_params * 30
        assert v.grad_bytes == 2 * v.weight_bytes
        assert v.npu_flops > 0

    def test_overlap_fractions_bounded(self):
        g, w = ZeroOffloadSchedule(model_by_name("GPT")).overlap_fractions()
        assert 0 < g < 1 and 0 < w < 1


class TestAdamTrace:
    def test_every_line_read_and_written_once(self, registry):
        groups = build_adam_groups(registry, n_layers=2, lines_per_tensor=32)
        trace = adam_iteration_trace(groups, AdamTraceConfig(threads=4, thread_skew=0.0))
        reads, writes = {}, {}
        for acc in trace:
            bucket = writes if acc.is_write() else reads
            bucket[acc.vaddr] = bucket.get(acc.vaddr, 0) + 1
        # Reads: w32/m/v/g once each; writes: w32/m/v (+w16) once each.
        assert all(count == 1 for count in reads.values())
        assert all(count == 1 for count in writes.values())
        for group in groups:
            for t in group.read_tensors:
                for addr in t.line_addresses():
                    assert addr in reads
            for t in group.rmw_tensors:
                for addr in t.line_addresses():
                    assert addr in writes
            for addr in group.weight16.line_addresses():
                assert addr in writes

    def test_write_lag(self, registry):
        groups = build_adam_groups(registry, n_layers=1, lines_per_tensor=32)
        trace = adam_iteration_trace(
            groups, AdamTraceConfig(threads=1, thread_skew=0.0, write_lag_bursts=4)
        )
        w32 = groups[0].weight32
        first_write = next(i for i, a in enumerate(trace) if a.is_write())
        reads_before = sum(
            1 for a in trace[:first_write] if not a.is_write() and a.tensor_id == w32.tensor_id
        )
        assert reads_before >= 4 * 4  # lag bursts x burst lines

    def test_deterministic_given_seed(self, registry):
        groups = build_adam_groups(registry, n_layers=1, lines_per_tensor=16)
        cfg = AdamTraceConfig(threads=2, seed=99)
        import random

        t1 = adam_iteration_trace(groups, cfg, random.Random(1))
        t2 = adam_iteration_trace(groups, cfg, random.Random(1))
        assert t1 == t2

    def test_too_small_tensor_rejected(self, registry):
        with pytest.raises(ConfigError):
            build_adam_groups(registry, n_layers=1, lines_per_tensor=4)


class TestGemmTrace:
    def test_trace_covers_matrices(self, registry):
        cfg = GemmConfig(m=128, n=128, k=128, tile_m=32, tile_n=32, tile_k=32)
        a, b, c = build_gemm_tensors(registry, cfg)
        trace = gemm_trace(a, b, c, cfg)
        touched = {acc.vaddr for acc in trace}
        for t in (a, b, c):
            assert set(t.line_addresses()) <= touched

    def test_c_written_once_per_pass(self, registry):
        cfg = GemmConfig(m=128, n=128, k=128, tile_m=32, tile_n=32, tile_k=32)
        a, b, c = build_gemm_tensors(registry, cfg)
        writes = {}
        for acc in gemm_trace(a, b, c, cfg):
            if acc.is_write():
                writes[acc.vaddr] = writes.get(acc.vaddr, 0) + 1
        assert set(writes) == set(c.line_addresses())
        assert all(count == 1 for count in writes.values())

    def test_indivisible_tiles_rejected(self):
        with pytest.raises(ConfigError):
            GemmConfig(m=100, n=128, k=128, tile_m=32, tile_n=32, tile_k=32)
