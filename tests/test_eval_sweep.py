"""Sweep specs, matrix expansion, multi-point orchestration, and the CLI."""

import json
import os

import pytest

from repro.errors import ConfigError
from repro.eval import sweep as sweep_mod
from repro.eval.orchestrator import Orchestrator, PointRequest
from repro.eval.registry import REGISTRY
from repro.eval.sweep import (
    SweepSpec,
    expand,
    extract_metric,
    load_spec,
    run_sweep,
    spec_from_dict,
)

#: A cheap 2x2 matrix over the analytic mac_policy scenario.
MAC_2X2 = {
    "name": "mac2x2",
    "experiment": "mac_policy",
    "description": "unit-test matrix",
    "axes": [
        {"param": "granule_bytes", "values": [64, 256]},
        {"param": "policy", "values": ["eager", "delayed"]},
    ],
    "metrics": [
        {"name": "perf", "path": "perf_overhead"},
        {"name": "storage", "path": "storage_overhead"},
        {"name": "missing", "path": "no.such.path"},
    ],
}


@pytest.fixture
def results_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    return tmp_path


def write_toml(path, body):
    path.write_text(body, encoding="utf-8")
    return str(path)


class TestSpecParsing:
    def test_from_dict_roundtrip(self):
        spec = spec_from_dict(MAC_2X2)
        assert spec.name == "mac2x2"
        assert spec.experiment == "mac_policy"
        assert spec.mode == "grid"
        assert spec.n_points() == 4
        assert [a.param for a in spec.axes] == ["granule_bytes", "policy"]
        assert [m.name for m in spec.metrics] == ["perf", "storage", "missing"]

    def test_toml_file(self, tmp_path):
        path = write_toml(
            tmp_path / "t.toml",
            """
            [sweep]
            name = "t"
            experiment = "mac_policy"

            [[sweep.axes]]
            param = "policy"
            values = ["eager", "delayed"]
            """,
        )
        spec = load_spec(path)
        assert spec.name == "t"
        assert spec.n_points() == 2

    def test_spec_by_name_from_sweeps_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEPS_DIR", str(tmp_path))
        write_toml(
            tmp_path / "mine.toml",
            """
            [sweep]
            name = "mine"
            experiment = "mac_policy"

            [[sweep.axes]]
            param = "granule_bytes"
            values = [64]
            """,
        )
        assert sweep_mod.available_specs() == ["mine"]
        assert load_spec("mine").name == "mine"

    def test_unknown_spec_listed(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEPS_DIR", str(tmp_path))
        with pytest.raises(ConfigError, match="no sweep spec"):
            load_spec("nope")

    def test_missing_sweep_table(self, tmp_path):
        path = write_toml(tmp_path / "bad.toml", "[other]\nx = 1\n")
        with pytest.raises(ConfigError, match="missing \\[sweep\\] table"):
            load_spec(path)

    def test_unknown_experiment_rejected(self):
        raw = dict(MAC_2X2, experiment="fig99_nope")
        with pytest.raises(ConfigError, match="unknown experiment"):
            spec_from_dict(raw)

    def test_unknown_axis_param_rejected(self):
        raw = dict(MAC_2X2, axes=[{"param": "bogus", "values": [1]}])
        with pytest.raises(ConfigError, match="no parameter"):
            spec_from_dict(raw)

    def test_bad_mode_rejected(self):
        with pytest.raises(ConfigError, match="'mode'"):
            spec_from_dict(dict(MAC_2X2, mode="diagonal"))

    def test_duplicate_axis_rejected(self):
        axes = [
            {"param": "policy", "values": ["eager"]},
            {"param": "policy", "values": ["delayed"]},
        ]
        with pytest.raises(ConfigError, match="duplicate axis"):
            spec_from_dict(dict(MAC_2X2, axes=axes))

    def test_zip_length_mismatch_rejected(self):
        axes = [
            {"param": "granule_bytes", "values": [64, 256]},
            {"param": "policy", "values": ["eager"]},
        ]
        with pytest.raises(ConfigError, match="equal-length"):
            spec_from_dict(dict(MAC_2X2, axes=axes, mode="zip"))

    def test_empty_axes_rejected(self):
        with pytest.raises(ConfigError, match="'axes'"):
            spec_from_dict(dict(MAC_2X2, axes=[]))

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigError, match="unknown key"):
            spec_from_dict(dict(MAC_2X2, extra=1))

    def test_type_mismatch_rejected_at_parse_time(self):
        # granule_bytes is annotated int; a string value must fail the
        # schema validation that every expanded point goes through.
        raw = dict(MAC_2X2, axes=[{"param": "granule_bytes", "values": ["big"]}])
        with pytest.raises(ConfigError, match="expects int"):
            spec_from_dict(raw)

    def test_fallback_toml_parser_handles_spec_constructs(self):
        # The Python 3.10 path: no tomllib, so the subset parser must
        # read everything the spec layout uses.
        text = """
        # comment
        [sweep]
        name = "x"          # trailing comment
        seed = -3
        quickish = true
        ratio = 1.5

        [sweep.base]
        preset = "2.8b"

        [[sweep.axes]]
        param = "granule_bytes"
        values = [64, 256,
                  1024]

        [[sweep.axes]]
        param = "policy"
        values = ["eager", "delayed"]
        """
        parsed = sweep_mod._parse_toml_subset(text, origin="<test>")
        assert parsed["sweep"]["name"] == "x"
        assert parsed["sweep"]["seed"] == -3
        assert parsed["sweep"]["quickish"] is True
        assert parsed["sweep"]["ratio"] == 1.5
        assert parsed["sweep"]["base"] == {"preset": "2.8b"}
        assert parsed["sweep"]["axes"] == [
            {"param": "granule_bytes", "values": [64, 256, 1024]},
            {"param": "policy", "values": ["eager", "delayed"]},
        ]

    def test_fallback_toml_parser_matches_tomllib_on_shipped_specs(self):
        tomllib = pytest.importorskip("tomllib")
        for name in sweep_mod.available_specs():
            path = os.path.join(sweep_mod.sweeps_dir(), f"{name}.toml")
            text = open(path, encoding="utf-8").read()
            assert sweep_mod._parse_toml_subset(text, path) == tomllib.loads(text), name

    def test_fallback_toml_parser_rejects_garbage(self):
        with pytest.raises(ConfigError, match="line 1"):
            sweep_mod._parse_toml_subset("not toml at all", "<test>")
        with pytest.raises(ConfigError, match="unterminated"):
            sweep_mod._parse_toml_subset('x = "open', "<test>")
        with pytest.raises(ConfigError, match="unterminated multi-line"):
            sweep_mod._parse_toml_subset("x = [1,\n2", "<test>")

    def test_load_spec_without_tomllib_uses_fallback(self, tmp_path, monkeypatch):
        import builtins

        real_import = builtins.__import__

        def no_tomllib(name, *args, **kwargs):
            if name == "tomllib":
                raise ImportError("forced for test")
            return real_import(name, *args, **kwargs)

        monkeypatch.setattr(builtins, "__import__", no_tomllib)
        path = write_toml(
            tmp_path / "fb.toml",
            """
            [sweep]
            name = "fb"
            experiment = "mac_policy"

            [[sweep.axes]]
            param = "policy"
            values = ["eager", "delayed"]
            """,
        )
        spec = load_spec(path)
        assert spec.name == "fb"
        assert spec.n_points() == 2

    def test_duplicate_axis_values_rejected(self):
        raw = dict(MAC_2X2, axes=[{"param": "granule_bytes", "values": [64, 64]}])
        with pytest.raises(ConfigError, match="duplicate values"):
            spec_from_dict(raw)
        # Mixed types that slug identically must raise the clean error,
        # not a TypeError from sorting unlike types.
        raw = dict(MAC_2X2, axes=[{"param": "policy", "values": [0, "0"]}])
        with pytest.raises(ConfigError, match="duplicate values"):
            spec_from_dict(raw)

    def test_shipped_specs_parse_with_enough_points(self):
        names = sweep_mod.available_specs()
        assert {"npu_scaling", "mee_geometry", "mac_policy"} <= set(names)
        for name in names:
            spec = load_spec(name)
            assert spec.n_points() >= 8, name
            assert spec.metrics, name


class TestExpansion:
    def test_grid_order_and_ids(self):
        spec = spec_from_dict(MAC_2X2)
        points = expand(spec)
        assert [p.point_id for p in points] == [
            "granule_bytes=64,policy=eager",
            "granule_bytes=64,policy=delayed",
            "granule_bytes=256,policy=eager",
            "granule_bytes=256,policy=delayed",
        ]
        assert points[0].params == {"granule_bytes": 64, "policy": "eager"}
        assert points[3].coords == {"granule_bytes": 256, "policy": "delayed"}

    def test_zip_mode(self):
        raw = dict(
            MAC_2X2,
            mode="zip",
            axes=[
                {"param": "granule_bytes", "values": [64, 256]},
                {"param": "policy", "values": ["eager", "delayed"]},
            ],
        )
        points = expand(spec_from_dict(raw))
        assert [p.point_id for p in points] == [
            "granule_bytes=64,policy=eager",
            "granule_bytes=256,policy=delayed",
        ]

    def test_quick_truncates_axes(self):
        raw = dict(
            MAC_2X2,
            axes=[
                {"param": "granule_bytes", "values": [64, 256, 1024, 4096]},
                {"param": "policy", "values": ["eager", "delayed"]},
            ],
        )
        spec = spec_from_dict(raw)
        assert len(expand(spec)) == 8
        assert len(expand(spec, quick=True)) == 4

    def test_limit(self):
        spec = spec_from_dict(MAC_2X2)
        assert len(expand(spec, limit=3)) == 3
        with pytest.raises(ConfigError, match="limit"):
            expand(spec, limit=0)

    def test_base_merged_under_axes(self):
        raw = dict(MAC_2X2, base={"preset": "410m"})
        point = expand(spec_from_dict(raw))[0]
        assert point.params["preset"] == "410m"
        assert point.params["granule_bytes"] == 64

    def test_nested_dataclass_axis(self):
        raw = {
            "name": "fig18geo",
            "experiment": "fig18_hit_rate",
            "base": {"iterations": 2},
            "axes": [
                {"param": "config.meta_table_capacity", "values": [128, 288]},
            ],
        }
        points = expand(spec_from_dict(raw))
        assert [p.params["config"].meta_table_capacity for p in points] == [128, 288]
        # Untouched fields keep the experiment default (FIG18_CONFIG).
        assert all(p.params["config"].n_layers == 24 for p in points)
        assert points[0].point_id == "meta_table_capacity=128"

    def test_nested_unknown_field_rejected(self):
        raw = {
            "name": "bad",
            "experiment": "fig18_hit_rate",
            "axes": [{"param": "config.bogus_field", "values": [1]}],
        }
        with pytest.raises(ConfigError, match="no field 'bogus_field'"):
            spec_from_dict(raw)

    def test_nested_into_scalar_rejected(self):
        raw = {
            "name": "bad",
            "experiment": "mac_policy",
            "axes": [{"param": "granule_bytes.nope", "values": [1]}],
        }
        with pytest.raises(ConfigError, match="non-dataclass"):
            spec_from_dict(raw)


class TestMetricExtraction:
    SUMMARY = {"a": {"b": [10, {"c": 42}]}, "flat": 1.5}

    def test_paths(self):
        assert extract_metric(self.SUMMARY, "flat") == 1.5
        assert extract_metric(self.SUMMARY, "a.b.0") == 10
        assert extract_metric(self.SUMMARY, "a.b.1.c") == 42

    def test_missing_paths_are_none(self):
        assert extract_metric(self.SUMMARY, "nope") is None
        assert extract_metric(self.SUMMARY, "a.b.9") is None
        assert extract_metric(self.SUMMARY, "a.b.x") is None
        assert extract_metric(self.SUMMARY, "flat.deeper") is None
        assert extract_metric(None, "flat") is None


class TestSweepExecution:
    def test_end_to_end_2x2_and_cached_rerun(self, results_env):
        spec = spec_from_dict(MAC_2X2)
        first = run_sweep(spec, jobs=1, verbose=False)
        assert first.ok
        assert first.report.counts()["executed"] == 4
        records = first.point_records()
        assert [r["point"] for r in records] == [p.point_id for p in first.points]
        for record in records:
            assert record["metrics"]["perf"] is not None
            assert record["metrics"]["missing"] is None
            assert os.path.exists(record["artifact"])
        # Consolidated outputs.
        document = json.load(open(first.json_path))
        assert document["schema_version"] == 2
        assert document["schema"] == 2
        assert document["sweep"] == "mac2x2"
        assert document["experiment"] == "mac_policy"
        assert len(document["points"]) == 4
        csv_text = open(first.csv_path).read().splitlines()
        assert csv_text[0] == (
            "point,granule_bytes,policy,status,cached,elapsed_s,perf,storage,missing"
        )
        assert len(csv_text) == 5
        manifest = json.load(open(results_env / "sweeps" / "mac2x2" / "manifest.json"))
        assert [e["experiment"] for e in manifest["experiments"]] == ["mac_policy"] * 4
        # Unchanged re-run: every point replays from the content-hash cache.
        second = run_sweep(spec, jobs=1, verbose=False)
        assert second.report.counts() == {"executed": 0, "cached": 4, "failed": 0}
        assert [r["metrics"] for r in second.point_records()] == [r["metrics"] for r in records]

    def test_delayed_policy_beats_eager_at_coarse_granularity(self, results_env):
        # The scenario the sweep exists to expose: at 4 KiB granules the
        # eager stall dwarfs the delayed barrier tail.
        raw = dict(
            MAC_2X2,
            name="coarse",
            axes=[
                {"param": "granule_bytes", "values": [4096]},
                {"param": "policy", "values": ["eager", "delayed"]},
            ],
        )
        result = run_sweep(spec_from_dict(raw), jobs=1, verbose=False)
        eager, delayed = [r["metrics"]["perf"] for r in result.point_records()]
        assert delayed < eager / 3

    def test_quick_run_records_truncation(self, results_env):
        raw = dict(
            MAC_2X2,
            name="quicky",
            axes=[
                {"param": "granule_bytes", "values": [64, 256, 1024]},
                {"param": "policy", "values": ["eager", "delayed"]},
            ],
        )
        result = run_sweep(spec_from_dict(raw), jobs=1, quick=True, verbose=False)
        document = result.document()
        assert document["quick"] is True
        assert len(document["points"]) == 4
        # The document's axes are what was actually swept, not the spec's
        # full value lists.
        assert document["axes"][0] == {"param": "granule_bytes", "values": [64, 256]}

    def test_table_renders_all_points(self, results_env):
        spec = spec_from_dict(MAC_2X2)
        result = run_sweep(spec, jobs=1, verbose=False, write=False)
        table = result.table()
        assert "granule_bytes" in table and "policy" in table
        assert table.count("\n") >= 6  # title + header + rule + 4 rows

    @pytest.mark.slow
    def test_parallel_matches_serial(self, results_env):
        spec = spec_from_dict(MAC_2X2)
        serial = run_sweep(spec, jobs=1, use_cache=False, verbose=False, write=False)
        parallel = run_sweep(spec, jobs=2, use_cache=False, verbose=False, write=False)
        assert [r["metrics"] for r in serial.point_records()] == [
            r["metrics"] for r in parallel.point_records()
        ]


class TestOrchestratorPoints:
    def test_duplicate_labels_rejected(self, results_env):
        points = [
            PointRequest(experiment="mac_policy", params={"policy": "eager"}),
            PointRequest(experiment="mac_policy", params={"policy": "delayed"}),
        ]
        with pytest.raises(ConfigError, match="duplicate point label"):
            Orchestrator(jobs=1, verbose=False).run_points(points)

    def test_points_share_experiment_distinct_cache_keys(self, results_env):
        points = [
            PointRequest(
                experiment="mac_policy", params={"policy": "eager"}, label="p/eager"
            ),
            PointRequest(
                experiment="mac_policy", params={"policy": "delayed"}, label="p/delayed"
            ),
        ]
        report = Orchestrator(jobs=1, verbose=False).run_points(points, write_manifest=False)
        assert report.ok
        keys = {r.cache_key for r in report.runs}
        assert len(keys) == 2
        assert all(r.experiment == "mac_policy" for r in report.runs)
        assert [r.name for r in report.runs] == ["p/eager", "p/delayed"]


class TestScenarioExperiments:
    def test_scenarios_registered(self):
        names = {s.name for s in REGISTRY.select(tags=("scenario",))}
        assert names == {
            "scale_npu_pipeline",
            "mee_cache_geometry",
            "mac_policy",
            "attention_layout",
            "stride_detection",
        }

    def test_mee_geometry_capacity_monotonic(self):
        small = REGISTRY.get("mee_cache_geometry").func(capacity_kib=8, iterations=2)
        large = REGISTRY.get("mee_cache_geometry").func(capacity_kib=128, iterations=2)
        assert large.hit_rate > small.hit_rate
        assert large.mean_covered_level < small.mean_covered_level

    def test_mac_policy_bad_policy_rejected(self):
        with pytest.raises(ConfigError, match="unknown policy"):
            REGISTRY.get("mac_policy").func(policy="lazy")

    @pytest.mark.slow
    def test_scale_npu_pipeline_batch_effect(self):
        run = REGISTRY.get("scale_npu_pipeline").func
        small = run(preset="410m", batch_size=1)
        large = run(preset="410m", batch_size=16)
        assert small.speedup > large.speedup > 1.0
        assert large.tensortee_s > small.tensortee_s


class TestScaledModels:
    def test_presets_resolve_and_derive_params(self):
        from repro.workloads.models import SCALING_PRESETS, scaled_model

        for preset in SCALING_PRESETS:
            model = scaled_model(preset.name)
            assert model.batch_size == preset.default_batch
            assert model.n_params > 0

    def test_batch_override_and_errors(self):
        from repro.workloads.models import scaled_model

        assert scaled_model("410m", batch_size=7).batch_size == 7
        with pytest.raises(ConfigError, match="unknown scaling preset"):
            scaled_model("900t")
        with pytest.raises(ConfigError, match="batch size"):
            scaled_model("410m", batch_size=-1)


class TestCli:
    def test_sweep_run_smoke(self, results_env, tmp_path, capsys):
        from repro.cli import main

        path = write_toml(
            tmp_path / "smoke.toml",
            """
            [sweep]
            name = "smoke"
            experiment = "mac_policy"

            [[sweep.axes]]
            param = "granule_bytes"
            values = [64, 256]

            [[sweep.axes]]
            param = "policy"
            values = ["eager", "delayed"]

            [[sweep.metrics]]
            name = "perf"
            path = "perf_overhead"
            """,
        )
        assert main(["sweep", "run", path, "--jobs", "1", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["counts"]["executed"] == 4
        assert {p["point"] for p in document["points"]} == {
            "granule_bytes=64,policy=eager",
            "granule_bytes=64,policy=delayed",
            "granule_bytes=256,policy=eager",
            "granule_bytes=256,policy=delayed",
        }
        assert os.path.exists(results_env / "sweeps" / "smoke" / "sweep.csv")

    def test_sweep_show_and_list(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv("REPRO_SWEEPS_DIR", str(tmp_path))
        write_toml(
            tmp_path / "mini.toml",
            """
            [sweep]
            name = "mini"
            experiment = "mac_policy"

            [[sweep.axes]]
            param = "policy"
            values = ["eager", "delayed"]
            """,
        )
        assert main(["sweep", "list", "--json"]) == 0
        listing = json.loads(capsys.readouterr().out)
        assert listing == [
            {
                "name": "mini",
                "experiment": "mac_policy",
                "mode": "grid",
                "points": 2,
                "description": "",
            }
        ]
        assert main(["sweep", "show", "mini"]) == 0
        out = capsys.readouterr().out
        assert "policy=eager" in out and "policy=delayed" in out

    def test_sweep_unknown_spec_exits_2(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv("REPRO_SWEEPS_DIR", str(tmp_path))
        assert main(["sweep", "run", "nope"]) == 2
        assert "no sweep spec" in capsys.readouterr().err

    def test_run_unknown_tag_exits_2(self, results_env, capsys):
        from repro.cli import main

        assert main(["run", "--tag", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "matches no experiments" in err
        assert "fig16_overall" in err  # the valid names are listed

    def test_run_empty_only_exits_2(self, results_env, capsys):
        from repro.cli import main

        assert main(["run", "--only", ","]) == 2
        assert "--only given but empty" in capsys.readouterr().err

    def test_list_unknown_tag_exits_2(self, capsys):
        from repro.cli import main

        assert main(["list", "--tag", "scenarios"]) == 2  # typo for 'scenario'
        assert "matches no experiments" in capsys.readouterr().err

    def test_digest_matches_written_artifact_bytes(self, results_env):
        # The digest must equal sha256sum of the results/<name>.txt a run
        # writes, not of the raw render text.
        import hashlib

        from repro.cli import artifact_digest
        from repro.eval.orchestrator import Orchestrator

        Orchestrator(jobs=1, use_cache=False, verbose=False).run(
            only=["fig20_mac_granularity"], write_manifest=False
        )
        written = (results_env / "fig20_mac_granularity.txt").read_bytes()
        assert artifact_digest("fig20_mac_granularity") == hashlib.sha256(written).hexdigest()

    def test_digest_update_check_and_drift(self, results_env, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "digests.json")
        assert main(["digest", "--update", path, "--only", "fig20_mac_granularity"]) == 0
        capsys.readouterr()
        assert main(["digest", "--check", path]) == 0
        assert "ok" in capsys.readouterr().out
        recorded = json.load(open(path))
        recorded["experiments"]["fig20_mac_granularity"] = "0" * 64
        json.dump(recorded, open(path, "w"))
        assert main(["digest", "--check", path]) == 1
        assert "DRIFT" in capsys.readouterr().out

    def test_committed_digest_file_matches(self, results_env):
        # The CI artifact-digest lane must pass on a clean checkout: the
        # checked-in digests track the current models byte for byte. The
        # file now records all 16 fixed artifacts; regenerating the slow
        # ones takes ~30 s, so the unit test verifies the fast-cost subset
        # via --only and leaves the full sweep to the CI lane.
        from repro.cli import main
        from repro.eval.registry import REGISTRY

        repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        path = os.path.join(repo, "benchmarks", "artifact_digests.json")
        recorded = set(json.load(open(path))["experiments"])
        fast = [
            s.name
            for s in REGISTRY.specs()
            if s.cost == "fast" and s.name in recorded
        ]
        assert fast  # the subset is never empty
        assert main(["digest", "--check", path, "--only", ",".join(fast)]) == 0


class TestRegistryValidation:
    def test_scalar_type_checks(self):
        spec = REGISTRY.get("mac_policy")
        with pytest.raises(ConfigError, match="expects int"):
            spec.validate_params({"granule_bytes": "64"})
        with pytest.raises(ConfigError, match="expects str"):
            spec.validate_params({"policy": 3})
        with pytest.raises(ConfigError, match="expects int"):
            spec.validate_params({"granule_bytes": True})
        spec.validate_params({"granule_bytes": 64, "policy": "eager"})  # clean

    def test_default_of(self):
        spec = REGISTRY.get("mac_policy")
        assert spec.default_of("granule_bytes") == 512
        with pytest.raises(ConfigError, match="no parameter"):
            spec.default_of("bogus")
