"""Shared fixtures for the TensorTEE reproduction test suite."""

from __future__ import annotations

import pytest

from repro.mem.mee import FunctionalMee
from repro.tensor.registry import TensorRegistry
from repro.units import KiB


@pytest.fixture
def registry() -> TensorRegistry:
    """A registry with the guard gaps the scaled experiments use."""
    return TensorRegistry(alignment=4 * KiB, guard_bytes=256 * KiB)


@pytest.fixture
def mee() -> FunctionalMee:
    """A small functional MEE with a Merkle tree (CPU-style)."""
    return FunctionalMee(b"test-aes-key-16b", b"test-mac-key-16b", protected_bytes=1 << 20)


@pytest.fixture
def npu_mee() -> FunctionalMee:
    """A small functional MEE without a tree (NPU-style, on-chip VNs)."""
    return FunctionalMee(
        b"test-aes-key-16b", b"test-mac-key-16b", with_merkle=False, protected_bytes=1 << 20
    )


@pytest.fixture
def line64() -> bytes:
    return bytes(range(64))
