"""Experiment registry, result cache, orchestrator, and CLI."""

import json
import os

import pytest

from repro.core.results import StageBreakdown
from repro.errors import ConfigError
from repro.eval import cache as result_cache
from repro.eval.orchestrator import Orchestrator, derive_seed
from repro.eval.registry import (
    EXPERIMENT_MODULES,
    PAPER_TAG,
    REGISTRY,
    ExperimentRegistry,
    experiment,
    normalize_params,
)
from repro.sim.stats import Stats
from repro.workloads.models import MODEL_ZOO

#: The 12 artifacts the original serial runner produced, in its order.
PAPER_NAMES = [
    "table1_config",
    "table2_workloads",
    "hw_overhead",
    "fig03_adam_slowdown",
    "fig04_tensor_stats",
    "fig05_breakdown",
    "fig16_overall",
    "fig17_breakdown",
    "fig18_hit_rate",
    "fig19_cpu_perf",
    "fig20_mac_granularity",
    "fig21_comm",
]

#: Cheap experiments (sub-second each) used to exercise the scheduler.
CHEAP = ["table1_config", "table2_workloads", "hw_overhead", "fig20_mac_granularity"]


@pytest.fixture
def results_env(tmp_path, monkeypatch):
    """Point all result/cache IO at a fresh directory."""
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    return tmp_path


class TestRegistry:
    def test_all_experiments_registered(self):
        names = REGISTRY.names()
        for name in PAPER_NAMES:
            assert name in names
        assert len(names) == len(set(names))

    def test_paper_tag_matches_legacy_runner(self):
        assert [s.name for s in REGISTRY.select(tags=(PAPER_TAG,))] == PAPER_NAMES

    def test_every_module_contributes(self):
        modules = {spec.module for spec in REGISTRY.specs()}
        assert modules == set(EXPERIMENT_MODULES)

    def test_duplicate_name_rejected(self):
        registry = ExperimentRegistry()

        @experiment("dup", render=None, registry=registry)
        def first() -> str:
            return "a"

        with pytest.raises(ConfigError, match="duplicate"):

            @experiment("dup", render=None, registry=registry)
            def second() -> str:
                return "b"

    def test_bad_cost_class_rejected(self):
        registry = ExperimentRegistry()
        with pytest.raises(ConfigError, match="cost"):

            @experiment("bad-cost", cost="huge", render=None, registry=registry)
            def exp() -> str:
                return ""

    def test_medium_cost_class_accepted(self):
        registry = ExperimentRegistry()

        @experiment("mid-cost", cost="medium", render=None, registry=registry)
        def exp() -> str:
            return ""

        assert registry._specs["mid-cost"].cost == "medium"

    def test_param_schema_introspected(self):
        schema = REGISTRY.get("fig03_adam_slowdown").param_schema()
        assert schema["n_params"] == {
            "required": False,
            "default": 345_000_000,
            "annotation": "int",
        }
        assert "max_threads" in schema

    def test_unknown_param_rejected(self):
        with pytest.raises(ConfigError, match="no parameter"):
            REGISTRY.get("fig03_adam_slowdown").execute(bogus=1)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigError, match="unknown experiment"):
            REGISTRY.get("fig99_nope")

    def test_execute_renders_text(self, results_env):
        output = REGISTRY.get("table1_config").execute()
        assert output.name == "table1_config"
        assert "Table 1" in output.text
        assert output.result is None  # text-only experiment

    def test_normalize_params_stable_forms(self):
        norm = normalize_params({"models": MODEL_ZOO[:1], "count": 3, "x": 1.5})
        assert norm["count"] == 3
        model = norm["models"][0]
        assert model["__dataclass__"] == "ModelConfig"
        assert model["name"] == MODEL_ZOO[0].name


class TestCache:
    def test_key_changes_on_params_seed_and_source(self):
        base = result_cache.cache_key("e", {"a": 1}, 0, "d1")
        assert result_cache.cache_key("e", {"a": 1}, 0, "d1") == base
        assert result_cache.cache_key("e", {"a": 2}, 0, "d1") != base
        assert result_cache.cache_key("e", {"a": 1}, 1, "d1") != base
        assert result_cache.cache_key("e", {"a": 1}, 0, "d2") != base
        assert result_cache.cache_key("f", {"a": 1}, 0, "d1") != base

    def test_roundtrip_and_clear(self, tmp_path):
        cache = result_cache.ResultCache(root=str(tmp_path / "c"))
        entry = result_cache.CacheEntry(
            name="e", key="k1", text="body", elapsed_s=0.5, seed=7, params={"a": 1}
        )
        cache.store(entry)
        loaded = cache.load("e", "k1")
        assert loaded == entry
        assert cache.load("e", "other") is None
        assert cache.clear() == 1
        assert cache.load("e", "k1") is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = result_cache.ResultCache(root=str(tmp_path))
        path = cache._path("e", "k1")
        with open(path, "w") as f:
            f.write("{not json")
        assert cache.load("e", "k1") is None

    def test_source_digest_is_stable(self):
        assert result_cache.source_digest() == result_cache.source_digest()


class TestOrchestrator:
    def test_serial_run_writes_artifacts_and_manifest(self, results_env):
        report = Orchestrator(jobs=1, use_cache=False, verbose=False).run(only=CHEAP)
        assert report.ok
        assert [r.name for r in report.runs] == CHEAP
        for run in report.runs:
            assert run.status == "executed"
            assert os.path.exists(run.artifact)
        manifest = json.load(open(results_env / "manifest.json"))
        assert manifest["schema"] == 1
        assert manifest["counts"] == {"executed": 4, "cached": 0, "failed": 0}
        assert len(manifest["experiments"]) == 4
        record = manifest["experiments"][0]
        for field in ("name", "status", "elapsed_s", "seed", "cache_key",
                      "params", "tags", "cost", "artifact", "error"):
            assert field in record

    def test_second_invocation_all_cached(self, results_env):
        first = Orchestrator(jobs=1, verbose=False).run(only=CHEAP)
        assert first.counts()["executed"] == 4
        second = Orchestrator(jobs=1, verbose=False).run(only=CHEAP)
        assert second.counts() == {"executed": 0, "cached": 4, "failed": 0}
        assert second.rendered() == first.rendered()
        manifest = json.load(open(results_env / "manifest.json"))
        assert manifest["counters"]["orchestrator.cache.hits"] == 4
        assert "orchestrator.experiments.executed" not in manifest["counters"]

    def test_param_change_misses_cache(self, results_env):
        overrides = {"fig04_tensor_stats": {"models": MODEL_ZOO[:2]}}
        first = Orchestrator(jobs=1, verbose=False).run(
            only=["fig04_tensor_stats"], params=overrides
        )
        assert first.runs[0].status == "executed"
        again = Orchestrator(jobs=1, verbose=False).run(
            only=["fig04_tensor_stats"], params=overrides
        )
        assert again.runs[0].status == "cached"
        changed = Orchestrator(jobs=1, verbose=False).run(
            only=["fig04_tensor_stats"],
            params={"fig04_tensor_stats": {"models": MODEL_ZOO[:3]}},
        )
        assert changed.runs[0].status == "executed"
        assert changed.runs[0].cache_key != first.runs[0].cache_key

    @pytest.mark.slow
    def test_parallel_equals_serial(self, results_env):
        serial = Orchestrator(jobs=1, use_cache=False, verbose=False).run(only=CHEAP)
        parallel = Orchestrator(jobs=2, use_cache=False, verbose=False).run(only=CHEAP)
        assert parallel.jobs == 2
        assert parallel.rendered() == serial.rendered()
        assert parallel.counts()["executed"] == 4

    def test_failure_is_reported_not_raised(self, results_env):
        registry = ExperimentRegistry()
        report = Orchestrator(jobs=1, use_cache=False, verbose=False)
        # A failing experiment must surface as status=failed + ok=False.

        @experiment("boom", render=None, registry=registry)
        def boom() -> str:
            raise RuntimeError("kaput")

        spec = registry._specs["boom"]
        REGISTRY._specs["boom"] = spec
        try:
            result = report.run(only=["boom"])
        finally:
            del REGISTRY._specs["boom"]
        assert not result.ok
        assert result.runs[0].status == "failed"
        assert "kaput" in result.runs[0].error

    def test_cost_class_ordering_slow_medium_fast(self, results_env):
        # Regression for the binary (cost != "slow") sort: with no recorded
        # history the static fallback must order slow > medium > fast, not
        # leave "medium" tied with "fast" at the pool's tail.
        from repro.eval.cost import CostModel

        executed = []
        registry = ExperimentRegistry()

        def make(name):
            def run() -> str:
                executed.append(name)
                return name

            return run

        names = [("ord-fast", "fast"), ("ord-medium", "medium"), ("ord-slow", "slow")]
        for name, cost in names:
            experiment(name, cost=cost, render=None, registry=registry)(make(name))
            REGISTRY._specs[name] = registry._specs[name]
        try:
            report = Orchestrator(
                jobs=1, use_cache=False, verbose=False, cost_model=CostModel()
            ).run(only=[name for name, _ in names], write_manifest=False)
        finally:
            for name, _ in names:
                del REGISTRY._specs[name]
        assert report.ok
        assert executed == ["ord-slow", "ord-medium", "ord-fast"]

    def test_learned_history_overrides_static_cost_class(self, results_env):
        # A "fast"-classed experiment with recorded long runtimes must
        # schedule ahead of a history-free "slow" one.
        from repro.eval.cost import CostModel

        executed = []
        registry = ExperimentRegistry()

        def make(name):
            def run() -> str:
                executed.append(name)
                return name

            return run

        names = [("hist-fast", "fast"), ("hist-slow", "slow")]
        for name, cost in names:
            experiment(name, cost=cost, render=None, registry=registry)(make(name))
            REGISTRY._specs[name] = registry._specs[name]
        model = CostModel()
        model.observe("hist-fast", {}, 120.0)
        try:
            report = Orchestrator(
                jobs=1, use_cache=False, verbose=False, cost_model=model
            ).run(only=[name for name, _ in names], write_manifest=False)
        finally:
            for name, _ in names:
                del REGISTRY._specs[name]
        assert report.ok
        assert executed == ["hist-fast", "hist-slow"]

    def test_unmatched_param_override_rejected(self, results_env):
        with pytest.raises(ConfigError, match="not in this run"):
            Orchestrator(jobs=1, verbose=False).run(
                only=["table1_config"],
                params={"fig4_tensor_stats": {"models": MODEL_ZOO[:2]}},
            )

    def test_summary_in_manifest_and_preserved_by_cache(self, results_env):
        first = Orchestrator(jobs=1, verbose=False).run(only=["fig05_breakdown"])
        summary = first.runs[0].summary
        assert summary["baseline"]["model"] == "GPT2-M"
        assert summary["baseline"]["total_s"] > summary["non_secure"]["total_s"]
        cached = Orchestrator(jobs=1, verbose=False).run(only=["fig05_breakdown"])
        assert cached.runs[0].status == "cached"
        assert cached.runs[0].summary == summary
        manifest = json.load(open(results_env / "manifest.json"))
        assert manifest["experiments"][0]["summary"] == summary

    def test_registry_recovers_after_clear(self):
        REGISTRY.clear()
        try:
            assert "fig16_overall" in REGISTRY.names()
        finally:
            REGISTRY.clear()
            REGISTRY.load_all()

    def test_seed_derivation_stable_and_distinct(self):
        assert derive_seed(0, "a") == derive_seed(0, "a")
        assert derive_seed(0, "a") != derive_seed(0, "b")
        assert derive_seed(0, "a") != derive_seed(1, "a")


class TestManifestSupport:
    def test_stats_as_dict(self):
        stats = Stats("orchestrator")
        stats.add("cache.hits", 2)
        stats.scope("inner").add("x")
        assert stats.as_dict() == {
            "orchestrator.cache.hits": 2.0,
            "orchestrator.inner.x": 1.0,
        }

    def test_stage_breakdown_as_dict(self):
        breakdown = StageBreakdown("GPT2-M", "tensortee", 1.0, 0.5, 0.25, 0.25)
        record = breakdown.as_dict()
        assert record["model"] == "GPT2-M"
        assert record["total_s"] == pytest.approx(2.0)
        assert record["fractions"]["NPU"] == pytest.approx(0.5)
        json.dumps(record)  # must be JSON-safe


class TestCli:
    def test_list_json(self, capsys):
        from repro.cli import main

        assert main(["list", "--json"]) == 0
        listing = json.loads(capsys.readouterr().out)
        assert {item["name"] for item in listing} >= set(PAPER_NAMES)
        fig03 = next(i for i in listing if i["name"] == "fig03_adam_slowdown")
        assert fig03["params"]["n_params"]["default"] == 345_000_000

    def test_run_only_json(self, results_env, capsys):
        from repro.cli import main

        rc = main(["run", "--only", "table1_config,hw_overhead", "--jobs", "1",
                   "--no-cache", "--json"])
        assert rc == 0
        manifest = json.loads(capsys.readouterr().out)
        assert manifest["counts"]["executed"] == 2
        assert [e["name"] for e in manifest["experiments"]] == [
            "table1_config", "hw_overhead",
        ]

    def test_unknown_name_exits_2(self, results_env, capsys):
        from repro.cli import main

        assert main(["run", "--only", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_clean_removes_artifacts(self, results_env, capsys):
        from repro.cli import main

        main(["run", "--only", "table1_config", "--jobs", "1", "--quiet"])
        assert os.path.exists(results_env / "table1_config.txt")
        assert main(["clean"]) == 0
        assert not os.path.exists(results_env / "table1_config.txt")
        assert not os.path.exists(results_env / "manifest.json")
        assert not os.path.exists(results_env / ".cache")
