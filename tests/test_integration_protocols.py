"""Integration: attestation -> shared keys -> functional transfers.

These tests run the real crypto end to end: the direct protocol must move
ciphertext between enclaves without re-encryption and still decrypt and
verify on the far side; the baseline must stage through the session cipher;
attacks anywhere on the path must be detected.
"""

import pytest

from repro.comm.direct import DirectTransferProtocol
from repro.comm.graviton import GravitonTransferProtocol
from repro.errors import IntegrityError, PoisonedTensorError, SecurityError
from repro.tee.device import CpuSecureDevice, NpuSecureDevice
from repro.tee.enclave import Enclave, TrustDomain, mutual_attestation
from repro.tensor.dtype import DType


@pytest.fixture
def attested_pair():
    domain = TrustDomain()
    cpu_enclave = Enclave("cpu", b"optimizer code")
    npu_enclave = Enclave("npu", b"training kernels")
    cpu_enclave.create(dh_seed=101)
    npu_enclave.create(dh_seed=202)
    keys, _ = mutual_attestation(cpu_enclave, npu_enclave, domain)
    cpu = CpuSecureDevice(*keys)
    npu = NpuSecureDevice(*keys)
    return cpu, npu, keys


def payload(tensor):
    return bytes((i * 7) % 256 for i in range(tensor.nbytes))


class TestDirectProtocol:
    def test_cpu_to_npu_weights(self, attested_pair):
        cpu, npu, keys = attested_pair
        protocol = DirectTransferProtocol(cpu, npu, keys)
        w_cpu = cpu.allocate("w16", (256,), DType.FP16)
        w_npu = npu.allocate("w16", (256,), DType.FP16)
        cpu.write_tensor(w_cpu, payload(w_cpu))
        protocol.cpu_to_npu(w_cpu, w_npu)
        assert npu.read_tensor_delayed(w_npu) == payload(w_cpu)

    def test_npu_to_cpu_gradients(self, attested_pair):
        cpu, npu, keys = attested_pair
        protocol = DirectTransferProtocol(cpu, npu, keys)
        g_npu = npu.allocate("grad", (128,), DType.FP32)
        g_cpu = cpu.allocate("grad", (128,), DType.FP32)
        npu.write_tensor(g_npu, payload(g_npu))
        protocol.npu_to_cpu(g_npu, g_cpu)
        assert cpu.read_tensor(g_cpu) == payload(g_npu)
        # The transfer descriptor installed a Meta Table entry (Sec. 4.2).
        assert cpu.analyzer.table.entry_of(g_cpu.base_va) is not None

    def test_ciphertext_moves_unmodified(self, attested_pair):
        """The direct channel must carry the *same* ciphertext bytes."""
        cpu, npu, keys = attested_pair
        protocol = DirectTransferProtocol(cpu, npu, keys)
        w_cpu = cpu.allocate("w", (64,), DType.FP32)
        w_npu = npu.allocate("w", (64,), DType.FP32)
        cpu.write_tensor(w_cpu, payload(w_cpu))
        src_ct = cpu.mee.dram.read_line(cpu.mee.pages.translate(w_cpu.base_va))
        protocol.cpu_to_npu(w_cpu, w_npu)
        dst_ct = npu.mee.dram.read_line(npu.mee.pages.translate(w_npu.base_va))
        assert src_ct == dst_ct

    def test_tamper_in_transit_detected(self, attested_pair):
        cpu, npu, keys = attested_pair
        protocol = DirectTransferProtocol(cpu, npu, keys)
        w_cpu = cpu.allocate("w", (64,), DType.FP32)
        w_npu = npu.allocate("w", (64,), DType.FP32)
        cpu.write_tensor(w_cpu, payload(w_cpu))
        protocol.cpu_to_npu(w_cpu, w_npu)
        npu.mee.dram.flip_bit(npu.mee.pages.translate(w_npu.base_va), 33)
        with pytest.raises(IntegrityError):
            npu.read_tensor_delayed(w_npu)

    def test_poisoned_tensor_cannot_leave_npu(self, attested_pair):
        cpu, npu, keys = attested_pair
        protocol = DirectTransferProtocol(cpu, npu, keys)
        g_npu = npu.allocate("grad", (64,), DType.FP32)
        g_cpu = cpu.allocate("grad", (64,), DType.FP32)
        npu.write_tensor(g_npu, payload(g_npu))
        npu.mee.tamper_ciphertext(g_npu.base_va, flip_bit=3)
        npu.engine.read_tensor_delayed(g_npu)  # silently garbage (delayed)
        with pytest.raises((IntegrityError, PoisonedTensorError)):
            protocol.npu_to_cpu(g_npu, g_cpu)

    def test_shape_mismatch_rejected(self, attested_pair):
        cpu, npu, keys = attested_pair
        protocol = DirectTransferProtocol(cpu, npu, keys)
        a = cpu.allocate("a", (64,), DType.FP32)
        b = npu.allocate("b", (128,), DType.FP32)
        from repro.errors import ProtocolError

        with pytest.raises(ProtocolError):
            protocol.cpu_to_npu(a, b)


class TestGravitonProtocol:
    def test_roundtrip_both_directions(self, attested_pair):
        cpu, npu, keys = attested_pair
        protocol = GravitonTransferProtocol(cpu, npu, keys)
        w_cpu = cpu.allocate("w", (128,), DType.FP16)
        w_npu = npu.allocate("w", (128,), DType.FP16)
        cpu.write_tensor(w_cpu, payload(w_cpu))
        protocol.cpu_to_npu(w_cpu, w_npu)
        assert npu.read_tensor_delayed(w_npu) == payload(w_cpu)

        g_npu = npu.allocate("g", (128,), DType.FP32)
        g_cpu = cpu.allocate("g", (128,), DType.FP32)
        npu.write_tensor(g_npu, payload(g_npu))
        protocol.npu_to_cpu(g_npu, g_cpu)
        assert cpu.read_tensor(g_cpu) == payload(g_npu)

    def test_staging_differs_from_enclave_ciphertext(self, attested_pair):
        """The baseline re-encrypts: staging bytes != enclave bytes."""
        cpu, npu, keys = attested_pair
        protocol = GravitonTransferProtocol(cpu, npu, keys)
        w_cpu = cpu.allocate("w", (64,), DType.FP32)
        cpu.write_tensor(w_cpu, payload(w_cpu))
        plain = cpu.read_tensor(w_cpu)
        lines = [plain[i : i + 64] for i in range(0, len(plain), 64)]
        staged, _, _ = protocol._stage(lines)
        enclave_ct = cpu.mee.dram.read_line(cpu.mee.pages.translate(w_cpu.base_va))
        assert staged[0] != enclave_ct
        assert staged[0] != lines[0]  # staging is not plaintext either


class TestKeyMismatch:
    def test_unattested_devices_cannot_exchange(self):
        """Different session keys -> the direct transfer fails verification."""
        cpu = CpuSecureDevice(b"A" * 16, b"B" * 16)
        npu = NpuSecureDevice(b"C" * 16, b"D" * 16)
        protocol = DirectTransferProtocol(cpu, npu, (b"A" * 16, b"B" * 16))
        w_cpu = cpu.allocate("w", (64,), DType.FP32)
        w_npu = npu.allocate("w", (64,), DType.FP32)
        cpu.write_tensor(w_cpu, payload(w_cpu))
        protocol.cpu_to_npu(w_cpu, w_npu)
        with pytest.raises(SecurityError):
            npu.read_tensor_delayed(w_npu)
