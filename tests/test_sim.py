"""Simulation kernel: clock, stats, event engine, trace helpers."""

import pytest

from repro.errors import ConfigError, SimulationError
from repro.sim.clock import CPU_CLOCK, NPU_CLOCK, Clock
from repro.sim.engine import EventEngine
from repro.sim.stats import Stats
from repro.sim import trace
from repro.sim.trace import AccessKind, MemAccess, interleave_round_robin
from repro.sim.trace_batch import TraceBatch


class TestClock:
    def test_table1_domains(self):
        assert CPU_CLOCK.freq_hz == 3.5e9
        assert NPU_CLOCK.freq_hz == 1e9

    def test_cycle_conversion_roundtrip(self):
        clock = Clock("x", 2e9)
        assert clock.seconds_to_cycles(clock.cycles_to_seconds(1234)) == pytest.approx(1234)

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ConfigError):
            Clock("bad", 0)


class TestStats:
    def test_add_and_get(self):
        s = Stats("s")
        s.add("x")
        s.add("x", 2)
        assert s["x"] == 3

    def test_nested_scopes_flatten(self):
        s = Stats("root")
        s.scope("child").add("hits", 5)
        flat = dict(s.flat())
        assert flat["root.child.hits"] == 5

    def test_ratio_handles_zero_denominator(self):
        s = Stats("s")
        assert s.ratio("a", "b") == 0.0
        s.add("a", 3)
        s.add("b", 6)
        assert s.ratio("a", "b") == 0.5

    def test_reset_clears_children(self):
        s = Stats("s")
        s.scope("c").add("x")
        s.reset()
        assert s.scope("c")["x"] == 0


class TestEventEngine:
    def test_time_ordering(self):
        eng = EventEngine()
        order = []
        eng.at(3.0, lambda: order.append("c"))
        eng.at(1.0, lambda: order.append("a"))
        eng.at(2.0, lambda: order.append("b"))
        eng.run()
        assert order == ["a", "b", "c"]

    def test_fifo_within_same_time(self):
        eng = EventEngine()
        order = []
        eng.at(1.0, lambda: order.append(1))
        eng.at(1.0, lambda: order.append(2))
        eng.run()
        assert order == [1, 2]

    def test_cancelled_events_skipped(self):
        eng = EventEngine()
        fired = []
        event = eng.at(1.0, lambda: fired.append(1))
        event.cancel()
        eng.run()
        assert not fired

    def test_cannot_schedule_in_past(self):
        eng = EventEngine()
        eng.at(5.0, lambda: None)
        eng.run()
        with pytest.raises(SimulationError):
            eng.at(1.0, lambda: None)

    def test_run_until_stops_clock(self):
        eng = EventEngine()
        eng.at(10.0, lambda: None)
        eng.run(until=5.0)
        assert eng.now == 5.0
        assert eng.pending == 1


class TestTrace:
    def test_reads_writes_wrappers(self):
        r = TraceBatch.reads([0, 64], thread=1, tensor_id=7).to_accesses()
        w = TraceBatch.writes([128]).to_accesses()
        assert all(a.kind is AccessKind.READ for a in r)
        assert r[0].thread == 1 and r[0].tensor_id == 7
        assert w[0].is_write()

    def test_deprecated_free_functions_removed(self):
        assert not hasattr(trace, "reads")
        assert not hasattr(trace, "writes")

    def test_interleave_preserves_all_accesses(self):
        s1 = TraceBatch.reads(range(0, 640, 64)).to_accesses()
        s2 = TraceBatch.writes(range(1024, 1664, 64)).to_accesses()
        merged = interleave_round_robin([s1, s2], chunk=3)
        assert len(merged) == len(s1) + len(s2)
        assert [a for a in merged if a.is_write()] == s2

    def test_interleave_chunking(self):
        s1 = [MemAccess(i * 64) for i in range(4)]
        s2 = [MemAccess(4096 + i * 64) for i in range(4)]
        merged = interleave_round_robin([s1, s2], chunk=2)
        assert merged[:2] == s1[:2]
        assert merged[2:4] == s2[:2]
