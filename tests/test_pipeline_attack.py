"""Fig.-13 pipeline simulation and the adversary harness."""

import pytest

from repro.errors import SecurityError
from repro.npu.config import NpuConfig
from repro.npu.mac import MacScheme
from repro.npu.pipeline import (
    compare_pipelines,
    simulate_delayed_pipeline,
    simulate_granule_pipeline,
)
from repro.tee.attack import Adversary
from repro.tee.device import CpuSecureDevice
from repro.tensor.dtype import DType


@pytest.fixture(scope="module")
def config():
    return NpuConfig()


class TestPipelineSimulation:
    def test_delayed_dominates_all_granule_schemes(self, config):
        results = compare_pipelines(config)
        delayed = results[-1]
        assert delayed.scheme == "tensor-delayed"
        for granule_result in results[:-1]:
            assert delayed.overhead < granule_result.overhead
            assert delayed.stall_s < granule_result.stall_s

    def test_delayed_overhead_negligible(self, config):
        compute = 0.9 * 64 / config.dram.effective_stream_bw
        delayed = simulate_delayed_pipeline(config, 1 << 20, compute)
        assert delayed.overhead < 0.02

    def test_fine_granularity_pays_traffic(self, config):
        compute = 0.9 * 64 / config.dram.effective_stream_bw
        fine = simulate_granule_pipeline(config, 1 << 20, 64, compute)
        # ~7B MAC per 64B line = ~10.9% extra stream time; agrees with the
        # closed-form model's traffic term within 2pp.
        assert fine.overhead == pytest.approx(7 / 64, abs=0.02)
        model = MacScheme("64", 64).traffic_overhead()
        assert fine.overhead == pytest.approx(model, abs=0.02)

    def test_verification_tail_grows_with_granule(self, config):
        """For an elastic consumer, later verification exposes a tail that
        grows with the granule (the rigid-systolic resync cost on top of
        this is modelled in MacScheme.stall_overhead)."""
        compute = 0.9 * 64 / config.dram.effective_stream_bw
        mid = simulate_granule_pipeline(config, 1 << 18, 512, compute)
        coarse = simulate_granule_pipeline(config, 1 << 18, 16384, compute)
        assert coarse.total_s >= mid.total_s


class TestAdversary:
    @pytest.fixture
    def target(self):
        cpu = CpuSecureDevice(b"k" * 16, b"m" * 16)
        tensor = cpu.allocate("secret", (64,), DType.FP32)
        cpu.write_tensor(tensor, bytes(range(256)))
        return cpu, tensor, Adversary(cpu.mee)

    def test_snoop_sees_only_ciphertext(self, target):
        cpu, tensor, adversary = target
        observed = adversary.snoop_tensor(tensor)
        assert b"".join(observed) != bytes(range(256))

    def test_bit_flip_detected(self, target):
        cpu, tensor, adversary = target
        adversary.flip_bit(tensor.base_va, bit=5)
        with pytest.raises(SecurityError):
            cpu.read_tensor(tensor)

    def test_mac_corruption_detected(self, target):
        cpu, tensor, adversary = target
        adversary.corrupt_mac(tensor.base_va)
        with pytest.raises(SecurityError):
            cpu.read_tensor(tensor)

    def test_replay_with_vn_rollback_detected(self, target):
        cpu, tensor, adversary = target
        adversary.snapshot(tensor.base_va)
        cpu.write_tensor(tensor, bytes(256))
        adversary.replay(tensor.base_va, rollback_vn=True)
        with pytest.raises(SecurityError):
            cpu.read_tensor(tensor)

    def test_splice_detected(self, target):
        cpu, tensor, adversary = target
        other = cpu.allocate("other", (64,), DType.FP32)
        cpu.write_tensor(other, bytes(256))
        adversary.splice(tensor.base_va, other.base_va)
        with pytest.raises(SecurityError):
            cpu.read_tensor(other)
