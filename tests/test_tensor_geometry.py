"""Property tests for the geometry-aware tensor API.

Pins the tentpole contracts of the TensorGeometry redesign:

- view/slice/select/transpose compositions address the same storage
  elements the composed index arithmetic says they should (round-trips);
- contiguous ``line_addresses()`` is byte-for-byte the legacy ascending
  enumeration;
- strided enumeration is duplicate-free and stays inside the storage
  span;
- shard slices are disjoint and complete under any geometry;
- ``contains`` agrees with ``end_va`` exactly at the tail-line boundary
  (the documented line-granularity semantics).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor.dtype import DType
from repro.tensor.geometry import TensorGeometry
from repro.tensor.tensor import TensorDesc
from repro.units import CACHELINE_BYTES

LINE = CACHELINE_BYTES
BASE = 0x7F00_0000_0000

shapes_2d = st.tuples(st.integers(1, 12), st.integers(1, 12))
shapes_3d = st.tuples(st.integers(1, 6), st.integers(1, 6), st.integers(1, 6))
dtypes = st.sampled_from([DType.FP32, DType.FP16])


def geometries(draw):
    """A (possibly strided, possibly offset) small geometry."""
    shape = draw(st.lists(st.integers(1, 6), min_size=1, max_size=3))
    pad = draw(st.lists(st.integers(0, 3), min_size=len(shape), max_size=len(shape)))
    # Build strides of a row-major walk over a padded box, so strides are
    # valid (positive, non-overlapping) but generally non-contiguous.
    strides = [0] * len(shape)
    acc = 1
    for dim in range(len(shape) - 1, -1, -1):
        strides[dim] = acc
        acc *= shape[dim] + pad[dim]
    offset = draw(st.integers(0, 8))
    dtype = draw(dtypes)
    return TensorGeometry(tuple(shape), tuple(strides), offset, dtype)


padded_geometries = st.composite(geometries)()


class TestComposition:
    @given(shape=shapes_2d, dtype=dtypes)
    @settings(max_examples=50, deadline=None)
    def test_transpose_round_trips(self, shape, dtype):
        g = TensorGeometry.contiguous(shape, dtype)
        assert g.transpose().transpose() == g

    @given(g=padded_geometries)
    @settings(max_examples=100, deadline=None)
    def test_transpose_preserves_element_set(self, g):
        if g.ndim < 2:
            return
        assert set(g.transpose(0, -1).element_offsets()) == set(g.element_offsets())

    @given(shape=shapes_3d, dtype=dtypes)
    @settings(max_examples=50, deadline=None)
    def test_view_flatten_round_trips(self, shape, dtype):
        g = TensorGeometry.contiguous(shape, dtype)
        flat = g.view((g.n_elements,))
        assert flat.view(shape) == g
        assert list(flat.element_offsets()) == list(g.element_offsets())

    @given(g=padded_geometries, data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_slice_offsets_match_index_arithmetic(self, g, data):
        dim = data.draw(st.integers(0, g.ndim - 1))
        start = data.draw(st.integers(0, g.shape[dim] - 1))
        stop = data.draw(st.integers(start + 1, g.shape[dim]))
        step = data.draw(st.integers(1, 3))
        sliced = g.slice_(dim, start, stop, step)
        full = list(g.element_offsets())
        picked = set(sliced.element_offsets())
        expected = set()
        for flat_index, offset in enumerate(full):
            index = []
            rest = flat_index
            for extent in reversed(g.shape):
                index.append(rest % extent)
                rest //= extent
            index.reverse()
            if index[dim] >= start and index[dim] < stop and (index[dim] - start) % step == 0:
                expected.add(offset)
        assert picked == expected

    @given(g=padded_geometries, data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_select_equals_width_one_slice(self, g, data):
        if g.ndim < 2:
            return
        dim = data.draw(st.integers(0, g.ndim - 1))
        index = data.draw(st.integers(0, g.shape[dim] - 1))
        selected = g.select(dim, index)
        sliced = g.slice_(dim, index, index + 1)
        assert list(selected.element_offsets()) == list(sliced.element_offsets())


class TestEnumeration:
    @given(shape=shapes_2d, dtype=dtypes)
    @settings(max_examples=50, deadline=None)
    def test_contiguous_lines_equal_legacy(self, shape, dtype):
        t = TensorDesc("t", BASE, shape, dtype)
        legacy = [BASE + i * LINE for i in range(-(-t.nbytes // LINE))]
        assert list(t.line_addresses()) == legacy
        assert t.n_lines == len(legacy)

    @given(g=padded_geometries)
    @settings(max_examples=100, deadline=None)
    def test_strided_lines_unique_and_in_bounds(self, g):
        lines = g.line_addresses(BASE)
        assert len(lines) == len(set(lines))
        span_end = BASE + g.span_elements * g.dtype.nbytes
        for addr in lines:
            assert addr % LINE == 0
            assert BASE <= addr < span_end
        # Every element's line is present.
        esize = g.dtype.nbytes
        expected = {
            (BASE + off * esize) - (BASE + off * esize) % LINE
            for off in g.element_offsets()
        }
        assert set(lines) == expected

    @given(g=padded_geometries, n_shards=st.integers(1, 5))
    @settings(max_examples=100, deadline=None)
    def test_shards_disjoint_and_complete(self, g, n_shards):
        t = TensorDesc(
            "t", BASE, g.shape, g.dtype,
            strides=g.strides, storage_offset=g.storage_offset,
        )
        shards = [t.shard_lines(n_shards, s) for s in range(n_shards)]
        merged = [a for shard in shards for a in shard]
        assert len(merged) == len(set(merged)) == t.n_lines
        assert set(merged) == set(t.line_addresses())
        sizes = sorted(len(s) for s in shards)
        assert sizes[-1] - sizes[0] <= 1  # balanced to within one line


class TestTailLineBoundary:
    def test_contains_agrees_with_end_va_at_tail(self):
        # 100 fp32 elements = 400 bytes = 6.25 lines -> 7 whole lines.
        t = TensorDesc("t", BASE, (100,), DType.FP32)
        assert t.n_lines == 7
        assert t.end_va == BASE + 7 * LINE
        # The tail line belongs to the tensor past the payload end...
        assert t.contains(BASE + 400)  # first byte past the payload
        assert t.contains(t.end_va - 1)
        # ...and the bound is exact.
        assert not t.contains(t.end_va)
        assert not t.contains(BASE - 1)

    @given(elems=st.integers(1, 300), dtype=dtypes)
    @settings(max_examples=100, deadline=None)
    def test_contains_iff_within_end_va(self, elems, dtype):
        t = TensorDesc("t", BASE, (elems,), dtype)
        for probe in (BASE, t.end_va - 1, t.end_va, t.end_va + LINE, BASE - 1):
            assert t.contains(probe) == (t.base_va <= probe < t.end_va)

    @given(g=padded_geometries)
    @settings(max_examples=100, deadline=None)
    def test_strided_contains_matches_covered_lines(self, g):
        t = TensorDesc(
            "t", BASE, g.shape, g.dtype,
            strides=g.strides, storage_offset=g.storage_offset,
        )
        covered = set(t.line_addresses())
        assert t.end_va == max(covered) + LINE
        for addr in covered:
            assert t.contains(addr)
            assert t.contains(addr + LINE - 1)
        assert not t.contains(t.end_va)
        holes = set(range(min(covered), max(covered) + LINE, LINE)) - covered
        for addr in holes:
            assert not t.contains(addr)
