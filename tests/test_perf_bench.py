"""The bench subsystem: registry, harness, CLI, and scalar/vector parity.

The parity tests are the contract behind every vectorized kernel: the
NumPy batch path and the ``REPRO_NO_VECTORIZE=1`` scalar reference loops
must agree bit-for-bit on random inputs, so flipping the gate can only
ever change speed.
"""

import json
import random

import pytest

from repro import vec
from repro.cli import main as cli_main
from repro.cpu.tenanalyzer.tensor_filter import detect_streams
from repro.crypto.aes import AES128
from repro.crypto.ctr import CounterModeCipher
from repro.crypto.mac import TensorMacAccumulator, xor_macs
from repro.errors import ConfigError, SchemaVersionError
from repro.mem.mee import FunctionalMee
from repro.npu.config import NpuConfig
from repro.npu.delayed import DelayedVerificationEngine
from repro.npu.systolic import GemmShape, gemm_time, gemm_times
from repro.npu.vn import TensorVnTable
from repro.perf.harness import (
    BENCH_SCHEMA,
    BenchContext,
    compare_reports,
    run_benchmarks,
    validate_report,
)
from repro.perf.registry import BENCH_REGISTRY, BenchRegistry, benchmark
from repro.tensor.dtype import DType
from repro.tensor.registry import TensorRegistry
from repro.units import CACHELINE_BYTES, MiB

LINE = CACHELINE_BYTES
KEY_A = bytes(range(16))
KEY_B = bytes(range(16, 32))

needs_numpy = pytest.mark.skipif(not vec.HAVE_NUMPY, reason="numpy not installed")


# -- the vectorization gate ---------------------------------------------------


class TestVecGate:
    def test_scalar_fallback_context(self):
        was_enabled = vec.enabled()
        with vec.scalar_fallback():
            assert not vec.enabled()
            with vec.scalar_fallback():
                assert not vec.enabled()
            assert not vec.enabled()
        assert vec.enabled() == was_enabled

    def test_env_var_disables(self, monkeypatch):
        monkeypatch.setenv(vec.NO_VECTORIZE_ENV, "1")
        assert not vec.enabled()
        assert vec.mode() == "scalar"
        monkeypatch.setenv(vec.NO_VECTORIZE_ENV, "0")
        assert vec.enabled() == vec.HAVE_NUMPY


# -- scalar/vector parity on random inputs ------------------------------------


@needs_numpy
class TestKernelParity:
    def test_aes_blocks_match_block_loop(self):
        rng = random.Random(1)
        aes = AES128(KEY_A)
        blocks = rng.randbytes(16 * 257)
        expected = b"".join(
            aes.encrypt_block(blocks[i : i + 16]) for i in range(0, len(blocks), 16)
        )
        assert aes.encrypt_blocks(blocks) == expected
        with vec.scalar_fallback():
            assert aes.encrypt_blocks(blocks) == expected

    def test_aes_fips_vector_batched(self):
        aes = AES128(bytes(range(16)))
        block = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        assert aes.encrypt_blocks(block * 8) == expected * 8

    def test_ctr_lines_match_scalar(self, monkeypatch):
        rng = random.Random(2)
        cipher = CounterModeCipher(KEY_A)
        pas = [rng.randrange(1 << 48) * LINE for _ in range(63)]
        vns = [rng.randrange(1 << 56) for _ in pas]
        data = rng.randbytes(len(pas) * LINE)
        vectorized = cipher.encrypt_lines(data, pas, vns)
        monkeypatch.setenv(vec.NO_VECTORIZE_ENV, "1")
        assert cipher.keystream_lines(pas, vns) == b"".join(
            cipher.keystream(pa, vn) for pa, vn in zip(pas, vns)
        )
        scalar = cipher.encrypt_lines(data, pas, vns)
        assert vectorized == scalar
        # XOR is an involution either way.
        monkeypatch.delenv(vec.NO_VECTORIZE_ENV)
        assert cipher.decrypt_lines(vectorized, pas, vns) == data

    def test_xor_macs_matches_fold(self):
        rng = random.Random(3)
        macs = [rng.randrange(1 << 56) for _ in range(999)]
        with vec.scalar_fallback():
            expected = xor_macs(macs)
        assert xor_macs(macs) == expected
        assert xor_macs(iter(macs)) == expected
        assert xor_macs([]) == 0

    def test_batch_apis_reject_mismatched_lengths(self):
        from repro.crypto.mac import MacEngine

        engine = MacEngine(KEY_B)
        cipher = CounterModeCipher(KEY_A)
        with pytest.raises(ConfigError):
            engine.line_macs(bytes(2 * LINE), LINE, [0, LINE], [1])
        with pytest.raises(ConfigError):
            cipher.encrypt_lines(bytes(2 * LINE), [0, LINE], [1])
        with pytest.raises(ConfigError):
            cipher.keystream_lines([0, LINE], [1])

    def test_accumulator_absorb_many(self):
        rng = random.Random(4)
        macs = [rng.randrange(1 << 56) for _ in range(64)]
        one_by_one = TensorMacAccumulator(expected_lines=64)
        for mac in macs:
            one_by_one.absorb(mac)
        batched = TensorMacAccumulator(expected_lines=64)
        batched.absorb_many(macs)
        assert (batched.value, batched.complete) == (one_by_one.value, True)

    def test_mee_bulk_matches_per_line(self):
        rng = random.Random(5)
        vaddrs = [i * LINE for i in range(40)]
        payload = rng.randbytes(len(vaddrs) * LINE)

        def populate(bulk: bool) -> FunctionalMee:
            mee = FunctionalMee(KEY_A, KEY_B, protected_bytes=1 * MiB)
            if bulk:
                mee.write_lines(vaddrs, payload, vn=None)
            else:
                for i, vaddr in enumerate(vaddrs):
                    mee.write_line(vaddr, payload[i * LINE : (i + 1) * LINE])
            return mee

        bulk = populate(bulk=True)
        with vec.scalar_fallback():
            reference = populate(bulk=False)
        assert bulk.vn_store == reference.vn_store
        assert bulk.mac_store == reference.mac_store
        for vaddr in vaddrs:
            assert bulk.snoop(vaddr) == reference.snoop(vaddr)
        assert bulk.read_lines(vaddrs) == payload
        with vec.scalar_fallback():
            assert bulk.read_lines(vaddrs) == payload
        assert bulk.line_macs_of(vaddrs, vn=1) == [
            reference.line_mac_of(vaddr, vn=1) for vaddr in vaddrs
        ]

    def test_mee_bulk_read_still_detects_tamper(self):
        mee = FunctionalMee(KEY_A, KEY_B, protected_bytes=1 * MiB)
        vaddrs = [i * LINE for i in range(8)]
        mee.write_lines(vaddrs, bytes(len(vaddrs) * LINE))
        mee.tamper_ciphertext(vaddrs[3], flip_bit=7)
        from repro.errors import IntegrityError

        with pytest.raises(IntegrityError):
            mee.read_lines(vaddrs)

    def test_delayed_engine_parity(self):
        def roundtrip() -> bytes:
            registry = TensorRegistry(base_va=0x4200_0000_0000)
            mee = FunctionalMee(
                KEY_A, KEY_B, with_merkle=False, protected_bytes=1 * MiB
            )
            engine = DelayedVerificationEngine(
                NpuConfig(), mee, TensorVnTable(registry)
            )
            tensor = registry.allocate("t", (300,), DType.FP32)
            payload = bytes(i % 251 for i in range(tensor.nbytes))
            engine.write_tensor(tensor, payload)
            data = engine.read_tensor_delayed(tensor)
            assert engine.poll_verification() == []
            return data

        vectorized = roundtrip()
        with vec.scalar_fallback():
            assert roundtrip() == vectorized

    def test_detect_streams_parity(self):
        rng = random.Random(6)
        vaddrs, vns = [], []
        va = 0
        for _ in range(200):
            run = rng.randrange(1, 12)
            vn = rng.randrange(1, 50)
            for i in range(run):
                vaddrs.append(va + i * LINE)
                vns.append(vn)
            va += (run + rng.randrange(0, 3)) * LINE
        vectorized = detect_streams(vaddrs, vns, min_run=4)
        with vec.scalar_fallback():
            scalar = detect_streams(vaddrs, vns, min_run=4)
        assert vectorized == scalar
        assert all(vn > 0 for _, vn in vectorized)
        assert detect_streams([], [], min_run=4) == []

    def test_prime_from_trace_matches_filter_detection(self):
        from repro.cpu.tenanalyzer.analyzer import ReadKind, TenAnalyzer
        from repro.sim.trace import MemAccess

        def trace():
            vaddrs, vns = [], []
            for t in range(3):
                base = 0x100000 + t * 0x10000
                for i in range(16):
                    vaddrs.append(base + i * LINE)
                    vns.append(t + 1)
            return vaddrs, vns

        vaddrs, vns = trace()
        primed = TenAnalyzer(enabled=True)
        assert primed.prime_from_trace(vaddrs, vns) == 3
        assert primed.table.n_entries == 3
        # Every primed line now answers reads on-chip, VN intact.
        for vaddr, vn in zip(vaddrs, vns):
            result = primed.on_read(MemAccess(vaddr=vaddr))
            assert result.kind is ReadKind.HIT_IN
            assert result.vn == vn

        # vns=None reads the off-chip store (read_many path).
        offchip = TenAnalyzer(enabled=True)
        for vaddr, vn in zip(vaddrs, vns):
            offchip.vn_store.set(vaddr, vn)
        assert offchip.prime_from_trace(vaddrs) == 3
        assert offchip.stats["trace_primes"] == 3

        disabled = TenAnalyzer(enabled=False)
        assert disabled.prime_from_trace(vaddrs, vns) == 0

    def test_gemm_times_parity(self):
        rng = random.Random(7)
        config = NpuConfig()
        shapes = [
            GemmShape(rng.randrange(1, 5000), rng.randrange(1, 5000), rng.randrange(1, 5000))
            for _ in range(100)
        ]
        vectorized = gemm_times(config, shapes)
        assert vectorized == [gemm_time(config, shape) for shape in shapes]
        with vec.scalar_fallback():
            assert gemm_times(config, shapes) == vectorized


# -- bench registry ------------------------------------------------------------


class TestBenchRegistry:
    def test_registered_benchmarks_load(self):
        specs = BENCH_REGISTRY.specs()
        assert len(specs) >= 6
        assert len({s.name for s in specs}) == len(specs)
        paired = [s for s in specs if s.paired]
        assert len(paired) >= 5

    def test_duplicate_name_rejected(self):
        registry = BenchRegistry()

        @benchmark("dup", registry=registry)
        def first(ctx):  # pragma: no cover - factory never run
            return lambda: None

        with pytest.raises(ConfigError):

            @benchmark("dup", registry=registry)
            def second(ctx):  # pragma: no cover - factory never run
                return lambda: None

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError):
            BENCH_REGISTRY.get("no_such_benchmark")

    def test_select_by_tag(self):
        crypto = BENCH_REGISTRY.select(tags=["crypto"])
        assert crypto and all("crypto" in s.tags for s in crypto)

    def test_clear_then_load_all_re_registers(self):
        before = {s.name for s in BENCH_REGISTRY.specs()}
        try:
            BENCH_REGISTRY.clear()
            assert {s.name for s in BENCH_REGISTRY.specs()} == before
        finally:
            if not BENCH_REGISTRY.specs():  # pragma: no cover - safety net
                BENCH_REGISTRY.clear()
                BENCH_REGISTRY.load_all()


# -- harness -------------------------------------------------------------------


def _tiny_registry() -> BenchRegistry:
    registry = BenchRegistry()

    @benchmark("tiny.fold", registry=registry)
    def fold(ctx: BenchContext):
        macs = [ctx.rng.randrange(1 << 56) for _ in range(ctx.n(64))]
        ctx.items = len(macs)
        return lambda: xor_macs(macs)

    registry._loaded = True  # no modules to import
    return registry


class TestHarness:
    def test_report_shape_and_validation(self):
        registry = _tiny_registry()
        report = run_benchmarks(registry.specs(), quick=True)
        assert validate_report(report) == []
        record = report["benchmarks"][0]
        assert record["name"] == "tiny.fold"
        assert set(record["modes"]) == {"vector", "scalar"}
        assert record["speedup"] is not None
        for stats in record["modes"].values():
            assert stats["p10_s"] <= stats["median_s"] <= stats["p90_s"]
            assert stats["throughput_items_per_s"] > 0

    def test_validate_rejects_garbage(self):
        with pytest.raises(SchemaVersionError):
            validate_report({})
        with pytest.raises(SchemaVersionError) as excinfo:
            validate_report({"schema": 99, "kind": "repro-bench"})
        assert excinfo.value.expected == BENCH_SCHEMA
        assert excinfo.value.found == 99
        assert validate_report({"schema_version": BENCH_SCHEMA, "kind": "nope"}) != []

    def test_validate_rejects_pre_versioned_documents(self):
        # A v1 report (written before the schema_version field existed)
        # must fail loudly, naming the version it carries.
        with pytest.raises(SchemaVersionError, match="schema version 1"):
            validate_report({"schema": 1, "kind": "repro-bench"})

    def test_compare_flags_regressions(self):
        registry = _tiny_registry()
        report = run_benchmarks(registry.specs(), quick=True)
        same_lines, same_regressions = compare_reports(report, report, threshold=1.25)
        assert not same_regressions
        assert any("ok" in line for line in same_lines)
        # A baseline that was 100x faster makes the current run a regression.
        faster = json.loads(json.dumps(report))
        for record in faster["benchmarks"]:
            for stats in record["modes"].values():
                stats["median_s"] /= 100.0
        _, regressions = compare_reports(report, faster, threshold=1.25)
        assert regressions and all(r.ratio > 1.25 for r in regressions)

    def test_compare_tolerates_suite_growth(self):
        registry = _tiny_registry()
        report = run_benchmarks(registry.specs(), quick=True)
        baseline = {"schema_version": BENCH_SCHEMA, "quick": True, "benchmarks": []}
        lines, regressions = compare_reports(report, baseline, threshold=1.25)
        assert not regressions
        assert any("no baseline" in line for line in lines)

    def test_compare_rejects_quick_mode_mismatch(self):
        registry = _tiny_registry()
        report = run_benchmarks(registry.specs(), quick=True)
        full_baseline = json.loads(json.dumps(report))
        full_baseline["quick"] = False
        with pytest.raises(ConfigError):
            compare_reports(report, full_baseline, threshold=1.25)

    def test_compare_skips_changed_work_sizes(self):
        registry = _tiny_registry()
        report = run_benchmarks(registry.specs(), quick=True)
        resized = json.loads(json.dumps(report))
        for record in resized["benchmarks"]:
            record["items"] *= 2
            for stats in record["modes"].values():
                stats["median_s"] /= 100.0  # would regress if compared
        lines, regressions = compare_reports(report, resized, threshold=1.25)
        assert not regressions
        assert any("work size changed" in line for line in lines)


# -- CLI -----------------------------------------------------------------------


class TestBenchCli:
    def test_quick_round_trips_valid_json(self, tmp_path):
        out = tmp_path / "bench.json"
        code = cli_main(
            ["bench", "--quick", "-q", "--only", "crypto.mac_fold", "--json", str(out)]
        )
        assert code == 0
        report = json.loads(out.read_text())
        assert validate_report(report) == []
        names = [record["name"] for record in report["benchmarks"]]
        assert names == ["crypto.mac_fold"]

    def test_compare_exits_nonzero_on_injected_regression(self, tmp_path):
        out = tmp_path / "bench.json"
        assert (
            cli_main(["bench", "--quick", "-q", "--only", "crypto.mac_fold",
                      "--json", str(out)])
            == 0
        )
        report = json.loads(out.read_text())
        for record in report["benchmarks"]:
            for stats in record["modes"].values():
                stats["median_s"] /= 1000.0
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(report))
        code = cli_main(
            ["bench", "--quick", "-q", "--only", "crypto.mac_fold",
             "--json", str(out), "--compare", str(baseline), "--threshold", "1.25"]
        )
        assert code == 1

    def test_compare_passes_against_self(self, tmp_path):
        out = tmp_path / "bench.json"
        baseline = tmp_path / "baseline.json"
        assert (
            cli_main(["bench", "--quick", "-q", "--only", "crypto.mac_fold",
                      "--json", str(baseline)])
            == 0
        )
        code = cli_main(
            ["bench", "--quick", "-q", "--only", "crypto.mac_fold",
             "--json", str(out), "--compare", str(baseline), "--threshold", "100"]
        )
        assert code == 0

    def test_compare_against_stale_schema_baseline_exits_2(self, tmp_path):
        out = tmp_path / "bench.json"
        stale = tmp_path / "baseline.json"
        stale.write_text(json.dumps({"schema": 1, "kind": "repro-bench",
                                     "quick": True, "benchmarks": []}))
        code = cli_main(
            ["bench", "--quick", "-q", "--only", "crypto.mac_fold",
             "--json", str(out), "--compare", str(stale)]
        )
        assert code == 2

    def test_committed_baseline_is_schema_valid(self):
        import os

        path = os.path.join(os.path.dirname(__file__), "..", "benchmarks", "baseline.json")
        with open(path, "r", encoding="utf-8") as f:
            baseline = json.load(f)
        assert validate_report(baseline) == []
        speedups = [
            record["speedup"]
            for record in baseline["benchmarks"]
            if record["speedup"] is not None
        ]
        # The acceptance bar: at least two vectorized kernels at >= 3x.
        if vec.HAVE_NUMPY:
            assert sum(1 for s in speedups if s >= 3.0) >= 2

    def test_missing_baseline_is_a_usage_error(self, tmp_path):
        out = tmp_path / "bench.json"
        code = cli_main(
            ["bench", "--quick", "-q", "--only", "crypto.mac_fold",
             "--json", str(out), "--compare", str(tmp_path / "nope.json")]
        )
        assert code == 2

    def test_list_flag(self, capsys):
        assert cli_main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "crypto.ctr_keystream" in out
