"""The worker-fleet layer: leases, fan-out, compaction, ``repro worker``.

Covers the lease lifecycle at the store level (claim / heartbeat /
expire / complete), journal compaction on recovery, sweep fan-out into
shard jobs with a server-side merge, the in-process :class:`Worker`
loop, and — as a subprocess crash test — a worker SIGKILLed mid-lease
whose job re-enqueues and is completed byte-identically by a second
worker.
"""

import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.errors import ConfigError, ServiceError
from repro.eval.journal import (
    JOB_DONE,
    JOB_FAILED,
    JOB_RUNNING,
    JOB_SUBMITTED,
    read_journal,
)
from repro.eval.orchestrator import Orchestrator
from repro.serve import schema
from repro.serve.client import ServeClient
from repro.serve.execution import execute_job
from repro.serve.server import JobService
from repro.serve.store import JobStore
from repro.serve.worker import Worker

from test_serve import (  # noqa: F401  (fixtures)
    REPO,
    results_env,
    service,
    submit_experiment,
    sweeps_env,
)


def wait_until(predicate, timeout=60.0, interval=0.05, message="condition"):
    deadline = time.monotonic() + timeout
    while True:
        value = predicate()
        if value:
            return value
        if time.monotonic() > deadline:
            raise AssertionError(f"timed out after {timeout}s waiting for {message}")
        time.sleep(interval)


class TestStoreLeases:
    def test_claim_journals_the_lease(self, results_env):
        store = JobStore(str(results_env / "queue"))
        store.submit({"task": "bench", "quick": True, "only": None}, fingerprint="fp")
        record = store.claim(worker="w1", lease_ttl=30.0)
        assert record.status == JOB_RUNNING and record.worker == "w1"
        assert record.lease_ttl == 30.0 and record.lease_expires_at > time.time()
        # The lease is durable: a fresh replay sees the same holder.
        again = JobStore(store.root, recover=False).get(record.job_id)
        assert again.worker == "w1" and again.lease_expires_at == record.lease_expires_at

    def test_heartbeat_extends_and_guards_the_lease(self, results_env):
        store = JobStore(str(results_env / "queue"))
        store.submit({"task": "bench", "quick": True, "only": None})
        record = store.claim(worker="w1", lease_ttl=30.0)
        before = record.lease_expires_at
        time.sleep(0.02)
        renewed = store.heartbeat(record.job_id, "w1")
        assert renewed.lease_expires_at > before
        with pytest.raises(ConfigError, match="lease lost"):
            store.heartbeat(record.job_id, "w2")
        # The server's own lease-less claims have nothing to heartbeat.
        store.submit({"task": "bench", "quick": True, "only": None})
        local = store.claim()
        with pytest.raises(ConfigError, match="no lease"):
            store.heartbeat(local.job_id, "")

    def test_expired_lease_requeues_with_attempt_bumped(self, results_env):
        store = JobStore(str(results_env / "queue"))
        store.submit({"task": "bench", "quick": True, "only": None})
        record = store.claim(worker="w1", lease_ttl=0.01)
        time.sleep(0.05)
        (requeued,) = store.expire_leases()
        assert requeued.job_id == record.job_id
        assert requeued.status == JOB_SUBMITTED and requeued.attempt == 1
        assert requeued.worker == "" and requeued.lease_expires_at == 0.0
        # A live lease and a lease-less running job are both left alone.
        second = store.claim(worker="w2", lease_ttl=60.0)
        assert second.attempt == 1  # the re-enqueued job again
        assert store.expire_leases() == []

    def test_lease_attempts_exhaust_into_failure(self, results_env):
        store = JobStore(str(results_env / "queue"))
        store.submit({"task": "bench", "quick": True, "only": None})
        store.claim(worker="w1", lease_ttl=0.01)
        time.sleep(0.05)
        (dead,) = store.expire_leases(max_attempts=1)
        assert dead.status == JOB_FAILED and dead.error_type == "LeaseExpired"
        assert "lease expired" in dead.error

    def test_finish_requires_the_lease_holder(self, results_env):
        store = JobStore(str(results_env / "queue"))
        store.submit({"task": "bench", "quick": True, "only": None})
        record = store.claim(worker="w1", lease_ttl=30.0)
        with pytest.raises(ConfigError, match="lease lost"):
            store.finish(record.job_id, JOB_DONE, result={}, worker="w2")
        done = store.finish(record.job_id, JOB_DONE, result={"report": 1}, worker="w1")
        assert done.status == JOB_DONE and done.lease_expires_at == 0.0

    def test_restart_spares_jobs_under_a_live_lease(self, results_env):
        root = str(results_env / "queue")
        store = JobStore(root)
        store.submit({"task": "bench", "quick": True, "only": None})
        leased = store.claim(worker="w1", lease_ttl=60.0)
        store.submit({"task": "bench", "quick": False, "only": None})
        local = store.claim()  # lease-less: a dead server's own execution
        fresh = JobStore(root)  # recover() runs
        assert fresh.get(leased.job_id).status == JOB_RUNNING
        assert fresh.get(leased.job_id).worker == "w1"
        requeued = fresh.get(local.job_id)
        assert requeued.status == JOB_SUBMITTED and requeued.attempt == 1

    def test_tags_route_claims(self, results_env):
        store = JobStore(str(results_env / "queue"))
        tagged = store.submit(
            {"task": "bench", "quick": True, "only": None}, tags=["gpu", "big-mem"]
        )
        assert store.claim(worker="w1", lease_ttl=5.0, tags=[]) is None
        assert store.claim(worker="w1", lease_ttl=5.0, tags=["gpu"]) is None
        record = store.claim(worker="w1", lease_ttl=5.0, tags=["gpu", "big-mem", "x"])
        assert record.job_id == tagged.job_id
        # tags=None is the in-process executor: it matches everything.
        other = store.submit({"task": "bench", "quick": False, "only": None}, tags=["gpu"])
        assert store.claim().job_id == other.job_id


class TestCompaction:
    def test_recover_compacts_to_newest_record_per_job(self, results_env):
        root = str(results_env / "queue")
        store = JobStore(root)
        for _ in range(3):
            record = store.submit({"task": "bench", "quick": True, "only": None})
            store.claim()
            store.finish(record.job_id, JOB_DONE, result={"report": 1})
        assert len(read_journal(store.path).jobs) == 9
        fresh = JobStore(root)
        view = read_journal(fresh.path)
        assert len(view.jobs) == 3  # one line per job survives
        assert view.header is not None and view.header["compactions"] == 1
        assert [r.status for r in view.jobs] == [JOB_DONE] * 3
        assert all(r.result == {"report": 1} for r in view.jobs)

    def test_compaction_is_idempotent_and_preserves_order(self, results_env):
        root = str(results_env / "queue")
        store = JobStore(root)
        first = store.submit({"task": "bench", "quick": True, "only": None}, priority=1)
        second = store.submit({"task": "bench", "quick": False, "only": None})
        store.claim()
        reopened = JobStore(root)  # compacts (claim superseded a submit)
        again = JobStore(root)  # nothing left to compact
        view = read_journal(again.path)
        assert view.header["compactions"] == 1
        assert [r.job_id for r in view.jobs] == [first.job_id, second.job_id]
        # Queue semantics survive both reopenings: the claimed job was
        # requeued (attempt 1) and still outranks the later submission.
        assert again.claim().job_id == first.job_id


    def test_fifo_within_priority_survives_compaction_cycle(self, results_env):
        # Enough finished-job churn to trip live compaction (threshold 2),
        # then a recover() reopen: claim order must still be priority-desc
        # with FIFO inside each priority band.
        root = str(results_env / "queue")
        store = JobStore(root, compact_records=2)
        for i in range(4):
            done = store.submit({"task": "bench", "seed": i}, fingerprint=f"fp{i}")
            store.claim()
            store.finish(done.job_id, JOB_DONE, result={"i": i})
        low = [store.submit({"task": "bench", "lane": i}) for i in range(3)]
        high = [store.submit({"task": "bench", "hot": i}, priority=5) for i in range(2)]
        assert int(read_journal(store.path).header.get("compactions", 0)) >= 1
        reopened = JobStore(root)  # recover + another compaction pass
        claimed = [reopened.claim().job_id for _ in range(5)]
        assert claimed == [r.job_id for r in high + low]


class TestFanoutSchema:
    def test_shards_resolve_and_clamp(self, results_env, sweeps_env):
        spec, _ = schema.validate_submission({"task": "sweep", "spec": "m22", "shards": 3})
        assert spec["shards"] == 3
        spec, _ = schema.validate_submission({"task": "sweep", "spec": "m22", "shards": 9})
        assert spec["shards"] == 4  # clamped to the 2x2 matrix
        spec, _ = schema.validate_submission({"task": "sweep", "spec": "m22", "shards": 1})
        assert "shards" not in spec  # width 1 keeps the spec (and fingerprint) plain
        spec, _ = schema.validate_submission({"task": "sweep", "spec": "m22"}, autosplit=3)
        assert spec["shards"] == 3
        spec, _ = schema.validate_submission(
            {"task": "sweep", "spec": "m22", "limit": 2}, autosplit=3
        )
        assert spec["shards"] == 2  # the limit caps the matrix first

    def test_explicit_shard_slice(self, results_env, sweeps_env):
        spec, _ = schema.validate_submission({"task": "sweep", "spec": "m22", "shard": "2/4"})
        assert spec["shard"] == "2/4" and "shards" not in spec
        spec, _ = schema.validate_submission({"task": "sweep", "spec": "m22", "shard": "1/1"})
        assert "shard" not in spec  # 1/1 is the whole matrix
        with pytest.raises(ConfigError, match="not both"):
            schema.validate_submission(
                {"task": "sweep", "spec": "m22", "shard": "1/2", "shards": 2}
            )
        with pytest.raises(ConfigError, match="K/N"):
            schema.validate_submission({"task": "sweep", "spec": "m22", "shard": "nope"})

    def test_shard_specs_builder(self):
        parent = {"task": "sweep", "spec": "m22", "quick": True, "limit": None, "shards": 3}
        children = schema.shard_specs(parent)
        assert [c["shard"] for c in children] == ["1/3", "2/3", "3/3"]
        assert all("shards" not in c and c["quick"] for c in children)

    def test_claim_and_complete_validation(self):
        worker, ttl, tags = schema.validate_claim({"worker": "w1", "tags": ["b", "a", "a"]})
        assert (worker, ttl, tags) == ("w1", schema.DEFAULT_LEASE_TTL, ["a", "b"])
        with pytest.raises(ConfigError, match="worker"):
            schema.validate_claim({"lease_ttl": 5})
        with pytest.raises(ConfigError, match="lease_ttl"):
            schema.validate_claim({"worker": "w1", "lease_ttl": 0})
        done = schema.validate_complete({"worker": "w1", "ok": True, "result": {"x": 1}})
        assert done["result"] == {"x": 1} and done["elapsed_s"] == 0.0
        with pytest.raises(ConfigError, match="'error'"):
            schema.validate_complete({"worker": "w1", "ok": False})


class TestFanoutStore:
    def _fanout(self, store):
        parent_spec = {"task": "sweep", "spec": "m22", "quick": True, "limit": None, "shards": 2}
        children = [(child, f"fp-{i}") for i, child in enumerate(schema.shard_specs(parent_spec))]
        return store.submit_fanout(parent_spec, children, fingerprint="fp-parent")

    def test_parent_and_children_are_linked(self, results_env):
        store = JobStore(str(results_env / "queue"))
        parent = self._fanout(store)
        children = store.children_of(parent.job_id)
        assert len(children) == 2
        assert all(c.parent == parent.job_id for c in children)
        assert [c.spec["shard"] for c in children] == ["1/2", "2/2"]
        # Only the children are claimable; the parent is the server's.
        claimed = {store.claim(worker="w", lease_ttl=5.0).job_id for _ in range(2)}
        assert claimed == {c.job_id for c in children}
        assert store.claim(worker="w", lease_ttl=5.0) is None
        assert store.get(parent.job_id).status == JOB_SUBMITTED

    def test_fanout_survives_reopen(self, results_env):
        root = str(results_env / "queue")
        parent = self._fanout(JobStore(root))
        fresh = JobStore(root)
        assert [c.spec["shard"] for c in fresh.children_of(parent.job_id)] == ["1/2", "2/2"]


class TestFanoutService:
    def test_sweep_fans_out_and_merges_canonically(
        self, results_env, sweeps_env, service, monkeypatch
    ):
        from repro.eval import sweep as sweep_mod

        # Reference: the same sweep, unsharded, in a separate results tree.
        reference_dir = results_env / "reference"
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(reference_dir))
        reference = sweep_mod.run_sweep(
            sweep_mod.load_spec("m22"), jobs=1, quick=True, verbose=False
        ).document()
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(results_env))

        svc, client = service(workers=1)
        view = client.submit({"task": "sweep", "spec": "m22", "quick": True, "shards": 2})
        assert len(view["children"]) == 2 and view["status"] == JOB_SUBMITTED
        final = client.wait(view["id"], timeout=240)
        assert final["status"] == JOB_DONE
        children = [client.job(cid) for cid in final["children"]]
        assert all(c["status"] == JOB_DONE and c["parent"] == view["id"] for c in children)
        merged = client.result(view["id"])["result"]["document"]
        assert len(merged["points"]) == 4
        assert sweep_mod.canonical_document(merged) == sweep_mod.canonical_document(reference)

    def test_failed_shard_fails_the_parent(self, results_env, sweeps_env, service):
        svc, client = service(workers=1, external_only=True)
        view = client.submit({"task": "sweep", "spec": "m22", "quick": True, "shards": 2})
        child_id = view["children"][0]
        answer = client.claim("w1", lease_ttl=30.0)
        claimed = answer["job"]
        client.complete(claimed["id"], "w1", ok=False, error="boom", error_type="RuntimeError")
        # The other child completes fine; the parent still fails.
        other = client.claim("w1", lease_ttl=30.0)["job"]
        client.complete(other["id"], "w1", ok=True, result={"task": "sweep"})
        final = client.wait(view["id"], timeout=60)
        assert final["status"] == JOB_FAILED
        assert "shard jobs did not complete" in final["error"]
        assert child_id in {claimed["id"], other["id"]}

    def test_autosplit_applies_to_plain_submissions(self, results_env, sweeps_env, service):
        svc, client = service(workers=1, external_only=True, autosplit=4)
        view = client.submit({"task": "sweep", "spec": "m22", "quick": True})
        assert len(view["children"]) == 4


class TestLeaseWire:
    def test_claim_heartbeat_complete_round_trip(self, results_env, service):
        svc, client = service(workers=1, external_only=True)
        submitted = submit_experiment(client, "table1_config")
        answer = client.claim("w1", lease_ttl=30.0)
        view = answer["job"]
        assert view["id"] == submitted["id"] and view["worker"] == "w1"
        assert answer["outstanding"] == 1
        renewed = client.heartbeat(view["id"], "w1")
        assert renewed["lease_expires_at"] >= view["lease_expires_at"]
        with pytest.raises(ServiceError) as err:
            client.heartbeat(view["id"], "w2")
        assert err.value.status == 409
        with pytest.raises(ServiceError) as err:
            client.complete(view["id"], "w2", ok=True, result={})
        assert err.value.status == 409
        final = client.complete(view["id"], "w1", ok=True, result={"task": "experiment"})
        assert final["status"] == JOB_DONE
        assert client.claim("w1")["job"] is None

    def test_empty_claim_reports_outstanding_work(self, results_env, service):
        svc, client = service(workers=1, external_only=True)
        assert client.claim("w1") == {"job": None, "outstanding": 0, "total": 0}


class TestWorker:
    def test_bad_server_argument_exits_2_cleanly(self, capsys):
        # ``repro worker --server localhost`` (no port) must exit 2 with
        # a HOST:PORT hint on stderr, not an int() traceback.
        from repro.cli import main

        assert main(["worker", "--server", "localhost"]) == 2
        captured = capsys.readouterr()
        assert "HOST:PORT" in captured.err
        assert "'localhost'" in captured.err
        assert "Traceback" not in captured.err + captured.out

    def test_worker_drains_the_queue_once(self, results_env, service):
        svc, client = service(workers=1, external_only=True)
        a = submit_experiment(client, "table1_config")
        b = submit_experiment(client, "fig03_adam_slowdown")
        worker = Worker(
            port=svc.port, worker_id="w1", lease_ttl=30.0, jobs=1, once=True, verbose=False
        )
        assert worker.run() == 0
        for view in (client.job(a["id"]), client.job(b["id"])):
            assert view["status"] == JOB_DONE and view["worker"] == "w1"
        result = client.result(a["id"])["result"]
        assert os.path.isfile(result["artifact"])

    def test_prewarmed_worker_waits_for_first_submission(self, results_env, service):
        """A --once worker started before any submission must not exit
        immediately on the empty queue (the fleet lane pre-warms workers
        first, then submits) — it drains only once work has existed."""
        svc, client = service(workers=1, external_only=True)
        worker = Worker(
            port=svc.port, worker_id="early", lease_ttl=30.0, jobs=1, once=True, verbose=False
        )
        done = {}
        thread = threading.Thread(target=lambda: done.setdefault("code", worker.run()))
        thread.start()
        try:
            time.sleep(0.5)
            assert thread.is_alive(), "worker drain-exited before any job was ever submitted"
            submitted = submit_experiment(client, "table1_config")
            thread.join(timeout=60)
            assert not thread.is_alive() and done["code"] == 0
            view = client.job(submitted["id"])
            assert view["status"] == JOB_DONE and view["worker"] == "early"
        finally:
            worker.request_stop()
            thread.join(timeout=10)

    def test_worker_reports_job_failures(self, results_env, sweeps_env, service):
        svc, client = service(workers=1, external_only=True)
        bad = client.submit({"task": "sweep", "spec": "m22", "quick": True, "limit": 1})
        # Sabotage: the spec vanishes between submit and execution.
        (sweeps_env / "m22.toml").unlink()
        worker = Worker(
            port=svc.port, worker_id="w1", lease_ttl=30.0, jobs=1, once=True, verbose=False
        )
        assert worker.run() == 1
        view = client.job(bad["id"])
        assert view["status"] == JOB_FAILED and view["error_type"] == "ConfigError"


class TestWorkerCrashRecovery:
    def _worker_args(self, port, worker_id, lease_ttl="1"):
        return [
            sys.executable,
            "-m",
            "repro",
            "worker",
            "--server",
            f"127.0.0.1:{port}",
            "--lease-ttl",
            lease_ttl,
            "--jobs",
            "1",
            "--once",
            "--poll",
            "0.1",
            "--id",
            worker_id,
            "--quiet",
        ]

    def test_sigkill_mid_lease_requeues_and_second_worker_completes(
        self, results_env, service, monkeypatch
    ):
        """The satellite crash test: a worker dies holding a lease."""
        svc, client = service(workers=1, external_only=True)
        submitted = submit_experiment(client, "table1_config")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(REPO, "src")] + env.get("PYTHONPATH", "").split(os.pathsep)
        ).rstrip(os.pathsep)
        # The doomed worker claims, heartbeats, but never starts executing.
        env["REPRO_WORKER_HOLD_S"] = "120"
        doomed = subprocess.Popen(self._worker_args(svc.port, "doomed"), env=env, cwd=REPO)
        try:
            view = wait_until(
                lambda: (lambda v: v if v["worker"] == "doomed" else None)(
                    client.job(submitted["id"])
                ),
                message="the doomed worker to claim the job",
            )
            assert view["status"] == JOB_RUNNING and view["lease_expires_at"] > 0
        finally:
            doomed.send_signal(signal.SIGKILL)
            doomed.wait(timeout=30)
        # Heartbeats stopped: the supervisor reaps the lease and requeues.
        requeued = wait_until(
            lambda: (lambda v: v if v["status"] == JOB_SUBMITTED else None)(
                client.job(submitted["id"])
            ),
            message="the lease to expire and the job to requeue",
        )
        assert requeued["worker"] == "" and requeued["attempts"] == 1
        rescuer = Worker(
            port=svc.port, worker_id="rescuer", lease_ttl=30.0, jobs=1, once=True, verbose=False
        )
        assert rescuer.run() == 0
        final = client.job(submitted["id"])
        assert final["status"] == JOB_DONE and final["worker"] == "rescuer"
        assert final["attempts"] == 2  # the doomed claim burned attempt 1
        artifact = client.result(submitted["id"])["result"]["artifact"]
        with open(artifact, "rb") as f:
            rescued_bytes = f.read()
        # Byte-identical to the same job executed in a pristine tree.
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(results_env / "pristine"))
        orch = Orchestrator(jobs=1, verbose=False)
        ok, result, _, _ = execute_job("experiment", dict(final["spec"]), orch)
        assert ok
        with open(result["artifact"], "rb") as f:
            assert f.read() == rescued_bytes
