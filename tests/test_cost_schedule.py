"""The learned cost model, the schedule solver, and cost-balanced sweeps.

Covers :mod:`repro.eval.cost` (history ingestion, fallback chain, static
priors), :mod:`repro.eval.schedule` (LPT-with-round-robin-guard solver,
``schedule.json`` document, validation), ``--balance cost`` sweeps, the
``repro sched plan`` CLI, and serve-side fan-out sizing via
``--autosplit-min-seconds``.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.errors import ConfigError
from repro.eval import sweep as sweep_mod
from repro.eval.cost import (
    SOURCE_EXPERIMENT,
    SOURCE_POINT,
    SOURCE_PRIOR,
    STATIC_PRIORS,
    CostModel,
)
from repro.eval.journal import PointRecord, RunJournal
from repro.eval.schedule import (
    PointTask,
    check_schedule,
    fill_actuals,
    lpt_assignment,
    makespan,
    plan,
    read_schedule,
    round_robin_assignment,
    round_robin_makespan,
    solve_assignment,
    write_schedule,
)
from repro.eval.sweep import run_sweep, spec_from_dict

from test_serve import (  # noqa: F401  (fixtures)
    service,
    sweeps_env,
)

#: The skewed matrix used throughout: per-point costs 1, 2, 4, 8 on two
#: slots. LPT packs {8} | {4, 2, 1} for makespan 8; round-robin packs
#: {1, 4} | {2, 8} for makespan 10 — strictly worse.
SKEWED_COSTS = [1.0, 2.0, 4.0, 8.0]

MAC_2X2 = {
    "name": "cost2x2",
    "experiment": "mac_policy",
    "description": "cost-balanced unit-test matrix",
    "axes": [
        {"param": "granule_bytes", "values": [64, 256]},
        {"param": "policy", "values": ["eager", "delayed"]},
    ],
    "metrics": [{"name": "perf", "path": "perf_overhead"}],
}


@pytest.fixture
def results_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    return tmp_path


class TestCostModel:
    def test_static_priors_strictly_ordered(self):
        # The orchestrator's history-free fallback relies on this strict
        # ordering — the pre-fix binary sort left medium tied with fast.
        assert STATIC_PRIORS["slow"] > STATIC_PRIORS["medium"] > STATIC_PRIORS["fast"]
        model = CostModel()
        slow = model.predict("never-ran", cost_class="slow")
        medium = model.predict("never-ran", cost_class="medium")
        fast = model.predict("never-ran", cost_class="fast")
        assert slow.seconds > medium.seconds > fast.seconds
        assert {slow.source, medium.source, fast.source} == {SOURCE_PRIOR}
        assert slow.samples == 0

    def test_fallback_chain_point_experiment_prior(self):
        model = CostModel()
        model.observe("exp", {"a": 1}, 4.0)
        point = model.predict("exp", {"a": 1})
        assert point.source == SOURCE_POINT and point.seconds == 4.0
        sibling = model.predict("exp", {"a": 2})
        assert sibling.source == SOURCE_EXPERIMENT and sibling.seconds == 4.0
        unknown = model.predict("other", cost_class="slow")
        assert unknown.source == SOURCE_PRIOR
        assert unknown.seconds == STATIC_PRIORS["slow"]

    def test_median_estimator_resists_outliers(self):
        model = CostModel()
        for elapsed in (1.0, 2.0, 90.0):
            model.observe("exp", {}, elapsed)
        assert model.predict("exp", {}).seconds == 2.0

    def test_ewma_estimator_weights_recent(self):
        model = CostModel(estimator="ewma", ewma_alpha=0.5)
        model.observe("exp", {}, 2.0, ts=1.0)
        model.observe("exp", {}, 10.0, ts=2.0)
        assert model.predict("exp", {}).seconds == pytest.approx(6.0)

    def test_window_drops_ancient_samples(self):
        model = CostModel(window=2)
        model.observe("exp", {}, 100.0, ts=1.0)
        model.observe("exp", {}, 1.0, ts=2.0)
        model.observe("exp", {}, 3.0, ts=3.0)
        assert model.predict("exp", {}).seconds == 2.0

    def test_nonpositive_elapsed_dropped(self):
        model = CostModel()
        model.observe("exp", {}, 0.0)
        model.observe("exp", {}, -1.0)
        assert model.sample_count() == 0
        assert model.predict("exp", {}).source == SOURCE_PRIOR

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"estimator": "mean"},
            {"ewma_alpha": 0.0},
            {"ewma_alpha": 1.5},
            {"window": 0},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            CostModel(**kwargs)

    def test_from_results_ingests_manifest_and_journals(self, results_env):
        (results_env / "manifest.json").write_text(
            json.dumps(
                {
                    "generated_at": "2026-08-08T00:00:00",
                    "experiments": [
                        {
                            "experiment": "exp_a",
                            "params": {"n": 1},
                            "status": "executed",
                            "elapsed_s": 3.0,
                        },
                        {"experiment": "exp_a", "status": "failed", "elapsed_s": 9.0},
                        {"experiment": "exp_b", "status": "cached", "elapsed_s": 0.0},
                    ],
                }
            )
        )
        journal_dir = results_env / "sweeps" / "s1"
        journal = RunJournal.start(str(journal_dir / "journal.jsonl"), header={"sweep": "s1"})
        journal.append(
            PointRecord(
                label="sweeps/s1/points/p0",
                experiment="exp_b",
                key="k0",
                seed=0,
                status="executed",
                params={"n": 2},
                elapsed_s=7.0,
                ts=10.0,
            )
        )
        journal.append(
            PointRecord(
                label="sweeps/s1/points/p1",
                experiment="exp_b",
                key="k1",
                seed=0,
                status="failed",
                elapsed_s=5.0,
                ts=11.0,
            )
        )
        # A torn sibling journal must be skipped, not fail the build.
        torn = results_env / "sweeps" / "s2"
        torn.mkdir(parents=True)
        (torn / "journal.jsonl").write_text('{"kind": "point", "half a re')

        model = CostModel.from_results(root=str(results_env))
        assert model.predict("exp_a", {"n": 1}).seconds == 3.0
        assert model.predict("exp_a", {"n": 1}).source == SOURCE_POINT
        # Failed rows and zero-elapsed cached rows contribute nothing.
        assert model.predict("exp_b", {"n": 2}).seconds == 7.0
        assert model.sample_count() == 2


class TestSolver:
    costs = st.lists(
        st.floats(min_value=0.0, max_value=1e4, allow_nan=False, allow_infinity=False),
        max_size=40,
    )
    slots = st.integers(min_value=1, max_value=8)

    @settings(max_examples=200, deadline=None)
    @given(costs=costs, slots=slots)
    def test_every_point_assigned_exactly_once(self, costs, slots):
        assignment = solve_assignment(costs, slots)
        assert len(assignment) == len(costs)
        assert all(0 <= slot < slots for slot in assignment)

    @settings(max_examples=100, deadline=None)
    @given(costs=costs, slots=slots)
    def test_deterministic_for_fixed_input(self, costs, slots):
        assert solve_assignment(costs, slots) == solve_assignment(list(costs), slots)
        assert lpt_assignment(costs, slots) == lpt_assignment(list(costs), slots)

    @settings(max_examples=200, deadline=None)
    @given(costs=costs, slots=slots)
    def test_never_worse_than_round_robin(self, costs, slots):
        planned = makespan(costs, solve_assignment(costs, slots), slots)
        assert planned <= round_robin_makespan(costs, slots) + 1e-9

    def test_lpt_counterexample_falls_back_to_round_robin(self):
        # LPT is a 4/3 approximation, not universally <= round-robin:
        # on [2, 3, 2, 3, 2] x 2 slots LPT packs to makespan 7 while
        # round-robin packs to 6. The guard must pick round-robin.
        costs = [2.0, 3.0, 2.0, 3.0, 2.0]
        assert makespan(costs, lpt_assignment(costs, 2), 2) == 7.0
        assert round_robin_makespan(costs, 2) == 6.0
        assert solve_assignment(costs, 2) == round_robin_assignment(5, 2)

    def test_skewed_matrix_strictly_beats_round_robin(self):
        planned = makespan(SKEWED_COSTS, solve_assignment(SKEWED_COSTS, 2), 2)
        assert planned == 8.0
        assert round_robin_makespan(SKEWED_COSTS, 2) == 10.0

    def test_invalid_slots_rejected(self):
        with pytest.raises(ConfigError):
            solve_assignment([1.0], 0)
        with pytest.raises(ConfigError):
            round_robin_assignment(3, 0)


def skewed_plan(slots=2):
    """A plan over four points whose learned costs are SKEWED_COSTS."""
    model = CostModel()
    tasks = []
    for index, cost in enumerate(SKEWED_COSTS):
        params = {"n": index}
        model.observe("exp", params, cost)
        tasks.append(
            PointTask(
                label=f"sweeps/s/points/p{index}",
                experiment="exp",
                point=f"p{index}",
                params=params,
            )
        )
    return plan(tasks, model, slots, sweep="s", experiment="exp"), tasks


class TestScheduleDocument:
    def test_plan_document_validates(self):
        solved, tasks = skewed_plan()
        assert solved.predicted_makespan() == 8.0
        assert solved.baseline_makespan() == 10.0
        document = solved.document()
        check_schedule(document, expected_labels=[t.label for t in tasks])
        assert document["n_points"] == 4
        assert document["cost_sources"] == {SOURCE_POINT: 4}
        assert document["predicted_makespan_s"] < document["round_robin_makespan_s"]

    def test_write_read_round_trip(self, tmp_path):
        solved, _ = skewed_plan()
        path = str(tmp_path / "schedule.json")
        solved.write(path)
        assert read_schedule(path) == solved.document()
        # Deterministic bytes: rewriting the same plan changes nothing.
        before = open(path, "rb").read()
        write_schedule(path, solved.document())
        assert open(path, "rb").read() == before

    def test_read_schedule_missing_or_junk(self, tmp_path):
        with pytest.raises(ConfigError, match="no schedule"):
            read_schedule(str(tmp_path / "absent.json"))
        junk = tmp_path / "junk.json"
        junk.write_text("{not json")
        with pytest.raises(ConfigError, match="unparseable"):
            read_schedule(str(junk))

    def test_fill_actuals_partial_then_complete(self):
        solved, tasks = skewed_plan()
        document = solved.document()
        partial = fill_actuals(document, {tasks[0].label: 1.5})
        assert partial["actual"]["filled"] is False
        assert partial["actual"]["makespan_s"] == 1.5
        # The source document is untouched (fill_actuals copies).
        assert document["actual"] == {"filled": False, "makespan_s": None}
        complete = fill_actuals(
            document, {task.label: cost for task, cost in zip(tasks, SKEWED_COSTS)}
        )
        assert complete["actual"] == {"filled": True, "makespan_s": 8.0}
        for slot_plan in complete["slot_plan"]:
            assert slot_plan["actual_s"] == sum(p["actual_s"] for p in slot_plan["points"])

    def test_check_schedule_rejects_defects(self):
        solved, tasks = skewed_plan()
        good = solved.document()

        wrong_kind = json.loads(json.dumps(good))
        wrong_kind["kind"] = "not-a-schedule"
        with pytest.raises(ConfigError, match="not a schedule"):
            check_schedule(wrong_kind)

        duplicated = json.loads(json.dumps(good))
        point = duplicated["slot_plan"][0]["points"][0]
        duplicated["slot_plan"][1]["points"].append(dict(point))
        with pytest.raises(ConfigError, match="more than once"):
            check_schedule(duplicated)

        short = json.loads(json.dumps(good))
        short["slot_plan"][1]["points"].pop()
        with pytest.raises(ConfigError, match="header says"):
            check_schedule(short)

        mislabeled = json.loads(json.dumps(good))
        with pytest.raises(ConfigError, match="point set mismatch"):
            check_schedule(mislabeled, expected_labels=["some/other/label"] * 4)

        worse = json.loads(json.dumps(good))
        worse["round_robin_makespan_s"] = 1.0
        with pytest.raises(ConfigError, match="exceeds round-robin"):
            check_schedule(worse)

        inconsistent = json.loads(json.dumps(good))
        inconsistent["predicted_makespan_s"] = 0.25
        with pytest.raises(ConfigError, match="busiest slot"):
            check_schedule(inconsistent)


class TestCostBalancedSharding:
    def test_shards_disjoint_and_complete(self, results_env):
        spec = spec_from_dict(MAC_2X2)
        points = sweep_mod.expand(spec)
        model = CostModel()
        for point, cost in zip(points, SKEWED_COSTS):
            model.observe(spec.experiment, point.params, cost)
        slices = [
            sweep_mod.shard_points_cost(points, sweep_mod.parse_shard(f"{k}/2"), spec, model)
            for k in (1, 2)
        ]
        ids = [sorted(p.point_id for p in s) for s in slices]
        assert not set(ids[0]) & set(ids[1])
        assert sorted(ids[0] + ids[1]) == sorted(p.point_id for p in points)
        # The skewed solve isolates the 8s point; round-robin would not.
        assert {len(ids[0]), len(ids[1])} == {1, 3}
        assert sweep_mod.shard_points_cost(points, None, spec, model) == list(points)


class TestSweepBalanceCost:
    def test_run_sweep_emits_validated_schedule(self, results_env):
        spec = spec_from_dict(MAC_2X2)
        result = run_sweep(spec, jobs=1, verbose=False, balance="cost")
        assert result.ok
        schedule_path = results_env / "sweeps" / spec.name / "schedule.json"
        document = read_schedule(str(schedule_path))
        labels = [sweep_mod.point_label(spec.name, p.point_id) for p in sweep_mod.expand(spec)]
        check_schedule(document, expected_labels=labels)
        assert document["actual"]["filled"] is True
        assert document["actual"]["makespan_s"] > 0

    def test_invalid_balance_rejected(self, results_env):
        with pytest.raises(ConfigError, match="balance"):
            run_sweep(spec_from_dict(MAC_2X2), jobs=1, verbose=False, balance="magic")


class TestSchedPlanCli:
    def run_plan(self, capsys, *extra):
        assert main(["sched", "plan", "m22", "--slots", "2", *extra]) == 0
        return capsys.readouterr().out

    def test_plan_is_deterministic(self, results_env, sweeps_env, capsys):
        first = self.run_plan(capsys, "--json")
        second = self.run_plan(capsys, "--json")
        assert first == second
        document = json.loads(first)
        check_schedule(document)
        assert document["n_points"] == 4 and document["slots"] == 2
        on_disk = read_schedule(str(results_env / "sweeps" / "m22" / "schedule.json"))
        assert on_disk == document

    def test_plan_summary_lines(self, results_env, sweeps_env, capsys):
        out = self.run_plan(capsys)
        assert "4 point(s) onto 2 slot(s)" in out
        assert "predicted makespan" in out
        assert "schedule:" in out

    def test_plan_unknown_spec_exits_2(self, results_env, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEPS_DIR", str(results_env / "empty"))
        assert main(["sched", "plan", "no-such-sweep"]) == 2
        assert "error:" in capsys.readouterr().err


class TestAutosplitSizing:
    def test_sizing_shrinks_fanout_to_min_seconds(self, results_env, sweeps_env, service):
        # Four fast-prior points predict ~4s of work: at >= 2s per shard
        # the requested width of 4 must shrink to 2 shard jobs.
        svc, client = service(external_only=True, autosplit=4, autosplit_min_s=2.0)
        view = client.submit({"task": "sweep", "spec": "m22", "quick": True})
        assert len(view["children"]) == 2

    def test_sizing_collapses_tiny_sweeps_to_one_job(self, results_env, sweeps_env, service):
        svc, client = service(external_only=True, autosplit=4, autosplit_min_s=1000.0)
        view = client.submit({"task": "sweep", "spec": "m22", "quick": True})
        assert not view.get("children")

    def test_explicit_client_width_is_never_resized(self, results_env, sweeps_env, service):
        svc, client = service(external_only=True, autosplit=4, autosplit_min_s=1000.0)
        view = client.submit({"task": "sweep", "spec": "m22", "quick": True, "shards": 3})
        assert len(view["children"]) == 3

    def test_sizing_off_by_default(self, results_env, sweeps_env, service):
        svc, client = service(external_only=True, autosplit=4)
        view = client.submit({"task": "sweep", "spec": "m22", "quick": True})
        assert len(view["children"]) == 4

    def test_negative_min_seconds_rejected(self, results_env):
        from repro.serve.server import JobService

        with pytest.raises(ConfigError, match="autosplit-min-seconds"):
            JobService(port=0, verbose=False, autosplit_min_s=-1.0)
