"""DH key exchange and attestation."""

import pytest

from repro.crypto.attestation import Attestor, measure
from repro.crypto.keys import DiffieHellman, derive_key
from repro.errors import AttestationError, ConfigError
from repro.tee.enclave import Enclave, TrustDomain, mutual_attestation


class TestDiffieHellman:
    def test_shared_secret_agreement(self):
        a, b = DiffieHellman(seed=11), DiffieHellman(seed=22)
        assert a.shared_secret(b.public) == b.shared_secret(a.public)

    def test_session_keys_symmetric_and_distinct(self):
        a, b = DiffieHellman(seed=1), DiffieHellman(seed=2)
        aes, mac = a.session_keys(b.public)
        assert (aes, mac) == b.session_keys(a.public)
        assert aes != mac

    def test_deterministic_seeding(self):
        assert DiffieHellman(seed=5).public == DiffieHellman(seed=5).public

    def test_rejects_degenerate_peer(self):
        with pytest.raises(ConfigError):
            DiffieHellman(seed=1).shared_secret(1)

    def test_derive_key_length_bounds(self):
        with pytest.raises(ConfigError):
            derive_key(b"s", "label", 0)
        assert len(derive_key(b"s", "label", 32)) == 32


class TestAttestation:
    def test_measurement_depends_on_code_and_config(self):
        assert measure(b"code") != measure(b"code2")
        assert measure(b"code", b"cfg") != measure(b"code", b"cfg2")

    def test_report_verifies(self):
        attestor = Attestor(b"device-key")
        m = measure(b"enclave code")
        report = attestor.report("e1", m)
        attestor.verify(report, m)

    def test_forged_signature_rejected(self):
        attestor = Attestor(b"device-key")
        m = measure(b"enclave code")
        report = attestor.report("e1", m)
        forged = type(report)(report.enclave_name, report.measurement, report.signature ^ 1)
        with pytest.raises(AttestationError):
            attestor.verify(forged, m)

    def test_wrong_measurement_rejected(self):
        attestor = Attestor(b"device-key")
        report = attestor.report("e1", measure(b"tampered code"))
        with pytest.raises(AttestationError):
            attestor.verify(report, measure(b"expected code"))


class TestEnclaveLifecycle:
    def test_mutual_attestation_yields_shared_keys(self):
        domain = TrustDomain()
        cpu = Enclave("cpu", b"cpu code")
        npu = Enclave("npu", b"npu code")
        cpu.create(dh_seed=1)
        npu.create(dh_seed=2)
        cpu_keys, npu_keys = mutual_attestation(cpu, npu, domain)
        assert cpu_keys == npu_keys

    def test_double_create_rejected(self):
        e = Enclave("x", b"code")
        e.create(dh_seed=1)
        from repro.errors import EnclaveError

        with pytest.raises(EnclaveError):
            e.create(dh_seed=1)

    def test_destroy_erases_keys(self):
        e = Enclave("x", b"code")
        e.create(dh_seed=1)
        e.destroy()
        from repro.errors import EnclaveError

        with pytest.raises(EnclaveError):
            _ = e.dh_public
