"""TenAnalyzer dataflows: filter, table, read/write paths, invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.tenanalyzer import TenAnalyzer
from repro.cpu.tenanalyzer.analyzer import ReadKind, WriteKind
from repro.cpu.tenanalyzer.tensor_filter import TensorFilter
from repro.sim.trace import AccessKind, MemAccess
from repro.tensor.registry import TensorRegistry
from repro.units import KiB
from repro.workloads.traces import AdamTraceConfig, adam_iteration_trace, build_adam_groups

LINE = 64
BASE = 0x10000


def read(analyzer, va):
    return analyzer.on_read(MemAccess(va, AccessKind.READ))


def write(analyzer, va):
    return analyzer.on_write(MemAccess(va, AccessKind.WRITE))


class TestTensorFilter:
    def test_detects_after_four_consecutive_lines(self):
        f = TensorFilter()
        assert f.observe(BASE, 0) is None
        assert f.observe(BASE + LINE, 0) is None
        assert f.observe(BASE + 2 * LINE, 0) is None
        geometry = f.observe(BASE + 3 * LINE, 0)
        assert geometry is not None
        assert geometry.base_va == BASE and geometry.n_lines == 4

    def test_vn_change_restarts_stream(self):
        f = TensorFilter()
        f.observe(BASE, 0)
        f.observe(BASE + LINE, 0)
        assert f.observe(BASE + 2 * LINE, 1) is None  # VN broke the condition
        assert f.stats["vn_restarts"] == 1

    def test_lru_eviction_under_pressure(self):
        f = TensorFilter(n_entries=2)
        f.observe(0x0, 0)
        f.observe(0x100000, 0)
        f.observe(0x200000, 0)  # evicts the oldest stream
        assert f.occupancy == 2
        assert f.stats["evictions"] == 1

    def test_interleaved_streams_detected_independently(self):
        f = TensorFilter()
        a, b = 0x0, 0x100000
        for i in range(3):
            assert f.observe(a + i * LINE, 0) is None
            assert f.observe(b + i * LINE, 0) is None
        assert f.observe(a + 3 * LINE, 0) is not None
        assert f.observe(b + 3 * LINE, 0) is not None


class TestReadDataflow:
    def test_detection_then_boundary_then_hit_in(self):
        analyzer = TenAnalyzer()
        # First pass: 4 misses (filter) then boundary extensions.
        kinds = [read(analyzer, BASE + i * LINE).kind for i in range(8)]
        assert kinds[:4] == [ReadKind.MISS] * 4
        assert kinds[4:] == [ReadKind.HIT_BOUNDARY] * 4
        # Second pass: all hit-in.
        kinds = [read(analyzer, BASE + i * LINE).kind for i in range(8)]
        assert kinds == [ReadKind.HIT_IN] * 8

    def test_hit_in_needs_no_offchip_fetch(self):
        analyzer = TenAnalyzer()
        for i in range(8):
            read(analyzer, BASE + i * LINE)
        result = read(analyzer, BASE)
        assert result.kind is ReadKind.HIT_IN
        assert result.offchip_vn_fetches == 0 and not result.critical_fetch

    def test_boundary_fetch_off_critical_path(self):
        analyzer = TenAnalyzer()
        for i in range(4):
            read(analyzer, BASE + i * LINE)
        result = read(analyzer, BASE + 4 * LINE)
        assert result.kind is ReadKind.HIT_BOUNDARY
        assert result.offchip_vn_fetches == 1 and not result.critical_fetch

    def test_boundary_vn_mismatch_mispredicts(self):
        analyzer = TenAnalyzer()
        for i in range(5):
            read(analyzer, BASE + i * LINE)
        # Bump the off-chip VN of the next boundary line behind the entry's back.
        analyzer.vn_store.set(BASE + 5 * LINE, 9)
        result = read(analyzer, BASE + 5 * LINE)
        assert result.kind is ReadKind.MISS
        assert result.vn == 9
        assert analyzer.stats["boundary_mispredict"] == 1

    def test_disabled_analyzer_always_misses(self):
        analyzer = TenAnalyzer(enabled=False)
        for i in range(8):
            assert read(analyzer, BASE + i * LINE).kind is ReadKind.MISS
        assert analyzer.table.n_entries == 0


class TestWriteDataflow:
    def _detect(self, analyzer, n=8):
        for i in range(n):
            read(analyzer, BASE + i * LINE)

    def test_covered_writes_track_and_complete(self):
        analyzer = TenAnalyzer()
        self._detect(analyzer)
        results = [write(analyzer, BASE + i * LINE) for i in range(8)]
        assert results[0].kind is WriteKind.HIT_EDGE
        assert results[-1].completed_tensor
        assert analyzer.stats["write_completed_tensors"] == 1

    def test_uncovered_write_bumps_offchip(self):
        analyzer = TenAnalyzer()
        result = write(analyzer, 0x900000)
        assert result.kind is WriteKind.MISS
        assert analyzer.vn_store.read(0x900000) == 1

    def test_double_write_invalidates_entry(self):
        analyzer = TenAnalyzer()
        self._detect(analyzer)
        write(analyzer, BASE)
        result = write(analyzer, BASE)  # Assert1 violation
        assert result.violation
        assert analyzer.table.entry_of(BASE) is None
        # Off-chip VNs stay consistent after invalidation sync.
        assert analyzer.vn_store.read(BASE) == 2
        assert analyzer.vn_store.read(BASE + LINE) == 0

    def test_write_snoops_filter(self):
        analyzer = TenAnalyzer()
        read(analyzer, BASE)
        read(analyzer, BASE + LINE)  # half-collected stream in the filter
        write(analyzer, BASE + LINE)
        read(analyzer, BASE + 2 * LINE)
        read(analyzer, BASE + 3 * LINE)
        # The stale stream was dropped, so no entry with a stale VN exists.
        entry = analyzer.table.entry_of(BASE)
        assert entry is None


class TestTransferInstall:
    def test_install_creates_full_entry(self):
        analyzer = TenAnalyzer()
        analyzer.install_from_transfer(BASE, 16, vn=5)
        result = read(analyzer, BASE + 7 * LINE)
        assert result.kind is ReadKind.HIT_IN and result.vn == 5

    def test_metadata_for_range(self):
        analyzer = TenAnalyzer()
        analyzer.install_from_transfer(BASE, 16, vn=5)
        metadata = analyzer.metadata_for_range(BASE, 16)
        assert metadata is not None and metadata[0] == 5

    def test_metadata_unavailable_when_uncovered(self):
        analyzer = TenAnalyzer()
        assert analyzer.metadata_for_range(BASE, 16) is None


class TestVnConsistencyInvariant:
    """The central security invariant: the VN the analyzer supplies always
    equals the ground-truth write count of the line."""

    @given(seed=st.integers(0, 2**16), threads=st.sampled_from([1, 2, 4]))
    @settings(max_examples=8, deadline=None)
    def test_property_adam_iterations_consistent(self, seed, threads):
        registry = TensorRegistry(alignment=4 * KiB, guard_bytes=256 * KiB)
        groups = build_adam_groups(registry, n_layers=2, lines_per_tensor=16)
        config = AdamTraceConfig(threads=threads, thread_skew=0.2, seed=seed)
        analyzer = TenAnalyzer(capacity=24)  # force eviction churn too
        rng = random.Random(seed)
        truth = {}
        for _ in range(3):
            for access in adam_iteration_trace(groups, config, rng):
                if access.kind is AccessKind.READ:
                    result = analyzer.on_read(access)
                    assert result.vn == truth.get(access.vaddr, 0)
                else:
                    outcome = analyzer.on_write(access)
                    truth[access.vaddr] = truth.get(access.vaddr, 0) + 1
                    assert outcome.vn == truth[access.vaddr]

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=8, deadline=None)
    def test_property_random_mixed_traffic_consistent(self, seed):
        rng = random.Random(seed)
        analyzer = TenAnalyzer(capacity=16)
        truth = {}
        lines = [BASE + i * LINE for i in range(64)]
        for _ in range(600):
            va = rng.choice(lines)
            if rng.random() < 0.5:
                result = analyzer.on_read(MemAccess(va, AccessKind.READ))
                assert result.vn == truth.get(va, 0)
            else:
                outcome = analyzer.on_write(MemAccess(va, AccessKind.WRITE))
                truth[va] = truth.get(va, 0) + 1
                assert outcome.vn == truth[va]
