"""End-to-end system model and evaluation harness shapes.

These assert the *paper-shape* properties: who wins, by roughly what
factor, and where the crossovers fall (see EXPERIMENTS.md for the
paper-vs-measured numbers).
"""

import pytest

from repro.core.config import (
    baseline_system,
    non_secure_system,
    tensortee_system,
)
from repro.core.hw_cost import HardwareBudget
from repro.core.system import CollaborativeSystem
from repro.eval import fig20_mac_granularity
from repro.eval.tables import ascii_table
from repro.workloads.models import MODEL_ZOO

# Regenerates full-zoo breakdowns for every mode: multi-second setup.
pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def breakdowns():
    systems = {
        "ns": CollaborativeSystem(non_secure_system()),
        "base": CollaborativeSystem(baseline_system()),
        "ours": CollaborativeSystem(tensortee_system()),
    }
    return {
        m.name: {k: s.iteration_breakdown(m) for k, s in systems.items()}
        for m in MODEL_ZOO
    }


class TestFig16Shape:
    def test_tensortee_always_beats_baseline(self, breakdowns):
        for by_mode in breakdowns.values():
            assert by_mode["ours"].total_s < by_mode["base"].total_s

    def test_speedup_band_matches_paper(self, breakdowns):
        speedups = [
            b["base"].total_s / b["ours"].total_s for b in breakdowns.values()
        ]
        mean = sum(speedups) / len(speedups)
        assert 3.0 < mean < 5.0  # paper: 4.0x
        assert max(speedups) < 7.0  # paper: 5.5x
        assert min(speedups) > 1.5  # paper: 2.1x

    def test_speedup_grows_with_model_size(self, breakdowns):
        small = breakdowns["GPT"]["base"].total_s / breakdowns["GPT"]["ours"].total_s
        large = (
            breakdowns["OPT-6.7B"]["base"].total_s
            / breakdowns["OPT-6.7B"]["ours"].total_s
        )
        assert large > 1.8 * small

    def test_overhead_vs_non_secure_small(self, breakdowns):
        for by_mode in breakdowns.values():
            overhead = by_mode["ours"].total_s / by_mode["ns"].total_s - 1
            assert 0.0 <= overhead < 0.05  # paper: 2.1% average


class TestFig5Fig17Shape:
    def test_baseline_comm_balloons(self, breakdowns):
        gpt2m = breakdowns["GPT2-M"]
        ns_comm = gpt2m["ns"].fractions()
        base_comm = gpt2m["base"].fractions()
        ns_total = ns_comm["Comm W"] + ns_comm["Comm G"]
        base_total = base_comm["Comm W"] + base_comm["Comm G"]
        assert base_total > 0.25  # paper: 53%
        assert base_total > 5 * ns_total  # paper: 12% -> 53%

    def test_tensortee_restores_non_secure_profile(self, breakdowns):
        for by_mode in breakdowns.values():
            ours = by_mode["ours"].fractions()
            assert ours["Comm W"] + ours["Comm G"] < 0.25

    def test_stage_fractions_sum_to_one(self, breakdowns):
        for by_mode in breakdowns.values():
            for breakdown in by_mode.values():
                assert sum(breakdown.fractions().values()) == pytest.approx(1.0)


class TestFig20Shape:
    def test_result_matches_scheme_model(self):
        result = fig20_mac_granularity.run()
        ours = result.row("tensor(ours)")
        assert ours.perf_overhead == pytest.approx(0.025, abs=0.001)
        assert ours.storage_overhead == 0.0
        coarse = result.row("4096B")
        assert coarse.perf_overhead > 0.10


class TestHardwareBudget:
    def test_paper_totals(self):
        budget = HardwareBudget()
        assert budget.total_kib == pytest.approx(24.0, abs=0.6)
        assert budget.area_mm2 == pytest.approx(0.0072, abs=0.0004)

    def test_meta_table_entry_bits(self):
        assert HardwareBudget().meta_table.entry_bits == 280


class TestRendering:
    def test_ascii_table_alignment(self):
        text = ascii_table(["a", "bb"], [(1, 22), (333, 4)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_fig16_render_contains_models(self):
        from repro.eval import fig16_overall

        result = fig16_overall.run(models=MODEL_ZOO[:2])
        text = fig16_overall.render(result)
        assert "GPT" in text and "speedup" in text
