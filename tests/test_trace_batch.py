"""Columnar trace batches: round-trip properties and scalar/vector parity.

This file is the contract behind the batched replay passes: the object
API and the columnar :class:`~repro.sim.trace_batch.TraceBatch` view are
lossless bridges of each other, and every ``repro.vec``-gated batch pass
produces results identical to its scalar reference — flipping
``REPRO_NO_VECTORIZE`` can only ever change speed. The cache-layer
docstrings (:mod:`repro.mem.cache`) point here for the LRU-semantics
parity guarantee.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import vec
from repro.cpu.metadata_model import measure_sgx_metadata
from repro.eval.scenarios import mee_cache_geometry
from repro.mem.cache import LruCacheCore, SetAssocCache
from repro.mem.mee import FunctionalMee
from repro.npu.config import NpuConfig
from repro.npu.pipeline import simulate_delayed_pipeline, simulate_granule_pipeline
from repro.sim.trace import AccessKind, MemAccess, interleave_round_robin
from repro.sim.trace_batch import KIND_INST, KIND_READ, KIND_WRITE, TraceBatch
from repro.tensor.registry import TensorRegistry
from repro.units import CACHELINE_BYTES, KiB, MiB
from repro.workloads.traces import (
    AdamTraceConfig,
    GemmConfig,
    adam_iteration_batch,
    build_adam_groups,
    build_gemm_tensors,
    gemm_batch,
)

LINE = CACHELINE_BYTES

#: Arbitrary but representative accesses: any int64 address, every kind.
access_st = st.builds(
    MemAccess,
    st.integers(0, 1 << 61),
    st.sampled_from(list(AccessKind)),
    st.integers(0, 63),
    st.integers(-1, 1 << 20),
)


def _both_modes(run):
    """Evaluate ``run`` under the normal gate and under the scalar gate."""
    vectored = run()
    with vec.scalar_fallback():
        scalar = run()
    return vectored, scalar


# -- round-trip properties -----------------------------------------------------


class TestRoundTrip:
    def test_kind_codes_match_enum_order(self):
        kinds = list(AccessKind)
        assert kinds[KIND_READ] is AccessKind.READ
        assert kinds[KIND_WRITE] is AccessKind.WRITE
        assert kinds[KIND_INST] is AccessKind.INST

    @given(accesses=st.lists(access_st, max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_from_accesses_to_accesses_identity(self, accesses):
        batch = TraceBatch.from_accesses(accesses)
        assert len(batch) == len(accesses)
        assert batch.to_accesses() == accesses
        assert list(batch) == accesses  # __iter__ is the object view

    @given(accesses=st.lists(access_st, max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_columnarize_is_mode_independent(self, accesses):
        vectored, scalar = _both_modes(lambda: TraceBatch.from_accesses(accesses))
        assert vectored == scalar
        assert vectored.columns() == scalar.columns()

    @given(accesses=st.lists(access_st, max_size=64), size=st.integers(1, 16))
    @settings(max_examples=100, deadline=None)
    def test_windows_concat_identity(self, accesses, size):
        batch = TraceBatch.from_accesses(accesses)
        windows = list(batch.windows(size))
        assert sum(len(w) for w in windows) == len(batch)
        assert TraceBatch.concat(windows) == batch

    @given(
        streams=st.lists(st.lists(access_st, max_size=24), max_size=5),
        chunk=st.integers(1, 8),
    )
    @settings(max_examples=100, deadline=None)
    def test_interleave_matches_object_reference(self, streams, chunk):
        merged = TraceBatch.interleave_round_robin(
            [TraceBatch.from_accesses(s) for s in streams], chunk=chunk
        )
        assert merged.to_accesses() == interleave_round_robin(
            [list(s) for s in streams], chunk=chunk
        )


# -- scalar/vector parity of the batched replay passes -------------------------


class TestModeParity:
    def test_cache_access_many_matches_scalar_access(self):
        rng = random.Random(7)
        addrs = [rng.randrange(256) * LINE for _ in range(2000)]

        def run():
            cache = SetAssocCache(capacity_bytes=4 * KiB, ways=2)
            hits = cache.access_many(addrs)
            hits += cache.access_many(addrs[::-1], write=True)
            return hits, cache.stats.as_dict()

        (vec_hits, vec_stats), (sca_hits, sca_stats) = _both_modes(run)
        assert vec_hits == sca_hits
        assert vec_stats == sca_stats

    def test_lru_core_matches_set_assoc_semantics(self):
        rng = random.Random(11)
        cache = SetAssocCache(capacity_bytes=4 * KiB, ways=2)
        core = LruCacheCore.for_cache(4 * KiB, ways=2)
        assert core.n_sets == cache.n_sets and core.ways == cache.ways
        for _ in range(5000):
            line = rng.randrange(256)
            write = rng.random() < 0.3
            with vec.scalar_fallback():
                expect = cache.access(line * LINE, write=write)
            assert core.touch(line, write=write) is expect
        assert core.hits == cache.stats["hits"]
        assert core.misses == cache.stats["misses"]
        assert core.evictions == cache.stats["evictions"]
        assert core.writebacks == cache.stats["writebacks"]

    def test_sgx_metadata_parity(self):
        vectored, scalar = _both_modes(lambda: measure_sgx_metadata(64 * MiB, sample_lines=4000))
        assert vectored == scalar

    def test_mee_geometry_parity(self):
        vectored, scalar = _both_modes(
            lambda: mee_cache_geometry(tensors=12, lines_per_tensor=16, iterations=2)
        )
        assert vectored == scalar

    def test_pipeline_timing_parity(self):
        config = NpuConfig()
        per_line = LINE / config.dram.effective_stream_bw

        def run():
            return (
                simulate_granule_pipeline(config, 2 * MiB, 4096, 0.9 * per_line),
                simulate_delayed_pipeline(config, 2 * MiB, 0.9 * per_line),
            )

        vectored, scalar = _both_modes(run)
        assert vectored == scalar  # PipelineResult floats must match bit-for-bit

    def test_mee_batch_walk_matches_per_line_loop(self):
        rng = random.Random(3)
        n_lines = 96
        vaddrs = [i * LINE for i in range(n_lines)]
        payload = rng.randbytes(n_lines * LINE)
        keys = bytes(range(16)), bytes(range(16, 32))

        batched = FunctionalMee(*keys, protected_bytes=1 * MiB)
        old_b, new_b = batched.write_lines(vaddrs, payload, vn=None)
        plain_b = batched.read_lines(vaddrs, vn=None, verify=True)

        reference = FunctionalMee(*keys, protected_bytes=1 * MiB)
        old_r, new_r = [], []
        for i, vaddr in enumerate(vaddrs):
            old, new = reference.write_line(vaddr, payload[i * LINE : (i + 1) * LINE])
            old_r.append(old)
            new_r.append(new)
        plain_r = b"".join(reference.read_line(v, vn=None, verify=True) for v in vaddrs)

        assert plain_b == plain_r == payload
        assert (old_b, new_b) == (old_r, new_r)
        assert batched.vn_store == reference.vn_store
        assert batched.mac_store == reference.mac_store
        assert batched.stats["writes"] == reference.stats["writes"]
        assert batched.stats["reads"] == reference.stats["reads"]
        # The batch walks each Merkle leaf once, the loop once per line.
        assert 0 < batched.stats["merkle_updates"] <= reference.stats["merkle_updates"]
        assert 0 < batched.stats["merkle_walks"] <= reference.stats["merkle_walks"]

    def test_adam_generator_parity(self):
        def run():
            registry = TensorRegistry(alignment=4 * KiB, guard_bytes=256 * KiB)
            groups = build_adam_groups(registry, n_layers=3, lines_per_tensor=32)
            config = AdamTraceConfig(threads=4, seed=99)
            rng = random.Random(99)
            batch = adam_iteration_batch(groups, config, rng)
            return batch, rng.getstate()

        (vec_batch, vec_rng), (sca_batch, sca_rng) = _both_modes(run)
        assert vec_batch == sca_batch
        assert vec_rng == sca_rng  # identical skew-RNG consumption

    def test_gemm_generator_parity(self):
        def run():
            registry = TensorRegistry(alignment=4 * KiB, guard_bytes=256 * KiB)
            config = GemmConfig(m=64, n=64, k=64, tile_m=32, tile_n=32, tile_k=32)
            a, b, c = build_gemm_tensors(registry, config)
            return gemm_batch(a, b, c, config)

        vec_batch, sca_batch = _both_modes(run)
        assert vec_batch == sca_batch
