"""Tensor descriptors and registry."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.tensor.dtype import DType
from repro.tensor.registry import TensorRegistry
from repro.tensor.tensor import TensorDesc


class TestTensorDesc:
    def test_nbytes_and_lines(self):
        t = TensorDesc("t", 0, (100,), DType.FP32)
        assert t.nbytes == 400
        assert t.n_lines == 7  # ceil(400/64)

    def test_line_addresses_contiguous(self):
        t = TensorDesc("t", 128, (64,), DType.FP32)
        addrs = list(t.line_addresses())
        assert addrs[0] == 128
        assert all(b - a == 64 for a, b in zip(addrs, addrs[1:]))

    def test_shards_partition_lines(self):
        t = TensorDesc("t", 0, (1000,), DType.FP32)
        shards = [t.shard_lines(4, i) for i in range(4)]
        flat = [a for shard in shards for a in shard]
        assert flat == list(t.line_addresses())

    def test_uneven_shards(self):
        t = TensorDesc("t", 0, (16 * 5,), DType.FP32)  # 5 lines
        sizes = [len(t.shard_lines(4, i)) for i in range(4)]
        assert sum(sizes) == 5
        assert max(sizes) - min(sizes) <= 1

    def test_tile_row_lines_2d(self):
        t = TensorDesc("m", 0, (8, 32), DType.FP32)  # rows of 128B = 2 lines
        lines = t.tile_row_lines(1, 0, 16)  # second row, first 16 cols = 64B
        assert lines == [128]

    def test_tile_bounds_checked(self):
        t = TensorDesc("m", 0, (8, 32), DType.FP32)
        with pytest.raises(ConfigError):
            t.tile_row_lines(8, 0, 16)

    def test_unaligned_base_rejected(self):
        with pytest.raises(ConfigError):
            TensorDesc("t", 1, (4,), DType.FP32)

    @given(n=st.integers(1, 5000), shards=st.integers(1, 16))
    @settings(max_examples=50, deadline=None)
    def test_property_shards_cover_exactly(self, n, shards):
        t = TensorDesc("t", 0, (n,), DType.FP16)
        total = sum(len(t.shard_lines(shards, i)) for i in range(shards))
        assert total == t.n_lines


class TestRegistry:
    def test_allocation_no_overlap(self, registry):
        a = registry.allocate("a", (1000,))
        b = registry.allocate("b", (1000,))
        assert a.base_va + a.nbytes <= b.base_va

    def test_guard_gap_applied(self):
        r = TensorRegistry(guard_bytes=256 * 1024)
        a = r.allocate("a", (16,))
        b = r.allocate("b", (16,))
        assert b.base_va - a.base_va >= 256 * 1024

    def test_find_by_address(self, registry):
        t = registry.allocate("x", (100,))
        assert registry.find(t.base_va) is t
        assert registry.find(t.base_va + 64) is t
        assert registry.find(t.base_va - 64) is None

    def test_duplicate_name_rejected(self, registry):
        registry.allocate("dup", (4,))
        with pytest.raises(ConfigError):
            registry.allocate("dup", (4,))

    def test_lookup_by_id_and_name(self, registry):
        t = registry.allocate("named", (4,))
        assert registry.by_id(t.tensor_id) is t
        assert registry.by_name("named") is t

    def test_total_bytes(self, registry):
        registry.allocate("a", (16,))
        registry.allocate("b", (16,))
        assert registry.total_bytes == 2 * 64
