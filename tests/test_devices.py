"""Secure-device composition: CPU and NPU device behaviour."""

import pytest

from repro.errors import ConfigError, IntegrityError
from repro.tee.device import CpuSecureDevice, NpuSecureDevice
from repro.tensor.dtype import DType

KEYS = (b"unit-aes-key-16B", b"unit-mac-key-16B")


@pytest.fixture
def cpu():
    return CpuSecureDevice(*KEYS)


@pytest.fixture
def npu():
    return NpuSecureDevice(*KEYS)


def payload(tensor):
    return bytes((i * 11) % 256 for i in range(tensor.nbytes))


class TestCpuDevice:
    def test_write_read_roundtrip(self, cpu):
        t = cpu.allocate("t", (256,), DType.FP32)
        cpu.write_tensor(t, payload(t))
        assert cpu.read_tensor(t) == payload(t)

    def test_bad_payload_size_rejected(self, cpu):
        t = cpu.allocate("t", (256,), DType.FP32)
        with pytest.raises(ConfigError):
            cpu.write_tensor(t, b"short")

    def test_metadata_fast_path_after_detection(self, cpu):
        t = cpu.allocate("t", (256,), DType.FP32)
        cpu.write_tensor(t, payload(t))
        cpu.read_tensor(t)  # detection pass
        cpu.read_tensor(t)  # coverage established
        vn, mac = cpu.tensor_metadata(t)
        assert vn >= 0
        # Fast path: a single Meta Table entry covers the range.
        assert cpu.analyzer.table.covering_range(t.base_va, t.n_lines) is not None

    def test_metadata_slow_path_consistent_vns(self, cpu):
        t = cpu.allocate("t", (64,), DType.FP32)
        cpu.write_tensor(t, payload(t))
        # Invalidate coverage so the slow path recomputes from stores.
        entry = cpu.analyzer.table.entry_of(t.base_va)
        if entry is not None:
            cpu.analyzer.table.invalidate(entry, reason="test")
        vn, mac = cpu.tensor_metadata(t)
        assert vn == 1  # one full write pass

    def test_mixed_vn_range_not_transferable(self, cpu):
        t = cpu.allocate("t", (64,), DType.FP32)
        cpu.write_tensor(t, payload(t))
        entry = cpu.analyzer.table.entry_of(t.base_va)
        if entry is not None:
            cpu.analyzer.table.invalidate(entry, reason="test")
        # One extra line write makes per-line VNs inconsistent.
        from repro.sim.trace import AccessKind, MemAccess

        outcome = cpu.analyzer.on_write(MemAccess(t.base_va, AccessKind.WRITE))
        cpu.mee.write_line(t.base_va, bytes(64), vn=outcome.vn)
        with pytest.raises(IntegrityError):
            cpu.tensor_metadata(t)


class TestNpuDevice:
    def test_write_read_roundtrip(self, npu):
        t = npu.allocate("t", (256,), DType.FP16)
        npu.write_tensor(t, payload(t))
        assert npu.read_tensor_delayed(t) == payload(t)

    def test_rewrite_bumps_tensor_vn(self, npu):
        t = npu.allocate("t", (64,), DType.FP32)
        npu.write_tensor(t, payload(t))
        npu.write_tensor(t, payload(t))
        assert npu.vn_table.vn_of(t) == 2

    def test_admit_transfer_records_context(self, npu):
        t = npu.allocate("t", (64,), DType.FP32)
        npu.admit_transfer(t, vn=9, tensor_mac=0x123, src_base_pa=0xABC000)
        assert npu.vn_table.vn_of(t) == 9
        assert npu.mac_table.mac_of(t.tensor_id) == 0x123
        assert npu.mac_table.is_poisoned(t.tensor_id)  # until first verify
        assert npu.base_pa(t) == 0xABC000

    def test_local_rewrite_clears_crypto_context(self, npu):
        t = npu.allocate("t", (64,), DType.FP32)
        npu.admit_transfer(t, vn=9, tensor_mac=0x123, src_base_pa=0xABC000)
        npu.write_tensor(t, payload(t))
        assert npu.read_tensor_delayed(t) == payload(t)

    def test_tensor_metadata_roundtrip(self, npu):
        t = npu.allocate("t", (64,), DType.FP32)
        npu.write_tensor(t, payload(t))
        vn, mac = npu.tensor_metadata(t)
        assert vn == 1 and mac != 0
