"""Unit helpers."""

from repro.units import (
    CACHELINE_BYTES,
    GiB,
    KiB,
    MiB,
    align_down,
    align_up,
    gb_per_s,
    gib_per_s,
    lines_in,
)


def test_size_constants_are_powers_of_two():
    assert KiB == 1 << 10
    assert MiB == 1 << 20
    assert GiB == 1 << 30


def test_lines_in_rounds_up():
    assert lines_in(0) == 0
    assert lines_in(1) == 1
    assert lines_in(64) == 1
    assert lines_in(65) == 2
    assert lines_in(1024) == 16


def test_alignment_helpers():
    assert align_down(4097, 4096) == 4096
    assert align_up(4097, 4096) == 8192
    assert align_up(4096, 4096) == 4096


def test_bandwidth_conversions():
    assert gb_per_s(1.0) == 1e9
    assert gib_per_s(1.0) == float(GiB)


def test_cacheline_is_64_bytes():
    assert CACHELINE_BYTES == 64
