"""AES-128, counter mode, MACs: correctness pinned to known vectors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES128, _SBOX
from repro.crypto.ctr import CounterModeCipher
from repro.crypto.mac import MacEngine, TensorMacAccumulator, xor_macs
from repro.errors import ConfigError


class TestAes:
    def test_fips197_vector(self):
        key = bytes(range(16))
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = "69c4e0d86a7b0430d8cdb78070b4c55a"
        assert AES128(key).encrypt_block(plaintext).hex() == expected

    def test_sbox_known_entries(self):
        assert _SBOX[0x00] == 0x63
        assert _SBOX[0x01] == 0x7C
        assert _SBOX[0x53] == 0xED
        assert sorted(_SBOX) == list(range(256))  # a permutation

    def test_rejects_bad_key_and_block(self):
        with pytest.raises(ConfigError):
            AES128(b"short")
        with pytest.raises(ConfigError):
            AES128(bytes(16)).encrypt_block(b"short")

    def test_deterministic(self):
        aes = AES128(b"k" * 16)
        assert aes.encrypt_block(bytes(16)) == aes.encrypt_block(bytes(16))


class TestCounterMode:
    @given(data=st.binary(min_size=64, max_size=64), pa=st.integers(0, 2**48), vn=st.integers(0, 2**40))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip(self, data, pa, vn):
        cipher = CounterModeCipher(b"0123456789abcdef")
        assert cipher.decrypt_line(cipher.encrypt_line(data, pa, vn), pa, vn) == data

    def test_wrong_vn_garbles(self, line64):
        cipher = CounterModeCipher(b"0123456789abcdef")
        ct = cipher.encrypt_line(line64, pa=0x1000, vn=1)
        assert cipher.decrypt_line(ct, pa=0x1000, vn=2) != line64

    def test_wrong_pa_garbles(self, line64):
        cipher = CounterModeCipher(b"0123456789abcdef")
        ct = cipher.encrypt_line(line64, pa=0x1000, vn=1)
        assert cipher.decrypt_line(ct, pa=0x1040, vn=1) != line64

    def test_same_key_same_counter_same_keystream(self, line64):
        a = CounterModeCipher(b"0123456789abcdef")
        b = CounterModeCipher(b"0123456789abcdef")
        assert a.encrypt_line(line64, 0, 0) == b.encrypt_line(line64, 0, 0)


class TestMac:
    def test_mac_is_56_bits(self, line64):
        mac = MacEngine(b"key").line_mac(line64, 0x1000, 1)
        assert 0 <= mac < (1 << 56)

    def test_mac_binds_ciphertext_pa_and_vn(self, line64):
        engine = MacEngine(b"key")
        base = engine.line_mac(line64, 0x1000, 1)
        assert engine.line_mac(line64[::-1], 0x1000, 1) != base
        assert engine.line_mac(line64, 0x1040, 1) != base
        assert engine.line_mac(line64, 0x1000, 2) != base

    @given(st.lists(st.integers(0, 2**56 - 1), min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_xor_macs_order_insensitive(self, macs):
        assert xor_macs(macs) == xor_macs(list(reversed(macs)))

    @given(st.permutations(list(range(8))))
    @settings(max_examples=25, deadline=None)
    def test_accumulator_order_insensitive(self, order):
        engine = MacEngine(b"key")
        macs = [engine.line_mac(bytes([i] * 64), i * 64, 1) for i in range(8)]
        reference = xor_macs(macs)
        acc = TensorMacAccumulator(expected_lines=8)
        for index in order:
            acc.absorb(macs[index])
        assert acc.complete
        assert acc.matches(reference)

    def test_accumulator_incomplete_never_matches(self):
        acc = TensorMacAccumulator(expected_lines=2)
        acc.absorb(0)
        assert not acc.matches(0)
