"""The ``repro serve`` job-queue service: store, schema, HTTP API, CLI.

The end-to-end tests run a real :class:`JobService` on an ephemeral port
and drive it through :class:`ServeClient` / ``repro jobs``; the
kill/restart test SIGKILLs an actual server subprocess mid-queue and
asserts a restarted server resumes the journaled jobs.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.request

import pytest

from repro.errors import ConfigError, ServiceError
from repro.eval.journal import (
    CRASH_EXIT_CODE,
    JOB_CANCELLED,
    JOB_DONE,
    JOB_FAILED,
    JOB_RUNNING,
    JOB_SUBMITTED,
    JobRecord,
    RunJournal,
    read_journal,
)
from repro.eval.orchestrator import Orchestrator, PointRequest
from repro.eval.registry import REGISTRY, ExperimentRegistry, experiment
from repro.serve import schema
from repro.serve.client import ServeClient
from repro.serve.server import JobService
from repro.serve.store import JobStore

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

M22_TOML = """
[sweep]
name = "m22"
experiment = "mac_policy"

[[sweep.axes]]
param = "granule_bytes"
values = [64, 256]

[[sweep.axes]]
param = "policy"
values = ["eager", "delayed"]

[[sweep.metrics]]
name = "perf"
path = "perf_overhead"
"""


@pytest.fixture
def results_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    return tmp_path


@pytest.fixture
def sweeps_env(tmp_path, monkeypatch):
    root = tmp_path / "sweep-specs"
    root.mkdir()
    (root / "m22.toml").write_text(M22_TOML)
    monkeypatch.setenv("REPRO_SWEEPS_DIR", str(root))
    return root


@pytest.fixture
def temp_experiment():
    """Inject a throwaway experiment into the global registry."""
    injected = []

    def inject(name, func, render=None):
        registry = ExperimentRegistry()
        experiment(name, render=render, registry=registry)(func)
        REGISTRY.load_all()
        REGISTRY._specs[name] = registry._specs[name]
        injected.append(name)
        return REGISTRY._specs[name]

    yield inject
    for name in injected:
        REGISTRY._specs.pop(name, None)


@pytest.fixture
def service(results_env):
    """Start JobService instances on ephemeral ports; closes them all."""
    started = []

    def start(**kwargs):
        kwargs.setdefault("workers", 1)
        kwargs.setdefault("verbose", False)
        svc = JobService(host="127.0.0.1", port=0, **kwargs)
        svc.start()
        started.append(svc)
        return svc, ServeClient(port=svc.port)

    yield start
    for svc in started:
        svc.close()


def free_port():
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def submit_experiment(client, name, priority=0, seed=0, params=None):
    return client.submit(
        {
            "task": "experiment",
            "experiment": name,
            "params": params or {},
            "seed": seed,
            "priority": priority,
        }
    )


class TestJobJournal:
    def test_job_records_round_trip(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        journal = RunJournal.start(path, {"queue": "repro-serve"})
        a = JobRecord(
            job_id="a1",
            task="experiment",
            status=JOB_SUBMITTED,
            spec={"task": "experiment", "experiment": "x"},
            priority=2,
            fingerprint="f" * 20,
            submitted_at=1.0,
            ts=1.0,
        )
        b = JobRecord(
            job_id="a1",
            task="experiment",
            status=JOB_FAILED,
            error="Traceback...\nboom\n",
            error_type="RuntimeError",
            elapsed_s=0.25,
            ts=2.0,
        )
        journal.append_job(a)
        journal.append_job(b)
        view = read_journal(path)
        assert [r.status for r in view.jobs] == [JOB_SUBMITTED, JOB_FAILED]
        assert view.jobs[0] == a
        assert view.last_by_job() == {"a1": b}
        assert not view.jobs[0].terminal and view.jobs[1].terminal
        assert view.records == []  # job lines are not point records

    def test_mixed_journal_keeps_kinds_apart(self, tmp_path):
        from repro.eval.journal import PointRecord

        path = str(tmp_path / "j.jsonl")
        journal = RunJournal.start(path, {})
        journal.append_job(JobRecord(job_id="j", task="bench", status=JOB_DONE))
        journal.append(PointRecord(label="p", experiment="e", key="k", seed=0, status="executed"))
        view = read_journal(path)
        assert len(view.jobs) == 1 and len(view.records) == 1


class TestJobStore:
    def test_lifecycle_and_reopen(self, tmp_path):
        root = str(tmp_path / "q")
        store = JobStore(root)
        record = store.submit({"task": "bench", "quick": True, "only": None}, fingerprint="fp1")
        assert record.status == JOB_SUBMITTED
        claimed = store.claim()
        assert claimed.job_id == record.job_id and claimed.status == JOB_RUNNING
        done = store.finish(record.job_id, JOB_DONE, result={"report": 1}, elapsed_s=0.5)
        assert done.terminal and store.claim() is None
        assert store.counts() == {JOB_DONE: 1}
        # Reopen: the journal alone reconstructs the queue.
        fresh = JobStore(root)
        again = fresh.get(record.job_id)
        assert again.status == JOB_DONE and again.result == {"report": 1}
        assert fresh.find_completed("fp1").job_id == record.job_id
        assert fresh.find_completed("other") is None

    def test_priority_then_fifo_claim_order(self, tmp_path):
        store = JobStore(str(tmp_path / "q"))
        low1 = store.submit({"task": "bench"}, priority=0)
        high = store.submit({"task": "bench"}, priority=5)
        low2 = store.submit({"task": "bench"}, priority=0)
        order = [store.claim().job_id for _ in range(3)]
        assert order == [high.job_id, low1.job_id, low2.job_id]

    def test_invalid_transitions(self, tmp_path):
        store = JobStore(str(tmp_path / "q"))
        record = store.submit({"task": "bench"})
        with pytest.raises(ConfigError, match="not running"):
            store.finish(record.job_id, JOB_DONE)
        store.claim()
        with pytest.raises(ConfigError, match="only queued jobs"):
            store.cancel(record.job_id)
        store.finish(record.job_id, JOB_FAILED, error="boom", error_type="RuntimeError")
        with pytest.raises(ConfigError, match="only queued jobs"):
            store.cancel(record.job_id)
        with pytest.raises(ConfigError, match="unknown job id"):
            store.get("nope")

    def test_cancel_pending(self, tmp_path):
        store = JobStore(str(tmp_path / "q"))
        record = store.submit({"task": "bench"})
        assert store.cancel(record.job_id).status == JOB_CANCELLED
        assert store.claim() is None

    def test_restart_requeues_running_jobs(self, tmp_path):
        root = str(tmp_path / "q")
        store = JobStore(root)
        record = store.submit({"task": "bench"})
        store.claim()
        # "Crash": drop the store with the job still running.
        peek = JobStore(root, recover=False)
        assert peek.get(record.job_id).status == JOB_RUNNING
        recovered = JobStore(root)
        fresh = recovered.get(record.job_id)
        assert fresh.status == JOB_SUBMITTED and fresh.attempt == 1
        assert recovered.claim().job_id == record.job_id

    def test_torn_tail_is_survived(self, tmp_path):
        root = str(tmp_path / "q")
        store = JobStore(root)
        record = store.submit({"task": "bench"})
        with open(store.path, "a", encoding="utf-8") as f:
            f.write('{"kind": "job", "torn...')
        reopened = JobStore(root)
        assert reopened.get(record.job_id).status == JOB_SUBMITTED
        # The torn tail was truncated away; new appends stay parseable.
        reopened.claim()
        assert JobStore(root, recover=False).get(record.job_id).status == JOB_RUNNING


class TestSubmissionSchema:
    def test_experiment_canonicalized(self):
        spec, priority = schema.validate_submission(
            {"task": "experiment", "experiment": "table1_config", "priority": 3}
        )
        assert spec == {
            "task": "experiment",
            "experiment": "table1_config",
            "params": {},
            "seed": 0,
        }
        assert priority == 3

    def test_sweep_and_bench_canonicalized(self, results_env, sweeps_env):
        spec, _ = schema.validate_submission({"task": "sweep", "spec": "m22"})
        assert spec == {"task": "sweep", "spec": "m22", "quick": False, "limit": None}
        spec, _ = schema.validate_submission({"task": "bench", "only": ["crypto.mac_fold"]})
        assert spec == {"task": "bench", "quick": True, "only": ["crypto.mac_fold"]}

    @pytest.mark.parametrize(
        "payload, match",
        [
            ("nope", "must be a JSON object"),
            ({"task": "mystery"}, "'task' must be one of"),
            ({"task": "experiment"}, "needs an 'experiment' name"),
            ({"task": "experiment", "experiment": "nope"}, "unknown experiment"),
            (
                {"task": "experiment", "experiment": "table1_config", "params": 7},
                "'params' must be a JSON object",
            ),
            (
                {"task": "experiment", "experiment": "table1_config", "seed": "x"},
                "'seed' must be an integer",
            ),
            (
                {"task": "experiment", "experiment": "table1_config", "extra": 1},
                "unknown submission field",
            ),
            ({"task": "sweep"}, "needs a 'spec' name"),
            ({"task": "sweep", "spec": "no-such-sweep"}, "no sweep spec"),
            ({"task": "sweep", "spec": "m22", "limit": 0}, "'limit' must be positive"),
            ({"task": "sweep", "spec": "m22", "quick": 1}, "'quick' must be a boolean"),
            ({"task": "bench", "only": "crypto.mac_fold"}, "must be a list"),
            ({"task": "bench", "only": ["nope"]}, "unknown benchmark"),
            ({"task": "bench", "priority": None}, "'priority' must be an integer"),
        ],
    )
    def test_rejected_submissions(self, results_env, sweeps_env, payload, match):
        with pytest.raises(ConfigError, match=match):
            schema.validate_submission(payload)

    def test_fingerprint_keys_on_spec_and_source(self):
        spec_a = {"task": "experiment", "experiment": "x", "params": {}, "seed": 0}
        spec_b = {"seed": 0, "params": {}, "experiment": "x", "task": "experiment"}
        assert schema.fingerprint(spec_a, "d1") == schema.fingerprint(spec_b, "d1")
        assert schema.fingerprint(spec_a, "d1") != schema.fingerprint(spec_a, "d2")
        assert schema.fingerprint({**spec_a, "seed": 1}, "d1") != schema.fingerprint(spec_a, "d1")


class TestPersistentPool:
    def test_pool_is_reused_across_batches(self, results_env):
        points = [
            PointRequest(experiment="table1_config", label="pool/a"),
            PointRequest(experiment="fig03_adam_slowdown", label="pool/b"),
        ]
        with Orchestrator(jobs=2, use_cache=False, verbose=False, persistent_pool=True) as orch:
            orch.run_points(points, write_manifest=False, save_artifacts=False)
            first_pool = orch._pool
            assert first_pool is not None
            orch.run_points(
                [PointRequest(experiment="table1_config", label="pool/c")],
                write_manifest=False,
                save_artifacts=False,
            )
            # The single-point batch ran on the same warm pool, not inline
            # and not on a throwaway executor.
            assert orch._pool is first_pool
        assert orch._pool is None  # the context manager shut it down

    def test_broken_pool_is_recycled(self, results_env):
        orch = Orchestrator(jobs=2, verbose=False, persistent_pool=True)
        pool = orch._ensure_pool()
        orch._pool_broken = True
        fresh = orch._ensure_pool()
        assert fresh is not pool and orch._pool_broken is False
        orch.shutdown_pool()

    def test_priority_orders_execution(self, results_env, tmp_path):
        journal_path = str(tmp_path / "exec.jsonl")
        journal = RunJournal.start(journal_path, {})
        points = [
            PointRequest(experiment="table1_config", label="prio/low", priority=0),
            PointRequest(experiment="table1_config", label="prio/high", priority=5),
            PointRequest(experiment="table1_config", label="prio/mid", priority=1),
        ]
        orch = Orchestrator(jobs=1, use_cache=False, verbose=False)
        orch.run_points(points, write_manifest=False, save_artifacts=False, journal=journal)
        executed = [r.label for r in read_journal(journal_path).records]
        assert executed == ["prio/high", "prio/mid", "prio/low"]


class TestServiceEndToEnd:
    def test_experiment_roundtrip_and_cache_hit(self, service):
        svc, client = service(workers=2)
        first = submit_experiment(client, "table1_config")
        assert first["status"] == JOB_SUBMITTED and first["cached"] is False
        first = client.wait(first["id"], timeout=120)
        assert first["status"] == JOB_DONE
        first_result = client.result(first["id"])["result"]
        assert first_result["status"] == "executed"
        # Resubmission: answered at submit time, straight from the cache.
        second = submit_experiment(client, "table1_config")
        assert second["status"] == JOB_DONE and second["cached"] is True
        second_result = client.result(second["id"])["result"]
        assert second_result["text"] == first_result["text"]
        with open(second_result["artifact"], encoding="utf-8") as f:
            assert f.read() == first_result["text"].rstrip() + "\n"
        # A different seed is different work: queued, not cached.
        third = submit_experiment(client, "table1_config", seed=7)
        assert third["cached"] is False

    def test_failed_job_reports_worker_traceback(self, service, temp_experiment):
        def explode():
            raise RuntimeError("meltdown in the worker")

        temp_experiment("serve_explode", explode)
        svc, client = service()
        view = submit_experiment(client, "serve_explode")
        view = client.wait(view["id"], timeout=60)
        assert view["status"] == JOB_FAILED
        assert view["error_type"] == "RuntimeError"
        assert "meltdown in the worker" in view["error"]
        assert "Traceback" in view["error"]
        result = client.result(view["id"])
        assert result["status"] == JOB_FAILED and result["result"] is None

    def test_sweep_job_and_fingerprint_dedup(self, service, sweeps_env):
        svc, client = service()
        view = client.submit({"task": "sweep", "spec": "m22", "quick": False})
        view = client.wait(view["id"], timeout=240)
        assert view["status"] == JOB_DONE
        document = client.result(view["id"])["result"]["document"]
        assert len(document["points"]) == 4
        assert document["counts"]["failed"] == 0
        again = client.submit({"task": "sweep", "spec": "m22"})
        assert again["status"] == JOB_DONE and again["cached"] is True
        assert client.result(again["id"])["result"]["document"] == document

    def test_bench_job(self, service):
        svc, client = service()
        view = client.submit({"task": "bench", "only": ["crypto.mac_fold"], "quick": True})
        view = client.wait(view["id"], timeout=240)
        assert view["status"] == JOB_DONE
        report = client.result(view["id"])["result"]["report"]
        assert [b["name"] for b in report["benchmarks"]] == ["crypto.mac_fold"]

    def test_cancel_and_http_errors(self, service):
        svc, client = service(start_executor=False)
        view = submit_experiment(client, "table1_config")
        cancelled = client.cancel(view["id"])
        assert cancelled["status"] == JOB_CANCELLED
        with pytest.raises(ServiceError) as excinfo:
            client.cancel(view["id"])
        assert excinfo.value.status == 409
        with pytest.raises(ServiceError) as excinfo:
            client.result(submit_experiment(client, "fig03_adam_slowdown")["id"])
        assert excinfo.value.status == 409 and "not ready" in str(excinfo.value)
        with pytest.raises(ServiceError) as excinfo:
            client.job("doesnotexist")
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"task": "mystery"})
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/nowhere")
        assert excinfo.value.status == 404

    def test_keepalive_connection_survives_bodied_cancel(self, service):
        import http.client

        svc, client = service(start_executor=False)
        view = submit_experiment(client, "table1_config")
        conn = http.client.HTTPConnection("127.0.0.1", svc.port, timeout=10)
        try:
            # A client that POSTs a body to /cancel must not desync the
            # persistent connection: the next request on the same socket
            # has to parse cleanly.
            conn.request(
                "POST",
                f"/v1/jobs/{view['id']}/cancel",
                body=b"{}",
                headers={"Content-Type": "application/json"},
            )
            first = conn.getresponse()
            assert first.status == 200
            assert json.loads(first.read())["status"] == JOB_CANCELLED
            conn.request("GET", "/v1/health")
            second = conn.getresponse()
            assert second.status == 200
            assert json.loads(second.read())["status"] == "ok"
        finally:
            conn.close()

    def test_unexpected_handler_error_is_a_500(self, service):
        svc, client = service(start_executor=False)
        svc.submit = lambda payload: (_ for _ in ()).throw(RuntimeError("handler bug"))
        with pytest.raises(ServiceError) as excinfo:
            submit_experiment(client, "table1_config")
        assert excinfo.value.status == 500
        assert "internal error" in str(excinfo.value) and "handler bug" in str(excinfo.value)

    def test_executor_survives_store_errors(self, service):
        svc, client = service()
        real_claim = svc.store.claim
        blown = threading.Event()

        def claim_once_broken():
            if not blown.is_set():
                blown.set()
                raise OSError("journal fsync failed")
            return real_claim()

        svc.store.claim = claim_once_broken
        view = submit_experiment(client, "table1_config")
        assert client.wait(view["id"], timeout=120)["status"] == JOB_DONE

    def test_attempts_count_only_real_executions(self, service):
        svc, client = service(start_executor=False)
        queued = submit_experiment(client, "table1_config")
        assert queued["attempts"] == 0
        cancelled = client.cancel(queued["id"])
        assert cancelled["attempts"] == 0  # never ran
        svc2, client2 = service()
        ran = submit_experiment(client2, "fig03_adam_slowdown", seed=3)
        assert client2.wait(ran["id"], timeout=120)["attempts"] == 1
        cached = submit_experiment(client2, "fig03_adam_slowdown", seed=3)
        assert cached["cached"] is True and cached["attempts"] == 0

    def test_malformed_body_is_a_400(self, service):
        svc, client = service(start_executor=False)
        request = urllib.request.Request(
            client.base_url + "/jobs", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read())
        assert "not valid JSON" in body["error"]

    def test_health_and_list(self, service):
        svc, client = service(start_executor=False)
        submit_experiment(client, "table1_config")
        health = client.health()
        assert health["status"] == "ok" and health["jobs"] == 1
        assert health["counts"] == {JOB_SUBMITTED: 1}
        listing = client.jobs()
        assert len(listing) == 1 and listing[0]["task"] == "experiment"

    def test_restart_resumes_pending_jobs(self, results_env, tmp_path):
        queue_dir = str(tmp_path / "queue")
        first = JobService(
            port=0, workers=1, verbose=False, queue_dir=queue_dir, start_executor=False
        )
        first.start()
        client = ServeClient(port=first.port)
        a = submit_experiment(client, "table1_config")
        b = submit_experiment(client, "fig03_adam_slowdown")
        first.close()
        second = JobService(port=0, workers=1, verbose=False, queue_dir=queue_dir)
        second.start()
        try:
            client = ServeClient(port=second.port)
            assert client.wait(a["id"], timeout=120)["status"] == JOB_DONE
            assert client.wait(b["id"], timeout=120)["status"] == JOB_DONE
        finally:
            second.close()

    def test_once_drains_and_exits(self, results_env, tmp_path):
        svc = JobService(
            port=0,
            workers=1,
            verbose=False,
            queue_dir=str(tmp_path / "queue"),
            once=True,
            grace=0.2,
        )
        exit_code = {}
        thread = threading.Thread(target=lambda: exit_code.setdefault("rc", svc.run()))
        thread.start()
        client = ServeClient(port=svc.port)
        view = submit_experiment(client, "table1_config")
        assert client.wait(view["id"], timeout=120)["status"] == JOB_DONE
        thread.join(timeout=60)
        assert not thread.is_alive() and exit_code["rc"] == 0

    def test_shutdown_endpoint_stops_run(self, results_env, tmp_path):
        svc = JobService(port=0, workers=1, verbose=False, queue_dir=str(tmp_path / "q"))
        exit_code = {}
        thread = threading.Thread(target=lambda: exit_code.setdefault("rc", svc.run()))
        thread.start()
        client = ServeClient(port=svc.port)
        assert client.shutdown()["status"] == "stopping"
        thread.join(timeout=60)
        assert not thread.is_alive() and exit_code["rc"] == 0

    def test_port_already_bound_is_config_error(self, results_env, tmp_path):
        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        port = blocker.getsockname()[1]
        try:
            with pytest.raises(ConfigError, match="cannot bind"):
                JobService(port=port, verbose=False, queue_dir=str(tmp_path / "q"))
        finally:
            blocker.close()


class TestKillAndRestart:
    def test_sigkill_mid_queue_then_restart_completes(self, tmp_path):
        """The acceptance crash test, against a real server process."""
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(REPO, "src")] + env.get("PYTHONPATH", "").split(os.pathsep)
        ).rstrip(os.pathsep)
        env["REPRO_RESULTS_DIR"] = str(tmp_path)
        queue_dir = str(tmp_path / "queue")
        port = free_port()
        env_paused = dict(env, REPRO_SERVE_NO_EXECUTOR="1")
        args = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            str(port),
            "--queue-dir",
            queue_dir,
            "--workers",
            "1",
            "--quiet",
        ]
        server = subprocess.Popen(args, env=env_paused, cwd=REPO)
        try:
            client = ServeClient(port=port)
            for _ in range(100):
                try:
                    client.health()
                    break
                except ServiceError:
                    time.sleep(0.1)
            a = submit_experiment(client, "table1_config")
            b = submit_experiment(client, "fig03_adam_slowdown")
            assert client.job(a["id"])["status"] == JOB_SUBMITTED
        finally:
            server.send_signal(signal.SIGKILL)
            server.wait(timeout=30)
        restarted = subprocess.run(
            args + ["--once", "--grace", "0.2"], env=env, cwd=REPO, timeout=240
        )
        assert restarted.returncode == 0
        store = JobStore(queue_dir, recover=False)
        assert store.get(a["id"]).status == JOB_DONE
        assert store.get(b["id"]).status == JOB_DONE


class TestJobsCli:
    def test_server_not_running_is_exit_2(self, results_env, capsys):
        from repro.cli import main

        port = str(free_port())
        assert main(["jobs", "status", "someid", "--port", port]) == 2
        err = capsys.readouterr().err
        assert "cannot reach repro serve" in err and "Traceback" not in err

    def test_unknown_job_id_is_exit_2(self, service, capsys):
        from repro.cli import main

        svc, _ = service(start_executor=False)
        assert main(["jobs", "status", "nope", "--port", str(svc.port)]) == 2
        assert "unknown job id" in capsys.readouterr().err

    def test_malformed_params_json_is_exit_2(self, results_env, capsys):
        from repro.cli import main

        code = main(["jobs", "submit", "experiment", "table1_config", "--params", "{oops"])
        assert code == 2
        assert "--params is not valid JSON" in capsys.readouterr().err

    def test_params_must_be_an_object(self, results_env, capsys):
        from repro.cli import main

        code = main(["jobs", "submit", "experiment", "table1_config", "--params", "[1]"])
        assert code == 2
        assert "must be a JSON object" in capsys.readouterr().err

    def test_missing_targets_are_exit_2(self, results_env, capsys):
        from repro.cli import main

        assert main(["jobs", "submit", "experiment"]) == 2
        assert "needs an experiment name" in capsys.readouterr().err
        assert main(["jobs", "submit", "sweep"]) == 2
        assert "needs a spec name" in capsys.readouterr().err
        assert main(["jobs", "submit", "bench", "oops"]) == 2
        assert "takes no target" in capsys.readouterr().err

    def test_inapplicable_flags_are_exit_2(self, results_env, capsys):
        from repro.cli import main

        assert main(["jobs", "submit", "sweep", "m22", "--seed", "7"]) == 2
        assert "does not take --seed" in capsys.readouterr().err
        assert main(["jobs", "submit", "experiment", "table1_config", "--quick"]) == 2
        assert "does not take --quick" in capsys.readouterr().err
        assert main(["jobs", "submit", "bench", "--limit", "3"]) == 2
        assert "does not take --limit" in capsys.readouterr().err

    def test_submit_wait_status_result_list(self, service, capsys):
        from repro.cli import main

        svc, _ = service(workers=1)
        port = str(svc.port)
        code = main(
            ["jobs", "submit", "experiment", "table1_config", "--port", port, "--wait", "--json"]
        )
        assert code == 0
        view = json.loads(capsys.readouterr().out)
        assert view["status"] == JOB_DONE
        assert main(["jobs", "status", view["id"], "--port", port]) == 0
        assert "[done]" in capsys.readouterr().out
        assert main(["jobs", "wait", view["id"], "--port", port]) == 0
        capsys.readouterr()
        assert main(["jobs", "result", view["id"], "--port", port, "--text"]) == 0
        text = capsys.readouterr().out
        assert "Table 1" in text or text.strip()
        assert main(["jobs", "list", "--port", port]) == 0
        assert view["id"] in capsys.readouterr().out

    def test_cancel_and_failed_wait_exit_codes(self, service, capsys, temp_experiment):
        from repro.cli import main

        def explode():
            raise RuntimeError("cli sees the traceback")

        temp_experiment("serve_cli_explode", explode)
        svc, client = service(start_executor=False)
        port = str(svc.port)
        pending = submit_experiment(client, "table1_config")
        assert main(["jobs", "cancel", pending["id"], "--port", port]) == 0
        assert "[cancelled]" in capsys.readouterr().out
        assert main(["jobs", "wait", pending["id"], "--port", port]) == 1
        capsys.readouterr()
        svc2, client2 = service()
        failing = submit_experiment(client2, "serve_cli_explode")
        assert main(["jobs", "wait", failing["id"], "--port", str(svc2.port)]) == 1
        out = capsys.readouterr().out
        assert "RuntimeError" in out and "cli sees the traceback" in out

    def test_wait_timeout_is_exit_2(self, service, capsys):
        from repro.cli import main

        svc, client = service(start_executor=False)
        pending = submit_experiment(client, "table1_config")
        code = main(["jobs", "wait", pending["id"], "--port", str(svc.port), "--timeout", "0.3"])
        assert code == 2
        assert "timed out" in capsys.readouterr().err

    def test_serve_once_cli_roundtrip(self, results_env, tmp_path):
        from repro.cli import main

        port = free_port()
        rc = {}
        thread = threading.Thread(
            target=lambda: rc.setdefault(
                "serve",
                main(
                    [
                        "serve",
                        "--port",
                        str(port),
                        "--once",
                        "--grace",
                        "0.2",
                        "--quiet",
                        "--workers",
                        "1",
                        "--queue-dir",
                        str(tmp_path / "queue"),
                    ]
                ),
            )
        )
        thread.start()
        client = ServeClient(port=port)
        for _ in range(100):
            try:
                client.health()
                break
            except ServiceError:
                time.sleep(0.1)
        view = submit_experiment(client, "table1_config")
        assert client.wait(view["id"], timeout=120)["status"] == JOB_DONE
        thread.join(timeout=120)
        assert not thread.is_alive() and rc["serve"] == 0

    def test_serve_negative_grace_is_exit_2(self, results_env, capsys):
        from repro.cli import main

        assert main(["serve", "--grace", "-1"]) == 2
        assert "--grace" in capsys.readouterr().err


class TestSweepStatusNoJournal:
    def test_exit_3_with_distinct_message(self, results_env, capsys):
        from repro.cli import EXIT_NO_JOURNAL, main

        code = main(["sweep", "status", "mee_geometry"])
        assert code == EXIT_NO_JOURNAL == 3
        err = capsys.readouterr().err
        assert "no run journal found" in err and "has never run" in err

    def test_incomplete_sweep_still_exits_1(self, results_env, sweeps_env, capsys):
        from repro.cli import main

        assert main(["sweep", "run", "m22", "--shard", "1/2", "--quiet", "--jobs", "1"]) == 0
        capsys.readouterr()
        assert main(["sweep", "status", "m22"]) == 1  # pending points, not exit 3
        assert "pending" in capsys.readouterr().out

class TestBatchSchema:
    def test_submit_batch_envelope(self):
        assert schema.validate_batch_jobs({"jobs": [{"task": "bench"}]}) == [{"task": "bench"}]
        with pytest.raises(ConfigError, match="JSON object"):
            schema.validate_batch_jobs([{"task": "bench"}])
        with pytest.raises(ConfigError, match="unknown batch field"):
            schema.validate_batch_jobs({"jobs": [], "oops": 1})
        with pytest.raises(ConfigError, match="non-empty 'jobs' list"):
            schema.validate_batch_jobs({"jobs": []})
        with pytest.raises(ConfigError, match="exceeds the limit"):
            schema.validate_batch_jobs({"jobs": [{}] * (schema.MAX_BATCH + 1)})

    def test_status_batch_body(self):
        assert schema.validate_batch_status({"ids": ["a", "b"]}) == (["a", "b"], False)
        assert schema.validate_batch_status({"all": True}) == ([], True)
        with pytest.raises(ConfigError, match="not both"):
            schema.validate_batch_status({"ids": ["a"], "all": True})
        with pytest.raises(ConfigError, match="non-empty 'ids' list"):
            schema.validate_batch_status({"ids": []})
        with pytest.raises(ConfigError, match="non-empty 'ids' list"):
            schema.validate_batch_status({})
        with pytest.raises(ConfigError, match="must be a boolean"):
            schema.validate_batch_status({"all": "yes"})
        with pytest.raises(ConfigError, match="unknown status batch field"):
            schema.validate_batch_status({"id": "a"})


class TestBatchEndpoints:
    def test_mixed_batch_rejects_only_bad_entries(self, service):
        svc, client = service(start_executor=False)
        answer = client.submit_batch(
            [
                {"task": "experiment", "experiment": "table1_config", "seed": 1},
                {"task": "mystery"},
                {"task": "experiment", "experiment": "table1_config", "seed": 2},
                {"task": "experiment", "experiment": "no_such_experiment"},
            ]
        )
        assert answer["accepted"] == 2 and answer["rejected"] == 2
        entries = answer["jobs"]
        assert entries[0]["status"] == JOB_SUBMITTED
        assert entries[1] == {"index": 1, "error": entries[1]["error"]}
        assert "mystery" in entries[1]["error"]
        assert entries[2]["status"] == JOB_SUBMITTED
        assert "no_such_experiment" in entries[3]["error"]
        # The rejected entries were never enqueued, let alone journaled.
        assert svc.store.total() == 2
        assert {r.job_id for r in svc.store.jobs()} == {entries[0]["id"], entries[2]["id"]}

    def test_batch_is_one_round_trip(self, service):
        svc, _ = service(start_executor=False)
        fresh = ServeClient(port=svc.port)
        batch = [
            {"task": "experiment", "experiment": "table1_config", "seed": seed}
            for seed in range(50)
        ]
        answer = fresh.submit_batch(batch)
        assert answer["accepted"] == 50
        assert fresh.requests == 1  # M jobs, O(1) HTTP round trips
        views = fresh.status_batch(ids=[v["id"] for v in answer["jobs"]])["jobs"]
        assert fresh.requests == 2
        assert [v["id"] for v in views] == [v["id"] for v in answer["jobs"]]

    def test_duplicate_fingerprints_in_batch_are_cached(self, service):
        svc, client = service(start_executor=False)
        body = {"task": "bench", "only": ["crypto.mac_fold"], "quick": True}
        first = client.submit(dict(body))
        claim = client.claim(worker="w1", lease_ttl=60.0)
        assert claim["job"]["id"] == first["id"]
        client.complete(first["id"], "w1", ok=True, result={"task": "bench", "report": {}})
        answer = client.submit_batch(
            [dict(body), {"task": "experiment", "experiment": "table1_config"}, dict(body)]
        )
        assert answer["accepted"] == 3 and answer["rejected"] == 0
        dup_a, unique, dup_b = answer["jobs"]
        assert dup_a["cached"] is True and dup_a["status"] == JOB_DONE
        assert dup_b["cached"] is True and dup_b["status"] == JOB_DONE
        assert unique["cached"] is False and unique["status"] == JOB_SUBMITTED
        assert client.result(dup_a["id"])["result"]["cached"] is True

    def test_batch_sweep_entry_fans_out(self, service, sweeps_env):
        svc, client = service(start_executor=False)
        answer = client.submit_batch(
            [
                {"task": "sweep", "spec": "m22", "shards": 2},
                {"task": "experiment", "experiment": "table1_config"},
            ]
        )
        assert answer["accepted"] == 2
        parent = answer["jobs"][0]
        assert len(parent["children"]) == 2
        assert svc.store.total() == 4  # parent + 2 shard children + experiment

    def test_status_batch_ids_all_and_unknown(self, service):
        svc, client = service(start_executor=False)
        submitted = client.submit_batch(
            [
                {"task": "experiment", "experiment": "table1_config", "seed": seed}
                for seed in range(3)
            ]
        )["jobs"]
        ids = [v["id"] for v in submitted]
        answer = client.status_batch(ids=[ids[0], "doesnotexist", ids[2]])
        views = answer["jobs"]
        assert views[0]["id"] == ids[0] and views[0]["status"] == JOB_SUBMITTED
        assert views[1] == {"id": "doesnotexist", "error": views[1]["error"]}
        assert "unknown job id" in views[1]["error"]
        assert views[2]["id"] == ids[2]
        everything = client.status_batch(all_jobs=True)
        assert [v["id"] for v in everything["jobs"]] == ids  # submission order
        assert everything["total"] == 3
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/jobs/status_batch", {"ids": [], "all": True})
        assert excinfo.value.status == 400

    def test_concurrent_claims_drain_batch_exactly_once(self, service):
        svc, client = service(start_executor=False)
        total = 40
        claimed = []
        stop = threading.Event()

        def hammer():
            worker = ServeClient(port=svc.port)
            while not stop.is_set():
                answer = worker.claim(worker="w", lease_ttl=120.0)
                if answer["job"] is not None:
                    claimed.append(answer["job"]["id"])
                elif len(claimed) >= total:
                    return

        thread = threading.Thread(target=hammer)
        thread.start()
        try:
            answer = client.submit_batch(
                [
                    {"task": "experiment", "experiment": "table1_config", "seed": seed}
                    for seed in range(total)
                ]
            )
            assert answer["accepted"] == total
            deadline = time.time() + 60
            while len(claimed) < total and time.time() < deadline:
                time.sleep(0.02)
        finally:
            stop.set()
            thread.join(timeout=30)
        # Every batch job was claimable and claimed exactly once — a
        # concurrent claimer saw none-or-all of the batch, never a
        # half-journaled prefix.
        assert sorted(claimed) == sorted(v["id"] for v in answer["jobs"])


class TestLiveCompaction:
    def churn(self, store, cycles):
        ids = []
        for i in range(cycles):
            record = store.submit({"task": "bench", "seed": i}, fingerprint=f"fp{i}")
            ids.append(record.job_id)
            store.claim()
            store.finish(record.job_id, JOB_DONE, result={"i": i})
        return ids

    def test_live_compaction_bounds_journal(self, tmp_path):
        root = str(tmp_path / "q")
        store = JobStore(root, compact_records=8)
        ids = self.churn(store, 20)
        view = read_journal(store.path)
        assert int(view.header.get("compactions", 0)) >= 1
        # 20 jobs x 3 transitions = 60 lines without compaction; the live
        # file stays bounded by max(threshold, 2 x queue size).
        assert len(view.jobs) <= max(store.compact_records, 2 * store.total())
        assert not os.path.exists(store.path + ".compact.tmp")
        reopened = JobStore(root, recover=False)
        assert [reopened.get(job_id).status for job_id in ids] == [JOB_DONE] * 20
        assert reopened.get(ids[-1]).result == {"i": 19}

    def test_compact_records_knobs(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_COMPACT_RECORDS", "16")
        store = JobStore(str(tmp_path / "q"))
        assert store.compact_records == 16
        assert JobStore(str(tmp_path / "q2"), compact_records=64).compact_records == 64
        with pytest.raises(ConfigError, match="compact_records"):
            JobStore(str(tmp_path / "q3"), compact_records=1)

    def test_large_live_queue_is_not_thrashed(self, tmp_path):
        # All-live journals (no superseded lines) must never be rewritten,
        # even past the record threshold.
        store = JobStore(str(tmp_path / "q"), compact_records=4)
        for i in range(12):
            store.submit({"task": "bench", "seed": i})
        view = read_journal(store.path)
        assert int(view.header.get("compactions", 0)) == 0
        assert len(view.jobs) == 12

    def test_kill_during_compaction_loses_no_records(self, tmp_path):
        root = str(tmp_path / "queue")
        child = (
            "import sys\n"
            "from repro.serve.store import JobStore\n"
            "from repro.eval.journal import JOB_DONE\n"
            "store = JobStore(sys.argv[1], compact_records=8)\n"
            "for i in range(100):\n"
            "    record = store.submit({'task': 'bench', 'seed': i}, fingerprint=f'fp{i}')\n"
            "    print(record.job_id, flush=True)\n"
            "    store.claim()\n"
            "    store.finish(record.job_id, JOB_DONE, result={'i': i})\n"
            "print('NOCRASH', flush=True)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(REPO, "src")] + env.get("PYTHONPATH", "").split(os.pathsep)
        ).rstrip(os.pathsep)
        env["REPRO_STORE_CRASH_IN_COMPACT"] = "1"
        done = subprocess.run(
            [sys.executable, "-c", child, root],
            env=env,
            cwd=REPO,
            capture_output=True,
            text=True,
            timeout=120,
        )
        # The store hard-exited inside its first live compaction, after
        # the snapshot was durable but before the atomic swap.
        assert done.returncode == CRASH_EXIT_CODE, done.stderr
        printed = [line for line in done.stdout.split() if line != "NOCRASH"]
        assert printed and "NOCRASH" not in done.stdout
        store_path = os.path.join(root, "jobs.jsonl")
        assert os.path.exists(store_path + ".compact.tmp")
        # The journal itself is intact: every id the child announced is
        # still there (the crash can only have journaled one *extra*
        # un-announced record, never lost one).
        survivors = {r.job_id for r in read_journal(store_path).jobs}
        assert set(printed) <= survivors
        assert len(survivors) - len(set(printed)) <= 1
        store = JobStore(root)  # reopen: cleans the tmp, replays, compacts
        assert not os.path.exists(store_path + ".compact.tmp")
        for job_id in printed:
            assert store.get(job_id).status in (JOB_SUBMITTED, JOB_RUNNING, JOB_DONE)

    def test_listing_mid_compaction_sees_committed_state(self, tmp_path):
        # The `repro jobs list` regression: a listing racing a live
        # compaction must block on the store lock and then see the full
        # committed queue — never a half-written snapshot.
        store = JobStore(str(tmp_path / "q"), compact_records=10_000)
        ids = self.churn(store, 6)  # 18 lines, 6 jobs: plenty superseded
        paused = threading.Event()
        release = threading.Event()
        snapshot = store._write_snapshot

        def slow_snapshot(tmp, header):
            paused.set()
            assert release.wait(timeout=30)
            snapshot(tmp, header)

        store._write_snapshot = slow_snapshot
        compactor = threading.Thread(target=store._compact)
        compactor.start()
        assert paused.wait(timeout=30)
        try:
            # On-disk journal is still the old, complete one (the tmp
            # file is invisible to readers of jobs.jsonl).
            view = read_journal(store.path)
            assert {r.job_id for r in view.jobs} == set(ids)
            listing = {}
            lister = threading.Thread(target=lambda: listing.setdefault("jobs", store.jobs()))
            lister.start()
            lister.join(timeout=0.3)
            assert "jobs" not in listing  # blocked on committed state
        finally:
            release.set()
        compactor.join(timeout=30)
        lister.join(timeout=30)
        assert {r.job_id for r in listing["jobs"]} == set(ids)
        compacted = read_journal(store.path)
        assert len(compacted.jobs) == 6
        assert {r.job_id for r in compacted.jobs} == set(ids)

    def test_http_list_mid_compaction_is_complete(self, service):
        svc, client = service(start_executor=False)
        batch = client.submit_batch(
            [
                {"task": "experiment", "experiment": "table1_config", "seed": seed}
                for seed in range(5)
            ]
        )
        ids = {v["id"] for v in batch["jobs"]}
        for job_id in list(ids)[:3]:
            client.cancel(job_id)  # superseded lines so _compact has work
        store = svc.store
        paused = threading.Event()
        release = threading.Event()
        snapshot = store._write_snapshot

        def slow_snapshot(tmp, header):
            paused.set()
            assert release.wait(timeout=30)
            snapshot(tmp, header)

        store._write_snapshot = slow_snapshot
        compactor = threading.Thread(target=store._compact)
        compactor.start()
        assert paused.wait(timeout=30)
        listing = {}
        lister = threading.Thread(target=lambda: listing.setdefault("jobs", client.jobs()))
        lister.start()
        try:
            lister.join(timeout=0.3)
            assert "jobs" not in listing  # the GET is waiting, not guessing
        finally:
            release.set()
        compactor.join(timeout=30)
        lister.join(timeout=30)
        assert {v["id"] for v in listing["jobs"]} == ids


class TestServeLoadBenches:
    def test_family_is_registered(self):
        from repro.perf.registry import BENCH_REGISTRY

        names = [s.name for s in BENCH_REGISTRY.select(tags=["serve"])]
        assert names == [
            "serve.submit_unique",
            "serve.submit_cached",
            "serve.submit_batch",
            "serve.status_batch",
            "serve.claim_cycle",
            "serve.mixed_load",
        ]
        assert all(not s.paired for s in BENCH_REGISTRY.select(tags=["serve"]))

    def test_submit_batch_bench_quick(self, results_env):
        from repro.perf.harness import run_spec
        from repro.perf.registry import BENCH_REGISTRY

        record = run_spec(BENCH_REGISTRY.get("serve.submit_batch"), quick=True)
        assert record["items"] == 16
        assert record["modes"]["vector"]["throughput_items_per_s"] > 0
        assert record["speedup"] is None

    def test_claim_cycle_bench_reports_latency(self, results_env):
        from repro.perf.harness import run_spec
        from repro.perf.registry import BENCH_REGISTRY

        record = run_spec(BENCH_REGISTRY.get("serve.claim_cycle"), quick=True)
        latency = record["extra"]["claim_latency"]
        assert latency["samples"] > 0
        assert 0 < latency["p50_s"] <= latency["p90_s"]


class TestJobsCliBatch:
    def test_batch_file_array_and_jsonl(self, service, tmp_path, capsys):
        from repro.cli import main

        svc, _ = service(start_executor=False)
        port = str(svc.port)
        array_file = tmp_path / "batch.json"
        array_file.write_text(
            json.dumps(
                [
                    {"task": "experiment", "experiment": "table1_config", "seed": 1},
                    {"task": "mystery"},
                ]
            )
        )
        assert main(["jobs", "submit", "--batch-file", str(array_file), "--port", port]) == 1
        captured = capsys.readouterr()
        assert "1 accepted, 1 rejected" in captured.out
        assert "entry 1: error" in captured.err and "mystery" in captured.err
        jsonl_file = tmp_path / "batch.jsonl"
        jsonl_file.write_text(
            '{"task": "experiment", "experiment": "table1_config", "seed": 2}\n'
            '{"task": "experiment", "experiment": "table1_config", "seed": 3}\n'
        )
        code = main(["jobs", "submit", "--batch-file", str(jsonl_file), "--port", port, "--json"])
        assert code == 0
        answer = json.loads(capsys.readouterr().out)
        assert answer["accepted"] == 2 and answer["rejected"] == 0
        assert svc.store.total() == 3

    def test_batch_file_misuse_is_exit_2(self, service, tmp_path, capsys):
        from repro.cli import main

        svc, _ = service(start_executor=False)
        port = str(svc.port)
        batch = tmp_path / "b.json"
        batch.write_text('[{"task": "bench"}]')
        code = main(["jobs", "submit", "bench", "--batch-file", str(batch), "--port", port])
        assert code == 2
        assert "no positional task" in capsys.readouterr().err
        code = main(["jobs", "submit", "--batch-file", str(batch), "--seed", "7", "--port", port])
        assert code == 2
        assert "--seed" in capsys.readouterr().err
        assert main(["jobs", "submit", "--port", port]) == 2
        assert "or --batch-file" in capsys.readouterr().err
        empty = tmp_path / "empty.json"
        empty.write_text("  \n")
        assert main(["jobs", "submit", "--batch-file", str(empty), "--port", port]) == 2
        assert "is empty" in capsys.readouterr().err
        torn = tmp_path / "torn.jsonl"
        torn.write_text('{"task": "bench"}\n{oops\n')
        assert main(["jobs", "submit", "--batch-file", str(torn), "--port", port]) == 2
        assert "line 2" in capsys.readouterr().err

    def test_status_multi_id_and_all(self, service, capsys):
        from repro.cli import main

        svc, client = service(start_executor=False)
        port = str(svc.port)
        views = client.submit_batch(
            [
                {"task": "experiment", "experiment": "table1_config", "seed": seed}
                for seed in range(2)
            ]
        )["jobs"]
        a, b = views[0]["id"], views[1]["id"]
        assert main(["jobs", "status", a, b, "--port", port]) == 0
        out = capsys.readouterr().out
        assert a in out and b in out
        assert main(["jobs", "status", "--all", "--port", port]) == 0
        out = capsys.readouterr().out
        assert a in out and b in out
        # An unknown id among several is a per-entry error and exit 2.
        assert main(["jobs", "status", a, "nope", "--port", port]) == 2
        captured = capsys.readouterr()
        assert a in captured.out and "unknown job id" in captured.err
        assert main(["jobs", "status", a, "--all", "--port", port]) == 2
        assert "not both" in capsys.readouterr().err
        assert main(["jobs", "status", "--port", port]) == 2
        assert "at least one job id" in capsys.readouterr().err
