"""Evaluation-harness smoke and shape tests on reduced workload subsets."""

import os

import pytest

from repro.eval import (
    fig03_adam_slowdown,
    fig04_tensor_stats,
    fig16_overall,
    fig20_mac_granularity,
    tables_12,
)
from repro.eval.tables import ascii_table, fmt, pct, save_result
from repro.workloads.models import MODEL_ZOO


SMALL = MODEL_ZOO[:3]


class TestTables:
    def test_fmt_and_pct(self):
        assert fmt(1.2345) == "1.23"
        assert pct(0.123) == "12.3%"

    def test_save_result_writes_file(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            "repro.eval.tables.results_dir", lambda: str(tmp_path)
        )
        path = save_result("unit_test", "hello")
        assert os.path.exists(path)
        with open(path) as f:
            assert f.read() == "hello\n"

    def test_ascii_table_handles_mixed_types(self):
        out = ascii_table(["x", "y"], [(1, "a"), (2.5, None)])
        assert "None" in out


class TestFigureGenerators:
    @pytest.mark.slow
    def test_fig03_rows_cover_thread_range(self):
        result = fig03_adam_slowdown.run(n_params=50_000_000, max_threads=4)
        assert [r.threads for r in result.rows] == [1, 2, 3, 4]
        assert "Figure 3" in fig03_adam_slowdown.render(result)

    def test_fig04_small_subset(self):
        result = fig04_tensor_stats.run(models=SMALL)
        assert len(result.rows) == 3
        assert all(r.mean_tensor_mib > 0 for r in result.rows)

    @pytest.mark.slow
    def test_fig16_small_subset_consistent(self):
        result = fig16_overall.run(models=SMALL)
        for row in result.rows:
            assert row.baseline_s > row.non_secure_s
            assert row.tensortee_s >= row.non_secure_s
        assert "speedup" in fig16_overall.render(result)

    def test_fig20_rows_sorted_by_granularity(self):
        result = fig20_mac_granularity.run()
        granules = [r.granule_bytes for r in result.rows if r.granule_bytes]
        assert granules == sorted(granules)

    def test_table_renderers_nonempty(self):
        assert "3.5 GHz" in tables_12.render_table1()
        assert "GPT2-M" in tables_12.render_table2()
        assert "24.0 KiB" in tables_12.render_hw_overhead()


class TestAblations:
    def test_entmf_disabled_hits_nothing(self):
        from repro.eval.ablations import entmf_disabled

        row = entmf_disabled(iterations=2)
        assert row.hit_in_late == 0.0

    def test_capacity_rows_labelled(self):
        from repro.eval.ablations import AblationRow, render

        text = render([AblationRow("x", 0.1, 0.9, 10)], "T")
        assert "T" in text and "0.900" in text
