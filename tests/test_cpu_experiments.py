"""CPU experiment drivers and timing model (Figs. 3, 18, 19 + GEMM claim)."""

import pytest

from repro.cpu.adam import AdamExperiment, AdamExperimentConfig
from repro.cpu.config import CpuConfig
from repro.cpu.gemm import GemmExperiment
from repro.cpu.metadata_model import measure_sgx_metadata, tree_levels
from repro.cpu.sgx import sgx_costs
from repro.cpu.softvn import softvn_costs
from repro.cpu.tensortee_mode import AnalyzerRates, tensortee_costs
from repro.cpu.timing import adam_latency, non_secure_costs, slowdown
from repro.units import GiB
from repro.workloads.traces import GemmConfig

P = 345_000_000


@pytest.fixture(scope="module")
def cpu_config():
    return CpuConfig()


class TestMetadataModel:
    def test_tree_levels_grow_with_region(self):
        assert tree_levels(1 << 20) < tree_levels(1 << 28)

    def test_streaming_rates_reasonable(self):
        t = measure_sgx_metadata(1 * GiB, sample_lines=20_000, streams=4)
        # VN and MAC lines each miss about 1/8 of the time when streaming.
        assert 0.15 < t.read_txns_per_line < 1.0
        assert t.write_txns_per_line > 0
        assert t.metadata_hit_rate > 0.5


class TestTimingModel:
    def test_non_secure_scales_with_threads(self, cpu_config):
        t1 = adam_latency(cpu_config, P, 1, non_secure_costs()).total_s
        t8 = adam_latency(cpu_config, P, 8, non_secure_costs()).total_s
        assert 3.0 < t1 / t8 < 8.0

    @pytest.mark.slow
    def test_sgx_slowdown_grows_with_threads(self, cpu_config):
        s4 = slowdown(cpu_config, P, 4, sgx_costs(cpu_config, threads=4))
        s8 = slowdown(cpu_config, P, 8, sgx_costs(cpu_config, threads=8))
        assert s8 > s4 > 1.5

    def test_fig19_sgx_anchor_points(self, cpu_config):
        """Paper: 2.64x @4t, 3.65x @8t. Accept +/-15%."""
        s4 = slowdown(cpu_config, P, 4, sgx_costs(cpu_config, threads=4))
        s8 = slowdown(cpu_config, P, 8, sgx_costs(cpu_config, threads=8))
        assert s4 == pytest.approx(2.64, rel=0.15)
        assert s8 == pytest.approx(3.65, rel=0.15)

    def test_fig19_softvn_anchor_points(self, cpu_config):
        s4 = slowdown(cpu_config, P, 4, softvn_costs(cpu_config, threads=4))
        s8 = slowdown(cpu_config, P, 8, softvn_costs(cpu_config, threads=8))
        assert s4 == pytest.approx(1.04, abs=0.06)
        assert s8 == pytest.approx(1.13, abs=0.08)

    def test_tensortee_steady_state_near_non_secure(self, cpu_config):
        rates = AnalyzerRates(1.0, 0.0, 0.0, 1.0, 0.0)
        s8 = slowdown(cpu_config, P, 8, tensortee_costs(cpu_config, rates, threads=8))
        assert 1.0 <= s8 < 1.08

    def test_tensortee_cold_close_to_sgx(self, cpu_config):
        rates = AnalyzerRates(0.0, 0.0, 1.0, 0.0, 1.0)
        cold = slowdown(cpu_config, P, 8, tensortee_costs(cpu_config, rates, threads=8))
        sgx = slowdown(cpu_config, P, 8, sgx_costs(cpu_config, threads=8))
        assert cold == pytest.approx(sgx, rel=0.25)


class TestAdamExperiment:
    def test_convergence_and_consistency(self):
        experiment = AdamExperiment(
            AdamExperimentConfig(
                n_layers=4, lines_per_tensor=32, threads=4, meta_table_capacity=512
            )
        )
        records = experiment.run(4)  # raises internally on VN divergence
        assert records[0].hit_all < records[-1].hit_all + 1e-9
        assert records[-1].hit_in > 0.9

    def test_transfer_install_covers_grads_immediately(self):
        experiment = AdamExperiment(
            AdamExperimentConfig(
                n_layers=4,
                lines_per_tensor=32,
                threads=4,
                meta_table_capacity=512,
                install_transfer_descriptors=True,
            )
        )
        first = experiment.run_iteration()
        assert first.hit_in > 0.15  # grad reads hit the installed entries


class TestGemmExperiment:
    def test_second_pass_hit_in_matches_paper_claim(self):
        """Sec. 6.2: 98.8% hit_in after structures are built."""
        experiment = GemmExperiment(GemmConfig())
        first = experiment.run_pass()
        second = experiment.run_pass()
        assert second.hit_in > 0.95
        assert second.hit_all > 0.98
        assert first.hit_all > 0.9  # boundary extensions dominate pass 0

    def test_entries_consolidate(self):
        experiment = GemmExperiment(GemmConfig(m=128, n=128, k=128))
        experiment.run_pass()
        experiment.run_pass()
        # Three matrices should end up in a handful of merged entries.
        assert experiment.analyzer.table.n_entries <= 12
