"""Bonsai Merkle tree: integrity of off-chip VN storage."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.merkle import BonsaiMerkleTree
from repro.errors import ConfigError, IntegrityError


def test_update_then_verify():
    tree = BonsaiMerkleTree(100)
    tree.update_leaf(42, b"payload")
    assert tree.verify_leaf(42, b"payload") >= 1


def test_tampered_leaf_detected():
    tree = BonsaiMerkleTree(64)
    tree.update_leaf(3, b"good")
    tree.tamper_leaf(3, b"evil")
    with pytest.raises(IntegrityError):
        tree.verify_leaf(3, b"evil")


def test_wrong_payload_rejected():
    tree = BonsaiMerkleTree(64)
    tree.update_leaf(3, b"good")
    with pytest.raises(IntegrityError):
        tree.verify_leaf(3, b"forged")


def test_tampered_interior_node_detected():
    tree = BonsaiMerkleTree(512)
    tree.update_leaf(100, b"data")
    tree.tamper_node(1, 100 // 8, b"\x00" * 8)
    with pytest.raises(IntegrityError):
        tree.verify_leaf(100, b"data")


def test_root_changes_on_update():
    tree = BonsaiMerkleTree(64)
    before = tree.root
    tree.update_leaf(0, b"x")
    assert tree.root != before


def test_update_path_length_matches_depth():
    tree = BonsaiMerkleTree(8**3)  # exactly 3 levels above leaves
    assert tree.update_leaf(0, b"x") == tree.levels - 1


def test_single_leaf_tree():
    tree = BonsaiMerkleTree(1)
    tree.update_leaf(0, b"only")
    tree.verify_leaf(0, b"only")
    tree.tamper_leaf(0, b"bad!")
    with pytest.raises(IntegrityError):
        tree.verify_leaf(0, b"bad!")


def test_out_of_range_leaf_rejected():
    tree = BonsaiMerkleTree(10)
    with pytest.raises(ConfigError):
        tree.update_leaf(10, b"x")


@given(
    updates=st.lists(
        st.tuples(st.integers(0, 63), st.binary(min_size=1, max_size=16)),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=20, deadline=None)
def test_property_last_write_wins_and_verifies(updates):
    tree = BonsaiMerkleTree(64)
    final = {}
    for index, payload in updates:
        tree.update_leaf(index, payload)
        final[index] = payload
    for index, payload in final.items():
        tree.verify_leaf(index, payload)
