"""Memory substrate: backing store, caches, DRAM timing, page table."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.mem.backing import SimulatedDram
from repro.mem.cache import SetAssocCache
from repro.mem.dram import ddr4_2400_2ch, gddr5_npu
from repro.mem.layout import PageTable, line_index, line_of, page_of
from repro.mem.metadata_cache import MetadataCache, MetadataKind
from repro.units import KiB, PAGE_BYTES


class TestLayout:
    def test_line_and_page_alignment(self):
        assert line_of(130) == 128
        assert line_index(130) == 2
        assert page_of(4097) == 4096

    def test_page_table_deterministic(self):
        a, b = PageTable(seed=7), PageTable(seed=7)
        addrs = [0, 4096, 8192, 123456]
        assert [a.translate(x) for x in addrs] == [b.translate(x) for x in addrs]

    def test_page_table_shuffles_frames(self):
        pt = PageTable(seed=1)
        # Contiguous virtual pages map to discontiguous physical pages
        # (Fig. 9a): at least one adjacent pair must not be adjacent.
        pas = [pt.translate(i * PAGE_BYTES) for i in range(16)]
        deltas = {pas[i + 1] - pas[i] for i in range(15)}
        assert deltas != {PAGE_BYTES}

    def test_offset_within_page_preserved(self):
        pt = PageTable()
        assert pt.translate(4096 + 321) - pt.translate(4096) == 321


class TestSimulatedDram:
    def test_read_default_zero(self):
        dram = SimulatedDram()
        assert dram.read_line(0) == bytes(64)

    def test_write_read_roundtrip(self, line64):
        dram = SimulatedDram()
        dram.write_line(64, line64)
        assert dram.read_line(64) == line64

    def test_alignment_enforced(self):
        dram = SimulatedDram()
        with pytest.raises(ConfigError):
            dram.read_line(1)

    def test_flip_bit(self, line64):
        dram = SimulatedDram()
        dram.write_line(0, line64)
        dram.flip_bit(0, 9)
        corrupted = dram.read_line(0)
        assert corrupted[1] == line64[1] ^ 0x02


class TestSetAssocCache:
    def test_hit_after_fill(self):
        cache = SetAssocCache(capacity_bytes=1024, ways=2)
        assert cache.access(0) is False
        assert cache.access(0) is True

    def test_lru_eviction(self):
        cache = SetAssocCache(capacity_bytes=2 * 64, ways=2)  # one set, 2 ways
        cache.access(0)
        cache.access(64)
        cache.access(128)  # evicts line 0
        assert cache.access(0) is False

    def test_lru_touch_protects(self):
        cache = SetAssocCache(capacity_bytes=2 * 64, ways=2)
        cache.access(0)
        cache.access(64)
        cache.access(0)  # touch 0 -> 64 becomes LRU
        cache.access(128)
        assert cache.access(0) is True

    def test_dirty_writeback_counted(self):
        cache = SetAssocCache(capacity_bytes=2 * 64, ways=2)
        cache.access(0, write=True)
        cache.access(64)
        cache.access(128)  # evicts dirty line 0
        assert cache.stats["writebacks"] == 1

    def test_flush_reports_dirty(self):
        cache = SetAssocCache(capacity_bytes=1024, ways=4)
        cache.access(0, write=True)
        cache.access(64)
        assert cache.flush() == 1

    def test_invalidate(self):
        cache = SetAssocCache(capacity_bytes=1024, ways=4)
        cache.access(0)
        assert cache.invalidate(0) is True
        assert cache.access(0) is False

    @given(st.lists(st.integers(0, 63), min_size=1, max_size=200))
    @settings(max_examples=25, deadline=None)
    def test_property_capacity_respected(self, lines):
        cache = SetAssocCache(capacity_bytes=8 * 64, ways=2)
        for line in lines:
            cache.access(line * 64)
        resident = sum(len(s) for s in cache._sets.values())
        assert resident <= 8


class TestMetadataCache:
    def test_kinds_do_not_alias(self):
        mc = MetadataCache(capacity_bytes=32 * KiB)
        mc.access(MetadataKind.VN, 0)
        assert mc.contains(MetadataKind.VN, 0)
        assert not mc.contains(MetadataKind.MAC, 0)

    def test_tree_levels_do_not_alias(self):
        mc = MetadataCache(capacity_bytes=32 * KiB)
        mc.access(MetadataKind.TREE, 0, level=1)
        assert not mc.contains(MetadataKind.TREE, 0, level=2)

    def test_covered_level_finds_cached_ancestor(self):
        mc = MetadataCache(capacity_bytes=32 * KiB)
        assert mc.covered_level(64, levels=4) == 4  # nothing cached -> root
        mc.access(MetadataKind.TREE, 64 // 8, level=1)
        assert mc.covered_level(64, levels=4) == 1


class TestDramTiming:
    def test_table1_bandwidths(self):
        assert ddr4_2400_2ch().peak_bw == pytest.approx(38.4e9)
        assert gddr5_npu().peak_bw == pytest.approx(128e9)

    def test_stream_time_linear(self):
        dram = ddr4_2400_2ch()
        assert dram.stream_time(2e9) == pytest.approx(2 * dram.stream_time(1e9))

    def test_metadata_costs_more(self):
        dram = ddr4_2400_2ch()
        assert dram.effective_bytes(1000, 100) > 1100 - 1e-9

    def test_dependent_chain_latency(self):
        dram = ddr4_2400_2ch()
        assert dram.line_latency(2) == pytest.approx(3 * dram.idle_latency_s)
