"""Meta Table entry geometry, write tracking and merging."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.tenanalyzer.entry import (
    EntryGeometry,
    MetaTableEntry,
    WriteOutcomeKind,
    try_merge_geometries,
)
from repro.errors import SimulationError

LINE = 64


def geom_1d(base: int, n: int) -> EntryGeometry:
    return EntryGeometry(base, n, n, 1, extensible_run=True)


def geom_2d(base: int, run: int, stride: int, count: int) -> EntryGeometry:
    return EntryGeometry(base, run, stride, count, extensible_run=False)


class TestGeometry:
    def test_1d_contains_and_boundary(self):
        g = geom_1d(0, 4)
        assert g.contains_line(0) and g.contains_line(3 * LINE)
        assert not g.contains_line(4 * LINE)
        assert g.boundary_va() == 4 * LINE

    def test_1d_extension(self):
        g = geom_1d(0, 4)
        g.extend()
        assert g.n_lines == 5
        assert g.contains_line(4 * LINE)

    def test_2d_contains_respects_gaps(self):
        g = geom_2d(0, 4, 16, 2)  # lines 0-3 and 16-19
        assert g.contains_line(3 * LINE)
        assert not g.contains_line(4 * LINE)
        assert g.contains_line(16 * LINE)
        assert not g.contains_line(20 * LINE)

    def test_2d_extension_grows_rows(self):
        g = geom_2d(0, 4, 16, 2)
        assert g.boundary_va() == 32 * LINE  # start of row 2
        for _ in range(4):
            g.extend()
        assert g.count == 3 and g.tail_lines == 0

    def test_covered_lines_enumeration(self):
        g = geom_2d(0, 2, 8, 2)
        assert list(g.covered_lines()) == [0, LINE, 8 * LINE, 9 * LINE]

    def test_edge_detection(self):
        g = geom_1d(0, 4)
        assert g.is_edge_line(0)
        assert g.is_edge_line(3 * LINE)
        assert not g.is_edge_line(LINE)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(SimulationError):
            EntryGeometry(0, 0, 1, 1)
        with pytest.raises(SimulationError):
            EntryGeometry(1, 4, 4, 1)  # unaligned base


class TestMerging:
    def test_1d_contiguous_concat(self):
        merged = try_merge_geometries(geom_1d(0, 8), geom_1d(8 * LINE, 8))
        assert merged is not None
        assert merged.n_lines == 16 and merged.is_contiguous

    def test_1d_concat_order_independent(self):
        a, b = geom_1d(0, 8), geom_1d(8 * LINE, 8)
        m1, m2 = try_merge_geometries(a, b), try_merge_geometries(b, a)
        assert m1 is not None and m2 is not None
        assert (m1.base_va, m1.n_lines) == (m2.base_va, m2.n_lines)

    def test_gap_pair_forms_2d(self):
        merged = try_merge_geometries(geom_1d(0, 4), geom_1d(16 * LINE, 4))
        assert merged is not None
        assert merged.count == 2 and merged.stride_lines == 16

    def test_gap_beyond_stride_field_rejected(self):
        # The 10-bit stride field bounds inferable row strides (Sec. 6.5).
        merged = try_merge_geometries(geom_1d(0, 4), geom_1d(2048 * LINE, 4))
        assert merged is None

    def test_2d_outer_append(self):
        merged = try_merge_geometries(geom_2d(0, 4, 16, 3), geom_1d(48 * LINE, 4))
        assert merged is not None and merged.count == 4

    def test_2d_inner_concat(self):
        merged = try_merge_geometries(geom_2d(0, 4, 16, 8), geom_2d(4 * LINE, 4, 16, 8))
        assert merged is not None
        assert merged.run_lines == 8 and merged.count == 8

    def test_collapse_to_contiguous(self):
        # Two bands that together fill the stride collapse back to 1D.
        merged = try_merge_geometries(geom_2d(0, 8, 16, 4), geom_2d(8 * LINE, 8, 16, 4))
        assert merged is not None
        assert merged.is_contiguous and merged.count == 1
        assert merged.n_lines == 64

    def test_mismatched_runs_rejected(self):
        assert try_merge_geometries(geom_1d(0, 4), geom_1d(16 * LINE, 5)) is None

    def test_overlapping_not_merged_as_2d(self):
        # Gap smaller than the run would overlap: must not form 2D.
        assert try_merge_geometries(geom_1d(0, 8), geom_1d(4 * LINE, 8)) is None

    @given(
        run=st.integers(1, 8),
        stride=st.integers(9, 64),
        count_a=st.integers(1, 6),
        count_b=st.integers(1, 6),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_outer_merge_coverage_is_union(self, run, stride, count_a, count_b):
        a = geom_2d(0, run, stride, count_a) if count_a > 1 else geom_1d(0, run)
        b_base = count_a * stride * LINE
        b = geom_2d(b_base, run, stride, count_b) if count_b > 1 else geom_1d(b_base, run)
        merged = try_merge_geometries(a, b)
        if merged is None:
            return
        union = set(a.covered_lines()) | set(b.covered_lines())
        assert set(merged.covered_lines()) == union


class TestWriteTracking:
    def test_full_update_increments_vn(self):
        entry = MetaTableEntry(geometry=geom_1d(0, 4), vn=3)
        outcomes = [entry.write_line(i * LINE) for i in range(4)]
        assert outcomes[-1] is WriteOutcomeKind.COMPLETED
        assert entry.vn == 4
        assert not entry.updating and not entry.flipped

    def test_double_write_violates_assert1(self):
        entry = MetaTableEntry(geometry=geom_1d(0, 4), vn=0)
        entry.write_line(0)
        assert entry.write_line(0) is WriteOutcomeKind.VIOLATION

    def test_vn_for_line_during_update(self):
        entry = MetaTableEntry(geometry=geom_1d(0, 4), vn=5)
        entry.write_line(LINE)
        assert entry.vn_for_line(LINE) == 6  # flipped -> new VN
        assert entry.vn_for_line(0) == 5  # untouched -> old VN

    def test_edge_classification(self):
        entry = MetaTableEntry(geometry=geom_1d(0, 4), vn=0)
        assert entry.write_line(0) is WriteOutcomeKind.HIT_EDGE
        assert entry.write_line(LINE) is WriteOutcomeKind.HIT_IN

    def test_uncovered_write_raises(self):
        entry = MetaTableEntry(geometry=geom_1d(0, 4), vn=0)
        with pytest.raises(SimulationError):
            entry.write_line(100 * LINE)

    @given(order=st.permutations(list(range(8))))
    @settings(max_examples=30, deadline=None)
    def test_property_any_order_completes_once(self, order):
        entry = MetaTableEntry(geometry=geom_1d(0, 8), vn=0)
        completions = sum(
            entry.write_line(i * LINE) is WriteOutcomeKind.COMPLETED for i in order
        )
        assert completions == 1
        assert entry.vn == 1

    def test_mergeable_excludes_updating(self):
        entry = MetaTableEntry(geometry=geom_1d(0, 4), vn=0)
        entry.write_line(0)
        assert not entry.mergeable
