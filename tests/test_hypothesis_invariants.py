"""Cross-cutting property tests: security invariants + the fault-tolerant
sweep-execution layer (shard partitioning, cache keying, journal codec)."""

import json
import os
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.tenanalyzer import TenAnalyzer
from repro.cpu.tenanalyzer.entry import EntryGeometry, try_merge_geometries
from repro.eval.cache import cache_key
from repro.eval.journal import PointRecord, RunJournal, read_journal
from repro.eval.registry import normalize_params
from repro.eval.sweep import Shard, SweepPoint, shard_points
from repro.mem.mee import FunctionalMee
from repro.sim.trace import AccessKind, MemAccess
from repro.tensor.registry import TensorRegistry
from repro.units import KiB
from repro.workloads.traces import GemmConfig, build_gemm_tensors, gemm_trace

LINE = 64


@given(
    tile=st.sampled_from([16, 32]),
    passes=st.integers(1, 2),
)
@settings(max_examples=6, deadline=None)
def test_gemm_vn_consistency_any_tiling(tile, passes):
    """The VN invariant holds for any tile size and pass count."""
    registry = TensorRegistry(alignment=4 * KiB, guard_bytes=256 * KiB)
    config = GemmConfig(m=64, n=64, k=64, tile_m=tile, tile_n=tile, tile_k=tile)
    a, b, c = build_gemm_tensors(registry, config)
    analyzer = TenAnalyzer()
    truth = {}
    for _ in range(passes):
        for access in gemm_trace(a, b, c, config):
            if access.kind is AccessKind.READ:
                result = analyzer.on_read(access)
                assert result.vn == truth.get(access.vaddr, 0)
            else:
                outcome = analyzer.on_write(access)
                truth[access.vaddr] = truth.get(access.vaddr, 0) + 1
                assert outcome.vn == truth[access.vaddr]


@given(
    base_a=st.integers(0, 32),
    run_a=st.integers(1, 8),
    base_b=st.integers(0, 64),
    run_b=st.integers(1, 8),
)
@settings(max_examples=200, deadline=None)
def test_merge_never_fabricates_coverage(base_a, run_a, base_b, run_b):
    """Whatever merges, the result covers exactly the union of the inputs."""
    a = EntryGeometry(base_a * LINE, run_a, run_a, 1)
    b = EntryGeometry(base_b * LINE, run_b, run_b, 1)
    cover_a, cover_b = set(a.covered_lines()), set(b.covered_lines())
    merged = try_merge_geometries(a, b)
    if merged is None:
        return
    assert set(merged.covered_lines()) == cover_a | cover_b


# -- fault-tolerant sweep execution -------------------------------------------


def _points(n: int):
    return [SweepPoint(index=i, point_id=f"p{i}", coords={}, params={}) for i in range(n)]


@given(n_points=st.integers(0, 200), count=st.integers(1, 12))
@settings(max_examples=100, deadline=None)
def test_shard_partition_disjoint_complete_deterministic(n_points, count):
    """Shards are a partition: disjoint, complete, order-preserving, and a
    pure function of (matrix, K, N)."""
    points = _points(n_points)
    shards = [shard_points(points, Shard(k, count)) for k in range(1, count + 1)]
    indexes = [[p.index for p in shard] for shard in shards]
    # Complete and disjoint: every point lands in exactly one shard.
    flat = [i for shard in indexes for i in shard]
    assert sorted(flat) == list(range(n_points))
    # Order-preserving within a shard (scheduling order is stable).
    assert all(shard == sorted(shard) for shard in indexes)
    # Deterministic: re-partitioning yields the identical slices.
    assert indexes == [
        [p.index for p in shard_points(points, Shard(k, count))]
        for k in range(1, count + 1)
    ]
    # Balanced: round-robin shard sizes differ by at most one point.
    sizes = [len(shard) for shard in indexes]
    assert max(sizes) - min(sizes) <= 1


_SCALARS = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(2**31), 2**31),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
)

_PARAM_VALUES = st.recursive(
    _SCALARS,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(min_size=1, max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)


@given(
    params=st.dictionaries(st.text(min_size=1, max_size=12), _PARAM_VALUES, max_size=6),
    seed=st.integers(0, 2**31),
    order=st.randoms(use_true_random=False),
)
@settings(max_examples=100, deadline=None)
def test_cache_key_is_order_insensitive_and_stable(params, seed, order):
    """The content-hash key must not depend on dict insertion order, and
    normalization must be idempotent (a replayed manifest row re-keys
    identically)."""
    keys = list(params)
    order.shuffle(keys)
    shuffled = {k: params[k] for k in keys}
    norm = normalize_params(params)
    assert normalize_params(shuffled) == norm
    assert normalize_params(norm) == norm  # idempotent
    json.dumps(norm)  # JSON-stable by construction
    base = cache_key("exp", norm, seed, "digest")
    assert cache_key("exp", normalize_params(shuffled), seed, "digest") == base
    assert cache_key("exp", norm, seed, "digest") == base


_RECORDS = st.builds(
    PointRecord,
    label=st.text(min_size=1, max_size=40),
    experiment=st.text(min_size=1, max_size=20),
    key=st.text(min_size=1, max_size=20),
    seed=st.integers(0, 2**32 - 1),
    status=st.sampled_from(["executed", "cached", "failed"]),
    params=st.dictionaries(st.text(min_size=1, max_size=8), _SCALARS, max_size=4),
    attempt=st.integers(0, 9),
    elapsed_s=st.floats(0, 1e6, allow_nan=False),
    error=st.one_of(st.none(), st.text(max_size=200)),
    error_type=st.one_of(st.none(), st.text(min_size=1, max_size=30)),
    quarantined=st.booleans(),
    ts=st.floats(0, 2e9, allow_nan=False),
)


@given(records=st.lists(_RECORDS, max_size=12))
@settings(max_examples=50, deadline=None)
def test_journal_roundtrips_arbitrary_point_records(records):
    """Whatever the orchestrator journals — unicode labels, tracebacks,
    odd float params — must replay bit-for-bit, and a torn tail must never
    corrupt the records before it."""
    for record in records:
        assert PointRecord.from_json(record.to_json()) == record
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "journal.jsonl")
        journal = RunJournal.start(path, {"sweep": "prop", "n_points": len(records)})
        for record in records:
            journal.append(record)
        view = read_journal(path)
        assert view.records == records
        assert not view.truncated
        # Torn tail: chop the file mid-way through its final line.
        if records:
            with open(path, "rb") as f:
                data = f.read()
            with open(path, "wb") as f:
                f.write(data[:-3])
            torn = read_journal(path)
            assert torn.records == records[:-1]


@given(
    ops=st.lists(
        st.tuples(st.integers(0, 15), st.booleans(), st.binary(min_size=64, max_size=64)),
        min_size=1,
        max_size=60,
    )
)
@settings(max_examples=15, deadline=None)
def test_mee_analyzer_composition_confidential_and_fresh(ops):
    """Random read/write traffic through TenAnalyzer + MEE stays consistent:
    every read decrypts to the last value written to that line."""
    analyzer = TenAnalyzer(capacity=8)
    mee = FunctionalMee(b"P" * 16, b"Q" * 16, with_merkle=False, protected_bytes=1 << 18)
    contents = {}
    for line, is_write, data in ops:
        va = 0x40000 + line * LINE
        if is_write or va not in contents:
            outcome = analyzer.on_write(MemAccess(va, AccessKind.WRITE))
            mee.write_line(va, data, vn=outcome.vn)
            contents[va] = data
        else:
            result = analyzer.on_read(MemAccess(va, AccessKind.READ))
            assert mee.read_line(va, vn=result.vn) == contents[va]
