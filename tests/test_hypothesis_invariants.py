"""Cross-cutting property tests on the core security invariants."""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.tenanalyzer import TenAnalyzer
from repro.cpu.tenanalyzer.entry import EntryGeometry, try_merge_geometries
from repro.mem.mee import FunctionalMee
from repro.sim.trace import AccessKind, MemAccess
from repro.tensor.registry import TensorRegistry
from repro.units import KiB
from repro.workloads.traces import GemmConfig, build_gemm_tensors, gemm_trace

LINE = 64


@given(
    tile=st.sampled_from([16, 32]),
    passes=st.integers(1, 2),
)
@settings(max_examples=6, deadline=None)
def test_gemm_vn_consistency_any_tiling(tile, passes):
    """The VN invariant holds for any tile size and pass count."""
    registry = TensorRegistry(alignment=4 * KiB, guard_bytes=256 * KiB)
    config = GemmConfig(m=64, n=64, k=64, tile_m=tile, tile_n=tile, tile_k=tile)
    a, b, c = build_gemm_tensors(registry, config)
    analyzer = TenAnalyzer()
    truth = {}
    for _ in range(passes):
        for access in gemm_trace(a, b, c, config):
            if access.kind is AccessKind.READ:
                result = analyzer.on_read(access)
                assert result.vn == truth.get(access.vaddr, 0)
            else:
                outcome = analyzer.on_write(access)
                truth[access.vaddr] = truth.get(access.vaddr, 0) + 1
                assert outcome.vn == truth[access.vaddr]


@given(
    base_a=st.integers(0, 32),
    run_a=st.integers(1, 8),
    base_b=st.integers(0, 64),
    run_b=st.integers(1, 8),
)
@settings(max_examples=200, deadline=None)
def test_merge_never_fabricates_coverage(base_a, run_a, base_b, run_b):
    """Whatever merges, the result covers exactly the union of the inputs."""
    a = EntryGeometry(base_a * LINE, run_a, run_a, 1)
    b = EntryGeometry(base_b * LINE, run_b, run_b, 1)
    cover_a, cover_b = set(a.covered_lines()), set(b.covered_lines())
    merged = try_merge_geometries(a, b)
    if merged is None:
        return
    assert set(merged.covered_lines()) == cover_a | cover_b


@given(
    ops=st.lists(
        st.tuples(st.integers(0, 15), st.booleans(), st.binary(min_size=64, max_size=64)),
        min_size=1,
        max_size=60,
    )
)
@settings(max_examples=15, deadline=None)
def test_mee_analyzer_composition_confidential_and_fresh(ops):
    """Random read/write traffic through TenAnalyzer + MEE stays consistent:
    every read decrypts to the last value written to that line."""
    analyzer = TenAnalyzer(capacity=8)
    mee = FunctionalMee(b"P" * 16, b"Q" * 16, with_merkle=False, protected_bytes=1 << 18)
    contents = {}
    for line, is_write, data in ops:
        va = 0x40000 + line * LINE
        if is_write or va not in contents:
            outcome = analyzer.on_write(MemAccess(va, AccessKind.WRITE))
            mee.write_line(va, data, vn=outcome.vn)
            contents[va] = data
        else:
            result = analyzer.on_read(MemAccess(va, AccessKind.READ))
            assert mee.read_line(va, vn=result.vn) == contents[va]
