"""Functional MEE: the attack surface of the threat model (Sec. 2.4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, IntegrityError, ReplayError, SecurityError
from repro.mem.mee import FunctionalMee


class TestMeeFunctional:
    def test_write_read_roundtrip(self, mee, line64):
        mee.write_line(0x1000, line64)
        assert mee.read_line(0x1000) == line64

    def test_ciphertext_differs_from_plaintext(self, mee, line64):
        mee.write_line(0x1000, line64)
        ciphertext, _ = mee.snoop(0x1000)
        assert ciphertext != line64

    def test_rewrites_bump_vn_and_change_ciphertext(self, mee, line64):
        mee.write_line(0x1000, line64)
        ct1, _ = mee.snoop(0x1000)
        mee.write_line(0x1000, line64)
        ct2, _ = mee.snoop(0x1000)
        assert ct1 != ct2  # fresh VN -> fresh keystream, same plaintext

    def test_unaligned_rejected(self, mee, line64):
        with pytest.raises(ConfigError):
            mee.write_line(0x1001, line64)

    def test_caller_supplied_vn(self, mee, line64):
        mee.write_line(0x2000, line64, vn=7)
        assert mee.read_line(0x2000, vn=7) == line64


class TestMeeAttacks:
    def test_tamper_detected(self, mee, line64):
        mee.write_line(0x1000, line64)
        mee.tamper_ciphertext(0x1000, flip_bit=100)
        with pytest.raises(IntegrityError):
            mee.read_line(0x1000)

    def test_replay_detected(self, mee, line64):
        mee.write_line(0x1000, line64)
        old_ct, old_mac = mee.snoop(0x1000)
        mee.write_line(0x1000, bytes(64))
        mee.replay_line(0x1000, old_ct, old_mac)
        with pytest.raises((ReplayError, IntegrityError)):
            mee.read_line(0x1000)

    def test_vn_rollback_detected_by_merkle(self, mee, line64):
        mee.write_line(0x2000, line64)
        snap_ct, snap_mac = mee.snoop(0x2000)
        mee.write_line(0x2000, bytes(64))
        mee.replay_line(0x2000, snap_ct, snap_mac)
        index = mee._line_index(mee._pa_of(0x2000))
        mee.vn_store[index] = 1  # attacker rolls the off-chip VN back too
        with pytest.raises(SecurityError):
            mee.read_line(0x2000)

    def test_mac_store_tamper_detected(self, mee, line64):
        mee.write_line(0x1000, line64)
        index = mee._line_index(mee._pa_of(0x1000))
        mee.mac_store[index] ^= 1
        with pytest.raises(IntegrityError):
            mee.read_line(0x1000)

    def test_splicing_detected(self, mee, line64):
        """Moving valid ciphertext to another address must fail (PA bound)."""
        mee.write_line(0x1000, line64)
        mee.write_line(0x3000, bytes(64))
        ct, mac = mee.snoop(0x1000)
        mee.replay_line(0x3000, ct, mac)
        with pytest.raises(SecurityError):
            mee.read_line(0x3000)

    def test_skip_verify_returns_garbage_not_exception(self, npu_mee, line64):
        """The delayed path decrypts without stalling; detection is later."""
        npu_mee.write_line(0x1000, line64, vn=1)
        npu_mee.tamper_ciphertext(0x1000, flip_bit=5)
        garbled = npu_mee.read_line(0x1000, vn=1, verify=False)
        assert garbled != line64


class TestMeeProperties:
    @given(
        writes=st.lists(
            st.tuples(st.integers(0, 31), st.binary(min_size=64, max_size=64)),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=10, deadline=None)
    def test_property_last_write_wins(self, writes):
        mee = FunctionalMee(b"A" * 16, b"B" * 16, protected_bytes=1 << 18, with_merkle=False)
        final = {}
        for line, payload in writes:
            mee.write_line(line * 64, payload)
            final[line] = payload
        for line, payload in final.items():
            assert mee.read_line(line * 64) == payload
