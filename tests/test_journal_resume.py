"""Fault-tolerant sweep execution: journal, retries, shards, resume, merge.

The crash-injection tests kill a sweep mid-run (a worker raising, and the
driver process hard-exiting via the ``REPRO_JOURNAL_CRASH_AFTER`` fault
knob) and assert the journal recorded the failure and that ``--resume``
and ``--shard``+``merge`` both reproduce the uninterrupted run's
``sweep.json``/``sweep.csv`` modulo timing fields.
"""

import csv
import json
import multiprocessing
import os
import subprocess
import sys

import pytest

from repro.errors import ConfigError
from repro.eval import journal as journal_mod
from repro.eval import sweep as sweep_mod
from repro.eval.journal import (
    CRASH_EXIT_CODE,
    PointRecord,
    RunJournal,
    read_journal,
)
from repro.eval.orchestrator import Orchestrator, PointRequest
from repro.eval.registry import REGISTRY, ExperimentRegistry, experiment
from repro.eval.sweep import (
    Shard,
    canonical_document,
    merge_shards,
    parse_shard,
    run_sweep,
    shard_points,
    spec_from_dict,
    sweep_status,
)

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: A cheap 2x2 matrix over the analytic mac_policy scenario.
MAC_2X2 = {
    "name": "m22",
    "experiment": "mac_policy",
    "axes": [
        {"param": "granule_bytes", "values": [64, 256]},
        {"param": "policy", "values": ["eager", "delayed"]},
    ],
    "metrics": [{"name": "perf", "path": "perf_overhead"}],
}

MAC_2X2_TOML = """
[sweep]
name = "m22"
experiment = "mac_policy"

[[sweep.axes]]
param = "granule_bytes"
values = [64, 256]

[[sweep.axes]]
param = "policy"
values = ["eager", "delayed"]

[[sweep.metrics]]
name = "perf"
path = "perf_overhead"
"""


@pytest.fixture
def results_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    return tmp_path


@pytest.fixture
def temp_experiment():
    """Inject a throwaway experiment into the global registry."""
    injected = []

    def inject(name, func, render=None):
        registry = ExperimentRegistry()
        experiment(name, render=render, registry=registry)(func)
        REGISTRY.load_all()
        REGISTRY._specs[name] = registry._specs[name]
        injected.append(name)
        return REGISTRY._specs[name]

    yield inject
    for name in injected:
        REGISTRY._specs.pop(name, None)


def canonical_csv(path):
    """CSV rows minus the run-volatile status/cached/elapsed columns."""
    with open(path, newline="") as f:
        rows = list(csv.reader(f))
    header = rows[0]
    volatile = {header.index(c) for c in ("status", "cached", "elapsed_s")}
    return [
        [cell for i, cell in enumerate(row) if i not in volatile] for row in rows
    ]


class TestJournalFile:
    def test_roundtrip_and_resume_marker(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = RunJournal.start(path, {"sweep": "s", "n_points": 2})
        a = PointRecord(label="p/a", experiment="e", key="k1", seed=1,
                        status="executed", params={"x": 1}, elapsed_s=0.5, ts=1.0)
        b = PointRecord(label="p/b", experiment="e", key="k2", seed=2,
                        status="failed", attempt=1, error="boom\n",
                        error_type="RuntimeError", quarantined=True, ts=2.0)
        journal.append(a)
        journal.append(b)
        RunJournal.attach(path)
        view = read_journal(path)
        assert view.header["sweep"] == "s"
        assert view.records == [a, b]
        assert view.resumes == 1
        assert not view.truncated
        assert view.last_by_label() == {"p/a": a, "p/b": b}
        assert view.failed_attempts("p/b", "k2") == 2
        assert view.failed_attempts("p/b", "other-key") == 0

    def test_torn_tail_is_tolerated(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = RunJournal.start(path, {"sweep": "s"})
        record = PointRecord(label="p", experiment="e", key="k", seed=0,
                             status="executed")
        journal.append(record)
        with open(path, "a", encoding="utf-8") as f:
            f.write('{"kind": "point", "label": "torn')  # crash mid-write
        view = read_journal(path)
        assert view.truncated
        assert view.records == [record]

    def test_attach_after_torn_tail_keeps_later_records_visible(self, tmp_path):
        # Regression: resuming over a crash-torn final line must not fuse
        # the partial line with the resume marker — that single garbage
        # line would hide every post-resume record from the reader.
        path = str(tmp_path / "j.jsonl")
        journal = RunJournal.start(path, {"sweep": "s"})
        durable = PointRecord(label="p/ok", experiment="e", key="k", seed=0,
                              status="executed")
        journal.append(durable)
        with open(path, "a", encoding="utf-8") as f:
            f.write('{"kind": "point", "label": "torn')  # no newline: torn
        resumed = RunJournal.attach(path)
        after = PointRecord(label="p/after", experiment="e", key="k2", seed=1,
                            status="executed")
        resumed.append(after)
        view = read_journal(path)
        assert not view.truncated  # the torn tail was truncated away
        assert view.resumes == 1
        assert view.records == [durable, after]

    def test_malformed_point_line_is_skipped_not_fatal(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = RunJournal.start(path, {"sweep": "s"})
        good = PointRecord(label="p/good", experiment="e", key="k", seed=0,
                           status="executed")
        journal.append(good)
        with open(path, "a", encoding="utf-8") as f:
            f.write('{"kind": "point", "label": "p/no-required-fields"}\n')
        journal.append(
            PointRecord(label="p/late", experiment="e", key="k2", seed=1,
                        status="executed")
        )
        view = read_journal(path)
        assert view.malformed == 1
        assert [r.label for r in view.records] == ["p/good", "p/late"]

    def test_missing_journal_is_config_error(self, tmp_path):
        with pytest.raises(ConfigError, match="no run journal"):
            read_journal(str(tmp_path / "absent.jsonl"))

    def test_start_truncates_previous_run(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = RunJournal.start(path, {"sweep": "old"})
        journal.append(PointRecord(label="p", experiment="e", key="k", seed=0,
                                   status="executed"))
        RunJournal.start(path, {"sweep": "new"})
        view = read_journal(path)
        assert view.header["sweep"] == "new"
        assert view.records == []


class TestErrorCapture:
    """Regression: failures must carry the full worker-side traceback."""

    def test_pool_failure_keeps_worker_traceback(self, results_env):
        # policy="lazy" passes the str schema check and raises inside the
        # worker process; the recorded error must name the raising frame
        # in repro code, not just the pool join site.
        points = [
            PointRequest(experiment="mac_policy", params={"policy": "lazy"},
                         label="p/lazy"),
            PointRequest(experiment="mac_policy", params={"policy": "eager"},
                         label="p/eager"),
        ]
        journal = RunJournal.start(str(results_env / "j.jsonl"))
        report = Orchestrator(jobs=2, use_cache=False, verbose=False).run_points(
            points, journal=journal
        )
        assert not report.ok
        failed = next(r for r in report.runs if r.name == "p/lazy")
        assert failed.status == "failed"
        assert failed.error_type == "ConfigError"
        assert "unknown policy" in failed.error
        assert "scenarios.py" in failed.error  # the worker-side frame
        record = failed.manifest_record()
        assert record["error_type"] == "ConfigError"
        assert "unknown policy" in record["error"]
        assert record["attempts"] == 1
        # The journal row carries the same traceback.
        view = read_journal(str(results_env / "j.jsonl"))
        journaled = view.last_by_label()["p/lazy"]
        assert journaled.status == "failed"
        assert journaled.quarantined
        assert "unknown policy" in journaled.error
        # The healthy sibling point still completed: no poisoning.
        ok = next(r for r in report.runs if r.name == "p/eager")
        assert ok.status == "executed"

    def test_inline_failure_keeps_traceback(self, results_env, temp_experiment):
        def boom() -> str:
            raise RuntimeError("kaput from the experiment body")

        temp_experiment("boom", boom)
        report = Orchestrator(jobs=1, use_cache=False, verbose=False).run(
            only=["boom"]
        )
        run = report.runs[0]
        assert run.status == "failed"
        assert run.error_type == "RuntimeError"
        assert "kaput from the experiment body" in run.error
        assert "in boom" in run.error  # the raising frame, not just the message


class TestRetries:
    def flaky(self, tmp_path, fail_times):
        marker = tmp_path / "attempts"

        def flaky_run() -> str:
            count = int(marker.read_text()) if marker.exists() else 0
            marker.write_text(str(count + 1))
            if count < fail_times:
                raise RuntimeError(f"flaky failure #{count}")
            return f"ok after {count} failures"

        return flaky_run

    def test_retry_recovers_flaky_point(self, results_env, tmp_path, temp_experiment):
        temp_experiment("flaky", self.flaky(tmp_path, fail_times=1))
        journal = RunJournal.start(str(results_env / "j.jsonl"))
        report = Orchestrator(jobs=1, use_cache=False, verbose=False).run(
            only=["flaky"], journal=journal, retries=2
        )
        assert report.ok
        assert report.runs[0].status == "executed"
        assert report.runs[0].attempts == 2
        view = read_journal(str(results_env / "j.jsonl"))
        assert [r.status for r in view.records] == ["failed", "executed"]
        assert [r.attempt for r in view.records] == [0, 1]
        assert not view.records[0].quarantined
        assert "flaky failure #0" in view.records[0].error

    def test_exhausted_budget_quarantines(self, results_env, tmp_path, temp_experiment):
        temp_experiment("flaky", self.flaky(tmp_path, fail_times=10))
        journal = RunJournal.start(str(results_env / "j.jsonl"))
        report = Orchestrator(jobs=1, use_cache=False, verbose=False).run(
            only=["flaky"], journal=journal, retries=1
        )
        assert not report.ok
        assert report.runs[0].attempts == 2
        view = read_journal(str(results_env / "j.jsonl"))
        assert [r.status for r in view.records] == ["failed", "failed"]
        assert view.records[-1].quarantined

    def test_negative_retries_rejected(self, results_env):
        with pytest.raises(ConfigError, match="retries"):
            Orchestrator(jobs=1, verbose=False).run_points([], retries=-1)

    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="temp experiments reach pool workers only under fork",
    )
    def test_hard_worker_death_fails_point_without_crashing_run(
        self, results_env, temp_experiment
    ):
        # A worker dying hard (segfault/OOM-kill shape, here os._exit)
        # breaks the process pool; the run must record the failures and
        # still produce its report/journal instead of propagating
        # BrokenProcessPool — even with a retry budget, which must not
        # resubmit into the dead pool.
        def die() -> str:
            os._exit(1)

        def fine() -> str:
            return "survivor"

        temp_experiment("die-hard", die)
        temp_experiment("fine", fine)
        journal = RunJournal.start(str(results_env / "j.jsonl"))
        report = Orchestrator(jobs=2, use_cache=False, verbose=False).run_points(
            [
                PointRequest(experiment="die-hard", label="p/die"),
                PointRequest(experiment="fine", label="p/fine"),
            ],
            journal=journal,
            retries=2,
        )
        assert not report.ok
        died = next(r for r in report.runs if r.name == "p/die")
        assert died.status == "failed"
        assert "BrokenProcessPool" in died.error_type
        # The manifest was written and every point is journaled terminal.
        assert os.path.exists(results_env / "manifest.json")
        view = read_journal(str(results_env / "j.jsonl"))
        assert {r.label for r in view.records} == {"p/die", "p/fine"}


class TestShardPartition:
    def test_parse_shard(self):
        assert parse_shard("2/4") == Shard(index=2, count=4)
        for bad in ("0/4", "5/4", "a/b", "1", "1/0", "-1/2"):
            with pytest.raises(ConfigError):
                parse_shard(bad)

    def test_round_robin_slices(self):
        points = sweep_mod.expand(spec_from_dict(MAC_2X2))
        one = shard_points(points, Shard(1, 2))
        two = shard_points(points, Shard(2, 2))
        assert [p.index for p in one] == [0, 2]
        assert [p.index for p in two] == [1, 3]
        assert shard_points(points, None) == points

    def test_more_shards_than_points_allows_empty(self, results_env):
        points = sweep_mod.expand(spec_from_dict(MAC_2X2))
        assert shard_points(points, Shard(6, 8)) == []


class TestShardMerge:
    def run_reference(self, monkeypatch, tmp_path):
        ref_dir = tmp_path / "reference"
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(ref_dir))
        spec = spec_from_dict(MAC_2X2)
        result = run_sweep(spec, jobs=1, verbose=False)
        document = json.load(open(result.json_path))
        rows = canonical_csv(result.csv_path)
        return document, rows

    def test_two_shards_merge_equals_single_run(self, tmp_path, monkeypatch):
        ref_doc, ref_rows = self.run_reference(monkeypatch, tmp_path)
        shard_dir = tmp_path / "sharded"
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(shard_dir))
        spec = spec_from_dict(MAC_2X2)
        for k in (1, 2):
            result = run_sweep(spec, jobs=1, verbose=False, shard=Shard(k, 2))
            shard_doc = json.load(open(result.json_path))
            assert shard_doc["shard"] == {"index": k, "count": 2}
            assert len(shard_doc["points"]) == 2
        merged, json_path, csv_path = merge_shards(spec, verbose=False)
        assert json_path == str(shard_dir / "sweeps" / "m22" / "sweep.json")
        written = json.load(open(json_path))
        assert written == merged
        assert canonical_document(written) == canonical_document(ref_doc)
        assert canonical_csv(csv_path) == ref_rows
        assert [s["index"] for s in written["shards"]] == [1, 2]
        assert written["counts"] == {"executed": 4, "cached": 0, "failed": 0}

    def test_merge_refuses_incomplete_coverage(self, results_env):
        spec = spec_from_dict(MAC_2X2)
        run_sweep(spec, jobs=1, verbose=False, shard=Shard(1, 2))
        with pytest.raises(ConfigError, match="expected shards 1..2"):
            merge_shards(spec, verbose=False)

    def test_merge_refuses_crashed_shard(self, results_env):
        spec = spec_from_dict(MAC_2X2)
        run_sweep(spec, jobs=1, verbose=False, shard=Shard(1, 2))
        # Shard 2 "crashed": its directory exists but holds no sweep.json.
        os.makedirs(results_env / "sweeps" / "m22" / "shards" / "2of2")
        with pytest.raises(ConfigError, match="no sweep.json"):
            merge_shards(spec, verbose=False)

    def test_merge_without_shards_is_config_error(self, results_env):
        with pytest.raises(ConfigError, match="no shard runs"):
            merge_shards(spec_from_dict(MAC_2X2), verbose=False)


class TestResume:
    def test_resume_without_journal_is_config_error(self, results_env):
        with pytest.raises(ConfigError, match="no run journal"):
            run_sweep(spec_from_dict(MAC_2X2), jobs=1, verbose=False, resume=True)

    def test_resume_requires_cache(self, results_env):
        with pytest.raises(ConfigError, match="cannot be combined with --no-cache"):
            run_sweep(spec_from_dict(MAC_2X2), jobs=1, verbose=False,
                      resume=True, use_cache=False)

    def test_resume_rejects_different_matrix_shape(self, results_env):
        spec = spec_from_dict(MAC_2X2)
        run_sweep(spec, jobs=1, verbose=False)
        with pytest.raises(ConfigError, match="does not match the journal"):
            run_sweep(spec, jobs=1, verbose=False, resume=True, quick=True)

    def test_resume_skips_quarantined_points(self, results_env):
        # One point fails at execute time; a default resume must replay the
        # recorded failure instead of re-running it, while completed points
        # come from the cache.
        raw = dict(
            MAC_2X2,
            name="flk",
            axes=[
                {"param": "granule_bytes", "values": [64]},
                {"param": "policy", "values": ["eager", "lazy"]},
            ],
        )
        spec = spec_from_dict(raw)
        first = run_sweep(spec, jobs=1, verbose=False)
        assert first.report.counts() == {"executed": 1, "cached": 0, "failed": 1}
        resumed = run_sweep(spec, jobs=1, verbose=False, resume=True)
        counters = resumed.report.stats.as_dict()
        assert counters["orchestrator.experiments.quarantined"] == 1
        assert "orchestrator.experiments.executed" not in counters
        assert resumed.report.counts() == {"executed": 0, "cached": 1, "failed": 1}
        failed = next(r for r in resumed.report.runs if r.status == "failed")
        assert "unknown policy" in failed.error
        # A bigger retry budget re-schedules the quarantined point.
        retried = run_sweep(spec, jobs=1, verbose=False, resume=True, retries=3)
        counters = retried.report.stats.as_dict()
        assert "orchestrator.experiments.quarantined" not in counters
        assert counters["orchestrator.experiments.failed"] == 1
        failed = next(r for r in retried.report.runs if r.status == "failed")
        assert failed.attempts == 4  # 1 from the first run + 3 retries

    def test_worker_crash_then_resume_matches_uninterrupted(self, tmp_path, monkeypatch):
        """Crash injection: the driver is hard-killed mid-sweep; the journal
        must hold exactly the completed points and --resume must produce
        sweep.json/sweep.csv identical to an uninterrupted run (modulo
        timing fields)."""
        ref_dir = tmp_path / "reference"
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(ref_dir))
        spec = spec_from_dict(MAC_2X2)
        reference = run_sweep(spec, jobs=1, verbose=False)
        ref_doc = json.load(open(reference.json_path))
        ref_rows = canonical_csv(reference.csv_path)

        crash_dir = tmp_path / "crashed"
        toml_path = tmp_path / "m22.toml"
        toml_path.write_text(MAC_2X2_TOML, encoding="utf-8")
        env = dict(
            os.environ,
            PYTHONPATH=os.path.join(REPO, "src"),
            REPRO_RESULTS_DIR=str(crash_dir),
            REPRO_JOURNAL_CRASH_AFTER="2",
        )
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "sweep", "run", str(toml_path),
             "--jobs", "1", "--quiet"],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == CRASH_EXIT_CODE, proc.stderr
        out_dir = crash_dir / "sweeps" / "m22"
        assert not (out_dir / "sweep.json").exists()  # killed before writing
        view = read_journal(str(out_dir / "journal.jsonl"))
        assert view.header["n_points"] == 4
        assert len(view.records) == 2  # exactly the durable points
        assert all(r.succeeded for r in view.records)

        monkeypatch.setenv("REPRO_RESULTS_DIR", str(crash_dir))
        status = sweep_status(spec)
        assert (status["done"], status["pending"]) == (2, 2)
        assert not status["complete"]

        resumed = run_sweep(spec, jobs=1, verbose=False, resume=True)
        # Only the two incomplete points executed; the rest replayed.
        assert resumed.report.counts() == {"executed": 2, "cached": 2, "failed": 0}
        res_doc = json.load(open(resumed.json_path))
        assert canonical_document(res_doc) == canonical_document(ref_doc)
        assert canonical_csv(resumed.csv_path) == ref_rows
        assert sweep_status(spec)["complete"]


class TestStatus:
    def test_status_without_journal_is_config_error(self, results_env):
        with pytest.raises(ConfigError, match="no run journal"):
            sweep_status(spec_from_dict(MAC_2X2))

    def test_status_counts_and_stale_detection(self, results_env):
        spec = spec_from_dict(MAC_2X2)
        result = run_sweep(spec, jobs=1, verbose=False)
        status = sweep_status(spec)
        assert status["complete"]
        assert status["done"] == 4
        assert status["journals"][0]["records"] == 4
        # Rewrite one success record under a rotated key: the point is
        # "stale" — its recorded success no longer matches current sources.
        journal_path = results_env / "sweeps" / "m22" / "journal.jsonl"
        lines = journal_path.read_text().splitlines()
        record = json.loads(lines[-1])
        record["key"] = "0" * 20
        lines[-1] = json.dumps(record)
        journal_path.write_text("\n".join(lines) + "\n")
        status = sweep_status(spec)
        assert status["stale"] == 1
        assert status["done"] == 3
        assert not status["complete"]
        assert result.points[-1].point_id in status["stale_points"]

    def test_newest_records_supersede_stale_shard_journals(self, results_env):
        # A sweep first ran sharded, sources changed, then it re-ran
        # unsharded to full success. The leftover shard journal holds
        # successes under rotated (now-bogus) keys with older timestamps;
        # the fresh unsharded records must win — by write time, not by
        # journal directory order.
        spec = spec_from_dict(MAC_2X2)
        result = run_sweep(spec, jobs=1, verbose=False)
        assert sweep_status(spec)["complete"]
        stale_dir = results_env / "sweeps" / "m22" / "shards" / "1of2"
        stale = RunJournal.start(
            str(stale_dir / "journal.jsonl"),
            {"sweep": "m22", "quick": False, "limit": None, "created_at": "1970"},
        )
        for point in result.points[::2]:
            stale.append(
                PointRecord(
                    label=sweep_mod.point_label("m22", point.point_id),
                    experiment="mac_policy",
                    key="stale-key",
                    seed=0,
                    status="executed",
                    ts=0.0,  # long before the fresh run's records
                )
            )
        status = sweep_status(spec)
        assert status["complete"]
        assert (status["done"], status["stale"]) == (4, 0)

    def test_mismatched_matrix_shape_journals_are_ignored(self, results_env):
        # A leftover --quick shard tree next to a fresh full run must not
        # conflate the two matrices: the older, differently-shaped journal
        # is reported but ignored.
        spec = spec_from_dict(MAC_2X2)
        run_sweep(spec, jobs=1, verbose=False, quick=True, shard=Shard(1, 2))
        run_sweep(spec, jobs=1, verbose=False)
        status = sweep_status(spec)
        assert status["complete"]
        assert status["quick"] is False
        flags = {j["path"]: j["ignored"] for j in status["journals"]}
        assert sorted(flags.values()) == [False, True]

    def test_status_aggregates_shard_journals(self, results_env):
        spec = spec_from_dict(MAC_2X2)
        run_sweep(spec, jobs=1, verbose=False, shard=Shard(1, 2))
        status = sweep_status(spec)
        assert status["done"] == 2
        assert status["pending"] == 2
        run_sweep(spec, jobs=1, verbose=False, shard=Shard(2, 2))
        status = sweep_status(spec)
        assert status["complete"]
        assert len(status["journals"]) == 2


class TestCli:
    def write_spec(self, tmp_path):
        path = tmp_path / "m22.toml"
        path.write_text(MAC_2X2_TOML, encoding="utf-8")
        return str(path)

    def test_shard_run_merge_status_flow(self, results_env, tmp_path, capsys):
        from repro.cli import main

        path = self.write_spec(tmp_path)
        assert main(["sweep", "run", path, "--shard", "1/2", "-j", "1", "-q"]) == 0
        assert main(["sweep", "status", path]) == 1  # half pending
        assert main(["sweep", "run", path, "--shard", "2/2", "-j", "1", "-q"]) == 0
        capsys.readouterr()
        assert main(["sweep", "merge", path, "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert len(document["points"]) == 4
        assert main(["sweep", "status", path, "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["complete"]

    def test_bad_shard_exits_2(self, results_env, tmp_path, capsys):
        from repro.cli import main

        path = self.write_spec(tmp_path)
        assert main(["sweep", "run", path, "--shard", "3/2"]) == 2
        assert "shard index" in capsys.readouterr().err

    def test_resume_no_cache_exits_2(self, results_env, tmp_path, capsys):
        from repro.cli import main

        path = self.write_spec(tmp_path)
        assert main(["sweep", "run", path, "--resume", "--no-cache"]) == 2
        assert "--no-cache" in capsys.readouterr().err

    def test_run_retries_flag(self, results_env, capsys):
        from repro.cli import main

        rc = main(["run", "--only", "table1_config", "--jobs", "1", "--no-cache",
                   "--retries", "2", "--json"])
        assert rc == 0
        manifest = json.loads(capsys.readouterr().out)
        assert manifest["experiments"][0]["attempts"] == 1

    def test_digest_check_only_subset(self, results_env, capsys):
        from repro.cli import main

        path = os.path.join(REPO, "benchmarks", "artifact_digests.json")
        assert main(["digest", "--check", path,
                     "--only", "table1_config,hw_overhead"]) == 0
        out = capsys.readouterr().out
        assert "table1_config: ok" in out
        assert "fig16_overall" not in out  # the subset really subsets
        assert main(["digest", "--check", path, "--only", "nope"]) == 2
        assert "not in" in capsys.readouterr().err


class TestDigestFile:
    def test_all_sixteen_fixed_artifacts_tracked(self):
        recorded = json.load(
            open(os.path.join(REPO, "benchmarks", "artifact_digests.json"))
        )
        names = set(recorded["experiments"])
        assert len(names) == 16
        paper = {s.name for s in REGISTRY.select(tags=("paper",))}
        ablations = {s.name for s in REGISTRY.select(tags=("ablation",))}
        assert names == paper | ablations


class TestJournalCrashKnob:
    def test_crash_knob_is_inert_without_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_JOURNAL_CRASH_AFTER", raising=False)
        journal = RunJournal.start(str(tmp_path / "j.jsonl"))
        for i in range(5):
            journal.append(PointRecord(label=f"p{i}", experiment="e", key="k",
                                       seed=0, status="executed"))
        assert len(read_journal(journal.path).records) == 5

    def test_module_constants(self):
        assert journal_mod.JOURNAL_SCHEMA == 1
        assert set(journal_mod.SUCCESS_STATUSES) == {"executed", "cached"}
