"""Delayed verification, poison tracing, barrier, code integrity (Sec. 4.3)."""

import pytest

from repro.errors import CodeIntegrityError, IntegrityError, PoisonedTensorError
from repro.mem.mee import FunctionalMee
from repro.npu.config import NpuConfig
from repro.npu.delayed import DelayedVerificationEngine
from repro.npu.vn import TensorVnTable
from repro.tensor.dtype import DType
from repro.tensor.registry import TensorRegistry


@pytest.fixture
def engine():
    registry = TensorRegistry(base_va=0x4200_0000_0000)
    mee = FunctionalMee(b"A" * 16, b"B" * 16, with_merkle=False, protected_bytes=1 << 22)
    eng = DelayedVerificationEngine(NpuConfig(), mee, TensorVnTable(registry))
    eng.registry = registry  # convenience for tests
    return eng


def alloc(engine, name, elems=64):
    return engine.registry.allocate(name, (elems,), DType.FP32)


def payload(tensor):
    return bytes(i % 256 for i in range(tensor.nbytes))


class TestDelayedReads:
    def test_write_then_delayed_read_roundtrip(self, engine):
        t = alloc(engine, "t")
        engine.write_tensor(t, payload(t))
        assert engine.read_tensor_delayed(t) == payload(t)

    def test_read_marks_poison_until_verified(self, engine):
        t = alloc(engine, "t")
        engine.write_tensor(t, payload(t))
        engine.read_tensor_delayed(t)
        assert engine.mac_table.is_poisoned(t.tensor_id)
        assert engine.poll_verification() == []
        assert not engine.mac_table.is_poisoned(t.tensor_id)

    def test_tampered_tensor_fails_late_verification(self, engine):
        t = alloc(engine, "t")
        engine.write_tensor(t, payload(t))
        engine.mee.tamper_ciphertext(t.base_va, flip_bit=17)
        garbage = engine.read_tensor_delayed(t)  # no stall, garbage data
        assert garbage != payload(t)
        assert engine.poll_verification() == [t.tensor_id]

    def test_unverified_cap_forces_poll(self, engine):
        engine.config = NpuConfig(max_unverified_tensors=2)
        tensors = [alloc(engine, f"t{i}", 16) for i in range(4)]
        for t in tensors:
            engine.write_tensor(t, payload(t))
        for t in tensors:
            engine.read_tensor_delayed(t)
        assert engine.pending_count <= 3


class TestPoisonPropagation:
    def test_poison_flows_to_outputs(self, engine):
        a, out = alloc(engine, "a"), alloc(engine, "out")
        engine.write_tensor(a, payload(a))
        engine.read_tensor_delayed(a)
        assert engine.propagate_poison([a], [out])
        assert engine.mac_table.is_poisoned(out.tensor_id)

    def test_clean_verification_clears_lineage(self, engine):
        a, out = alloc(engine, "a"), alloc(engine, "out")
        engine.write_tensor(a, payload(a))
        engine.read_tensor_delayed(a)
        engine.propagate_poison([a], [out])
        engine.poll_verification()
        assert not engine.mac_table.is_poisoned(out.tensor_id)

    def test_failed_ancestor_poisons_descendants_forever(self, engine):
        a, out, grandchild = alloc(engine, "a"), alloc(engine, "out"), alloc(engine, "gc")
        engine.write_tensor(a, payload(a))
        engine.mee.tamper_ciphertext(a.base_va, flip_bit=3)
        engine.read_tensor_delayed(a)
        engine.propagate_poison([a], [out])
        engine.poll_verification()
        assert engine.mac_table.is_poisoned(out.tensor_id)
        engine.propagate_poison([out], [grandchild])
        assert engine.mac_table.is_poisoned(grandchild.tensor_id)

    def test_verified_inputs_do_not_poison(self, engine):
        a, out = alloc(engine, "a"), alloc(engine, "out")
        engine.write_tensor(a, payload(a))
        engine.read_tensor_delayed(a)
        engine.poll_verification()
        assert not engine.propagate_poison([a], [out])


class TestVerificationBarrier:
    def test_clean_barrier_passes(self, engine):
        t = alloc(engine, "t")
        engine.write_tensor(t, payload(t))
        engine.read_tensor_delayed(t)
        engine.verification_barrier([t])  # must not raise

    def test_barrier_blocks_tampered_tensor(self, engine):
        t = alloc(engine, "t")
        engine.write_tensor(t, payload(t))
        engine.mee.tamper_ciphertext(t.base_va, flip_bit=1)
        engine.read_tensor_delayed(t)
        with pytest.raises(IntegrityError):
            engine.verification_barrier([t])

    def test_barrier_blocks_poisoned_descendants(self, engine):
        a, out = alloc(engine, "a"), alloc(engine, "out")
        engine.write_tensor(a, payload(a))
        engine.mee.tamper_ciphertext(a.base_va, flip_bit=1)
        engine.read_tensor_delayed(a)
        engine.propagate_poison([a], [out])
        with pytest.raises((IntegrityError, PoisonedTensorError)):
            engine.verification_barrier([out])


class TestCodeIntegrity:
    def test_clean_code_fetch(self, engine):
        code = alloc(engine, "code", 16)
        engine.write_tensor(code, payload(code))
        assert engine.read_code_line(code.base_va) == payload(code)[:64]

    def test_code_tamper_detected_immediately(self, engine):
        code = alloc(engine, "code", 16)
        engine.write_tensor(code, payload(code))
        engine.mee.tamper_ciphertext(code.base_va, flip_bit=2)
        with pytest.raises(CodeIntegrityError):
            engine.read_code_line(code.base_va)

    def test_code_replay_detected(self, engine):
        code = alloc(engine, "code", 16)
        engine.write_tensor(code, payload(code))
        old_ct, old_mac = engine.mee.snoop(code.base_va)
        engine.write_tensor(code, bytes(code.nbytes))
        engine.mee.replay_line(code.base_va, old_ct, old_mac)
        with pytest.raises(CodeIntegrityError):
            engine.read_code_line(code.base_va)
