"""NPU models: systolic timing, VN table, MAC schemes, kernels."""

import pytest

from repro.errors import ConfigError
from repro.npu.config import NpuConfig
from repro.npu.kernels import iteration_io_bytes, iteration_kernels, iteration_time_s
from repro.npu.mac import MacScheme, OnChipTensorMacTable, fig20_schemes
from repro.npu.systolic import GemmShape, elementwise_time, gemm_time
from repro.npu.vn import TensorVnTable
from repro.tensor.registry import TensorRegistry
from repro.workloads.models import MODEL_ZOO, model_by_name


@pytest.fixture(scope="module")
def config():
    return NpuConfig()


class TestSystolic:
    def test_peak_flops_table1(self, config):
        assert config.peak_flops == pytest.approx(2 * 512 * 512 * 1e9)

    def test_big_gemm_near_sustained(self, config):
        shape = GemmShape(8192, 8192, 8192)
        t = gemm_time(config, shape)
        achieved = shape.flops / t.compute_s
        assert achieved == pytest.approx(config.sustained_flops, rel=0.15)

    def test_small_k_underutilizes(self, config):
        small = gemm_time(config, GemmShape(8192, 8192, 64))
        eff = GemmShape(8192, 8192, 64).flops / small.compute_s
        assert eff < 0.8 * config.sustained_flops

    def test_io_bound_detection(self, config):
        # A skinny GEMM moves lots of bytes per FLOP -> IO bound.
        t = gemm_time(config, GemmShape(128, 128, 8192))
        assert t.io_bound

    def test_elementwise_memory_bound(self, config):
        t = elementwise_time(config, 10_000_000)
        assert t.io_bound

    def test_invalid_shape_rejected(self):
        with pytest.raises(ConfigError):
            GemmShape(0, 1, 1)


class TestKernels:
    def test_iteration_time_positive_all_models(self, config):
        for model in MODEL_ZOO[:4]:
            assert iteration_time_s(config, model) > 0

    def test_throughput_in_accelerator_range(self, config):
        """Effective training throughput should be in a plausible A100-ish
        band (tens to ~300 TFLOPS depending on model shape)."""
        for model in (model_by_name("GPT2-M"), model_by_name("OPT-6.7B")):
            t = iteration_time_s(config, model)
            eff = model.fwd_bwd_flops() / t / 1e12
            assert 20 < eff < 400

    def test_kernel_list_covers_layers(self, config):
        model = model_by_name("GPT")
        names = {r.name for r in iteration_kernels(config, model)}
        assert any("l0.attn.qkv.fwd" in n for n in names)
        assert any(f"l{model.n_layers - 1}" in n for n in names)
        assert any("unembed" in n for n in names)

    def test_io_bytes_positive(self, config):
        assert iteration_io_bytes(config, model_by_name("GPT")) > 0


class TestMacSchemes:
    def test_storage_decreases_with_granularity(self, config):
        overheads = [MacScheme(f"{g}", g).storage_overhead() for g in (64, 512, 4096)]
        assert overheads == sorted(overheads, reverse=True)

    def test_fig20_anchor_points(self, config):
        schemes = {s.name: s for s in fig20_schemes()}
        assert schemes["64B"].storage_overhead() == pytest.approx(0.109, abs=0.01)
        assert schemes["64B"].performance_overhead(config) == pytest.approx(0.12, abs=0.02)
        assert schemes["4096B"].performance_overhead(config) == pytest.approx(0.13, abs=0.02)
        ours = schemes["tensor(ours)"]
        assert ours.storage_overhead() == 0.0
        assert ours.performance_overhead(config) == pytest.approx(0.025, abs=0.001)

    def test_u_shape_dip_in_middle(self, config):
        perf = {g: MacScheme(f"{g}", g).performance_overhead(config) for g in (64, 512, 4096)}
        assert perf[512] < perf[64]
        assert perf[512] < perf[4096]

    def test_granule_must_be_line_multiple(self):
        with pytest.raises(ConfigError):
            MacScheme("bad", 96)

    def test_delayed_policy_removes_stalls_at_any_granularity(self, config):
        # The mac_policy sweep's cross product: delayed verification trades
        # the granule-completion stall for the barrier tail while the MAC
        # traffic overhead stays with the granularity.
        for granule in (64, 512, 4096):
            eager = MacScheme(f"{granule}e", granule)
            delayed = MacScheme(f"{granule}d", granule, delayed=True)
            assert delayed.stall_overhead(config) == 0.0
            assert delayed.traffic_overhead() == eager.traffic_overhead()
            expected = eager.traffic_overhead() + config.barrier_tail_fraction
            assert delayed.performance_overhead(config) == pytest.approx(expected)
        # Eager whole-tensor verification still serializes fully (Fig. 13b).
        assert MacScheme("tensor-eager", 0).stall_overhead(config) == 1.0


class TestOnChipTables:
    def test_vn_bumps_per_tensor(self):
        registry = TensorRegistry()
        table = TensorVnTable(registry)
        t = registry.allocate("t", (64,))
        assert table.vn_of(t) == 0
        assert table.begin_write(t) == 1
        assert table.vn_for_line(t.base_va + 64) == 1

    def test_unmapped_address_rejected(self):
        registry = TensorRegistry()
        table = TensorVnTable(registry)
        with pytest.raises(ConfigError):
            table.vn_for_line(0x123000)

    def test_mac_table_fold_is_xor(self):
        table = OnChipTensorMacTable()
        table.set_mac(1, 0b1010)
        table.fold(1, 0b0110)
        assert table.mac_of(1) == 0b1100

    def test_mac_table_capacity_enforced(self):
        table = OnChipTensorMacTable(capacity=2)
        table.set_mac(1, 1)
        table.set_mac(2, 2)
        with pytest.raises(ConfigError):
            table.set_mac(3, 3)

    def test_poison_bits(self):
        table = OnChipTensorMacTable()
        table.set_poison(5)
        assert table.is_poisoned(5)
        assert table.poisoned_count == 1
        table.set_poison(5, False)
        assert not table.is_poisoned(5)
