"""Cryptographic substrate: AES-128 counter mode, 56-bit MACs, Merkle tree.

The functional security path of the reproduction is real: data written to the
simulated off-chip DRAM is actually encrypted with counter-mode AES-128
(counter = physical address || version number, Sec. 2.2 of the paper),
integrity-protected with 56-bit truncated keyed-hash MACs, and — on the CPU
side — the off-chip version numbers are covered by an 8-ary Bonsai Merkle
Tree whose root lives on chip. Tampering and replay in tests are detected by
these primitives, not by mocks.
"""

from repro.crypto.aes import AES128
from repro.crypto.ctr import CounterModeCipher
from repro.crypto.keys import DiffieHellman, derive_key
from repro.crypto.mac import MacEngine, TensorMacAccumulator, xor_macs
from repro.crypto.merkle import BonsaiMerkleTree

__all__ = [
    "AES128",
    "CounterModeCipher",
    "DiffieHellman",
    "derive_key",
    "MacEngine",
    "TensorMacAccumulator",
    "xor_macs",
    "BonsaiMerkleTree",
]
