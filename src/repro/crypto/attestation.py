"""Remote attestation between the CPU and NPU enclaves (Sec. 4.4.2).

Enclave creation measures code+configuration into a report; each side's
device key signs (MACs) the report; the peers verify each other's report
against expected measurements before running the DH key exchange.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.crypto.mac import MacEngine
from repro.errors import AttestationError


def measure(code: bytes, config: bytes = b"") -> bytes:
    """Enclave measurement: hash of initial code and configuration."""
    h = hashlib.blake2b(digest_size=32)
    h.update(code)
    h.update(b"|cfg|")
    h.update(config)
    return h.digest()


@dataclass(frozen=True)
class AttestationReport:
    """A signed enclave measurement."""

    enclave_name: str
    measurement: bytes
    signature: int

    def payload(self) -> bytes:
        return self.enclave_name.encode("utf-8") + b"|" + self.measurement


class Attestor:
    """Produces and verifies attestation reports with a device root key.

    In real hardware the device key is fused; here both simulated devices
    are provisioned by :class:`repro.tee.enclave.TrustDomain` with keys that
    chain to the same simulated manufacturer root.
    """

    def __init__(self, device_key: bytes) -> None:
        self._mac = MacEngine(device_key)

    def report(self, enclave_name: str, measurement: bytes) -> AttestationReport:
        """Sign a measurement into a report."""
        payload = enclave_name.encode("utf-8") + b"|" + measurement
        return AttestationReport(enclave_name, measurement, self._mac.digest(payload))

    def verify(self, report: AttestationReport, expected_measurement: bytes) -> None:
        """Check signature and expected measurement; raise on mismatch."""
        if self._mac.digest(report.payload()) != report.signature:
            raise AttestationError(
                f"report signature for {report.enclave_name!r} is invalid"
            )
        if report.measurement != expected_measurement:
            raise AttestationError(
                f"measurement mismatch for enclave {report.enclave_name!r}"
            )
