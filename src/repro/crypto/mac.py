"""56-bit message authentication codes and XOR-combinable tensor MACs.

Per Sec. 2.2, ``MAC = Hash(K_mac, (C, PA, VN))`` with a 56-bit output.
Per Sec. 4.3, the *tensor* MAC is the XOR of its cachelines' MACs, which is
order-insensitive (so tiled NPU access orders all produce the same value)
and keeps forgery resistance at the 56-bit level.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Iterable, List, Sequence

from repro import vec
from repro.errors import ConfigError
from repro.units import MAC_BITS

_MAC_BYTES = MAC_BITS // 8  # 7 bytes = 56 bits


class MacEngine:
    """Keyed-hash MAC over ``(ciphertext, PA, VN)`` tuples."""

    def __init__(self, key: bytes) -> None:
        if not key:
            raise ConfigError("MAC key must be non-empty")
        self.key = key

    def line_mac(self, ciphertext: bytes, pa: int, vn: int) -> int:
        """56-bit MAC of one cacheline as an integer."""
        h = hashlib.blake2b(key=self.key, digest_size=_MAC_BYTES)
        h.update(struct.pack(">QQ", pa & 0xFFFFFFFFFFFFFFFF, vn & 0xFFFFFFFFFFFFFFFF))
        h.update(ciphertext)
        return int.from_bytes(h.digest(), "big")

    def digest(self, payload: bytes) -> int:
        """56-bit MAC over an arbitrary payload (used for reports/channels)."""
        h = hashlib.blake2b(key=self.key, digest_size=_MAC_BYTES)
        h.update(payload)
        return int.from_bytes(h.digest(), "big")

    def line_macs(
        self, ciphertexts: bytes, line_bytes: int, pas: Sequence[int], vns: Sequence[int]
    ) -> List[int]:
        """Per-line MACs for a concatenation of lines (bulk-path helper).

        The keyed hash itself is C-speed and per-line by construction, so
        this is a convenience batch API rather than a vectorization point;
        it exists so the MEE bulk paths have one call per stream.
        """
        if len(pas) != len(vns):
            raise ConfigError("pas and vns must pair up one per line")
        if len(ciphertexts) != len(pas) * line_bytes:
            raise ConfigError(
                f"batch must be {len(pas)} lines of {line_bytes} bytes, "
                f"got {len(ciphertexts)} bytes"
            )
        line_mac = self.line_mac
        return [
            line_mac(ciphertexts[i * line_bytes : (i + 1) * line_bytes], pa, vn)
            for i, (pa, vn) in enumerate(zip(pas, vns))
        ]


def xor_macs(macs: Iterable[int]) -> int:
    """Fold per-line MACs into a tensor MAC: ``MAC_0 ^ MAC_1 ^ ...``."""
    if vec.enabled():
        seq = macs if isinstance(macs, (list, tuple)) else list(macs)
        if seq:
            np = vec.np
            return int(
                np.bitwise_xor.reduce(np.asarray(seq, dtype=np.uint64))
            )
        return 0
    acc = 0
    for mac in macs:
        acc ^= mac
    return acc


class TensorMacAccumulator:
    """Streaming XOR accumulator for a tensor's MAC (Sec. 4.3).

    The accumulator is order-insensitive, so an NPU kernel can consume the
    tensor in any tiled order and still converge to the same tensor MAC.

    >>> acc = TensorMacAccumulator(expected_lines=2)
    >>> acc.absorb(0x0F)
    >>> acc.complete
    False
    >>> acc.absorb(0xF0)
    >>> (acc.value, acc.complete)
    (255, True)
    """

    def __init__(self, expected_lines: int) -> None:
        if expected_lines <= 0:
            raise ConfigError("a tensor MAC covers at least one line")
        self.expected_lines = expected_lines
        self.absorbed = 0
        self.value = 0

    def absorb(self, line_mac: int) -> None:
        """Fold one cacheline MAC into the accumulator."""
        self.value ^= line_mac
        self.absorbed += 1

    def absorb_many(self, line_macs: Sequence[int]) -> None:
        """Fold a whole stream of line MACs at once (order-insensitive)."""
        self.value ^= xor_macs(line_macs)
        self.absorbed += len(line_macs)

    @property
    def complete(self) -> bool:
        """True once every expected line has been absorbed."""
        return self.absorbed >= self.expected_lines

    def matches(self, reference: int) -> bool:
        """Compare against the stored tensor MAC; only valid when complete."""
        return self.complete and self.value == reference
