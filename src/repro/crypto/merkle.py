"""8-ary Bonsai Merkle Tree over version-number lines (Sec. 2.2).

Following BMT, the tree protects only the VNs (data lines are covered by
their MACs, which bind (C, PA, VN)); the root digest lives on chip. The
"off-chip" node storage is exposed so the attack harness can tamper with it
and tests can confirm detection. ``verify_leaf``/``update_leaf`` report the
path length actually walked, which the MEE timing model converts into
metadata traffic.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Tuple

from repro.errors import ConfigError, IntegrityError

_DIGEST_BYTES = 8  # modelled hash node width (64-bit, 8-ary tree of 64B nodes)


def _node_hash(key: bytes, level: int, index: int, payload: bytes) -> bytes:
    h = hashlib.blake2b(key=key, digest_size=_DIGEST_BYTES)
    h.update(level.to_bytes(2, "big"))
    h.update(index.to_bytes(8, "big"))
    h.update(payload)
    return h.digest()


class BonsaiMerkleTree:
    """Integrity tree with arity 8 and an on-chip root.

    Leaves are byte strings (a 64-byte VN line in the MEE). Off-chip storage
    (``_leaves`` and ``_nodes``) is tamperable via :meth:`tamper_leaf` /
    :meth:`tamper_node`; the on-chip root is not.
    """

    ARITY = 8

    def __init__(self, n_leaves: int, key: bytes = b"merkle") -> None:
        if n_leaves <= 0:
            raise ConfigError("tree needs at least one leaf")
        self.n_leaves = n_leaves
        self.key = key
        self.levels = 1
        width = n_leaves
        while width > 1:
            width = -(-width // self.ARITY)
            self.levels += 1
        self._leaves: Dict[int, bytes] = {}
        # _nodes[(level, index)] = digest; level 1 is just above the leaves.
        self._nodes: Dict[Tuple[int, int], bytes] = {}
        self._root: bytes = b""
        self._rebuild_all()

    # -- construction ------------------------------------------------------

    def _leaf(self, index: int) -> bytes:
        return self._leaves.get(index, b"\x00")

    def _level_width(self, level: int) -> int:
        width = self.n_leaves
        for _ in range(level):
            width = -(-width // self.ARITY)
        return width

    def _compute_node(self, level: int, index: int) -> bytes:
        """Digest of node (level, index) from its stored children."""
        children: List[bytes] = []
        if level == 1:
            base = index * self.ARITY
            for child in range(base, min(base + self.ARITY, self.n_leaves)):
                children.append(_node_hash(self.key, 0, child, self._leaf(child)))
        else:
            base = index * self.ARITY
            child_width = self._level_width(level - 1)
            for child in range(base, min(base + self.ARITY, child_width)):
                children.append(self._nodes[(level - 1, child)])
        return _node_hash(self.key, level, index, b"".join(children))

    def _rebuild_all(self) -> None:
        for level in range(1, self.levels):
            for index in range(self._level_width(level)):
                self._nodes[(level, index)] = self._compute_node(level, index)
        top = self.levels - 1
        if top == 0:
            self._root = _node_hash(self.key, 0, 0, self._leaf(0))
        else:
            self._root = self._nodes[(top, 0)]

    # -- authenticated operations -----------------------------------------

    def update_leaf(self, index: int, payload: bytes) -> int:
        """Write a leaf and refresh its path to the root.

        Returns the number of tree nodes rewritten (path length), the
        quantity the MEE charges as metadata write traffic.
        """
        self._check_index(index)
        self._leaves[index] = payload
        walked = 0
        node_index = index
        for level in range(1, self.levels):
            node_index //= self.ARITY
            self._nodes[(level, node_index)] = self._compute_node(level, node_index)
            walked += 1
        top = self.levels - 1
        if top == 0:
            self._root = _node_hash(self.key, 0, 0, self._leaf(0))
        else:
            self._root = self._nodes[(top, 0)]
        return walked

    def verify_leaf(self, index: int, payload: bytes, trusted_level: int | None = None) -> int:
        """Authenticate ``payload`` as leaf ``index``.

        Recomputes the hash chain from the leaf upward, comparing against
        off-chip stored nodes, stopping early at ``trusted_level`` (a level
        whose node the metadata cache already holds verified) or at the
        on-chip root. Returns the number of levels walked; raises
        :class:`IntegrityError` on mismatch.
        """
        self._check_index(index)
        if self._leaves.get(index, b"\x00") != payload:
            raise IntegrityError(f"leaf {index} does not match off-chip storage")
        walked = 0
        node_index = index
        for level in range(1, self.levels):
            node_index //= self.ARITY
            recomputed = self._compute_node(level, node_index)
            stored = self._nodes[(level, node_index)]
            walked += 1
            if recomputed != stored:
                raise IntegrityError(
                    f"Merkle node (level {level}, index {node_index}) mismatch"
                )
            if trusted_level is not None and level >= trusted_level:
                return walked
        top = self.levels - 1
        expected_root = (
            _node_hash(self.key, 0, 0, self._leaf(0)) if top == 0 else self._nodes[(top, 0)]
        )
        if expected_root != self._root:
            raise IntegrityError("Merkle root mismatch (on-chip root diverged)")
        return walked

    @property
    def root(self) -> bytes:
        """The on-chip root digest."""
        return self._root

    # -- attack surface (off-chip storage) ----------------------------------

    def tamper_leaf(self, index: int, payload: bytes) -> None:
        """Overwrite off-chip leaf storage *without* updating the tree."""
        self._check_index(index)
        self._leaves[index] = payload

    def tamper_node(self, level: int, index: int, digest: bytes) -> None:
        """Corrupt an off-chip interior node."""
        if (level, index) not in self._nodes:
            raise ConfigError(f"no node at (level {level}, index {index})")
        self._nodes[(level, index)] = digest

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.n_leaves:
            raise ConfigError(f"leaf index {index} out of range [0, {self.n_leaves})")
