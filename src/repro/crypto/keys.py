"""Key material: Diffie-Hellman exchange and key derivation (Sec. 4.4.2).

After mutual attestation the CPU and NPU enclaves run a DH exchange so both
sides hold the same AES/MAC keys without the keys ever crossing the bus —
this shared key is what makes ciphertext portable between the enclaves and
enables the direct transfer protocol.
"""

from __future__ import annotations

import hashlib
import secrets

from repro.errors import ConfigError

# RFC 3526 group 14 (2048-bit MODP). Generator 2.
_MODP_2048_HEX = (
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1"
    "29024E088A67CC74020BBEA63B139B22514A08798E3404DD"
    "EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245"
    "E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D"
    "C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F"
    "83655D23DCA3AD961C62F356208552BB9ED529077096966D"
    "670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9"
    "DE2BCBF6955817183995497CEA956AE515D2261898FA0510"
    "15728E5A8AACAA68FFFFFFFFFFFFFFFFFFFFFFFF"
)
DH_PRIME = int(_MODP_2048_HEX, 16)
DH_GENERATOR = 2


def derive_key(shared_secret: bytes, label: str, length: int = 16) -> bytes:
    """Derive a labelled sub-key from a shared secret (simple KDF)."""
    if length <= 0 or length > 64:
        raise ConfigError("derived key length must be in (0, 64]")
    h = hashlib.blake2b(digest_size=length)
    h.update(label.encode("utf-8"))
    h.update(shared_secret)
    return h.digest()


class DiffieHellman:
    """One party of a classic finite-field DH exchange.

    >>> a, b = DiffieHellman(seed=1), DiffieHellman(seed=2)
    >>> a.shared_secret(b.public) == b.shared_secret(a.public)
    True
    """

    def __init__(self, seed: int | None = None) -> None:
        if seed is None:
            self._private = secrets.randbits(256) | 1
        else:
            # Deterministic private exponent for reproducible simulations.
            digest = hashlib.blake2b(seed.to_bytes(8, "big"), digest_size=32).digest()
            self._private = int.from_bytes(digest, "big") | 1
        self.public = pow(DH_GENERATOR, self._private, DH_PRIME)

    def shared_secret(self, peer_public: int) -> bytes:
        """Compute the shared secret bytes from the peer's public value."""
        if not 1 < peer_public < DH_PRIME - 1:
            raise ConfigError("peer public value out of range")
        secret = pow(peer_public, self._private, DH_PRIME)
        return secret.to_bytes((DH_PRIME.bit_length() + 7) // 8, "big")

    def session_keys(self, peer_public: int) -> tuple[bytes, bytes]:
        """Derive the (AES, MAC) session key pair both enclaves will share."""
        secret = self.shared_secret(peer_public)
        return derive_key(secret, "aes", 16), derive_key(secret, "mac", 16)
