"""Counter-mode memory encryption: ``C = AES(K, (PA, VN)) xor P``.

The counter for each 16-byte sub-block of a 64-byte cacheline packs the
line's physical address, its version number and the sub-block index — the
(PA, VN) construction of Sec. 2.2. Because the keystream depends only on
(key, PA, VN), the same routine both encrypts and decrypts, and a stale VN
yields garbage plaintext (which the MAC then rejects → replay detection).
"""

from __future__ import annotations

import struct
from functools import lru_cache
from typing import Sequence

from repro import vec
from repro.crypto.aes import AES128
from repro.errors import ConfigError
from repro.units import CACHELINE_BYTES


class CounterModeCipher:
    """Counter-mode AES-128 over 64-byte cachelines."""

    def __init__(self, key: bytes, line_bytes: int = CACHELINE_BYTES) -> None:
        if line_bytes % AES128.BLOCK_BYTES != 0:
            raise ConfigError("line size must be a multiple of the AES block")
        self._aes = AES128(key)
        self.line_bytes = line_bytes
        self._blocks_per_line = line_bytes // AES128.BLOCK_BYTES
        # Keystream blocks repeat heavily across a simulation (same PA/VN
        # pairs during reads); memoise them per cipher instance.
        self._keystream_block = lru_cache(maxsize=65536)(self._keystream_block_uncached)

    def _keystream_block_uncached(self, pa: int, vn: int, block_index: int) -> bytes:
        counter = struct.pack(
            ">QQ",
            pa & 0xFFFFFFFFFFFFFFFF,
            ((vn & 0x00FFFFFFFFFFFFFF) << 8) | (block_index & 0xFF),
        )
        return self._aes.encrypt_block(counter)

    def keystream(self, pa: int, vn: int) -> bytes:
        """Full keystream for the line at physical address ``pa``."""
        parts = [self._keystream_block(pa, vn, i) for i in range(self._blocks_per_line)]
        return b"".join(parts)

    def encrypt_line(self, plaintext: bytes, pa: int, vn: int) -> bytes:
        """Encrypt (or decrypt — XOR is an involution) one cacheline."""
        if len(plaintext) != self.line_bytes:
            raise ConfigError(
                f"line must be {self.line_bytes} bytes, got {len(plaintext)}"
            )
        stream = self.keystream(pa, vn)
        return self._xor(plaintext, stream)

    decrypt_line = encrypt_line

    @staticmethod
    def _xor(data: bytes, stream: bytes) -> bytes:
        width = len(data)
        return (
            int.from_bytes(data, "big") ^ int.from_bytes(stream, "big")
        ).to_bytes(width, "big")

    # -- batched line streams -------------------------------------------------

    def keystream_lines(self, pas: Sequence[int], vns: Sequence[int]) -> bytes:
        """Concatenated keystreams for many ``(PA, VN)`` lines at once.

        The batched path builds every line's counter blocks as one array
        and pushes them through the batched AES; the scalar path is the
        per-line :meth:`keystream` loop (and shares its memoisation).
        """
        if len(pas) != len(vns):
            raise ConfigError("pas and vns must pair up one per line")
        if not pas:
            return b""
        if not vec.enabled():
            return b"".join(self.keystream(pa, vn) for pa, vn in zip(pas, vns))
        np = vec.np
        blocks = self._blocks_per_line
        counters = np.empty((len(pas), blocks, 2), dtype=">u8")
        counters[:, :, 0] = np.asarray(
            [pa & 0xFFFFFFFFFFFFFFFF for pa in pas], dtype=np.uint64
        )[:, None]
        vn_words = np.asarray(
            [((vn & 0x00FFFFFFFFFFFFFF) << 8) for vn in vns], dtype=np.uint64
        )
        counters[:, :, 1] = vn_words[:, None] | np.arange(blocks, dtype=np.uint64)
        return self._aes.encrypt_blocks(counters.tobytes())

    def encrypt_lines(
        self, plaintexts: bytes, pas: Sequence[int], vns: Sequence[int]
    ) -> bytes:
        """Encrypt (or decrypt) many whole lines in one batch.

        ``plaintexts`` is the concatenation of ``len(pas)`` lines; the
        result is the concatenation of each line XORed with its own
        ``(PA, VN)`` keystream — byte-identical to an :meth:`encrypt_line`
        loop.
        """
        if len(pas) != len(vns):
            raise ConfigError("pas and vns must pair up one per line")
        if len(plaintexts) != len(pas) * self.line_bytes:
            raise ConfigError(
                f"batch must be {len(pas)} lines of {self.line_bytes} bytes, "
                f"got {len(plaintexts)} bytes"
            )
        if not pas:
            return b""
        if not vec.enabled():
            return b"".join(
                self.encrypt_line(
                    plaintexts[i * self.line_bytes : (i + 1) * self.line_bytes], pa, vn
                )
                for i, (pa, vn) in enumerate(zip(pas, vns))
            )
        np = vec.np
        stream = self.keystream_lines(pas, vns)
        data = np.frombuffer(plaintexts, dtype=np.uint8)
        return (data ^ np.frombuffer(stream, dtype=np.uint8)).tobytes()

    decrypt_lines = encrypt_lines
