"""Counter-mode memory encryption: ``C = AES(K, (PA, VN)) xor P``.

The counter for each 16-byte sub-block of a 64-byte cacheline packs the
line's physical address, its version number and the sub-block index — the
(PA, VN) construction of Sec. 2.2. Because the keystream depends only on
(key, PA, VN), the same routine both encrypts and decrypts, and a stale VN
yields garbage plaintext (which the MAC then rejects → replay detection).
"""

from __future__ import annotations

import struct
from functools import lru_cache

from repro.crypto.aes import AES128
from repro.errors import ConfigError
from repro.units import CACHELINE_BYTES


class CounterModeCipher:
    """Counter-mode AES-128 over 64-byte cachelines."""

    def __init__(self, key: bytes, line_bytes: int = CACHELINE_BYTES) -> None:
        if line_bytes % AES128.BLOCK_BYTES != 0:
            raise ConfigError("line size must be a multiple of the AES block")
        self._aes = AES128(key)
        self.line_bytes = line_bytes
        self._blocks_per_line = line_bytes // AES128.BLOCK_BYTES
        # Keystream blocks repeat heavily across a simulation (same PA/VN
        # pairs during reads); memoise them per cipher instance.
        self._keystream_block = lru_cache(maxsize=65536)(self._keystream_block_uncached)

    def _keystream_block_uncached(self, pa: int, vn: int, block_index: int) -> bytes:
        counter = struct.pack(
            ">QQ",
            pa & 0xFFFFFFFFFFFFFFFF,
            ((vn & 0x00FFFFFFFFFFFFFF) << 8) | (block_index & 0xFF),
        )
        return self._aes.encrypt_block(counter)

    def keystream(self, pa: int, vn: int) -> bytes:
        """Full keystream for the line at physical address ``pa``."""
        parts = [self._keystream_block(pa, vn, i) for i in range(self._blocks_per_line)]
        return b"".join(parts)

    def encrypt_line(self, plaintext: bytes, pa: int, vn: int) -> bytes:
        """Encrypt (or decrypt — XOR is an involution) one cacheline."""
        if len(plaintext) != self.line_bytes:
            raise ConfigError(
                f"line must be {self.line_bytes} bytes, got {len(plaintext)}"
            )
        stream = self.keystream(pa, vn)
        return bytes(p ^ s for p, s in zip(plaintext, stream))

    decrypt_line = encrypt_line
