"""Pure-Python AES-128 block encryption (FIPS-197).

Only encryption is implemented because counter mode (the mode TEE memory
encryption engines use, Sec. 2.2) needs the forward permutation for both
encryption and decryption. The S-box and round constants are derived
programmatically; correctness is pinned to the FIPS-197 test vector in the
test suite.
"""

from __future__ import annotations

from typing import List

from repro.errors import ConfigError


def _rotl8(value: int, shift: int) -> int:
    return ((value << shift) | (value >> (8 - shift))) & 0xFF


def _build_sbox() -> List[int]:
    """Derive the AES S-box (GF(2^8) inverse followed by the affine map)."""
    sbox = [0] * 256
    p, q = 1, 1
    while True:
        # p iterates multiplicative generator x3; q tracks its inverse (/3).
        p = p ^ ((p << 1) & 0xFF) ^ (0x1B if p & 0x80 else 0)
        q ^= (q << 1) & 0xFF
        q ^= (q << 2) & 0xFF
        q ^= (q << 4) & 0xFF
        if q & 0x80:
            q ^= 0x09
        transformed = q ^ _rotl8(q, 1) ^ _rotl8(q, 2) ^ _rotl8(q, 3) ^ _rotl8(q, 4)
        sbox[p] = transformed ^ 0x63
        if p == 1:
            break
    sbox[0] = 0x63
    return sbox


_SBOX = _build_sbox()
_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


def _xtime(value: int) -> int:
    """Multiply by x in GF(2^8)."""
    value <<= 1
    if value & 0x100:
        value ^= 0x11B
    return value & 0xFF


class AES128:
    """AES-128 forward cipher over 16-byte blocks.

    >>> key = bytes(range(16))
    >>> AES128(key).encrypt_block(bytes.fromhex(
    ...     "00112233445566778899aabbccddeeff")).hex()
    '69c4e0d86a7b0430d8cdb78070b4c55a'
    """

    BLOCK_BYTES = 16
    ROUNDS = 10

    def __init__(self, key: bytes) -> None:
        if len(key) != 16:
            raise ConfigError(f"AES-128 key must be 16 bytes, got {len(key)}")
        self.key = key
        self._round_keys = self._expand_key(key)

    @staticmethod
    def _expand_key(key: bytes) -> List[List[int]]:
        """FIPS-197 key schedule; returns 11 round keys of 16 bytes each."""
        words = [list(key[i : i + 4]) for i in range(0, 16, 4)]
        for i in range(4, 44):
            temp = list(words[i - 1])
            if i % 4 == 0:
                temp = temp[1:] + temp[:1]
                temp = [_SBOX[b] for b in temp]
                temp[0] ^= _RCON[i // 4 - 1]
            words.append([a ^ b for a, b in zip(words[i - 4], temp)])
        round_keys = []
        for r in range(11):
            flat: List[int] = []
            for w in words[4 * r : 4 * r + 4]:
                flat.extend(w)
            round_keys.append(flat)
        return round_keys

    @staticmethod
    def _sub_bytes(state: List[int]) -> None:
        for i, b in enumerate(state):
            state[i] = _SBOX[b]

    @staticmethod
    def _shift_rows(state: List[int]) -> List[int]:
        # State is column-major: byte (row r, col c) lives at index 4*c + r.
        shifted = [0] * 16
        for c in range(4):
            for r in range(4):
                shifted[4 * c + r] = state[4 * ((c + r) % 4) + r]
        return shifted

    @staticmethod
    def _mix_columns(state: List[int]) -> List[int]:
        mixed = [0] * 16
        for c in range(4):
            col = state[4 * c : 4 * c + 4]
            mixed[4 * c + 0] = _xtime(col[0]) ^ _xtime(col[1]) ^ col[1] ^ col[2] ^ col[3]
            mixed[4 * c + 1] = col[0] ^ _xtime(col[1]) ^ _xtime(col[2]) ^ col[2] ^ col[3]
            mixed[4 * c + 2] = col[0] ^ col[1] ^ _xtime(col[2]) ^ _xtime(col[3]) ^ col[3]
            mixed[4 * c + 3] = _xtime(col[0]) ^ col[0] ^ col[1] ^ col[2] ^ _xtime(col[3])
        return mixed

    @staticmethod
    def _add_round_key(state: List[int], round_key: List[int]) -> None:
        for i in range(16):
            state[i] ^= round_key[i]

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block."""
        if len(block) != self.BLOCK_BYTES:
            raise ConfigError(f"block must be 16 bytes, got {len(block)}")
        state = list(block)
        self._add_round_key(state, self._round_keys[0])
        for round_index in range(1, self.ROUNDS):
            self._sub_bytes(state)
            state = self._shift_rows(state)
            state = self._mix_columns(state)
            self._add_round_key(state, self._round_keys[round_index])
        self._sub_bytes(state)
        state = self._shift_rows(state)
        self._add_round_key(state, self._round_keys[self.ROUNDS])
        return bytes(state)
