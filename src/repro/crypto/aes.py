"""Pure-Python AES-128 block encryption (FIPS-197).

Only encryption is implemented because counter mode (the mode TEE memory
encryption engines use, Sec. 2.2) needs the forward permutation for both
encryption and decryption. The S-box and round constants are derived
programmatically; correctness is pinned to the FIPS-197 test vector in the
test suite.
"""

from __future__ import annotations

from typing import List

from repro import vec
from repro.errors import ConfigError


def _rotl8(value: int, shift: int) -> int:
    return ((value << shift) | (value >> (8 - shift))) & 0xFF


def _build_sbox() -> List[int]:
    """Derive the AES S-box (GF(2^8) inverse followed by the affine map)."""
    sbox = [0] * 256
    p, q = 1, 1
    while True:
        # p iterates multiplicative generator x3; q tracks its inverse (/3).
        p = p ^ ((p << 1) & 0xFF) ^ (0x1B if p & 0x80 else 0)
        q ^= (q << 1) & 0xFF
        q ^= (q << 2) & 0xFF
        q ^= (q << 4) & 0xFF
        if q & 0x80:
            q ^= 0x09
        transformed = q ^ _rotl8(q, 1) ^ _rotl8(q, 2) ^ _rotl8(q, 3) ^ _rotl8(q, 4)
        sbox[p] = transformed ^ 0x63
        if p == 1:
            break
    sbox[0] = 0x63
    return sbox


_SBOX = _build_sbox()
_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]

# Lookup tables for the batched (NumPy) round functions, built lazily so a
# numpy-less install never touches them. ``_SHIFT_IDX[i]`` is the source
# index ShiftRows reads byte ``i`` from (column-major state layout).
_NP_TABLES = None


def _np_tables():
    global _NP_TABLES
    if _NP_TABLES is None:
        np = vec.np
        sbox = np.array(_SBOX, dtype=np.uint8)
        xtime = np.array([_xtime(v) for v in range(256)], dtype=np.uint8)
        shift_idx = np.array(
            [4 * ((c + r) % 4) + r for c in range(4) for r in range(4)],
            dtype=np.intp,
        )
        _NP_TABLES = (sbox, xtime, shift_idx)
    return _NP_TABLES


def _xtime(value: int) -> int:
    """Multiply by x in GF(2^8)."""
    value <<= 1
    if value & 0x100:
        value ^= 0x11B
    return value & 0xFF


class AES128:
    """AES-128 forward cipher over 16-byte blocks.

    >>> key = bytes(range(16))
    >>> AES128(key).encrypt_block(bytes.fromhex(
    ...     "00112233445566778899aabbccddeeff")).hex()
    '69c4e0d86a7b0430d8cdb78070b4c55a'
    """

    BLOCK_BYTES = 16
    ROUNDS = 10

    def __init__(self, key: bytes) -> None:
        if len(key) != 16:
            raise ConfigError(f"AES-128 key must be 16 bytes, got {len(key)}")
        self.key = key
        self._round_keys = self._expand_key(key)

    @staticmethod
    def _expand_key(key: bytes) -> List[List[int]]:
        """FIPS-197 key schedule; returns 11 round keys of 16 bytes each."""
        words = [list(key[i : i + 4]) for i in range(0, 16, 4)]
        for i in range(4, 44):
            temp = list(words[i - 1])
            if i % 4 == 0:
                temp = temp[1:] + temp[:1]
                temp = [_SBOX[b] for b in temp]
                temp[0] ^= _RCON[i // 4 - 1]
            words.append([a ^ b for a, b in zip(words[i - 4], temp)])
        round_keys = []
        for r in range(11):
            flat: List[int] = []
            for w in words[4 * r : 4 * r + 4]:
                flat.extend(w)
            round_keys.append(flat)
        return round_keys

    @staticmethod
    def _sub_bytes(state: List[int]) -> None:
        for i, b in enumerate(state):
            state[i] = _SBOX[b]

    @staticmethod
    def _shift_rows(state: List[int]) -> List[int]:
        # State is column-major: byte (row r, col c) lives at index 4*c + r.
        shifted = [0] * 16
        for c in range(4):
            for r in range(4):
                shifted[4 * c + r] = state[4 * ((c + r) % 4) + r]
        return shifted

    @staticmethod
    def _mix_columns(state: List[int]) -> List[int]:
        mixed = [0] * 16
        for c in range(4):
            col = state[4 * c : 4 * c + 4]
            mixed[4 * c + 0] = _xtime(col[0]) ^ _xtime(col[1]) ^ col[1] ^ col[2] ^ col[3]
            mixed[4 * c + 1] = col[0] ^ _xtime(col[1]) ^ _xtime(col[2]) ^ col[2] ^ col[3]
            mixed[4 * c + 2] = col[0] ^ col[1] ^ _xtime(col[2]) ^ _xtime(col[3]) ^ col[3]
            mixed[4 * c + 3] = _xtime(col[0]) ^ col[0] ^ col[1] ^ col[2] ^ _xtime(col[3])
        return mixed

    @staticmethod
    def _add_round_key(state: List[int], round_key: List[int]) -> None:
        for i in range(16):
            state[i] ^= round_key[i]

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block."""
        if len(block) != self.BLOCK_BYTES:
            raise ConfigError(f"block must be 16 bytes, got {len(block)}")
        state = list(block)
        self._add_round_key(state, self._round_keys[0])
        for round_index in range(1, self.ROUNDS):
            self._sub_bytes(state)
            state = self._shift_rows(state)
            state = self._mix_columns(state)
            self._add_round_key(state, self._round_keys[round_index])
        self._sub_bytes(state)
        state = self._shift_rows(state)
        self._add_round_key(state, self._round_keys[self.ROUNDS])
        return bytes(state)

    def encrypt_blocks(self, blocks: bytes) -> bytes:
        """Encrypt a concatenation of 16-byte blocks in one batch.

        Bit-identical to calling :meth:`encrypt_block` per block; with
        NumPy available (and vectorization enabled) the whole batch moves
        through each round function together, which is what makes bulk
        counter-mode keystream generation fast.
        """
        if len(blocks) % self.BLOCK_BYTES:
            raise ConfigError(
                f"batch must be a multiple of {self.BLOCK_BYTES} bytes, got {len(blocks)}"
            )
        if not blocks:
            return b""
        if not vec.enabled():
            return b"".join(
                self.encrypt_block(blocks[i : i + self.BLOCK_BYTES])
                for i in range(0, len(blocks), self.BLOCK_BYTES)
            )
        np = vec.np
        sbox, xtime, shift_idx = _np_tables()
        round_keys = getattr(self, "_np_round_keys", None)
        if round_keys is None:
            round_keys = [np.array(rk, dtype=np.uint8) for rk in self._round_keys]
            self._np_round_keys = round_keys
        state = np.frombuffer(blocks, dtype=np.uint8).reshape(-1, 16).copy()
        state ^= round_keys[0]
        for round_index in range(1, self.ROUNDS):
            state = sbox[state][:, shift_idx]
            # MixColumns on the (N, col, row) view of the column-major state.
            cols = state.reshape(-1, 4, 4)
            c0, c1, c2, c3 = (cols[:, :, r] for r in range(4))
            x0, x1, x2, x3 = xtime[c0], xtime[c1], xtime[c2], xtime[c3]
            mixed = np.empty_like(cols)
            mixed[:, :, 0] = x0 ^ x1 ^ c1 ^ c2 ^ c3
            mixed[:, :, 1] = c0 ^ x1 ^ x2 ^ c2 ^ c3
            mixed[:, :, 2] = c0 ^ c1 ^ x2 ^ x3 ^ c3
            mixed[:, :, 3] = x0 ^ c0 ^ c1 ^ c2 ^ x3
            state = mixed.reshape(-1, 16)
            state ^= round_keys[round_index]
        state = sbox[state][:, shift_idx]
        state ^= round_keys[self.ROUNDS]
        return state.tobytes()
