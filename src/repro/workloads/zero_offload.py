"""ZeRO-Offload iteration structure (Fig. 1 of the paper).

One training iteration is four stages:

1. **NPU fwd+bwd** — forward and backward computation on the NPU.
2. **NPU→CPU gradient transfer** — fp32 gradients (Fig. 1 "Comm grad").
3. **CPU Adam update** — optimizer states and master weights on the CPU.
4. **CPU→NPU weight transfer** — fp16 weights (Fig. 1 "Comm weight").

This module computes the *volumes* (bytes, FLOPs) of each stage; timing
lives in the device models, and overlap policy in
:mod:`repro.comm.scheduler`. Gradients are produced layer-by-layer during
backward (so their transfer can overlap backward), and weights are consumed
layer-by-layer by the next forward (so their transfer can partially overlap
the optimizer tail).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.tensor.dtype import DType
from repro.workloads.models import ModelConfig
from repro.workloads.transformer import TransformerInventory

#: Bytes of CPU DRAM traffic per parameter in one Adam step:
#: reads w32+m+v+g (4 x fp32) and writes w32+m+v (3 x fp32) + w16 out (fp16).
ADAM_BYTES_PER_PARAM: int = 4 * 4 + 3 * 4 + 2

#: Arithmetic operations per parameter in one Adam step (mul/add/sqrt/div).
ADAM_OPS_PER_PARAM: int = 14


@dataclass(frozen=True)
class IterationVolumes:
    """Per-iteration work volumes of one model."""

    model_name: str
    npu_flops: float
    npu_weight_bytes: int  # fp16 weights streamed by fwd+bwd kernels
    npu_activation_bytes: int  # activation traffic to/from GDDR
    grad_bytes: int  # NPU -> CPU, fp32
    weight_bytes: int  # CPU -> NPU, fp16
    cpu_adam_bytes: int
    cpu_adam_ops: float
    n_params: int

    @property
    def comm_total_bytes(self) -> int:
        return self.grad_bytes + self.weight_bytes


class ZeroOffloadSchedule:
    """Computes stage volumes and per-layer overlap structure for a model."""

    def __init__(self, model: ModelConfig, inventory: TransformerInventory | None = None) -> None:
        self.model = model
        self.inventory = inventory if inventory is not None else TransformerInventory(model)

    def volumes(self) -> IterationVolumes:
        """Work volumes of one training iteration."""
        m = self.model
        n_params = self.inventory.total_params
        # fwd reads weights once, bwd reads them again (recompute-free):
        weight_traffic = 2 * n_params * DType.FP16.nbytes
        # Activations: ~2 bytes/elem, read+write in fwd, read in bwd, for
        # roughly 12 activation maps of size (tokens x hidden) per layer.
        act_elems = m.tokens_per_batch * m.hidden * m.n_layers * 12
        act_traffic = 3 * act_elems * DType.FP16.nbytes
        return IterationVolumes(
            model_name=m.name,
            npu_flops=m.fwd_bwd_flops(),
            npu_weight_bytes=weight_traffic,
            npu_activation_bytes=act_traffic,
            grad_bytes=self.inventory.grad_bytes,
            weight_bytes=self.inventory.weight_bytes,
            cpu_adam_bytes=n_params * ADAM_BYTES_PER_PARAM,
            cpu_adam_ops=float(n_params * ADAM_OPS_PER_PARAM),
            n_params=n_params,
        )

    def per_layer_grad_bytes(self) -> List[int]:
        """Gradient chunks in the order backward produces them."""
        return self.inventory.layer_grad_bytes()

    def overlap_fractions(self) -> tuple[float, float]:
        """(grad_overlap, weight_overlap): fraction of each transfer that can
        be hidden when transfers may run concurrently with computation.

        Gradients stream out during backward: every layer's chunk except the
        last one produced can be hidden. Weights can stream layer-by-layer
        under the optimizer tail and the next forward — but only when the
        protocol allows transfer/compute concurrency (TensorTEE's direct
        channel; the baseline serializes, and the paper's non-secure
        schedule uploads weights in one exposed step, Fig. 5).
        """
        n = max(1, self.model.n_layers)
        grad_overlap = (n - 1) / n
        weight_overlap = (n - 1) / n
        return grad_overlap, weight_overlap
