"""Synthetic memory-access trace generators.

Two workloads from the paper's CPU evaluation:

- **Adam optimizer step** (Sec. 3.1 / 6.2): element-wise streaming over the
  fused per-layer optimizer buffers (DeepSpeed's CPU-Adam flattens parameter
  groups into per-layer fp32 buffers; we model one w32/m/v/g/w16 quintet per
  layer). Each hardware thread updates a contiguous shard; the memory
  controller sees the round-robin interleaving of all thread streams.
- **Tiled GEMM** (Sec. 6.2): the 256x256 matrix multiply with 64x64 tiles
  used to demonstrate entry merging on complex access patterns.

Full-size models have millions of lines per tensor; generators take a
``lines_per_tensor`` scale so functional simulations stay tractable while
preserving stream structure (see DESIGN.md Sec. 2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from repro import vec
from repro.errors import ConfigError
from repro.sim.trace import AccessKind, MemAccess
from repro.sim.trace_batch import KIND_READ, KIND_WRITE, TraceBatch
from repro.tensor.dtype import DType
from repro.tensor.registry import TensorRegistry
from repro.tensor.tensor import TensorDesc
from repro.units import CACHELINE_BYTES


@dataclass
class AdamGroup:
    """The five fused buffers of one layer's optimizer step.

    Under the default ``"flat"`` layout each role is its own contiguous
    allocation. Under ``"interleaved"`` the four fp32 roles are *views*
    into one fused array-of-structs buffer (``fused``, shape
    ``(elems, 4)``): role ``k`` is ``fused.select(1, k)`` with element
    stride 4, so every role's walk covers every line of the buffer — the
    per-role streams the memory controller sees are no longer
    line-contiguous and the read-modify-write rounds revisit lines they
    already wrote, which is exactly the layout-sensitivity the
    TenAnalyzer sweeps measure.
    """

    layer: int
    weight32: TensorDesc
    momentum: TensorDesc
    variance: TensorDesc
    grad32: TensorDesc
    weight16: TensorDesc
    layout: str = "flat"
    fused: Optional[TensorDesc] = None

    @property
    def read_tensors(self) -> Tuple[TensorDesc, ...]:
        return (self.weight32, self.momentum, self.variance, self.grad32)

    @property
    def rmw_tensors(self) -> Tuple[TensorDesc, ...]:
        return (self.weight32, self.momentum, self.variance)

    def all_tensors(self) -> Tuple[TensorDesc, ...]:
        return (self.weight32, self.momentum, self.variance, self.grad32, self.weight16)


def build_adam_groups(
    registry: TensorRegistry,
    n_layers: int,
    lines_per_tensor: int,
    layout: str = "flat",
) -> List[AdamGroup]:
    """Allocate per-layer Adam buffers scaled to ``lines_per_tensor``.

    ``layout="flat"`` (default) allocates each fp32 role contiguously —
    the DeepSpeed fused-buffer model every earlier experiment used.
    ``layout="interleaved"`` packs the four fp32 roles as one
    array-of-structs buffer per layer and derives the role tensors as
    stride-4 :meth:`TensorDesc.select` views (registered by name, same
    storage ``tensor_id``); the fp16 output stays a separate allocation.
    """
    if layout not in ("flat", "interleaved"):
        raise ConfigError(f"unknown adam layout {layout!r}")
    if lines_per_tensor < 8:
        raise ConfigError("need at least 8 lines per tensor for sharding")
    elems32 = lines_per_tensor * CACHELINE_BYTES // DType.FP32.nbytes
    elems16_lines = max(1, lines_per_tensor // 2)
    elems16 = elems16_lines * CACHELINE_BYTES // DType.FP16.nbytes
    roles = ("weight32", "momentum", "variance", "grad32")
    suffixes = ("w32", "m", "v", "g")
    groups = []
    for layer in range(n_layers):
        prefix = f"adam.layer{layer}"
        if layout == "flat":
            role_tensors = tuple(
                registry.allocate(f"{prefix}.{sfx}", (elems32,), DType.FP32, role)
                for role, sfx in zip(roles, suffixes)
            )
            fused = None
        else:
            fused = registry.allocate(
                f"{prefix}.fused", (elems32, len(roles)), DType.FP32, "fused"
            )
            role_tensors = tuple(
                registry.register_view(
                    replace(
                        fused.select(1, slot, name=f"{prefix}.{sfx}"), role=role
                    )
                )
                for slot, (role, sfx) in enumerate(zip(roles, suffixes))
            )
        groups.append(
            AdamGroup(
                layer=layer,
                weight32=role_tensors[0],
                momentum=role_tensors[1],
                variance=role_tensors[2],
                grad32=role_tensors[3],
                weight16=registry.allocate(f"{prefix}.w16", (elems16,), DType.FP16, "weight16"),
                layout=layout,
                fused=fused,
            )
        )
    return groups


@dataclass
class AdamTraceConfig:
    """Shape of the generated Adam iteration trace."""

    threads: int = 8
    burst_lines: int = 4  # lines each role-stream advances per thread turn
    thread_skew: float = 0.15  # probability a thread skips a turn (progress jitter)
    #: Write-backs reach the memory controller from LLC evictions, trailing
    #: the read stream by this many bursts (Fig. 12: "writing addresses from
    #: cores are filtered by LLC").
    write_lag_bursts: int = 4
    seed: int = 1234


def _thread_layer_stream(
    group: AdamGroup, thread: int, threads: int, burst_lines: int, write_lag_bursts: int
) -> List[List[MemAccess]]:
    """Scalar reference: thread ``thread``'s bursts as per-access objects.

    Kept verbatim as the ``REPRO_NO_VECTORIZE=1`` construction path; the
    columnar builder (:func:`_thread_layer_columns`) must emit the same
    accesses in the same order (enforced by the parity tests).
    """
    shards = {t.name: t.shard_lines(threads, thread) for t in group.all_tensors()}
    w32 = shards[group.weight32.name]
    m = shards[group.momentum.name]
    v = shards[group.variance.name]
    g = shards[group.grad32.name]
    w16 = shards[group.weight16.name]
    n = len(w32)
    n_read_bursts = -(-n // burst_lines)
    bursts: List[List[MemAccess]] = []
    w16_cursor = 0
    for burst_index in range(n_read_bursts + write_lag_bursts):
        burst: List[MemAccess] = []
        start = burst_index * burst_lines
        stop = min(start + burst_lines, n)
        if start < n:
            for role_tensor, lines in (
                (group.weight32, w32),
                (group.momentum, m),
                (group.variance, v),
                (group.grad32, g),
            ):
                for i in range(start, stop):
                    if i < len(lines):
                        burst.append(
                            MemAccess(lines[i], AccessKind.READ, thread, role_tensor.tensor_id)
                        )
        wb_index = burst_index - write_lag_bursts
        wb_start = wb_index * burst_lines
        wb_stop = min(wb_start + burst_lines, n)
        if wb_index >= 0 and wb_start < n:
            for role_tensor, lines in (
                (group.weight32, w32),
                (group.momentum, m),
                (group.variance, v),
            ):
                for i in range(wb_start, wb_stop):
                    if i < len(lines):
                        burst.append(
                            MemAccess(lines[i], AccessKind.WRITE, thread, role_tensor.tensor_id)
                        )
            # fp16 output advances at half the fp32 line rate.
            w16_target = min(len(w16), (wb_stop * len(w16) + n - 1) // n)
            while w16_cursor < w16_target:
                burst.append(
                    MemAccess(w16[w16_cursor], AccessKind.WRITE, thread, group.weight16.tensor_id)
                )
                w16_cursor += 1
        if burst:
            bursts.append(burst)
    return bursts


def _adam_iteration_objects(
    groups: Sequence[AdamGroup],
    config: AdamTraceConfig,
    rng: random.Random,
) -> List[MemAccess]:
    """Scalar reference: the original per-access object generator."""
    trace: List[MemAccess] = []
    for group in groups:
        per_thread = [
            _thread_layer_stream(
                group, t, config.threads, config.burst_lines, config.write_lag_bursts
            )
            for t in range(config.threads)
        ]
        cursors = [0] * config.threads
        remaining = sum(len(b) for b in per_thread)
        while remaining:
            for t in range(config.threads):
                if cursors[t] >= len(per_thread[t]):
                    continue
                if config.thread_skew and rng.random() < config.thread_skew:
                    continue
                trace.extend(per_thread[t][cursors[t]])
                cursors[t] += 1
                remaining -= 1
    return trace


#: Per-thread, per-layer column stream: (vaddr, kind, tensor_id, burst bounds).
_ThreadColumns = Tuple[List[int], List[int], List[int], List[Tuple[int, int]]]


def _thread_layer_columns(
    group: AdamGroup, thread: int, threads: int, burst_lines: int, write_lag_bursts: int
) -> _ThreadColumns:
    """Thread ``thread``'s bursts for one layer, in issue order.

    Each burst advances every role stream by ``burst_lines`` lines: reads of
    w32/m/v/g, plus the *lagged* read-modify-write write-backs of w32/m/v
    and the fp16 weight output (half as many lines). Trailing bursts drain
    the remaining write-backs after reads finish.

    Columns are assembled by whole-slice extends — no per-access objects;
    ``bounds`` marks each burst's ``[start, stop)`` window so the
    interleaver can replay round-robin turns as slice copies.
    """
    shards = {t.name: t.shard_lines(threads, thread) for t in group.all_tensors()}
    w32 = shards[group.weight32.name]
    m = shards[group.momentum.name]
    v = shards[group.variance.name]
    g = shards[group.grad32.name]
    w16 = shards[group.weight16.name]
    n = len(w32)
    n_read_bursts = -(-n // burst_lines)
    vaddr: List[int] = []
    kind: List[int] = []
    tensor_id: List[int] = []
    bounds: List[Tuple[int, int]] = []
    w16_cursor = 0
    for burst_index in range(n_read_bursts + write_lag_bursts):
        burst_start = len(vaddr)
        start = burst_index * burst_lines
        stop = min(start + burst_lines, n)
        if start < n:
            for role_tensor, lines in (
                (group.weight32, w32),
                (group.momentum, m),
                (group.variance, v),
                (group.grad32, g),
            ):
                segment = lines[start:stop]
                if segment:
                    vaddr.extend(segment)
                    kind.extend([KIND_READ] * len(segment))
                    tensor_id.extend([role_tensor.tensor_id] * len(segment))
        wb_index = burst_index - write_lag_bursts
        wb_start = wb_index * burst_lines
        wb_stop = min(wb_start + burst_lines, n)
        if wb_index >= 0 and wb_start < n:
            for role_tensor, lines in (
                (group.weight32, w32),
                (group.momentum, m),
                (group.variance, v),
            ):
                segment = lines[wb_start:wb_stop]
                if segment:
                    vaddr.extend(segment)
                    kind.extend([KIND_WRITE] * len(segment))
                    tensor_id.extend([role_tensor.tensor_id] * len(segment))
            # fp16 output advances at half the fp32 line rate.
            w16_target = min(len(w16), (wb_stop * len(w16) + n - 1) // n)
            segment = w16[w16_cursor:w16_target]
            if segment:
                vaddr.extend(segment)
                kind.extend([KIND_WRITE] * len(segment))
                tensor_id.extend([group.weight16.tensor_id] * len(segment))
            w16_cursor = w16_target
        if len(vaddr) > burst_start:
            bounds.append((burst_start, len(vaddr)))
    return vaddr, kind, tensor_id, bounds


def adam_iteration_batch(
    groups: Sequence[AdamGroup],
    config: AdamTraceConfig,
    rng: random.Random | None = None,
) -> TraceBatch:
    """One optimizer iteration as seen by the memory controller.

    All threads walk the layers in order; within a layer the MC sees a
    round-robin interleave of thread bursts with random skew. Returns the
    columnar trace; the RNG skew sequence is identical to what the legacy
    object generator consumed, so seeded runs are unaffected by the
    representation.

    Vector mode assembles the columns by whole-burst slice extends; the
    scalar reference runs the original per-access object generator and
    columnarizes it. Identical batches either way.
    """
    rng = rng if rng is not None else random.Random(config.seed)
    if not vec.enabled():
        return TraceBatch.from_accesses(_adam_iteration_objects(groups, config, rng))
    vaddr: List[int] = []
    kind: List[int] = []
    thread_col: List[int] = []
    tensor_id: List[int] = []
    for group in groups:
        per_thread = [
            _thread_layer_columns(
                group, t, config.threads, config.burst_lines, config.write_lag_bursts
            )
            for t in range(config.threads)
        ]
        cursors = [0] * config.threads
        remaining = sum(len(cols[3]) for cols in per_thread)
        while remaining:
            for t in range(config.threads):
                t_vaddr, t_kind, t_tensor, bounds = per_thread[t]
                if cursors[t] >= len(bounds):
                    continue
                if config.thread_skew and rng.random() < config.thread_skew:
                    continue
                start, stop = bounds[cursors[t]]
                vaddr.extend(t_vaddr[start:stop])
                kind.extend(t_kind[start:stop])
                tensor_id.extend(t_tensor[start:stop])
                thread_col.extend([t] * (stop - start))
                cursors[t] += 1
                remaining -= 1
    return TraceBatch.from_columns(vaddr, kind, thread_col, tensor_id)


def adam_iteration_trace(
    groups: Sequence[AdamGroup],
    config: AdamTraceConfig,
    rng: random.Random | None = None,
) -> List[MemAccess]:
    """Object view of :func:`adam_iteration_batch` (legacy API)."""
    return adam_iteration_batch(groups, config, rng).to_accesses()


# -- tiled GEMM -------------------------------------------------------------


@dataclass
class GemmConfig:
    """C[M,N] += A[M,K] @ B[K,N] with (tile_m, tile_n, tile_k) tiling."""

    m: int = 256
    n: int = 256
    k: int = 256
    tile_m: int = 64
    tile_n: int = 64
    tile_k: int = 64
    dtype: DType = DType.FP32

    def __post_init__(self) -> None:
        for total, tile, label in (
            (self.m, self.tile_m, "m"),
            (self.n, self.tile_n, "n"),
            (self.k, self.tile_k, "k"),
        ):
            if total % tile:
                raise ConfigError(f"gemm dim {label}={total} not divisible by tile {tile}")


def build_gemm_tensors(
    registry: TensorRegistry, config: GemmConfig
) -> Tuple[TensorDesc, TensorDesc, TensorDesc]:
    """Allocate the A, B and C matrices."""
    a = registry.allocate("gemm.A", (config.m, config.k), config.dtype, "input")
    b = registry.allocate("gemm.B", (config.k, config.n), config.dtype, "input")
    c = registry.allocate("gemm.C", (config.m, config.n), config.dtype, "output")
    return a, b, c


def gemm_batch(
    a: TensorDesc,
    b: TensorDesc,
    c: TensorDesc,
    config: GemmConfig,
    thread: int = 0,
) -> TraceBatch:
    """One full tiled GEMM pass (output-stationary: C written once per tile).

    Loop order: for each output tile (i, j): accumulate over k reading A and
    B tile rows; after the k loop, read-modify-write the C tile rows.
    Vector mode emits the columns row-segment by row-segment; the scalar
    reference runs the original per-access object generator and
    columnarizes it. Identical batches either way.
    """
    if not vec.enabled():
        return TraceBatch.from_accesses(_gemm_objects(a, b, c, config, thread))
    vaddr: List[int] = []
    kind: List[int] = []
    tensor_id: List[int] = []

    def emit_rows(t: TensorDesc, row0: int, col0: int, rows: int, cols: int, code: int) -> None:
        tid = t.tensor_id
        for r in range(row0, row0 + rows):
            lines = list(t.tile_row_lines(r, col0, cols))
            vaddr.extend(lines)
            kind.extend([code] * len(lines))
            tensor_id.extend([tid] * len(lines))

    for i0 in range(0, config.m, config.tile_m):
        for j0 in range(0, config.n, config.tile_n):
            for k0 in range(0, config.k, config.tile_k):
                emit_rows(a, i0, k0, config.tile_m, config.tile_k, KIND_READ)
                emit_rows(b, k0, j0, config.tile_k, config.tile_n, KIND_READ)
            emit_rows(c, i0, j0, config.tile_m, config.tile_n, KIND_READ)
            emit_rows(c, i0, j0, config.tile_m, config.tile_n, KIND_WRITE)
    return TraceBatch.from_columns(vaddr, kind, [thread] * len(vaddr), tensor_id)


def _gemm_objects(
    a: TensorDesc,
    b: TensorDesc,
    c: TensorDesc,
    config: GemmConfig,
    thread: int = 0,
) -> List[MemAccess]:
    """Scalar reference: the original per-access object generator."""
    trace: List[MemAccess] = []

    def emit_rows(
        t: TensorDesc, row0: int, col0: int, rows: int, cols: int, kind: AccessKind
    ) -> None:
        for r in range(row0, row0 + rows):
            for addr in t.tile_row_lines(r, col0, cols):
                trace.append(MemAccess(addr, kind, thread, t.tensor_id))

    for i0 in range(0, config.m, config.tile_m):
        for j0 in range(0, config.n, config.tile_n):
            for k0 in range(0, config.k, config.tile_k):
                emit_rows(a, i0, k0, config.tile_m, config.tile_k, AccessKind.READ)
                emit_rows(b, k0, j0, config.tile_k, config.tile_n, AccessKind.READ)
            emit_rows(c, i0, j0, config.tile_m, config.tile_n, AccessKind.READ)
            emit_rows(c, i0, j0, config.tile_m, config.tile_n, AccessKind.WRITE)
    return trace


def gemm_trace(
    a: TensorDesc,
    b: TensorDesc,
    c: TensorDesc,
    config: GemmConfig,
    thread: int = 0,
) -> List[MemAccess]:
    """Object view of :func:`gemm_batch` (legacy API)."""
    return gemm_batch(a, b, c, config, thread).to_accesses()


# -- blockwise attention (QK^T / softmax / V) --------------------------------


@dataclass
class AttentionConfig:
    """One attention layer's blockwise (FlashAttention-style) pass.

    ``block_q`` x ``block_k`` is the score tile: for each query block the
    kernel streams every key/value block and *rescales* the output block
    in place (the online-softmax read-modify-write), so O lines are
    written once per key block — the repeated-write pattern that trips
    TenAnalyzer's Assert1 on layouts where heads share cachelines.
    """

    n_heads: int = 8
    seq_len: int = 128
    head_dim: int = 64
    block_q: int = 32
    block_k: int = 32
    dtype: DType = DType.FP32

    def __post_init__(self) -> None:
        for total, block, label in (
            (self.seq_len, self.block_q, "block_q"),
            (self.seq_len, self.block_k, "block_k"),
        ):
            if total % block:
                raise ConfigError(
                    f"seq_len={total} not divisible by {label}={block}"
                )


@dataclass
class AttentionHead:
    """Per-head 2D ``(seq_len, head_dim)`` views of Q/K/V/O."""

    head: int
    q: TensorDesc
    k: TensorDesc
    v: TensorDesc
    o: TensorDesc

    def all_views(self) -> Tuple[TensorDesc, ...]:
        return (self.q, self.k, self.v, self.o)


@dataclass
class AttentionTensors:
    """The four storage tensors plus their per-head views."""

    layout: str
    q: TensorDesc
    k: TensorDesc
    v: TensorDesc
    o: TensorDesc
    heads: List[AttentionHead]

    def storage_tensors(self) -> Tuple[TensorDesc, ...]:
        return (self.q, self.k, self.v, self.o)


def build_attention_tensors(
    registry: TensorRegistry,
    config: AttentionConfig,
    layout: str = "head_major",
) -> AttentionTensors:
    """Allocate Q/K/V/O and derive one 2D view per head.

    ``layout="head_major"`` stores ``(n_heads, seq_len, head_dim)``: each
    head's view (``select(0, h)``) walks a private contiguous block, so
    its line stream is line-contiguous — the friendly case.
    ``layout="interleaved"`` stores ``(seq_len, n_heads * head_dim)``
    (the fused-projection layout attention kernels actually read before
    any transpose): each head's view (``slice_`` over the feature dim)
    touches ``head_dim`` elements per row then skips the other heads'
    features, producing short runs with large gaps — the case that
    degrades stream detection.
    """
    if layout not in ("head_major", "interleaved"):
        raise ConfigError(f"unknown attention layout {layout!r}")
    h, s, d = config.n_heads, config.seq_len, config.head_dim
    shape = (h, s, d) if layout == "head_major" else (s, h * d)
    tensors = {}
    for sym in ("q", "k", "v", "o"):
        role = "activation" if sym != "o" else "output"
        tensors[sym] = registry.allocate(f"attn.{sym.upper()}", shape, config.dtype, role)
    heads = []
    for head in range(h):
        views = {}
        for sym, storage in tensors.items():
            name = f"attn.{sym.upper()}.h{head}"
            if layout == "head_major":
                view = storage.select(0, head, name=name)
            else:
                view = storage.slice_(1, head * d, (head + 1) * d, name=name)
            views[sym] = registry.register_view(view)
        heads.append(AttentionHead(head=head, **views))
    return AttentionTensors(layout=layout, heads=heads, **tensors)


#: Column burst: (vaddr, kind, tensor_id) triples of one scheduling unit.
_Burst = Tuple[List[int], List[int], List[int]]


def _attention_head_bursts(head: AttentionHead, config: AttentionConfig) -> List[_Burst]:
    """One head's blockwise pass as an ordered burst list.

    Per query block: one burst reading the Q rows, then one burst per key
    block reading the K and V rows and read-modify-writing the O rows
    (the online-softmax rescale). Line enumeration follows each view's
    strides via :meth:`TensorDesc.tile_row_lines`.
    """
    d = config.head_dim

    def emit_rows(burst: _Burst, view: TensorDesc, row0: int, rows: int, code: int) -> None:
        vaddr, kind, tensor_id = burst
        seen_rows = set()
        for r in range(row0, row0 + rows):
            lines = view.tile_row_lines(r, 0, d)
            fresh = [a for a in lines if a not in seen_rows]
            seen_rows.update(fresh)
            vaddr.extend(fresh)
            kind.extend([code] * len(fresh))
            tensor_id.extend([view.tensor_id] * len(fresh))

    bursts: List[_Burst] = []
    for q0 in range(0, config.seq_len, config.block_q):
        q_burst: _Burst = ([], [], [])
        emit_rows(q_burst, head.q, q0, config.block_q, KIND_READ)
        bursts.append(q_burst)
        for k0 in range(0, config.seq_len, config.block_k):
            kv_burst: _Burst = ([], [], [])
            emit_rows(kv_burst, head.k, k0, config.block_k, KIND_READ)
            emit_rows(kv_burst, head.v, k0, config.block_k, KIND_READ)
            # Rescale: the O block is re-read and re-written every key
            # block — within one logical update round, so a covering Meta
            # Table entry sees the same line written twice (Assert1).
            emit_rows(kv_burst, head.o, q0, config.block_q, KIND_READ)
            emit_rows(kv_burst, head.o, q0, config.block_q, KIND_WRITE)
            bursts.append(kv_burst)
    return bursts


def attention_batch(
    tensors: AttentionTensors, config: AttentionConfig
) -> TraceBatch:
    """One attention layer as seen by the memory controller.

    One hardware thread per head; the controller sees the deterministic
    round-robin interleave of per-head bursts. A single construction path
    serves both vectorize modes (the assembly is pure column extends, so
    there is nothing to vectorize differently) — parity is structural.
    """
    per_head = [_attention_head_bursts(h, config) for h in tensors.heads]
    vaddr: List[int] = []
    kind: List[int] = []
    thread_col: List[int] = []
    tensor_id: List[int] = []
    cursors = [0] * len(per_head)
    remaining = sum(len(b) for b in per_head)
    while remaining:
        for t, bursts in enumerate(per_head):
            if cursors[t] >= len(bursts):
                continue
            b_vaddr, b_kind, b_tensor = bursts[cursors[t]]
            vaddr.extend(b_vaddr)
            kind.extend(b_kind)
            tensor_id.extend(b_tensor)
            thread_col.extend([t] * len(b_vaddr))
            cursors[t] += 1
            remaining -= 1
    return TraceBatch.from_columns(vaddr, kind, thread_col, tensor_id)


def attention_trace(
    tensors: AttentionTensors, config: AttentionConfig
) -> List[MemAccess]:
    """Object view of :func:`attention_batch`."""
    return attention_batch(tensors, config).to_accesses()
