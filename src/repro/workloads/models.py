"""The Table-2 workload zoo.

Twelve models, 117M → 6.7B parameters, with the batch sizes the paper uses
(chosen to fit the 40 GB NPU). Architecture parameters (layers / hidden /
heads / ffn) are the published configurations of each model; the derived
parameter count is asserted to be within a few percent of the paper's column
by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class ModelConfig:
    """One row of Table 2 plus the architecture needed to derive tensors."""

    name: str
    paper_params: int  # the "# Params" column
    batch_size: int  # the "batch_size" column
    n_layers: int
    hidden: int
    n_heads: int
    vocab: int
    seq_len: int = 1024
    ffn_dim: int = 0  # 0 -> 4 * hidden
    gated_mlp: bool = False  # LLaMA-style 3-matrix SwiGLU MLP

    def __post_init__(self) -> None:
        if self.hidden % self.n_heads:
            raise ConfigError(f"{self.name}: hidden not divisible by heads")

    @property
    def ffn(self) -> int:
        return self.ffn_dim if self.ffn_dim else 4 * self.hidden

    @property
    def params_per_layer(self) -> int:
        """Weight elements per transformer layer (no biases, like the zoo)."""
        attn = 4 * self.hidden * self.hidden  # q, k, v, o
        if self.gated_mlp:
            mlp = 3 * self.hidden * self.ffn  # gate, up, down
        else:
            mlp = 2 * self.hidden * self.ffn  # up, down
        norms = 2 * self.hidden
        return attn + mlp + norms

    @property
    def embedding_params(self) -> int:
        return self.vocab * self.hidden

    @property
    def n_params(self) -> int:
        """Derived total parameter count."""
        return (
            self.n_layers * self.params_per_layer
            + self.embedding_params
            + self.hidden  # final norm
        )

    @property
    def tokens_per_batch(self) -> int:
        return self.batch_size * self.seq_len

    def fwd_bwd_flops(self) -> float:
        """Training FLOPs of one batch: ~6 * params * tokens."""
        return 6.0 * self.n_params * self.tokens_per_batch


MODEL_ZOO: tuple[ModelConfig, ...] = (
    ModelConfig("GPT", 117_000_000, 60, n_layers=12, hidden=768, n_heads=12, vocab=50257),
    ModelConfig("GPT2-M", 345_000_000, 22, n_layers=24, hidden=1024, n_heads=16, vocab=50257),
    ModelConfig("Roberta-L", 355_000_000, 22, n_layers=24, hidden=1024, n_heads=16, vocab=50265, seq_len=512),
    ModelConfig("BLOOM", 560_000_000, 21, n_layers=24, hidden=1024, n_heads=16, vocab=250880),
    ModelConfig("GPT2-L", 774_000_000, 11, n_layers=36, hidden=1280, n_heads=20, vocab=50257),
    ModelConfig("BLOOM-800M", 800_000_000, 17, n_layers=24, hidden=1280, n_heads=16, vocab=250880),
    ModelConfig("OPT-1.3B", 1_300_000_000, 10, n_layers=24, hidden=2048, n_heads=32, vocab=50272),
    ModelConfig("GPT2-XL", 1_600_000_000, 6, n_layers=48, hidden=1600, n_heads=25, vocab=50257),
    ModelConfig("OPT-2.7B", 2_800_000_000, 6, n_layers=32, hidden=2560, n_heads=32, vocab=50272),
    ModelConfig("XGLM-4.5B", 4_500_000_000, 3, n_layers=48, hidden=2048, n_heads=16, vocab=256008, ffn_dim=16384),
    ModelConfig("LLAMA2-7B", 6_700_000_000, 2, n_layers=32, hidden=4096, n_heads=32, vocab=32000, ffn_dim=11008, gated_mlp=True),
    ModelConfig("OPT-6.7B", 6_700_000_000, 2, n_layers=32, hidden=4096, n_heads=32, vocab=50272),
)


def model_by_name(name: str) -> ModelConfig:
    """Look a model up by its Table-2 name (case-insensitive)."""
    for model in MODEL_ZOO:
        if model.name.lower() == name.lower():
            return model
    known = ", ".join(m.name for m in MODEL_ZOO)
    raise ConfigError(f"unknown model {name!r}; known: {known}")
