"""The Table-2 workload zoo.

Twelve models, 117M → 6.7B parameters, with the batch sizes the paper uses
(chosen to fit the 40 GB NPU). Architecture parameters (layers / hidden /
heads / ffn) are the published configurations of each model; the derived
parameter count is asserted to be within a few percent of the paper's column
by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class ModelConfig:
    """One row of Table 2 plus the architecture needed to derive tensors."""

    name: str
    paper_params: int  # the "# Params" column
    batch_size: int  # the "batch_size" column
    n_layers: int
    hidden: int
    n_heads: int
    vocab: int
    seq_len: int = 1024
    ffn_dim: int = 0  # 0 -> 4 * hidden
    gated_mlp: bool = False  # LLaMA-style 3-matrix SwiGLU MLP

    def __post_init__(self) -> None:
        if self.hidden % self.n_heads:
            raise ConfigError(f"{self.name}: hidden not divisible by heads")

    @property
    def ffn(self) -> int:
        return self.ffn_dim if self.ffn_dim else 4 * self.hidden

    @property
    def params_per_layer(self) -> int:
        """Weight elements per transformer layer (no biases, like the zoo)."""
        attn = 4 * self.hidden * self.hidden  # q, k, v, o
        if self.gated_mlp:
            mlp = 3 * self.hidden * self.ffn  # gate, up, down
        else:
            mlp = 2 * self.hidden * self.ffn  # up, down
        norms = 2 * self.hidden
        return attn + mlp + norms

    @property
    def embedding_params(self) -> int:
        return self.vocab * self.hidden

    @property
    def n_params(self) -> int:
        """Derived total parameter count."""
        return (
            self.n_layers * self.params_per_layer
            + self.embedding_params
            + self.hidden  # final norm
        )

    @property
    def tokens_per_batch(self) -> int:
        return self.batch_size * self.seq_len

    def fwd_bwd_flops(self) -> float:
        """Training FLOPs of one batch: ~6 * params * tokens."""
        return 6.0 * self.n_params * self.tokens_per_batch


MODEL_ZOO: tuple[ModelConfig, ...] = (
    ModelConfig("GPT", 117_000_000, 60, n_layers=12, hidden=768, n_heads=12, vocab=50257),
    ModelConfig("GPT2-M", 345_000_000, 22, n_layers=24, hidden=1024, n_heads=16, vocab=50257),
    ModelConfig("Roberta-L", 355_000_000, 22, n_layers=24, hidden=1024, n_heads=16, vocab=50265, seq_len=512),
    ModelConfig("BLOOM", 560_000_000, 21, n_layers=24, hidden=1024, n_heads=16, vocab=250880),
    ModelConfig("GPT2-L", 774_000_000, 11, n_layers=36, hidden=1280, n_heads=20, vocab=50257),
    ModelConfig("BLOOM-800M", 800_000_000, 17, n_layers=24, hidden=1280, n_heads=16, vocab=250880),
    ModelConfig("OPT-1.3B", 1_300_000_000, 10, n_layers=24, hidden=2048, n_heads=32, vocab=50272),
    ModelConfig("GPT2-XL", 1_600_000_000, 6, n_layers=48, hidden=1600, n_heads=25, vocab=50257),
    ModelConfig("OPT-2.7B", 2_800_000_000, 6, n_layers=32, hidden=2560, n_heads=32, vocab=50272),
    ModelConfig("XGLM-4.5B", 4_500_000_000, 3, n_layers=48, hidden=2048, n_heads=16, vocab=256008, ffn_dim=16384),
    ModelConfig("LLAMA2-7B", 6_700_000_000, 2, n_layers=32, hidden=4096, n_heads=32, vocab=32000, ffn_dim=11008, gated_mlp=True),
    ModelConfig("OPT-6.7B", 6_700_000_000, 2, n_layers=32, hidden=4096, n_heads=32, vocab=50272),
)


def model_by_name(name: str) -> ModelConfig:
    """Look a model up by its Table-2 name (case-insensitive)."""
    for model in MODEL_ZOO:
        if model.name.lower() == name.lower():
            return model
    known = ", ".join(m.name for m in MODEL_ZOO)
    raise ConfigError(f"unknown model {name!r}; known: {known}")


@dataclass(frozen=True)
class ScalePreset:
    """One architecture point of the parameterized (off-Table-2) model zoo.

    ``default_batch`` follows the paper's 40 GB-NPU sizing curve; sweeps
    override it to ask what happens off that design point.
    """

    name: str
    n_layers: int
    hidden: int
    n_heads: int
    default_batch: int
    ffn_dim: int = 0
    gated_mlp: bool = False


#: Architecture presets spanning two orders of magnitude beyond the fixed
#: Table-2 rows (GPT-3-family shapes; 13b/30b exceed the paper's 40 GB
#: design point on purpose — that is the scenario the sweeps explore).
SCALING_PRESETS: tuple[ScalePreset, ...] = (
    ScalePreset("60m", n_layers=8, hidden=512, n_heads=8, default_batch=96),
    ScalePreset("160m", n_layers=12, hidden=768, n_heads=12, default_batch=48),
    ScalePreset("410m", n_layers=24, hidden=1024, n_heads=16, default_batch=20),
    ScalePreset("1.4b", n_layers=24, hidden=2048, n_heads=16, default_batch=8),
    ScalePreset("2.8b", n_layers=32, hidden=2560, n_heads=32, default_batch=6),
    ScalePreset("6.9b", n_layers=32, hidden=4096, n_heads=32, default_batch=2),
    ScalePreset("13b", n_layers=40, hidden=5120, n_heads=40, default_batch=1),
    ScalePreset("30b", n_layers=48, hidden=7168, n_heads=56, default_batch=1),
)

#: Vocabulary shared by the synthetic scaling models (GPT-2 BPE).
SCALE_VOCAB = 50257


def scale_preset(name: str) -> ScalePreset:
    """Look a scaling preset up by name (case-insensitive)."""
    for preset in SCALING_PRESETS:
        if preset.name.lower() == name.lower():
            return preset
    known = ", ".join(p.name for p in SCALING_PRESETS)
    raise ConfigError(f"unknown scaling preset {name!r}; known: {known}")


def scaled_model(preset: str, batch_size: int = 0, seq_len: int = 1024) -> ModelConfig:
    """A concrete :class:`ModelConfig` off the parameterized zoo.

    ``batch_size=0`` keeps the preset's default; any positive value builds
    the same architecture at that batch — the model-size x batch-size
    sweep's whole point.
    """
    shape = scale_preset(preset)
    if batch_size < 0:
        raise ConfigError(f"batch size must be non-negative, got {batch_size}")
    batch = batch_size if batch_size else shape.default_batch
    config = ModelConfig(
        name=f"{shape.name}@bs{batch}",
        paper_params=0,  # not a Table-2 row; n_params is the derived truth
        batch_size=batch,
        n_layers=shape.n_layers,
        hidden=shape.hidden,
        n_heads=shape.n_heads,
        vocab=SCALE_VOCAB,
        seq_len=seq_len,
        ffn_dim=shape.ffn_dim,
        gated_mlp=shape.gated_mlp,
    )
    return config
