"""Workloads: the Table-2 LLM zoo, tensor inventories, ZeRO-Offload stages."""

from repro.workloads.models import MODEL_ZOO, ModelConfig, model_by_name
from repro.workloads.transformer import TransformerInventory
from repro.workloads.zero_offload import IterationVolumes, ZeroOffloadSchedule

__all__ = [
    "MODEL_ZOO",
    "ModelConfig",
    "model_by_name",
    "TransformerInventory",
    "IterationVolumes",
    "ZeroOffloadSchedule",
]
