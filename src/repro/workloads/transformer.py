"""Transformer tensor inventory.

Builds the concrete tensor set of a model in a :class:`TensorRegistry`:
the fp32 master weights plus Adam state (momentum, variance) and fp32
gradients that live in *CPU* host memory under ZeRO-Offload, and the fp16
weights/activations that live on the NPU. This inventory drives Fig. 4
(tensor count/size characteristics), the Adam traces, and the per-layer
communication volumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.tensor.dtype import DType
from repro.tensor.registry import TensorRegistry
from repro.tensor.tensor import TensorDesc
from repro.workloads.models import ModelConfig

#: Adam state kept per parameter tensor in CPU memory (role -> dtype).
OPTIMIZER_ROLES: Tuple[Tuple[str, DType], ...] = (
    ("weight32", DType.FP32),
    ("momentum", DType.FP32),
    ("variance", DType.FP32),
    ("grad32", DType.FP32),
)


@dataclass
class ParamGroup:
    """One logical parameter tensor and its optimizer companions."""

    name: str
    shape: Tuple[int, ...]
    layer: int  # -1 for embeddings / final norm
    cpu_tensors: Dict[str, TensorDesc] = field(default_factory=dict)
    npu_weight16: TensorDesc | None = None

    @property
    def n_elements(self) -> int:
        count = 1
        for dim in self.shape:
            count *= dim
        return count


class TransformerInventory:
    """All tensors of one model, allocated on CPU and NPU registries."""

    def __init__(self, model: ModelConfig, include_embeddings: bool = True) -> None:
        self.model = model
        self.include_embeddings = include_embeddings
        self.cpu = TensorRegistry(base_va=0x7F00_0000_0000)
        self.npu = TensorRegistry(base_va=0x4200_0000_0000)
        self.groups: List[ParamGroup] = []
        self._build()

    def _param_shapes(self) -> List[Tuple[str, Tuple[int, ...], int]]:
        """(name, shape, layer) of every parameter tensor (no biases)."""
        m = self.model
        shapes: List[Tuple[str, Tuple[int, ...], int]] = []
        if self.include_embeddings:
            shapes.append(("embed.weight", (m.vocab, m.hidden), -1))
        for layer in range(m.n_layers):
            prefix = f"layer{layer}"
            for proj in ("q", "k", "v", "o"):
                shapes.append((f"{prefix}.attn.{proj}", (m.hidden, m.hidden), layer))
            if m.gated_mlp:
                shapes.append((f"{prefix}.mlp.gate", (m.hidden, m.ffn), layer))
                shapes.append((f"{prefix}.mlp.up", (m.hidden, m.ffn), layer))
                shapes.append((f"{prefix}.mlp.down", (m.ffn, m.hidden), layer))
            else:
                shapes.append((f"{prefix}.mlp.up", (m.hidden, m.ffn), layer))
                shapes.append((f"{prefix}.mlp.down", (m.ffn, m.hidden), layer))
            shapes.append((f"{prefix}.ln1", (m.hidden,), layer))
            shapes.append((f"{prefix}.ln2", (m.hidden,), layer))
        shapes.append(("final_ln", (m.hidden,), -1))
        return shapes

    def _build(self) -> None:
        for name, shape, layer in self._param_shapes():
            group = ParamGroup(name=name, shape=shape, layer=layer)
            for role, dtype in OPTIMIZER_ROLES:
                group.cpu_tensors[role] = self.cpu.allocate(
                    f"{name}.{role}", shape, dtype=dtype, role=role
                )
            group.npu_weight16 = self.npu.allocate(
                f"{name}.weight16", shape, dtype=DType.FP16, role="weight16"
            )
            self.groups.append(group)

    # -- Fig. 4 characteristics ----------------------------------------------

    @property
    def n_param_tensors(self) -> int:
        """Number of logical parameter tensors ("Tensor num" of Fig. 4)."""
        return len(self.groups)

    @property
    def n_cpu_tensors(self) -> int:
        """All CPU-resident tensors touched by an optimizer step."""
        return len(self.cpu)

    @property
    def total_params(self) -> int:
        return sum(g.n_elements for g in self.groups)

    @property
    def max_tensor_bytes(self) -> int:
        """Largest single fp32 tensor ("Tensor size" of Fig. 4)."""
        return max(g.cpu_tensors["weight32"].nbytes for g in self.groups)

    @property
    def max_layer_tensor_bytes(self) -> int:
        """Largest per-layer tensor (excludes the embedding outlier)."""
        layer_groups = [g for g in self.groups if g.layer >= 0]
        return max(g.cpu_tensors["weight32"].nbytes for g in layer_groups)

    @property
    def mean_tensor_bytes(self) -> float:
        return sum(g.cpu_tensors["weight32"].nbytes for g in self.groups) / len(self.groups)

    # -- communication volumes ----------------------------------------------

    @property
    def grad_bytes(self) -> int:
        """NPU→CPU gradient volume per iteration (fp32, per Fig. 1)."""
        return self.total_params * DType.FP32.nbytes

    @property
    def weight_bytes(self) -> int:
        """CPU→NPU weight volume per iteration (fp16, per Fig. 1)."""
        return self.total_params * DType.FP16.nbytes

    def layer_grad_bytes(self) -> List[int]:
        """Per-layer gradient bytes in backward (last layer first)."""
        per_layer: Dict[int, int] = {}
        for group in self.groups:
            per_layer.setdefault(group.layer, 0)
            per_layer[group.layer] += group.n_elements * DType.FP32.nbytes
        ordered = [per_layer[k] for k in sorted(per_layer) if k >= 0]
        ordered.reverse()
        tail = per_layer.get(-1, 0)
        if tail:
            ordered.append(tail)  # embeddings/final norm at the end of bwd
        return ordered
