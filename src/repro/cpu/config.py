"""CPU configuration (Table 1) and timing calibration parameters."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.mem.dram import DramTimingModel, ddr4_2400_2ch
from repro.units import KiB


@dataclass(frozen=True)
class CpuConfig:
    """Table-1 CPU system plus the calibration constants of DESIGN.md Sec. 5.

    The calibration constants were fit once against the paper's reported
    ratios (Fig. 3 / Fig. 19: SGX 2.64x @4 threads, 3.65x @8 threads for the
    Adam workload) and then frozen; see EXPERIMENTS.md.
    """

    freq_hz: float = 3.5e9
    n_cores: int = 8
    l3_bytes: int = 9 * 1024 * KiB
    metadata_cache_bytes: int = 32 * KiB
    aes_latency_cycles: int = 40
    mac_latency_cycles: int = 40
    dram: DramTimingModel = field(default_factory=ddr4_2400_2ch)

    # -- calibration ---------------------------------------------------------
    #: Outstanding demand misses per hardware thread (MLP).
    mlp: int = 8
    #: Adam arithmetic throughput per thread (elements/cycle; DeepSpeed's
    #: CPU-Adam is memory-layout-bound well below peak AVX rates).
    adam_elems_per_cycle: float = 0.75
    #: Effective DRAM-time cost of one metadata transaction, in data-line
    #: equivalents: row-buffer miss, read-modify-write turnaround and bank
    #: contention of small scattered metadata accesses.
    metadata_txn_cost: float = 7.0
    #: Queueing inflation applied as demand saturates the DRAM channels.
    queueing_inflation: float = 1.25
    #: Meta Table capacity (Sec. 6.5).
    meta_table_entries: int = 512
    #: Tensor Filter entries / addresses collected before pattern check.
    tensor_filter_entries: int = 10
    tensor_filter_collect: int = 4
    #: Recently-updated entries scanned on each merge attempt (Sec. 4.2).
    merge_window: int = 8

    def __post_init__(self) -> None:
        if self.n_cores <= 0 or self.mlp <= 0:
            raise ConfigError("cores and MLP must be positive")
        if self.meta_table_entries <= 0 or self.tensor_filter_entries <= 0:
            raise ConfigError("table sizes must be positive")

    @property
    def aes_latency_s(self) -> float:
        return self.aes_latency_cycles / self.freq_hz

    @property
    def mac_latency_s(self) -> float:
        return self.mac_latency_cycles / self.freq_hz
