"""The Meta Table: on-chip tensor structures with LRU capacity management.

Holds up to 512 entries (Sec. 6.5). Lookup distinguishes *hit-in* (the
request falls inside an entry's coverage) from *hit-boundary* (the request
is an entry's next-extension address). Insertions attempt the Fig.-11 entry
merging against a window of recently-updated entries; capacity overflow
evicts the LRU entry, syncing its VN back to the off-chip per-line store.
"""

from __future__ import annotations

import enum
import random
from typing import Dict, List, Optional, Tuple

from repro.cpu.tenanalyzer.entry import (
    EntryGeometry,
    MetaTableEntry,
    try_merge_geometries,
)
from repro.cpu.tenanalyzer.vn_store import OffChipVnStore
from repro.sim.stats import Stats
from repro.units import CACHELINE_BYTES

LINE = CACHELINE_BYTES


class LookupKind(enum.Enum):
    """Read-path classification (Fig. 10)."""

    HIT_IN = "hit_in"
    HIT_BOUNDARY = "hit_boundary"
    MISS = "miss"


class MetaTable:
    """Entry storage with line/boundary indexes and merge orchestration."""

    def __init__(
        self,
        capacity: int = 512,
        merge_window: int = 8,
        vn_store: Optional[OffChipVnStore] = None,
        stats: Optional[Stats] = None,
        replacement: str = "random",
        seed: int = 0xC0FFEE,
    ) -> None:
        """``replacement`` is "random" (default) or "lru".

        Pseudo-random replacement avoids the pathological cyclic-thrash of
        strict LRU when the per-core shard entries of an iteration exceed
        capacity — with LRU no entry would ever survive until its next use,
        whereas random replacement lets a growing fraction persist, which is
        what produces the gradual hit_in convergence of Fig. 18.
        """
        if replacement not in ("random", "lru"):
            raise ValueError(f"unknown replacement policy {replacement!r}")
        self.capacity = capacity
        self.merge_window = merge_window
        self.replacement = replacement
        self._rng = random.Random(seed)
        self.vn_store = vn_store if vn_store is not None else OffChipVnStore()
        self.stats = stats if stats is not None else Stats("meta_table")
        self._entries: Dict[int, MetaTableEntry] = {}
        self._line_map: Dict[int, int] = {}  # covered line VA -> entry id
        self._boundary_map: Dict[int, int] = {}  # boundary VA -> entry id
        self._recent_updates: List[int] = []  # entry ids, most recent last
        self._next_id = 0
        self._tick = 0

    # -- indexing helpers ----------------------------------------------------

    def _index_entry(self, entry_id: int, entry: MetaTableEntry) -> None:
        for vaddr in entry.geometry.covered_lines():
            self._line_map[vaddr] = entry_id
        self._boundary_map[entry.geometry.boundary_va()] = entry_id

    def _unindex_entry(self, entry_id: int, entry: MetaTableEntry) -> None:
        for vaddr in entry.geometry.covered_lines():
            if self._line_map.get(vaddr) == entry_id:
                del self._line_map[vaddr]
        boundary = entry.geometry.boundary_va()
        if self._boundary_map.get(boundary) == entry_id:
            del self._boundary_map[boundary]

    def _touch(self, entry_id: int) -> None:
        self._tick += 1
        self._entries[entry_id].lru_tick = self._tick
        self._note_updated(entry_id)

    def _note_updated(self, entry_id: int) -> None:
        """Track recently-touched entries: the candidate window for merging.

        Merges are only *attempted* when a new entry is created (Sec. 4.2);
        the window makes a surviving neighbour (recently re-read) visible to
        the re-detected shard next to it, which is how sharded tensors
        consolidate across iterations.
        """
        if self._recent_updates and self._recent_updates[-1] == entry_id:
            return
        if entry_id in self._recent_updates:
            self._recent_updates.remove(entry_id)
        self._recent_updates.append(entry_id)
        del self._recent_updates[: -4 * self.merge_window]

    # -- lookup ---------------------------------------------------------------

    def lookup(self, vaddr: int) -> Tuple[LookupKind, Optional[MetaTableEntry]]:
        """Classify one request address against the table."""
        entry_id = self._line_map.get(vaddr)
        if entry_id is not None:
            self._touch(entry_id)
            return LookupKind.HIT_IN, self._entries[entry_id]
        entry_id = self._boundary_map.get(vaddr)
        if entry_id is not None:
            self._touch(entry_id)
            return LookupKind.HIT_BOUNDARY, self._entries[entry_id]
        return LookupKind.MISS, None

    def entry_of(self, vaddr: int) -> Optional[MetaTableEntry]:
        """Covering entry without LRU side effects."""
        entry_id = self._line_map.get(vaddr)
        return self._entries.get(entry_id) if entry_id is not None else None

    # -- mutation ---------------------------------------------------------------

    def extend(self, entry: MetaTableEntry) -> None:
        """Grow an entry by one line at its boundary (verified by caller)."""
        entry_id = self._id_of(entry)
        old_boundary = entry.geometry.boundary_va()
        if self._boundary_map.get(old_boundary) == entry_id:
            del self._boundary_map[old_boundary]
        entry.geometry.extend()
        self._line_map[old_boundary] = entry_id
        new_boundary = entry.geometry.boundary_va()
        if new_boundary not in self._line_map:
            self._boundary_map[new_boundary] = entry_id
        self.stats.add("extensions")
        self._note_updated(entry_id)

    def insert(self, geometry: EntryGeometry, vn: int, source: str = "filter") -> MetaTableEntry:
        """Add a detected entry, merging with recent neighbours when possible."""
        entry = MetaTableEntry(geometry=geometry, vn=vn, source=source)
        entry_id = self._admit(entry)
        self.stats.add("insertions")
        if geometry.count > 1:
            # Strided (2D) detections tracked separately: layout sweeps
            # compare how much coverage arrives as strided vs. 1D entries.
            self.stats.add("insertions_strided")
        merged = self._attempt_merges(entry_id)
        return self._entries[merged]

    def _admit(self, entry: MetaTableEntry) -> int:
        # Steal coverage collisions: a new detection overlapping an existing
        # entry invalidates the stale one (conservative, keeps maps 1:1).
        overlapping = {
            self._line_map[va]
            for va in entry.geometry.covered_lines()
            if va in self._line_map
        }
        for stale_id in overlapping:
            self.invalidate(self._entries[stale_id], reason="overlap")
        while len(self._entries) >= self.capacity:
            if self.replacement == "random":
                victim_id = self._rng.choice(list(self._entries))
            else:
                victim_id = min(self._entries, key=lambda i: self._entries[i].lru_tick)
            self._evict(victim_id)
        entry_id = self._next_id
        self._next_id += 1
        self._entries[entry_id] = entry
        entry.entry_id = entry_id
        self._tick += 1
        entry.lru_tick = self._tick
        entry.created_tick = self._tick
        self._index_entry(entry_id, entry)
        self._note_updated(entry_id)
        return entry_id

    def _attempt_merges(self, entry_id: int) -> int:
        """Try merging within the recently-touched window (new entry first).

        Triggered only on entry creation (Sec. 4.2: "attempts to merge a few
        recently updated entries when creating new entries"). After the new
        entry's own merges, one sweep over window pairs picks up bands whose
        coverage completed since their creation (Fig. 11b tiling).
        """
        current_id = self._merge_against_window(entry_id)
        window = [i for i in reversed(self._recent_updates)][: self.merge_window]
        for candidate_id in window:
            if candidate_id in self._entries and candidate_id != current_id:
                merged_to = self._merge_against_window(candidate_id)
                if current_id not in self._entries:
                    current_id = merged_to
        return current_id

    def _merge_against_window(self, entry_id: int) -> int:
        current_id = entry_id
        merged_any = True
        while merged_any:
            merged_any = False
            current = self._entries[current_id]
            if not current.mergeable:
                break
            window = [i for i in reversed(self._recent_updates) if i != current_id]
            for other_id in window[: self.merge_window]:
                other = self._entries.get(other_id)
                if other is None or other is current or not other.mergeable:
                    continue
                if other.vn != current.vn:
                    continue
                combined = try_merge_geometries(current.geometry, other.geometry)
                if combined is None:
                    continue
                current_id = self._apply_merge(current_id, other_id, combined)
                self.stats.add("merges")
                merged_any = True
                break
        return current_id

    def _apply_merge(self, a_id: int, b_id: int, combined: EntryGeometry) -> int:
        a, b = self._entries[a_id], self._entries[b_id]
        self._unindex_entry(a_id, a)
        self._unindex_entry(b_id, b)
        del self._entries[a_id]
        del self._entries[b_id]
        for stale in (a_id, b_id):
            if stale in self._recent_updates:
                self._recent_updates.remove(stale)
        merged = MetaTableEntry(geometry=combined, vn=a.vn, mac=a.mac ^ b.mac, source="merge")
        merged_id = self._next_id
        self._next_id += 1
        self._entries[merged_id] = merged
        merged.entry_id = merged_id
        self._tick += 1
        merged.lru_tick = self._tick
        self._index_entry(merged_id, merged)
        self._note_updated(merged_id)
        return merged_id

    def merge_updated(self, entry: MetaTableEntry) -> MetaTableEntry:
        """Merge attempt at tensor-update completion (VN just incremented).

        Completion is when an entry becomes "recently updated" in the
        paper's sense; neighbouring shards of the same tensor complete
        within a few bursts of each other, so this is where sharded
        streaming tensors consolidate.
        """
        entry_id = self._id_of(entry)
        self._note_updated(entry_id)
        # Completion merges are single-entry attempts (no window sweep):
        # only the tensor that just finished updating scans its window.
        # Consolidation of a fully sharded tensor therefore takes several
        # iterations — the gradual hit_in convergence of Fig. 18.
        merged_id = self._merge_against_window(entry_id)
        return self._entries[merged_id]

    def invalidate(self, entry: MetaTableEntry, reason: str = "assert") -> int:
        """Drop an entry, syncing per-line VNs off-chip; returns sync count."""
        entry_id = self._id_of(entry)
        synced = 0
        for vaddr, vn in entry.per_line_vns():
            if self.vn_store.read(vaddr) != vn:
                self.vn_store.set(vaddr, vn)
                synced += 1
        self._unindex_entry(entry_id, entry)
        del self._entries[entry_id]
        if entry_id in self._recent_updates:
            self._recent_updates.remove(entry_id)
        self.stats.add(f"invalidations_{reason}")
        self.stats.add("sync_lines", synced)
        return synced

    def _evict(self, entry_id: int) -> None:
        entry = self._entries[entry_id]
        self.invalidate(entry, reason="eviction")
        self.stats.add("evictions")

    def _id_of(self, entry: MetaTableEntry) -> int:
        if self._entries.get(entry.entry_id) is entry:
            return entry.entry_id
        raise KeyError("entry not resident in table")

    # -- introspection ----------------------------------------------------------

    @property
    def n_entries(self) -> int:
        return len(self._entries)

    @property
    def n_strided_entries(self) -> int:
        """Resident entries with a multi-run (strided) geometry."""
        return sum(1 for e in self._entries.values() if e.geometry.count > 1)

    def entries(self) -> List[MetaTableEntry]:
        return list(self._entries.values())

    def covering_range(self, base_va: int, n_lines: int) -> Optional[MetaTableEntry]:
        """Entry covering the whole line range, or None."""
        entry_id = self._line_map.get(base_va)
        if entry_id is None:
            return None
        entry = self._entries[entry_id]
        last = base_va + (n_lines - 1) * LINE
        if entry.geometry.contains_line(last) and self._line_map.get(last) == entry_id:
            return entry
        return None
