"""Meta Table entries: detected tensor structures and their write tracking.

An entry's *geometry* is a strided rectangle of cachelines:

- a **1D** entry is a contiguous, still-extensible run (streaming detection,
  Fig. 11a);
- a **2D** entry has a fixed ``run_lines`` per row and a fixed row stride,
  growing row by row (tiled detection, Fig. 11b). 2D entries arise from
  merging 1D row entries and can collapse back to 1D when rows become
  contiguous (``stride == run``).

Write tracking implements Fig. 12: an Updating Flag (UF), a bitmap (the set
of lines flipped this round; BS is implicit — the set is cleared at each
completion) and the assertions that guarantee every covered line is written
exactly once per tensor update, keeping the single on-chip VN consistent
with the off-chip per-line VNs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Optional, Set

from repro.errors import SimulationError
from repro.units import CACHELINE_BYTES

LINE = CACHELINE_BYTES


@dataclass
class EntryGeometry:
    """A strided rectangle of cachelines.

    ``count`` complete runs of ``run_lines`` lines, each ``stride_lines``
    apart, plus ``tail_lines`` of the next (partial) run. A fully contiguous
    region has ``stride_lines == run_lines``; a plain 1D entry additionally
    has ``count == 1, tail_lines == 0`` and grows by bumping ``run_lines``.
    """

    base_va: int
    run_lines: int
    stride_lines: int
    count: int = 1
    tail_lines: int = 0
    extensible_run: bool = True  # True only for 1D streaming entries

    def __post_init__(self) -> None:
        if self.base_va % LINE:
            raise SimulationError("entry base must be line-aligned")
        if self.run_lines <= 0 or self.stride_lines < self.run_lines or self.count <= 0:
            raise SimulationError(
                f"bad geometry run={self.run_lines} stride={self.stride_lines} "
                f"count={self.count}"
            )
        if self.tail_lines >= self.run_lines and not (self.tail_lines == 0):
            raise SimulationError("tail must be shorter than a run")

    # -- coverage ------------------------------------------------------------

    @property
    def is_contiguous(self) -> bool:
        return self.stride_lines == self.run_lines

    @property
    def n_lines(self) -> int:
        """Covered lines (complete runs + tail)."""
        return self.count * self.run_lines + self.tail_lines

    @property
    def last_line_va(self) -> int:
        """Highest covered line address."""
        if self.tail_lines:
            return self.base_va + (self.count * self.stride_lines + self.tail_lines - 1) * LINE
        return self.base_va + ((self.count - 1) * self.stride_lines + self.run_lines - 1) * LINE

    def contains_line(self, vaddr: int) -> bool:
        offset = vaddr - self.base_va
        if offset < 0 or offset % LINE:
            return False
        line = offset // LINE
        row, col = divmod(line, self.stride_lines)
        if row < self.count:
            return col < self.run_lines
        if row == self.count:
            return col < self.tail_lines
        return False

    def boundary_va(self) -> int:
        """The single next-extension address (Fig. 10 "hit boundary")."""
        if self.extensible_run:
            return self.base_va + self.run_lines * LINE
        return self.base_va + (self.count * self.stride_lines + self.tail_lines) * LINE

    def extend(self) -> None:
        """Grow coverage by one line at the boundary address."""
        if self.extensible_run:
            self.run_lines += 1
            self.stride_lines = self.run_lines
            return
        self.tail_lines += 1
        if self.tail_lines == self.run_lines:
            self.count += 1
            self.tail_lines = 0

    def covered_lines(self) -> Iterator[int]:
        """All covered line addresses, ascending."""
        for row in range(self.count):
            row_base = self.base_va + row * self.stride_lines * LINE
            for col in range(self.run_lines):
                yield row_base + col * LINE
        tail_base = self.base_va + self.count * self.stride_lines * LINE
        for col in range(self.tail_lines):
            yield tail_base + col * LINE

    def is_edge_line(self, vaddr: int) -> bool:
        """First or last covered line (Fig. 12 "hit edge")."""
        return vaddr == self.base_va or vaddr == self.last_line_va


def _normalized(geometry: EntryGeometry) -> Optional[tuple[int, int, int, int]]:
    """(base, run, stride, count) of a merge-ready geometry; None if partial."""
    if geometry.tail_lines:
        return None
    return (geometry.base_va, geometry.run_lines, geometry.stride_lines, geometry.count)


#: Largest representable row stride: the Meta Table stride field is 10 bits
#: (Sec. 6.5 hardware budget), so strides beyond 1023 lines cannot form 2D
#: entries. This is also what keeps far-apart unrelated tensors from being
#: mistaken for rows of one tiled tensor.
MAX_STRIDE_LINES = (1 << 10) - 1


def try_merge_geometries(a: EntryGeometry, b: EntryGeometry) -> Optional[EntryGeometry]:
    """Merge two complete geometries into one, or return None.

    Handles the multi-direction merges of Fig. 11b: outer (row-wise)
    concatenation, inner (column-wise) concatenation of equal-shape bands,
    contiguous 1D concatenation, and the contiguity collapse back to 1D.
    Ordering is normalised so both "directions" per dimension are covered.
    """
    norm_a, norm_b = _normalized(a), _normalized(b)
    if norm_a is None or norm_b is None:
        return None
    if norm_b[0] < norm_a[0]:
        norm_a, norm_b = norm_b, norm_a
    base_a, run_a, stride_a, count_a = norm_a
    base_b, run_b, stride_b, count_b = norm_b

    merged: Optional[EntryGeometry] = None

    # Contiguous 1D concatenation (shards of a streaming tensor).
    if (
        count_a == 1
        and count_b == 1
        and stride_a == run_a
        and stride_b == run_b
        and base_b == base_a + run_a * LINE
    ):
        merged = EntryGeometry(
            base_va=base_a,
            run_lines=run_a + run_b,
            stride_lines=run_a + run_b,
            count=1,
            extensible_run=a.extensible_run or b.extensible_run,
        )
    # Outer concatenation: equal runs stacked along a (possibly new) stride.
    elif run_a == run_b:
        if count_a == 1 and count_b == 1:
            gap_lines = (base_b - base_a) // LINE
            if (
                (base_b - base_a) % LINE == 0
                and run_a < gap_lines <= MAX_STRIDE_LINES
            ):
                merged = EntryGeometry(
                    base_va=base_a,
                    run_lines=run_a,
                    stride_lines=gap_lines,
                    count=2,
                    extensible_run=False,
                )
        elif count_a > 1 and base_b == base_a + count_a * stride_a * LINE:
            if count_b == 1 or stride_b == stride_a:
                merged = EntryGeometry(
                    base_va=base_a,
                    run_lines=run_a,
                    stride_lines=stride_a,
                    count=count_a + count_b,
                    extensible_run=False,
                )
        elif count_b > 1 and count_a == 1 and base_b == base_a + stride_b * LINE:
            merged = EntryGeometry(
                base_va=base_a,
                run_lines=run_a,
                stride_lines=stride_b,
                count=count_b + 1,
                extensible_run=False,
            )
    # Inner concatenation: same stride/count bands side by side.
    if (
        merged is None
        and count_a == count_b
        and count_a > 1
        and stride_a == stride_b
        and base_b == base_a + run_a * LINE
        and run_a + run_b <= stride_a
    ):
        merged = EntryGeometry(
            base_va=base_a,
            run_lines=run_a + run_b,
            stride_lines=stride_a,
            count=count_a,
            extensible_run=False,
        )

    if merged is not None and merged.is_contiguous and merged.count > 1:
        # Rows became contiguous: collapse to an extensible 1D run.
        merged = EntryGeometry(
            base_va=merged.base_va,
            run_lines=merged.n_lines,
            stride_lines=merged.n_lines,
            count=1,
            extensible_run=True,
        )
    return merged


class WriteOutcomeKind(enum.Enum):
    """Classification of a write that hit an entry (Fig. 12)."""

    HIT_EDGE = "hit_edge"
    HIT_IN = "hit_in"
    VIOLATION = "violation"
    COMPLETED = "completed"


@dataclass
class MetaTableEntry:
    """One Meta Table row: geometry + VN + MAC + write-tracking state."""

    geometry: EntryGeometry
    vn: int
    mac: int = 0
    updating: bool = False  # UF
    flipped: Set[int] = field(default_factory=set)  # bitmap bits != BS
    lru_tick: int = 0
    created_tick: int = 0
    source: str = "filter"  # filter | merge | transfer
    entry_id: int = -1  # assigned by the MetaTable on admission

    # -- read path -----------------------------------------------------------

    def vn_for_line(self, vaddr: int) -> int:
        """Effective VN of a covered line (post-update lines are vn+1)."""
        if not self.geometry.contains_line(vaddr):
            raise SimulationError(f"line {vaddr:#x} not covered by entry")
        return self.vn + 1 if vaddr in self.flipped else self.vn

    # -- write path (Fig. 12) --------------------------------------------------

    def write_line(self, vaddr: int) -> WriteOutcomeKind:
        """Apply one covered-line write; returns its classification.

        Assert1 (a line must not be written twice before the tensor update
        completes) invalidates the entry on violation — the caller handles
        the invalidation; this method only reports it. The update completes
        when the bitmap covers every covered line (the Assert2 condition),
        at which point VN increments and UF/bitmap reset.
        """
        if not self.geometry.contains_line(vaddr):
            raise SimulationError(f"write {vaddr:#x} not covered by entry")
        if vaddr in self.flipped:
            return WriteOutcomeKind.VIOLATION  # Assert1
        if not self.updating:
            self.updating = True  # UF := 1 (start updating, any position)
        self.flipped.add(vaddr)
        if len(self.flipped) >= self.geometry.n_lines:
            self.vn += 1
            self.flipped.clear()
            self.updating = False
            return WriteOutcomeKind.COMPLETED
        if self.geometry.is_edge_line(vaddr):
            return WriteOutcomeKind.HIT_EDGE
        return WriteOutcomeKind.HIT_IN

    def per_line_vns(self) -> Iterator[tuple[int, int]]:
        """(line VA, effective VN) pairs, used to sync off-chip VNs."""
        for vaddr in self.geometry.covered_lines():
            yield vaddr, (self.vn + 1 if vaddr in self.flipped else self.vn)

    @property
    def mergeable(self) -> bool:
        """Entries mid-update or mid-row cannot merge."""
        return not self.updating and self.geometry.tail_lines == 0
