"""The TenAnalyzer facade: read/write dataflows of Figs. 10 and 12.

Sits logically in the memory controller, receiving the cores'
virtual-address request stream. For reads it supplies the VN without
off-chip access on *hit-in*, speculatively on *hit-boundary* (the off-chip
VN is fetched in the background to confirm and extend coverage), and falls
back to the off-chip VN + Tensor Filter on *miss*. For writes it runs the
bitmap/UF tracking that keeps the single on-chip tensor VN consistent with
per-line off-chip VNs, invalidating the entry on assertion violations.

``EnTMF`` (Enable Tensor-wise Management Flag) disables the whole unit for
non-tensor applications.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro import vec
from repro.cpu.tenanalyzer.entry import MetaTableEntry, WriteOutcomeKind
from repro.cpu.tenanalyzer.meta_table import LookupKind, MetaTable
from repro.cpu.tenanalyzer.tensor_filter import TensorFilter, detect_streams
from repro.cpu.tenanalyzer.vn_store import OffChipVnStore
from repro.errors import ConfigError
from repro.sim.stats import Stats
from repro.sim.trace import MemAccess
from repro.sim.trace_batch import KIND_READ
from repro.units import CACHELINE_BYTES

LINE = CACHELINE_BYTES


class ReadKind(enum.Enum):
    """Read-path outcomes reported to the MEE/timing model."""

    HIT_IN = "hit_in"
    HIT_BOUNDARY = "hit_boundary"
    MISS = "miss"


class WriteKind(enum.Enum):
    """Write-path outcomes (Fig. 12)."""

    HIT_EDGE = "hit_edge"
    HIT_IN = "hit_in"
    MISS = "miss"


@dataclass(frozen=True)
class ReadResult:
    """VN decision for one read."""

    kind: ReadKind
    vn: int
    #: Off-chip VN lines fetched (0 for hit-in; 1 for miss; 1 for boundary,
    #: but off the critical path in the boundary case).
    offchip_vn_fetches: int
    critical_fetch: bool  # True when the fetch stalls the request (miss)


@dataclass(frozen=True)
class WriteResult:
    """Bookkeeping outcome of one write."""

    kind: WriteKind
    vn: int  # VN the line is encrypted under
    completed_tensor: bool
    violation: bool
    offchip_vn_writes: int


class TenAnalyzer:
    """Tensor detection + on-chip VN management at the memory controller."""

    def __init__(
        self,
        capacity: int = 512,
        filter_entries: int = 10,
        filter_collect: int = 4,
        merge_window: int = 8,
        enabled: bool = True,
        vn_store: Optional[OffChipVnStore] = None,
        stats: Optional[Stats] = None,
        stride_detect: bool = False,
    ) -> None:
        """``stride_detect`` relaxes the Tensor Filter's contiguity check
        to constant line strides (and makes trace priming do the same by
        default), so strided layouts can seed strided Meta Table entries.
        Off by default — the paper's detector is strictly line-contiguous.
        """
        if capacity <= 0:
            raise ConfigError("Meta Table capacity must be positive")
        self.stats = stats if stats is not None else Stats("tenanalyzer")
        self.vn_store = vn_store if vn_store is not None else OffChipVnStore()
        self.table = MetaTable(
            capacity=capacity,
            merge_window=merge_window,
            vn_store=self.vn_store,
            stats=self.stats.scope("meta_table"),
        )
        self.filter = TensorFilter(
            n_entries=filter_entries,
            collect_target=filter_collect,
            stats=self.stats.scope("tensor_filter"),
            stride_detect=stride_detect,
        )
        self.enabled = enabled  # EnTMF

    # -- dataflow for reading (Fig. 10) ---------------------------------------

    def on_read(self, access: MemAccess) -> ReadResult:
        """Classify a read and provide its VN (object-trace entry point)."""
        return self.on_read_va(access.vaddr)

    def on_read_va(self, vaddr: int) -> ReadResult:
        """Classify a read by virtual address and provide its VN."""
        if not self.enabled:
            self.stats.add("read_miss")
            return ReadResult(ReadKind.MISS, self.vn_store.read(vaddr), 1, True)

        kind, entry = self.table.lookup(vaddr)
        if kind is LookupKind.HIT_IN:
            assert entry is not None
            self.stats.add("read_hit_in")
            return ReadResult(ReadKind.HIT_IN, entry.vn_for_line(vaddr), 0, False)

        if kind is LookupKind.HIT_BOUNDARY:
            assert entry is not None
            # Speculatively use the entry VN; confirm off the critical path.
            offchip_vn = self.vn_store.read(vaddr)
            if offchip_vn == entry.vn:
                self.table.extend(entry)
                self.filter.drop_covering(vaddr)
                self.stats.add("read_hit_boundary")
                return ReadResult(ReadKind.HIT_BOUNDARY, entry.vn, 1, False)
            # Misprediction: the speculative decryption is squashed and the
            # request replays with the off-chip VN.
            self.stats.add("boundary_mispredict")
            self.stats.add("read_miss")
            return ReadResult(ReadKind.MISS, offchip_vn, 1, True)

        offchip_vn = self.vn_store.read(vaddr)
        self.stats.add("read_miss")
        geometry = self.filter.observe(vaddr, offchip_vn)
        if geometry is not None:
            self.table.insert(geometry, vn=offchip_vn, source="filter")
        return ReadResult(ReadKind.MISS, offchip_vn, 1, True)

    # -- dataflow for writing (Fig. 12) ---------------------------------------

    def on_write(self, access: MemAccess, mac_delta: int = 0) -> WriteResult:
        """Track a write-back (object-trace entry point)."""
        return self.on_write_va(access.vaddr, mac_delta)

    def on_write_va(self, vaddr: int, mac_delta: int = 0) -> WriteResult:
        """Track a write-back; returns the VN to encrypt the line under.

        ``mac_delta`` is ``old_line_mac ^ new_line_mac`` from the MEE, folded
        into the entry's on-chip tensor MAC so it stays the XOR of its
        lines' MACs (Sec. 4.3 construction, reused on the CPU side for the
        direct-transfer metadata).
        """
        if self.enabled:
            # Writes snoop the Tensor Filter: a write-back to a line inside an
            # in-flight collection changes that line's VN, so the half-built
            # stream must be discarded or it would seed a stale entry.
            self.filter.drop_covering(vaddr)
        entry = self.table.entry_of(vaddr) if self.enabled else None
        if entry is None:
            new_vn = self.vn_store.bump(vaddr)
            self.stats.add("write_miss")
            return WriteResult(WriteKind.MISS, new_vn, False, False, 1)

        outcome = entry.write_line(vaddr)
        if outcome is WriteOutcomeKind.VIOLATION:
            # Assert1: invalidate and fall back to the off-chip path.
            self.table.invalidate(entry, reason="assert")
            new_vn = self.vn_store.bump(vaddr)
            self.stats.add("write_violation")
            return WriteResult(WriteKind.MISS, new_vn, False, True, 1)

        entry.mac ^= mac_delta
        vn = entry.vn if outcome is WriteOutcomeKind.COMPLETED else entry.vn + 1
        if outcome is WriteOutcomeKind.COMPLETED:
            self.stats.add("write_completed_tensors")
            # Entry VN already incremented inside write_line; lines written
            # this round carry the new VN. A freshly-updated entry is a
            # merge candidate (consolidates sharded tensors, Fig. 11).
            self.table.merge_updated(entry)
            kind = WriteKind.HIT_EDGE
        elif outcome is WriteOutcomeKind.HIT_EDGE:
            kind = WriteKind.HIT_EDGE
        else:
            kind = WriteKind.HIT_IN
        self.stats.add(f"write_{kind.value}")
        return WriteResult(
            kind,
            vn,
            completed_tensor=outcome is WriteOutcomeKind.COMPLETED,
            violation=False,
            offchip_vn_writes=0,
        )

    # -- batched stream replay (columnar traces) -------------------------------

    def replay_window(self, vaddrs: Sequence[int], kinds: Sequence[int]) -> List[int]:
        """Replay one columnar trace window; returns the per-access VNs.

        ``vaddrs``/``kinds`` are :class:`repro.sim.trace_batch.TraceBatch`
        columns (``columns()`` lists); any non-read kind is replayed as a
        write-back, matching the experiment drivers' historical handling.

        Behind :func:`repro.vec.enabled` this inlines the read/write
        dataflows into one loop — no per-access ``ReadResult`` /
        ``WriteResult`` objects, classification counters folded into
        ``Stats`` in bulk. The scalar reference replays
        :meth:`on_read_va` / :meth:`on_write_va` per element. Table, filter
        and VN-store mutations are identical in both modes, as are the
        final counter totals.
        """
        if not vec.enabled():
            return [
                self.on_read_va(vaddr).vn if kind == KIND_READ else self.on_write_va(vaddr).vn
                for vaddr, kind in zip(vaddrs, kinds)
            ]
        table = self.table
        filt = self.filter
        store = self.vn_store
        lookup = table.lookup
        entry_of = table.entry_of
        store_read = store.read
        store_bump = store.bump
        drop_covering = filt.drop_covering
        observe = filt.observe
        enabled = self.enabled
        read_hit_in = read_hit_boundary = read_miss = mispredicts = 0
        write_miss = write_violation = write_completed = write_hit_edge = write_hit_in = 0
        vns: List[int] = []
        append = vns.append
        for vaddr, kind in zip(vaddrs, kinds):
            if kind == KIND_READ:
                if not enabled:
                    read_miss += 1
                    append(store_read(vaddr))
                    continue
                lookup_kind, entry = lookup(vaddr)
                if lookup_kind is LookupKind.HIT_IN:
                    read_hit_in += 1
                    append(entry.vn_for_line(vaddr))
                    continue
                if lookup_kind is LookupKind.HIT_BOUNDARY:
                    offchip_vn = store_read(vaddr)
                    if offchip_vn == entry.vn:
                        table.extend(entry)
                        drop_covering(vaddr)
                        read_hit_boundary += 1
                        append(entry.vn)
                    else:
                        mispredicts += 1
                        read_miss += 1
                        append(offchip_vn)
                    continue
                offchip_vn = store_read(vaddr)
                read_miss += 1
                geometry = observe(vaddr, offchip_vn)
                if geometry is not None:
                    table.insert(geometry, vn=offchip_vn, source="filter")
                append(offchip_vn)
            else:
                if enabled:
                    drop_covering(vaddr)
                    entry = entry_of(vaddr)
                else:
                    entry = None
                if entry is None:
                    write_miss += 1
                    append(store_bump(vaddr))
                    continue
                outcome = entry.write_line(vaddr)
                if outcome is WriteOutcomeKind.VIOLATION:
                    table.invalidate(entry, reason="assert")
                    write_violation += 1
                    append(store_bump(vaddr))
                    continue
                # mac_delta is 0 on replay: entry.mac is unchanged.
                if outcome is WriteOutcomeKind.COMPLETED:
                    append(entry.vn)
                    write_completed += 1
                    table.merge_updated(entry)
                    write_hit_edge += 1
                elif outcome is WriteOutcomeKind.HIT_EDGE:
                    append(entry.vn + 1)
                    write_hit_edge += 1
                else:
                    append(entry.vn + 1)
                    write_hit_in += 1
        stats = self.stats
        if read_hit_in:
            stats.add("read_hit_in", read_hit_in)
        if read_hit_boundary:
            stats.add("read_hit_boundary", read_hit_boundary)
        if read_miss:
            stats.add("read_miss", read_miss)
        if mispredicts:
            stats.add("boundary_mispredict", mispredicts)
        if write_miss:
            stats.add("write_miss", write_miss)
        if write_violation:
            stats.add("write_violation", write_violation)
        if write_completed:
            stats.add("write_completed_tensors", write_completed)
        if write_hit_edge:
            stats.add("write_hit_edge", write_hit_edge)
        if write_hit_in:
            stats.add("write_hit_in", write_hit_in)
        return vns

    # -- fast-path installation from transfer descriptors (Sec. 4.2) ----------

    def install_from_transfer(
        self, base_va: int, n_lines: int, vn: int, stride_lines: int = 1
    ) -> MetaTableEntry:
        """Create a full-range entry from an NPU transfer descriptor.

        Data-transfer instructions carry (address, size, stride); TensorTEE
        uses them to seed the Meta Table without waiting for detection.
        ``stride_lines > 1`` installs a strided entry: ``n_lines`` lines
        spaced ``stride_lines`` apart (a 2D transfer's per-row first line).
        """
        if base_va % LINE or n_lines <= 0:
            raise ConfigError("transfer descriptor must be line-aligned and non-empty")
        if stride_lines <= 0:
            raise ConfigError("transfer stride must be positive")
        from repro.cpu.tenanalyzer.entry import EntryGeometry

        if stride_lines == 1:
            geometry = EntryGeometry(
                base_va=base_va,
                run_lines=n_lines,
                stride_lines=n_lines,
                count=1,
                extensible_run=True,
            )
            self.vn_store.set_range(base_va, n_lines, vn)
        else:
            geometry = EntryGeometry(
                base_va=base_va,
                run_lines=1,
                stride_lines=stride_lines,
                count=n_lines,
                extensible_run=False,
            )
            self.vn_store.set_strided(base_va, n_lines, stride_lines, vn)
        entry = self.table.insert(geometry, vn=vn, source="transfer")
        self.stats.add("transfer_installs")
        return entry

    def prime_from_trace(
        self,
        vaddrs: Sequence[int],
        vns: Optional[Sequence[int]] = None,
        detect_strides: Optional[bool] = None,
    ) -> int:
        """Batch cold-start detection over a recorded miss trace.

        Scans the whole (address, VN) stream for the tensor condition in
        one pass (:func:`detect_streams`) instead of feeding the Tensor
        Filter one miss at a time, then installs an entry per detected
        stream. ``vns=None`` reads the off-chip store.
        ``detect_strides=None`` follows the filter's ``stride_detect``
        setting. Returns how many entries were installed.
        """
        if not self.enabled:
            return 0
        if vns is None:
            vns = self.vn_store.read_many(vaddrs)
        if detect_strides is None:
            detect_strides = self.filter.stride_detect
        installed = 0
        for geometry, vn in detect_streams(
            vaddrs, vns, self.filter.collect_target, detect_strides=detect_strides
        ):
            self.table.insert(geometry, vn=vn, source="scan")
            self.filter.drop_covering(geometry.base_va)
            installed += 1
            self.stats.add("trace_primes")
        return installed

    def fold_mac(self, vaddr: int, mac_delta: int) -> bool:
        """XOR a line-MAC delta into the covering entry's tensor MAC.

        Called by the device after the MEE computed the old/new line MACs
        for a write; returns whether a covering entry absorbed the delta.
        """
        entry = self.table.entry_of(vaddr)
        if entry is None:
            return False
        entry.mac ^= mac_delta
        return True

    def metadata_for_range(self, base_va: int, n_lines: int) -> Optional[tuple[int, int]]:
        """(VN, MAC) for a whole tensor range, for the trusted channel."""
        entry = self.table.covering_range(base_va, n_lines)
        if entry is None or entry.updating:
            return None
        return entry.vn, entry.mac

    # -- reporting -------------------------------------------------------------

    def hit_rates(self) -> dict[str, float]:
        """hit_in / hit_boundary / hit_all read rates so far (Fig. 18)."""
        hit_in = self.stats["read_hit_in"]
        boundary = self.stats["read_hit_boundary"]
        miss = self.stats["read_miss"]
        total = hit_in + boundary + miss
        if total == 0:
            return {"hit_in": 0.0, "hit_boundary": 0.0, "hit_all": 0.0}
        return {
            "hit_in": hit_in / total,
            "hit_boundary": boundary / total,
            "hit_all": (hit_in + boundary) / total,
        }

    def reset_rate_counters(self) -> None:
        """Zero the read/write classification counters (not the table)."""
        for key in (
            "read_hit_in",
            "read_hit_boundary",
            "read_miss",
            "boundary_mispredict",
            "write_hit_edge",
            "write_hit_in",
            "write_miss",
            "write_violation",
            "write_completed_tensors",
        ):
            self.stats.set(key, 0.0)
