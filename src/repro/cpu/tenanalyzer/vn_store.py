"""Off-chip per-cacheline version numbers.

This is the SGX-compatible VN layer TenAnalyzer stays consistent with
(Fig. 12: "maintains consistency with off-chip cacheline-granularity VN").
While an entry covers a line, the off-chip copy may lag; on eviction or
invalidation the entry's VN is synchronised back (``sync``), so the MEE can
always fall back to the off-chip value for uncovered lines.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.units import CACHELINE_BYTES


class OffChipVnStore:
    """Per-line VN dictionary with write counters for invariant checks."""

    def __init__(self) -> None:
        self._vn: Dict[int, int] = {}

    @staticmethod
    def _line(vaddr: int) -> int:
        return vaddr - (vaddr % CACHELINE_BYTES)

    def read(self, vaddr: int) -> int:
        """Current off-chip VN of the line containing ``vaddr``."""
        return self._vn.get(self._line(vaddr), 0)

    def bump(self, vaddr: int) -> int:
        """Increment on a line write-back; returns the new VN."""
        line = self._line(vaddr)
        new = self._vn.get(line, 0) + 1
        self._vn[line] = new
        return new

    def sync(self, vaddrs: Iterable[int], vn: int) -> int:
        """Entry eviction: force lines to the entry-tracked VN.

        Returns how many lines actually changed (the write-back traffic).
        """
        changed = 0
        for vaddr in vaddrs:
            line = self._line(vaddr)
            if self._vn.get(line, 0) != vn:
                self._vn[line] = vn
                changed += 1
        return changed

    def read_many(self, vaddrs: Sequence[int]) -> List[int]:
        """Current VNs for a whole trace of addresses (batch-scan helper)."""
        get = self._vn.get
        line = CACHELINE_BYTES
        return [get(vaddr - vaddr % line, 0) for vaddr in vaddrs]

    def set(self, vaddr: int, vn: int) -> None:
        """Directly set a line's VN (used by transfer-descriptor installs)."""
        self._vn[self._line(vaddr)] = vn

    def set_range(self, base_va: int, n_lines: int, vn: int) -> None:
        """Set ``n_lines`` consecutive lines to ``vn`` in one update."""
        base = self._line(base_va)
        line = CACHELINE_BYTES
        self._vn.update((base + i * line, vn) for i in range(n_lines))

    def set_strided(
        self, base_va: int, count: int, stride_lines: int, vn: int, run_lines: int = 1
    ) -> None:
        """Set a strided line pattern to ``vn``: ``count`` runs of
        ``run_lines`` consecutive lines, run starts ``stride_lines`` apart.

        ``count=1`` (or ``stride_lines == run_lines``) degenerates to
        :meth:`set_range`; used by strided transfer-descriptor installs.
        """
        base = self._line(base_va)
        line = CACHELINE_BYTES
        self._vn.update(
            (base + (r * stride_lines + i) * line, vn)
            for r in range(count)
            for i in range(run_lines)
        )

    @property
    def tracked_lines(self) -> int:
        return len(self._vn)
