"""TenAnalyzer: hardware tensor detection in the memory controller (Sec. 4.2).

The unit watches the cores' virtual-address request stream and builds the
Meta Table — per-tensor entries holding one on-chip VN (and MAC) for all
cachelines of a detected tensor — via the Tensor Filter (cold-stream pattern
collection), boundary extension (gradual coverage growth) and entry merging
(reassembling tiled/sharded tensors, Fig. 11).
"""

from repro.cpu.tenanalyzer.analyzer import ReadResult, TenAnalyzer, WriteResult
from repro.cpu.tenanalyzer.entry import EntryGeometry, MetaTableEntry
from repro.cpu.tenanalyzer.meta_table import MetaTable
from repro.cpu.tenanalyzer.tensor_filter import TensorFilter
from repro.cpu.tenanalyzer.vn_store import OffChipVnStore

__all__ = [
    "TenAnalyzer",
    "ReadResult",
    "WriteResult",
    "MetaTableEntry",
    "EntryGeometry",
    "MetaTable",
    "TensorFilter",
    "OffChipVnStore",
]
