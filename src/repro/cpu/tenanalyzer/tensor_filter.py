"""The Tensor Filter: cold-stream pattern collection (Fig. 10).

Meta Table misses land here. Each filter entry collects up to
``collect_target`` line addresses of one candidate stream; when full, the
addresses are checked for the tensor condition — consecutive lines with the
same off-chip VN — and a fresh Meta Table entry is initialised from them.
The filter is tiny (10 entries, Table in Sec. 6.5) because kernels touch few
tensors concurrently; LRU eviction discards noise streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cpu.tenanalyzer.entry import EntryGeometry
from repro.sim.stats import Stats
from repro.units import CACHELINE_BYTES

LINE = CACHELINE_BYTES


@dataclass
class FilterEntry:
    """One in-flight candidate stream."""

    base_va: int
    vn: int
    collected: int = 1
    lru_tick: int = 0

    @property
    def next_va(self) -> int:
        return self.base_va + self.collected * LINE


class TensorFilter:
    """Collects read-miss addresses and proposes Meta Table entries."""

    def __init__(
        self,
        n_entries: int = 10,
        collect_target: int = 4,
        stats: Optional[Stats] = None,
    ) -> None:
        self.n_entries = n_entries
        self.collect_target = collect_target
        self.stats = stats if stats is not None else Stats("tensor_filter")
        self._entries: List[FilterEntry] = []
        self._tick = 0

    def observe(self, vaddr: int, vn: int) -> Optional[EntryGeometry]:
        """Feed one read-miss; returns a detected geometry when ready.

        The stream check is the paper's tensor condition: a consistent
        (line-contiguous) address pattern with one shared VN.
        """
        self._tick += 1
        for index, entry in enumerate(self._entries):
            if vaddr == entry.next_va:
                if vn != entry.vn:
                    # VN broke the tensor condition: restart the stream here.
                    self._entries[index] = FilterEntry(vaddr, vn, lru_tick=self._tick)
                    self.stats.add("vn_restarts")
                    return None
                entry.collected += 1
                entry.lru_tick = self._tick
                if entry.collected >= self.collect_target:
                    self._entries.pop(index)
                    self.stats.add("detections")
                    return EntryGeometry(
                        base_va=entry.base_va,
                        run_lines=entry.collected,
                        stride_lines=entry.collected,
                        count=1,
                        extensible_run=True,
                    )
                return None
        self._allocate(vaddr, vn)
        return None

    def _allocate(self, vaddr: int, vn: int) -> None:
        if len(self._entries) >= self.n_entries:
            victim = min(range(len(self._entries)), key=lambda i: self._entries[i].lru_tick)
            self._entries.pop(victim)
            self.stats.add("evictions")
        self._entries.append(FilterEntry(vaddr, vn, lru_tick=self._tick))
        self.stats.add("allocations")

    def drop_covering(self, vaddr: int) -> None:
        """Drop any stream that already reached past ``vaddr`` (rare overlap)."""
        self._entries = [
            e for e in self._entries if not (e.base_va <= vaddr < e.next_va)
        ]

    @property
    def occupancy(self) -> int:
        return len(self._entries)
