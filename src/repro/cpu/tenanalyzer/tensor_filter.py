"""The Tensor Filter: cold-stream pattern collection (Fig. 10).

Meta Table misses land here. Each filter entry collects up to
``collect_target`` line addresses of one candidate stream; when full, the
addresses are checked for the tensor condition — consecutive lines with the
same off-chip VN — and a fresh Meta Table entry is initialised from them.
The filter is tiny (10 entries, Table in Sec. 6.5) because kernels touch few
tensors concurrently; LRU eviction discards noise streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro import vec
from repro.cpu.tenanalyzer.entry import MAX_STRIDE_LINES, EntryGeometry
from repro.sim.stats import Stats
from repro.units import CACHELINE_BYTES

LINE = CACHELINE_BYTES


def _stream_geometry(base_va: int, run: int, stride_lines: int) -> EntryGeometry:
    """Geometry of one detected run: 1D when unit-stride, strided otherwise."""
    if stride_lines == 1:
        return EntryGeometry(
            base_va=base_va,
            run_lines=run,
            stride_lines=run,
            count=1,
            extensible_run=True,
        )
    return EntryGeometry(
        base_va=base_va,
        run_lines=1,
        stride_lines=stride_lines,
        count=run,
        extensible_run=False,
    )


def _detect_strided(
    vaddrs: Sequence[int], vns: Sequence[int], min_run: int
) -> List[tuple[EntryGeometry, int]]:
    """Maximal constant-stride (arithmetic-progression) run scan.

    A run is a maximal sequence of line-aligned addresses with one locked
    positive line stride (any multiple of the line size up to
    :data:`MAX_STRIDE_LINES` — the Meta Table's stride field width) and
    one shared VN. Alternating-stride patterns (e.g. run-2-skip-6 from a
    sliced row walk) break into sub-``min_run`` pieces and stay
    undetected — that is the realistic accuracy degradation the layout
    sweeps measure. Runs never share elements, so the resulting entries
    never overlap. State-serial by nature; used by both vectorize modes.
    """
    total = len(vaddrs)
    streams: List[tuple[EntryGeometry, int]] = []
    start = 0
    locked = 0  # locked byte stride; 0 = not locked yet

    def emit(start: int, stop: int, stride: int) -> bool:
        run = stop - start
        if run < min_run or stride == 0:
            return False
        streams.append((_stream_geometry(vaddrs[start], run, stride // LINE), vns[start]))
        return True

    for i in range(1, total + 1):
        if i < total:
            diff = vaddrs[i] - vaddrs[i - 1]
            valid = (
                diff > 0
                and diff % LINE == 0
                and diff // LINE <= MAX_STRIDE_LINES
                and vns[i] == vns[i - 1]
            )
            if valid and (locked == 0 or diff == locked):
                locked = diff
                continue
            if valid:
                # Stride changed: close the run; the boundary element seeds
                # the next run only when the closed run was too short to
                # emit (emitted runs must not overlap the next entry).
                if emit(start, i, locked):
                    start = i
                    locked = 0
                else:
                    start = i - 1
                    locked = diff
                continue
        emit(start, i, locked)
        start = i
        locked = 0
    return streams


def detect_streams(
    vaddrs: Sequence[int],
    vns: Sequence[int],
    min_run: int = 4,
    detect_strides: bool = False,
) -> List[tuple[EntryGeometry, int]]:
    """Batch tensor-condition scan over a whole (address, VN) trace.

    Finds every maximal run of line-contiguous addresses sharing one VN —
    the same condition :meth:`TensorFilter.observe` checks one miss at a
    time — and returns ``(geometry, vn)`` per run of at least ``min_run``
    lines. The batched path reduces the scan to two array diffs; the
    scalar path is the reference loop.

    ``detect_strides=True`` relaxes the contiguity condition to *any*
    constant line stride (up to the Meta Table's representable
    :data:`MAX_STRIDE_LINES`), returning strided geometries for
    non-unit-stride runs — see :func:`_detect_strided`.
    """
    if len(vaddrs) != len(vns):
        raise ValueError("vaddrs and vns must pair up one per access")
    total = len(vaddrs)
    if total == 0:
        return []
    if detect_strides:
        return _detect_strided(vaddrs, vns, min_run)

    def stream(start: int, run: int) -> tuple[EntryGeometry, int]:
        geometry = EntryGeometry(
            base_va=vaddrs[start],
            run_lines=run,
            stride_lines=run,
            count=1,
            extensible_run=True,
        )
        return geometry, vns[start]

    if vec.enabled():
        np = vec.np
        va = np.asarray(vaddrs, dtype=np.int64)
        vn = np.asarray(vns, dtype=np.int64)
        breaks = np.flatnonzero((np.diff(va) != LINE) | (np.diff(vn) != 0))
        starts = np.concatenate(([0], breaks + 1))
        ends = np.concatenate((breaks + 1, [total]))
        runs = ends - starts
        keep = np.flatnonzero(runs >= min_run)
        return [stream(int(starts[i]), int(runs[i])) for i in keep]

    streams: List[tuple[EntryGeometry, int]] = []
    start = 0
    for i in range(1, total + 1):
        broken = (
            i == total
            or vaddrs[i] != vaddrs[i - 1] + LINE
            or vns[i] != vns[i - 1]
        )
        if broken:
            if i - start >= min_run:
                streams.append(stream(start, i - start))
            start = i
    return streams


@dataclass
class FilterEntry:
    """One in-flight candidate stream."""

    base_va: int
    vn: int
    collected: int = 1
    lru_tick: int = 0
    #: Locked line stride of the candidate (1 = contiguous). Stride-aware
    #: collection locks it on the second observation; the default filter
    #: never changes it.
    stride_lines: int = 1

    @property
    def next_va(self) -> int:
        return self.base_va + self.collected * self.stride_lines * LINE


class TensorFilter:
    """Collects read-miss addresses and proposes Meta Table entries.

    ``stride_detect=True`` additionally locks a constant line stride onto
    a one-miss-old candidate (the second miss of a stream defines its
    stride, the way transfer descriptors carry ``(address, size,
    stride)``), so non-unit-stride streams can still reach the
    ``collect_target`` and seed strided Meta Table entries. Off by
    default: the paper's filter checks strict line contiguity.
    """

    def __init__(
        self,
        n_entries: int = 10,
        collect_target: int = 4,
        stats: Optional[Stats] = None,
        stride_detect: bool = False,
        max_stride_lines: int = MAX_STRIDE_LINES,
    ) -> None:
        self.n_entries = n_entries
        self.collect_target = collect_target
        self.stats = stats if stats is not None else Stats("tensor_filter")
        self.stride_detect = stride_detect
        self.max_stride_lines = max_stride_lines
        self._entries: List[FilterEntry] = []
        self._tick = 0

    def observe(self, vaddr: int, vn: int) -> Optional[EntryGeometry]:
        """Feed one read-miss; returns a detected geometry when ready.

        The stream check is the paper's tensor condition: a consistent
        (line-contiguous, or constant-stride when ``stride_detect`` is on)
        address pattern with one shared VN.
        """
        self._tick += 1
        for index, entry in enumerate(self._entries):
            if vaddr == entry.next_va:
                if vn != entry.vn:
                    # VN broke the tensor condition: restart the stream here.
                    self._entries[index] = FilterEntry(vaddr, vn, lru_tick=self._tick)
                    self.stats.add("vn_restarts")
                    return None
                entry.collected += 1
                entry.lru_tick = self._tick
                if entry.collected >= self.collect_target:
                    self._entries.pop(index)
                    self.stats.add("detections")
                    return _stream_geometry(
                        entry.base_va, entry.collected, entry.stride_lines
                    )
                return None
        if self.stride_detect:
            for entry in self._entries:
                if entry.collected != 1 or vn != entry.vn:
                    continue
                diff = vaddr - entry.base_va
                if diff > LINE and diff % LINE == 0 and diff // LINE <= self.max_stride_lines:
                    entry.stride_lines = diff // LINE
                    entry.collected = 2
                    entry.lru_tick = self._tick
                    self.stats.add("stride_locks")
                    return None
        self._allocate(vaddr, vn)
        return None

    def _allocate(self, vaddr: int, vn: int) -> None:
        if len(self._entries) >= self.n_entries:
            victim = min(range(len(self._entries)), key=lambda i: self._entries[i].lru_tick)
            self._entries.pop(victim)
            self.stats.add("evictions")
        self._entries.append(FilterEntry(vaddr, vn, lru_tick=self._tick))
        self.stats.add("allocations")

    def drop_covering(self, vaddr: int) -> None:
        """Drop any stream that already reached past ``vaddr`` (rare overlap)."""
        self._entries = [
            e for e in self._entries if not (e.base_va <= vaddr < e.next_va)
        ]

    @property
    def occupancy(self) -> int:
        return len(self._entries)
