"""The Tensor Filter: cold-stream pattern collection (Fig. 10).

Meta Table misses land here. Each filter entry collects up to
``collect_target`` line addresses of one candidate stream; when full, the
addresses are checked for the tensor condition — consecutive lines with the
same off-chip VN — and a fresh Meta Table entry is initialised from them.
The filter is tiny (10 entries, Table in Sec. 6.5) because kernels touch few
tensors concurrently; LRU eviction discards noise streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro import vec
from repro.cpu.tenanalyzer.entry import EntryGeometry
from repro.sim.stats import Stats
from repro.units import CACHELINE_BYTES

LINE = CACHELINE_BYTES


def detect_streams(
    vaddrs: Sequence[int], vns: Sequence[int], min_run: int = 4
) -> List[tuple[EntryGeometry, int]]:
    """Batch tensor-condition scan over a whole (address, VN) trace.

    Finds every maximal run of line-contiguous addresses sharing one VN —
    the same condition :meth:`TensorFilter.observe` checks one miss at a
    time — and returns ``(geometry, vn)`` per run of at least ``min_run``
    lines. The batched path reduces the scan to two array diffs; the
    scalar path is the reference loop.
    """
    if len(vaddrs) != len(vns):
        raise ValueError("vaddrs and vns must pair up one per access")
    total = len(vaddrs)
    if total == 0:
        return []

    def stream(start: int, run: int) -> tuple[EntryGeometry, int]:
        geometry = EntryGeometry(
            base_va=vaddrs[start],
            run_lines=run,
            stride_lines=run,
            count=1,
            extensible_run=True,
        )
        return geometry, vns[start]

    if vec.enabled():
        np = vec.np
        va = np.asarray(vaddrs, dtype=np.int64)
        vn = np.asarray(vns, dtype=np.int64)
        breaks = np.flatnonzero((np.diff(va) != LINE) | (np.diff(vn) != 0))
        starts = np.concatenate(([0], breaks + 1))
        ends = np.concatenate((breaks + 1, [total]))
        runs = ends - starts
        keep = np.flatnonzero(runs >= min_run)
        return [stream(int(starts[i]), int(runs[i])) for i in keep]

    streams: List[tuple[EntryGeometry, int]] = []
    start = 0
    for i in range(1, total + 1):
        broken = (
            i == total
            or vaddrs[i] != vaddrs[i - 1] + LINE
            or vns[i] != vns[i - 1]
        )
        if broken:
            if i - start >= min_run:
                streams.append(stream(start, i - start))
            start = i
    return streams


@dataclass
class FilterEntry:
    """One in-flight candidate stream."""

    base_va: int
    vn: int
    collected: int = 1
    lru_tick: int = 0

    @property
    def next_va(self) -> int:
        return self.base_va + self.collected * LINE


class TensorFilter:
    """Collects read-miss addresses and proposes Meta Table entries."""

    def __init__(
        self,
        n_entries: int = 10,
        collect_target: int = 4,
        stats: Optional[Stats] = None,
    ) -> None:
        self.n_entries = n_entries
        self.collect_target = collect_target
        self.stats = stats if stats is not None else Stats("tensor_filter")
        self._entries: List[FilterEntry] = []
        self._tick = 0

    def observe(self, vaddr: int, vn: int) -> Optional[EntryGeometry]:
        """Feed one read-miss; returns a detected geometry when ready.

        The stream check is the paper's tensor condition: a consistent
        (line-contiguous) address pattern with one shared VN.
        """
        self._tick += 1
        for index, entry in enumerate(self._entries):
            if vaddr == entry.next_va:
                if vn != entry.vn:
                    # VN broke the tensor condition: restart the stream here.
                    self._entries[index] = FilterEntry(vaddr, vn, lru_tick=self._tick)
                    self.stats.add("vn_restarts")
                    return None
                entry.collected += 1
                entry.lru_tick = self._tick
                if entry.collected >= self.collect_target:
                    self._entries.pop(index)
                    self.stats.add("detections")
                    return EntryGeometry(
                        base_va=entry.base_va,
                        run_lines=entry.collected,
                        stride_lines=entry.collected,
                        count=1,
                        extensible_run=True,
                    )
                return None
        self._allocate(vaddr, vn)
        return None

    def _allocate(self, vaddr: int, vn: int) -> None:
        if len(self._entries) >= self.n_entries:
            victim = min(range(len(self._entries)), key=lambda i: self._entries[i].lru_tick)
            self._entries.pop(victim)
            self.stats.add("evictions")
        self._entries.append(FilterEntry(vaddr, vn, lru_tick=self._tick))
        self.stats.add("allocations")

    def drop_covering(self, vaddr: int) -> None:
        """Drop any stream that already reached past ``vaddr`` (rare overlap)."""
        self._entries = [
            e for e in self._entries if not (e.base_va <= vaddr < e.next_va)
        ]

    @property
    def occupancy(self) -> int:
        return len(self._entries)
