"""The tiled-GEMM CPU experiment (Sec. 6.2's complex-access-pattern study).

A 256x256 matrix multiply with 64x64 tiles: TenAnalyzer must reassemble the
tiled row segments into whole-matrix entries via multi-direction merging
(Fig. 11b). The paper reports a 98.8% hit_in rate on the pass after the
structures are built.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.cpu.tenanalyzer import TenAnalyzer
from repro.sim.trace_batch import KIND_READ
from repro.tensor.registry import TensorRegistry
from repro.units import KiB
from repro.workloads.traces import GemmConfig, build_gemm_tensors, gemm_batch


@dataclass
class GemmPassStats:
    """Hit statistics of one full GEMM pass."""

    pass_index: int
    hit_in: float
    hit_boundary: float
    hit_all: float
    n_entries: int


@dataclass
class GemmExperiment:
    """Functional TenAnalyzer run over repeated tiled-GEMM passes."""

    config: GemmConfig = field(default_factory=GemmConfig)
    meta_table_capacity: int = 512

    def __post_init__(self) -> None:
        self._registry = TensorRegistry(alignment=4 * KiB, guard_bytes=256 * KiB)
        self.a, self.b, self.c = build_gemm_tensors(self._registry, self.config)
        self.analyzer = TenAnalyzer(capacity=self.meta_table_capacity)
        self._truth: Dict[int, int] = {}
        self._pass = 0

    def run_pass(self) -> GemmPassStats:
        """Execute one full GEMM through the analyzer."""
        analyzer = self.analyzer
        analyzer.reset_rate_counters()
        batch = gemm_batch(self.a, self.b, self.c, self.config)
        vaddrs, kinds, _, _ = batch.columns()
        vns = analyzer.replay_window(vaddrs, kinds)
        truth = self._truth
        for vaddr, kind, vn in zip(vaddrs, kinds, vns):
            if kind == KIND_READ:
                if vn != truth.get(vaddr, 0):
                    raise AssertionError(f"GEMM VN divergence at {vaddr:#x}")
            else:
                expected = truth.get(vaddr, 0) + 1
                truth[vaddr] = expected
                if vn != expected:
                    raise AssertionError(f"GEMM write VN divergence at {vaddr:#x}")
        rates = analyzer.hit_rates()
        record = GemmPassStats(
            pass_index=self._pass,
            hit_in=rates["hit_in"],
            hit_boundary=rates["hit_boundary"],
            hit_all=rates["hit_all"],
            n_entries=analyzer.table.n_entries,
        )
        self._pass += 1
        return record

    def run(self, passes: int) -> List[GemmPassStats]:
        return [self.run_pass() for _ in range(passes)]
