"""SoftVN baseline (Sec. 2.2): software-declared on-chip VN table.

SoftVN eliminates off-chip VN traffic for declared tensors, but:

1. the VN table lookup sits on the cache-access critical path, so each
   demand access pays a lookup latency that grows with the entry count
   (the paper's "dilemma for improving practicability");
2. a tensor updated in parallel occupies one entry *per core* ("wastage of
   entries"), so the effective entry demand is ``tensors x threads``; the
   overflow fraction falls back to SGX-style off-chip VN handling.
"""

from __future__ import annotations

import math

from repro.cpu.config import CpuConfig
from repro.cpu.sgx import sgx_costs
from repro.cpu.timing import ModeCosts
from repro.errors import ConfigError
from repro.units import GiB


def softvn_costs(
    config: CpuConfig,
    threads: int,
    n_tensors: int = 67,
    table_entries: int = 512,
    lookup_cycles_base: float = 8.0,
    protected_bytes: int = 4 * GiB,
) -> ModeCosts:
    """SoftVN mode costs for ``n_tensors`` declared tensors.

    ``n_tensors`` is the number of *concurrently live* declared tensors
    (the optimizer working set), each consuming one entry per active core.
    """
    if n_tensors <= 0 or table_entries <= 0:
        raise ConfigError("tensor and table counts must be positive")
    demand = n_tensors * threads
    spill_fraction = max(0.0, 1.0 - table_entries / demand)

    # Critical-path lookup: a CAM over `table_entries` entries; latency grows
    # logarithmically with the entry count (match-line segmentation).
    lookup_cycles = lookup_cycles_base * (1.0 + math.log2(table_entries / 64.0) / 4.0)
    lookup_s = lookup_cycles / config.freq_hz

    sgx = sgx_costs(config, protected_bytes=protected_bytes, threads=threads)
    # With the VN on chip the counter-mode keystream is computed while the
    # data line is in flight, so only the final XOR/MAC-check tail remains
    # on the load critical path (the point of counter-mode, Sec. 2.2).
    crypto_tail_s = 4.0 / config.freq_hz
    return ModeCosts(
        name="softvn",
        meta_txns_per_line=spill_fraction * sgx.meta_txns_per_line,
        dependent_meta_per_read=spill_fraction * sgx.dependent_meta_per_read,
        crypto_latency_s=crypto_tail_s + spill_fraction * sgx.crypto_latency_s,
        lookup_latency_s=lookup_s,
    )
