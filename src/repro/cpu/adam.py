"""The Adam-optimizer CPU experiment driver (Figs. 3, 18, 19).

Runs the *functional* TenAnalyzer over scaled optimizer traces for a number
of iterations, recording per-iteration hit rates (Fig. 18) and converting
them into per-iteration :class:`ModeCosts` whose timing relative to
non-secure/SGX/SoftVN reproduces Fig. 19. The scaling rationale is in
DESIGN.md Sec. 2: stream structure, thread interleaving and table pressure
are preserved; volumes are full-size.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List

from repro.cpu.tenanalyzer import TenAnalyzer
from repro.cpu.tensortee_mode import AnalyzerRates
from repro.errors import ConfigError
from repro.sim.trace_batch import KIND_READ
from repro.tensor.registry import TensorRegistry
from repro.units import KiB
from repro.workloads.traces import (
    AdamTraceConfig,
    adam_iteration_batch,
    build_adam_groups,
)


@dataclass(frozen=True)
class AdamExperimentConfig:
    """Scaled functional Adam experiment.

    Default proportions mirror a mid-size Table-2 model: ~5 fused buffers
    per layer, 8 worker threads, Meta Table pressure above capacity before
    merging and below after (which is what makes Fig. 18 converge
    gradually rather than instantly).
    """

    n_layers: int = 24
    lines_per_tensor: int = 64
    threads: int = 8
    meta_table_capacity: int = 320
    merge_window: int = 8
    burst_lines: int = 4
    thread_skew: float = 0.15
    write_lag_bursts: int = 4
    #: Install the transfer-involved tensors (incoming grad32, outgoing
    #: weight16) from their transfer descriptors at the start of each
    #: iteration — the Sec. 4.2 fast path ("data transfer instructions from
    #: NPU typically include tensor structure information"). On for the
    #: collaborative-system steady state; off for pure-detection ablation.
    install_transfer_descriptors: bool = False
    seed: int = 2024


@dataclass
class IterationStats:
    """Per-iteration measurement of the analyzer."""

    iteration: int
    hit_in: float
    hit_boundary: float
    hit_all: float
    rates: AnalyzerRates
    n_entries: int
    merges: float
    evictions: float
    violations: float


@dataclass
class AdamExperiment:
    """Functional TenAnalyzer run over repeated optimizer iterations."""

    config: AdamExperimentConfig = field(default_factory=AdamExperimentConfig)

    def __post_init__(self) -> None:
        if self.config.n_layers <= 0:
            raise ConfigError("need at least one layer")
        self._registry = TensorRegistry(alignment=4 * KiB, guard_bytes=256 * KiB)
        self._groups = build_adam_groups(
            self._registry, self.config.n_layers, self.config.lines_per_tensor
        )
        self.analyzer = TenAnalyzer(
            capacity=self.config.meta_table_capacity,
            merge_window=self.config.merge_window,
        )
        self._trace_config = AdamTraceConfig(
            threads=self.config.threads,
            burst_lines=self.config.burst_lines,
            thread_skew=self.config.thread_skew,
            write_lag_bursts=self.config.write_lag_bursts,
            seed=self.config.seed,
        )
        self._rng = random.Random(self.config.seed)
        self._truth: Dict[int, int] = {}
        self._iteration = 0

    def run_iteration(self) -> IterationStats:
        """Execute one optimizer iteration through the analyzer."""
        analyzer = self.analyzer
        if self.config.install_transfer_descriptors:
            for group in self._groups:
                for tensor in (group.grad32, group.weight16):
                    vn = self._truth.get(tensor.base_va, 0)
                    analyzer.install_from_transfer(tensor.base_va, tensor.n_lines, vn)
        analyzer.reset_rate_counters()
        sync_before = analyzer.stats.scope("meta_table")["sync_lines"]
        batch = adam_iteration_batch(self._groups, self._trace_config, self._rng)
        vaddrs, kinds, _, _ = batch.columns()
        vns = analyzer.replay_window(vaddrs, kinds)
        truth = self._truth
        for vaddr, kind, vn in zip(vaddrs, kinds, vns):
            if kind == KIND_READ:
                expected = truth.get(vaddr, 0)
                if vn != expected:
                    raise AssertionError(
                        f"VN divergence at {vaddr:#x}: "
                        f"analyzer={vn} ground-truth={expected}"
                    )
            else:
                expected = truth.get(vaddr, 0) + 1
                truth[vaddr] = expected
                if vn != expected:
                    raise AssertionError(f"write VN divergence at {vaddr:#x}")
        stats = analyzer.stats
        meta = stats.scope("meta_table")
        hit = analyzer.hit_rates()
        reads = stats["read_hit_in"] + stats["read_hit_boundary"] + stats["read_miss"]
        writes = (
            stats["write_hit_edge"]
            + stats["write_hit_in"]
            + stats["write_miss"]
            + stats["write_violation"]
        )
        total = max(1.0, reads + writes)
        sync_delta = meta["sync_lines"] - sync_before
        rates = AnalyzerRates(
            read_hit_in=stats["read_hit_in"] / max(reads, 1.0),
            read_hit_boundary=stats["read_hit_boundary"] / max(reads, 1.0),
            read_miss=stats["read_miss"] / max(reads, 1.0),
            write_covered=(stats["write_hit_edge"] + stats["write_hit_in"]) / max(writes, 1.0),
            write_miss=(stats["write_miss"] + stats["write_violation"]) / max(writes, 1.0),
            sync_lines_per_access=sync_delta / total,
        )
        record = IterationStats(
            iteration=self._iteration,
            hit_in=hit["hit_in"],
            hit_boundary=hit["hit_boundary"],
            hit_all=hit["hit_all"],
            rates=rates,
            n_entries=analyzer.table.n_entries,
            merges=meta["merges"],
            evictions=meta["evictions"],
            violations=stats["write_violation"],
        )
        self._iteration += 1
        return record

    def run(self, iterations: int) -> List[IterationStats]:
        """Run several iterations, returning the per-iteration records."""
        return [self.run_iteration() for _ in range(iterations)]
