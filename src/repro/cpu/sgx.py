"""SGX-like baseline: cacheline-granularity VN + MAC + 8-ary Merkle tree.

Mode-cost provider for the timing model. The metadata transaction rates are
measured by streaming a sampled window through the real metadata-cache
simulator (:mod:`repro.cpu.metadata_model`); the protected-region size sets
the tree depth (deeper trees -> longer dependent walks on VN misses).
"""

from __future__ import annotations

from functools import lru_cache

from repro.cpu.config import CpuConfig
from repro.cpu.metadata_model import MetaTraffic, measure_sgx_metadata
from repro.cpu.timing import ModeCosts
from repro.units import GiB


@lru_cache(maxsize=32)
def _measured(protected_bytes: int, streams: int, sample_lines: int) -> MetaTraffic:
    return measure_sgx_metadata(
        protected_bytes=protected_bytes,
        sample_lines=sample_lines,
        streams=streams,
    )


def sgx_costs(
    config: CpuConfig,
    protected_bytes: int = 4 * GiB,
    threads: int = 8,
    write_fraction: float = 0.45,
    sample_lines: int = 120_000,
) -> ModeCosts:
    """Build the SGX mode costs for a protected region of the given size."""
    traffic = _measured(protected_bytes, threads, sample_lines)
    return ModeCosts(
        name="sgx",
        meta_txns_per_line=traffic.txns_per_line(write_fraction),
        dependent_meta_per_read=traffic.dependent_levels_per_read,
        crypto_latency_s=config.aes_latency_s + config.mac_latency_s,
    )
