"""TensorTEE CPU mode costs, derived from measured TenAnalyzer behaviour.

- *hit-in* reads: VN comes from the Meta Table — no off-chip metadata, no
  dependent walk; only the AES pipeline latency remains (hidden behind the
  data fetch except for its tail).
- *hit-boundary* reads: the entry VN is used speculatively; one off-chip VN
  fetch runs in the background (bandwidth cost, no stall).
- *miss* reads and uncovered writes: SGX-equivalent cost.
- covered writes: no off-chip metadata at all (the entry tracks the VN; MACs
  are folded on chip); eviction syncs are amortized via the measured
  ``sync_lines`` rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.config import CpuConfig
from repro.cpu.sgx import sgx_costs
from repro.cpu.timing import ModeCosts
from repro.errors import ConfigError
from repro.units import GiB


@dataclass(frozen=True)
class AnalyzerRates:
    """Measured per-access classification rates of one optimizer iteration."""

    read_hit_in: float
    read_hit_boundary: float
    read_miss: float
    write_covered: float
    write_miss: float
    sync_lines_per_access: float = 0.0

    def __post_init__(self) -> None:
        for value in (
            self.read_hit_in,
            self.read_hit_boundary,
            self.read_miss,
            self.write_covered,
            self.write_miss,
        ):
            if value < -1e-9:
                raise ConfigError("rates must be non-negative")


def tensortee_costs(
    config: CpuConfig,
    rates: AnalyzerRates,
    threads: int = 8,
    protected_bytes: int = 4 * GiB,
) -> ModeCosts:
    """Blend SGX-path costs over the measured miss fractions."""
    sgx = sgx_costs(config, protected_bytes=protected_bytes, threads=threads)

    reads = rates.read_hit_in + rates.read_hit_boundary + rates.read_miss
    writes = rates.write_covered + rates.write_miss
    total = max(reads + writes, 1e-12)
    read_share = reads / total
    write_share = writes / total

    read_miss_frac = rates.read_miss / max(reads, 1e-12)
    boundary_frac = rates.read_hit_boundary / max(reads, 1e-12)
    write_miss_frac = rates.write_miss / max(writes, 1e-12)

    meta_txns = (
        read_share * (read_miss_frac * sgx.meta_txns_per_line + boundary_frac * 1.0)
        + write_share * (write_miss_frac * sgx.meta_txns_per_line)
        + rates.sync_lines_per_access
    )
    dependent = read_miss_frac * sgx.dependent_meta_per_read * read_share
    # Hit paths know the VN on chip: the keystream overlaps the data fetch
    # and only the XOR/MAC-check tail stays on the critical path. Misses pay
    # the SGX serialized crypto latency.
    crypto_tail_s = 4.0 / config.freq_hz
    miss_frac_overall = read_share * read_miss_frac + write_share * write_miss_frac
    return ModeCosts(
        name="tensortee",
        meta_txns_per_line=meta_txns,
        dependent_meta_per_read=dependent,
        crypto_latency_s=crypto_tail_s + miss_frac_overall * sgx.crypto_latency_s,
    )
