"""CPU latency model for the memory-bound optimizer workloads.

Three bottlenecks, combined with a soft maximum:

- **compute**: AVX-class Adam arithmetic per thread;
- **latency**: each thread sustains ``mlp`` outstanding line misses whose
  service time includes serialized metadata dependencies (Merkle walk) and
  the AES/MAC pipeline latency;
- **bandwidth**: data bytes plus metadata transactions (each costing
  ``metadata_txn_cost`` line-equivalents of DRAM time), with queueing
  inflation as demand saturates the channels.

The mode-specific inputs (:class:`ModeCosts`) come from functional
simulations: the SGX baseline from :mod:`repro.cpu.metadata_model`, the
TensorTEE mode from measured TenAnalyzer hit rates, SoftVN from its
declared-table model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.config import CpuConfig
from repro.errors import ConfigError
from repro.units import CACHELINE_BYTES
from repro.workloads.zero_offload import ADAM_BYTES_PER_PARAM


@dataclass(frozen=True)
class ModeCosts:
    """Per-mode memory-protection costs fed into the latency model."""

    name: str
    #: Extra DRAM transactions per data line (metadata fetches/write-backs).
    meta_txns_per_line: float
    #: Serialized metadata accesses on the demand-read critical path
    #: (a Merkle walk is a dependent chain; TensorTEE hit-ins have none).
    dependent_meta_per_read: float
    #: Cryptographic pipeline latency added to each demand line (seconds).
    crypto_latency_s: float
    #: Additional per-access on-chip lookup latency (SoftVN's critical-path
    #: VN table, Sec. 2.2 limitation 2), in seconds.
    lookup_latency_s: float = 0.0


def non_secure_costs() -> ModeCosts:
    """No protection: plain DRAM traffic."""
    return ModeCosts("non-secure", 0.0, 0.0, 0.0)


@dataclass(frozen=True)
class AdamLatencyBreakdown:
    """Latency and its contributing bounds for one Adam step."""

    total_s: float
    compute_s: float
    latency_bound_s: float
    bandwidth_bound_s: float
    data_bytes: float
    meta_bytes_equiv: float


def adam_latency(
    config: CpuConfig,
    n_params: int,
    threads: int,
    costs: ModeCosts,
    bytes_per_param: int = ADAM_BYTES_PER_PARAM,
) -> AdamLatencyBreakdown:
    """Latency of one Adam optimizer step over ``n_params`` parameters."""
    if n_params <= 0 or threads <= 0:
        raise ConfigError("params and threads must be positive")
    data_bytes = float(n_params) * bytes_per_param
    n_lines = data_bytes / CACHELINE_BYTES

    compute_s = n_params / (threads * config.adam_elems_per_cycle * config.freq_hz)

    service_s = (
        config.dram.idle_latency_s * (1.0 + costs.dependent_meta_per_read)
        + costs.crypto_latency_s
        + costs.lookup_latency_s
    )
    latency_bound_s = n_lines * service_s / (threads * config.mlp)

    meta_bytes_equiv = (
        costs.meta_txns_per_line * n_lines * CACHELINE_BYTES * config.metadata_txn_cost
    )
    demand_bytes = data_bytes + meta_bytes_equiv
    bandwidth_bound_s = demand_bytes / config.dram.effective_stream_bw

    # Soft maximum of the two memory bounds: when both are comparable the
    # queues are deep and neither limit is cleanly achieved.
    p = 3.0
    memory_s = (bandwidth_bound_s**p + latency_bound_s**p) ** (1.0 / p)
    utilization = min(1.0, bandwidth_bound_s / max(memory_s, 1e-30))
    memory_s *= 1.0 + (config.queueing_inflation - 1.0) * utilization

    total_s = max(compute_s, memory_s)
    return AdamLatencyBreakdown(
        total_s=total_s,
        compute_s=compute_s,
        latency_bound_s=latency_bound_s,
        bandwidth_bound_s=bandwidth_bound_s,
        data_bytes=data_bytes,
        meta_bytes_equiv=meta_bytes_equiv,
    )


def slowdown(
    config: CpuConfig,
    n_params: int,
    threads: int,
    costs: ModeCosts,
) -> float:
    """Latency of ``costs`` relative to non-secure at the same thread count."""
    secure = adam_latency(config, n_params, threads, costs).total_s
    baseline = adam_latency(config, n_params, threads, non_secure_costs()).total_s
    return secure / baseline
