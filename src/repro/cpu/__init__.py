"""CPU-side TEE models: SGX baseline, SoftVN baseline, and TenAnalyzer."""

from repro.cpu.config import CpuConfig
from repro.cpu.tenanalyzer import TenAnalyzer

__all__ = ["CpuConfig", "TenAnalyzer"]
