"""SGX-baseline metadata traffic accounting.

Runs the real 32 KB metadata-cache simulator over a sampled streaming
window to measure, per data cacheline, how many *extra* DRAM transactions
the SGX-like MEE issues: VN-line fetches and write-backs, MAC-line fetches
and write-backs, and Merkle-tree node reads/updates down to the first
cached level (Sec. 2.2). The measured rates drive the Fig. 3 / Fig. 19
timing model; the per-byte cost of those scattered transactions is the
``metadata_txn_cost`` calibration constant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.mem.metadata_cache import MetadataCache, MetadataKind
from repro.units import KiB

#: VNs per metadata line: 56-bit VN -> 8 per 64-byte line (Sec. 2.2).
VNS_PER_LINE = 8
#: MACs per metadata line: 56-bit MAC -> 8 per 64-byte line.
MACS_PER_LINE = 8
#: Merkle tree arity (8-ary, Table 1 baseline).
TREE_ARITY = 8


@dataclass(frozen=True)
class MetaTraffic:
    """Measured per-data-line metadata behaviour."""

    read_txns_per_line: float  # extra DRAM transactions per read line
    write_txns_per_line: float  # extra DRAM transactions per write line
    dependent_levels_per_read: float  # serialized tree-walk depth per read
    metadata_hit_rate: float

    def txns_per_line(self, write_fraction: float) -> float:
        """Blend read/write transaction rates."""
        if not 0 <= write_fraction <= 1:
            raise ConfigError("write fraction must be within [0, 1]")
        return (
            (1 - write_fraction) * self.read_txns_per_line
            + write_fraction * self.write_txns_per_line
        )


def tree_levels(protected_lines: int) -> int:
    """Merkle levels above the VN lines for a protected region."""
    vn_lines = max(1, protected_lines // VNS_PER_LINE)
    levels = 0
    width = vn_lines
    while width > 1:
        width = -(-width // TREE_ARITY)
        levels += 1
    return max(1, levels)


def measure_sgx_metadata(
    protected_bytes: int,
    sample_lines: int = 200_000,
    write_fraction: float = 0.45,
    metadata_cache_bytes: int = 32 * KiB,
    streams: int = 8,
) -> MetaTraffic:
    """Stream ``sample_lines`` data lines through the metadata cache.

    ``streams`` parallel sequential streams model the per-thread Adam shards;
    their interleaving is what defeats the 32 KB metadata cache at the upper
    tree levels for large protected regions.
    """
    if protected_bytes <= 0 or sample_lines <= 0:
        raise ConfigError("protected region and sample must be positive")
    protected_lines = protected_bytes // 64
    levels = tree_levels(protected_lines)
    cache = MetadataCache(capacity_bytes=metadata_cache_bytes)

    # Interleave `streams` sequential walks, spread across the region. The
    # stride is de-aliased (odd offset per stream) — real shard bases are
    # not power-of-two aligned, and exact alignment would make all streams
    # collide in the same metadata-cache sets.
    stride = max(1, protected_lines // streams)
    read_txns = 0
    write_misses = 0
    dependent = 0
    reads = 0
    writes = 0
    per_stream = max(1, sample_lines // streams)
    writes_every = max(2, round(1.0 / max(write_fraction, 1e-6)))
    for position in range(per_stream):
        for stream in range(streams):
            line = (stream * stride + stream * 137 + position) % protected_lines
            vn_line = line // VNS_PER_LINE
            mac_line = line // MACS_PER_LINE
            reads += 1
            if not cache.access(MetadataKind.VN, vn_line):
                read_txns += 1
                # Walk the tree until a cached (already-verified) node.
                node = vn_line
                for level in range(1, levels + 1):
                    node //= TREE_ARITY
                    dependent += 1
                    if cache.access(MetadataKind.TREE, node, level=level):
                        break
                    read_txns += 1
            if not cache.access(MetadataKind.MAC, mac_line):
                read_txns += 1
            if position % writes_every == 0:
                writes += 1
                # Read-modify-write: metadata lines are dirtied in the cache
                # and written back on eviction (coalesced — 8 neighbouring
                # VNs share one line), so only fetch misses count here; the
                # write-back traffic is read off the cache stats below.
                if not cache.access(MetadataKind.VN, vn_line, write=True):
                    write_misses += 1
                if not cache.access(MetadataKind.MAC, mac_line, write=True):
                    write_misses += 1
                node = vn_line
                for level in range(1, levels + 1):
                    node //= TREE_ARITY
                    if not cache.access(MetadataKind.TREE, node, level=level, write=True):
                        write_misses += 1
                    break  # only the first tree level is touched eagerly
    writebacks = cache.stats.scope("cache")["writebacks"] + cache.flush()
    write_txns = write_misses + writebacks
    return MetaTraffic(
        read_txns_per_line=read_txns / max(1, reads),
        write_txns_per_line=write_txns / max(1, writes),
        dependent_levels_per_read=dependent / max(1, reads),
        metadata_hit_rate=cache.hit_rate,
    )
