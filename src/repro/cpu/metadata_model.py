"""SGX-baseline metadata traffic accounting.

Runs the real 32 KB metadata-cache simulator over a sampled streaming
window to measure, per data cacheline, how many *extra* DRAM transactions
the SGX-like MEE issues: VN-line fetches and write-backs, MAC-line fetches
and write-backs, and Merkle-tree node reads/updates down to the first
cached level (Sec. 2.2). The measured rates drive the Fig. 3 / Fig. 19
timing model; the per-byte cost of those scattered transactions is the
``metadata_txn_cost`` calibration constant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import vec
from repro.errors import ConfigError
from repro.mem.cache import LruCacheCore
from repro.mem.metadata_cache import MetadataCache, MetadataKind
from repro.units import KiB

#: VNs per metadata line: 56-bit VN -> 8 per 64-byte line (Sec. 2.2).
VNS_PER_LINE = 8
#: MACs per metadata line: 56-bit MAC -> 8 per 64-byte line.
MACS_PER_LINE = 8
#: Merkle tree arity (8-ary, Table 1 baseline).
TREE_ARITY = 8


@dataclass(frozen=True)
class MetaTraffic:
    """Measured per-data-line metadata behaviour."""

    read_txns_per_line: float  # extra DRAM transactions per read line
    write_txns_per_line: float  # extra DRAM transactions per write line
    dependent_levels_per_read: float  # serialized tree-walk depth per read
    metadata_hit_rate: float

    def txns_per_line(self, write_fraction: float) -> float:
        """Blend read/write transaction rates."""
        if not 0 <= write_fraction <= 1:
            raise ConfigError("write fraction must be within [0, 1]")
        return (
            (1 - write_fraction) * self.read_txns_per_line
            + write_fraction * self.write_txns_per_line
        )


def tree_levels(protected_lines: int) -> int:
    """Merkle levels above the VN lines for a protected region."""
    vn_lines = max(1, protected_lines // VNS_PER_LINE)
    levels = 0
    width = vn_lines
    while width > 1:
        width = -(-width // TREE_ARITY)
        levels += 1
    return max(1, levels)


def measure_sgx_metadata(
    protected_bytes: int,
    sample_lines: int = 200_000,
    write_fraction: float = 0.45,
    metadata_cache_bytes: int = 32 * KiB,
    streams: int = 8,
) -> MetaTraffic:
    """Stream ``sample_lines`` data lines through the metadata cache.

    ``streams`` parallel sequential streams model the per-thread Adam shards;
    their interleaving is what defeats the 32 KB metadata cache at the upper
    tree levels for large protected regions.
    """
    if protected_bytes <= 0 or sample_lines <= 0:
        raise ConfigError("protected region and sample must be positive")
    protected_lines = protected_bytes // 64
    if protected_lines <= 0:
        raise ConfigError("protected region smaller than one cacheline")
    levels = tree_levels(protected_lines)
    if vec.enabled():
        return _measure_batched(
            protected_lines=protected_lines,
            levels=levels,
            sample_lines=sample_lines,
            write_fraction=write_fraction,
            metadata_cache_bytes=metadata_cache_bytes,
            streams=streams,
        )
    cache = MetadataCache(capacity_bytes=metadata_cache_bytes)

    # Interleave `streams` sequential walks, spread across the region. The
    # stride is de-aliased (odd offset per stream) — real shard bases are
    # not power-of-two aligned, and exact alignment would make all streams
    # collide in the same metadata-cache sets.
    stride = max(1, protected_lines // streams)
    read_txns = 0
    write_misses = 0
    dependent = 0
    reads = 0
    writes = 0
    per_stream = max(1, sample_lines // streams)
    writes_every = max(2, round(1.0 / max(write_fraction, 1e-6)))
    for position in range(per_stream):
        for stream in range(streams):
            line = (stream * stride + stream * 137 + position) % protected_lines
            vn_line = line // VNS_PER_LINE
            mac_line = line // MACS_PER_LINE
            reads += 1
            if not cache.access(MetadataKind.VN, vn_line):
                read_txns += 1
                # Walk the tree until a cached (already-verified) node.
                node = vn_line
                for level in range(1, levels + 1):
                    node //= TREE_ARITY
                    dependent += 1
                    if cache.access(MetadataKind.TREE, node, level=level):
                        break
                    read_txns += 1
            if not cache.access(MetadataKind.MAC, mac_line):
                read_txns += 1
            if position % writes_every == 0:
                writes += 1
                # Read-modify-write: metadata lines are dirtied in the cache
                # and written back on eviction (coalesced — 8 neighbouring
                # VNs share one line), so only fetch misses count here; the
                # write-back traffic is read off the cache stats below.
                if not cache.access(MetadataKind.VN, vn_line, write=True):
                    write_misses += 1
                if not cache.access(MetadataKind.MAC, mac_line, write=True):
                    write_misses += 1
                node = vn_line
                for level in range(1, levels + 1):
                    node //= TREE_ARITY
                    if not cache.access(MetadataKind.TREE, node, level=level, write=True):
                        write_misses += 1
                    break  # only the first tree level is touched eagerly
    writebacks = cache.stats.scope("cache")["writebacks"] + cache.flush()
    write_txns = write_misses + writebacks
    return MetaTraffic(
        read_txns_per_line=read_txns / max(1, reads),
        write_txns_per_line=write_txns / max(1, writes),
        dependent_levels_per_read=dependent / max(1, reads),
        metadata_hit_rate=cache.hit_rate,
    )


# Metadata keys in _measure_batched live in the MetadataCache synthetic
# *line-index* space: synthetic_addr // 64 = (kind*8 + level) << 34 + index,
# so the batched pass and the scalar MetadataCache reference see byte-for-byte
# the same set/tag stream.
_KEY_SHIFT = 34
_MAC_BASE = (MetadataKind.MAC.value * 8) << _KEY_SHIFT


def _measure_batched(
    protected_lines: int,
    levels: int,
    sample_lines: int,
    write_fraction: float,
    metadata_cache_bytes: int,
    streams: int,
) -> MetaTraffic:
    """Batched twin of the ``measure_sgx_metadata`` sampling loop.

    The address stream is precomputed as one NumPy expression; the LRU
    replay itself cannot vectorize (each access depends on the state the
    previous one left), so it runs as a tight loop over
    :class:`repro.mem.cache.LruCacheCore` — no ``Stats`` calls, no enum
    dispatch, no synthetic-address reconstruction per touch. Counter
    totals and resulting rates are bit-identical to the scalar reference.
    """
    np = vec.np
    stride = max(1, protected_lines // streams)
    per_stream = max(1, sample_lines // streams)
    writes_every = max(2, round(1.0 / max(write_fraction, 1e-6)))

    # Interleave-order address grid: position-major, stream-minor.
    pos = np.arange(per_stream, dtype=np.int64)[:, None]
    stream = np.arange(streams, dtype=np.int64)[None, :]
    line = (stream * stride + stream * 137 + pos) % protected_lines
    vn_lines = (line // VNS_PER_LINE).ravel().tolist()
    mac_lines = (line // MACS_PER_LINE).ravel().tolist()

    core = LruCacheCore.for_cache(metadata_cache_bytes, ways=8)
    sets = core.sets
    n_sets = core.n_sets
    ways = core.ways
    tree_base = [(MetadataKind.TREE.value * 8 + lvl) << _KEY_SHIFT for lvl in range(levels + 1)]
    tree_write_base = tree_base[1]

    # The loop below is the single hottest path of the whole repro run (the
    # Fig. 3/16/19 SGX baselines stream ~0.5M cache touches per call), so
    # the LruCacheCore.touch body is inlined at each touch site: a dict pop
    # + reinsert is move-to-end, next(iter(d)) is the LRU victim.
    hits = 0
    misses = 0
    evictions = 0
    writebacks = 0
    read_txns = 0
    write_misses = 0
    dependent = 0
    writes = 0
    i = 0
    for position in range(per_stream):
        is_write_position = position % writes_every == 0
        for _ in range(streams):
            vn_line = vn_lines[i]
            mac_line = mac_lines[i]
            i += 1
            # VN read.
            cache_set = sets[vn_line % n_sets]
            tag = vn_line // n_sets
            dirty = cache_set.pop(tag, None)
            if dirty is not None:
                cache_set[tag] = dirty
                hits += 1
            else:
                misses += 1
                if len(cache_set) >= ways:
                    if cache_set.pop(next(iter(cache_set))):
                        writebacks += 1
                    evictions += 1
                cache_set[tag] = False
                read_txns += 1
                # Walk the tree until a cached (already-verified) node.
                node = vn_line
                for level in range(1, levels + 1):
                    node //= TREE_ARITY
                    dependent += 1
                    key = tree_base[level] + node
                    cache_set = sets[key % n_sets]
                    tag = key // n_sets
                    dirty = cache_set.pop(tag, None)
                    if dirty is not None:
                        cache_set[tag] = dirty
                        hits += 1
                        break
                    misses += 1
                    if len(cache_set) >= ways:
                        if cache_set.pop(next(iter(cache_set))):
                            writebacks += 1
                        evictions += 1
                    cache_set[tag] = False
                    read_txns += 1
            # MAC read.
            key = _MAC_BASE + mac_line
            cache_set = sets[key % n_sets]
            tag = key // n_sets
            dirty = cache_set.pop(tag, None)
            if dirty is not None:
                cache_set[tag] = dirty
                hits += 1
            else:
                misses += 1
                if len(cache_set) >= ways:
                    if cache_set.pop(next(iter(cache_set))):
                        writebacks += 1
                    evictions += 1
                cache_set[tag] = False
                read_txns += 1
            if is_write_position:
                writes += 1
                # Read-modify-write VN / MAC / first tree level (dirtying).
                for key in (vn_line, _MAC_BASE + mac_line, tree_write_base + vn_line // TREE_ARITY):
                    cache_set = sets[key % n_sets]
                    tag = key // n_sets
                    dirty = cache_set.pop(tag, None)
                    if dirty is not None:
                        cache_set[tag] = True
                        hits += 1
                    else:
                        misses += 1
                        if len(cache_set) >= ways:
                            if cache_set.pop(next(iter(cache_set))):
                                writebacks += 1
                            evictions += 1
                        cache_set[tag] = True
                        write_misses += 1
    core.hits = hits
    core.misses = misses
    core.evictions = evictions
    core.writebacks = writebacks
    reads = per_stream * streams
    writebacks_total = writebacks + core.flush()
    write_txns = write_misses + writebacks_total
    total = hits + misses
    return MetaTraffic(
        read_txns_per_line=read_txns / max(1, reads),
        write_txns_per_line=write_txns / max(1, writes),
        dependent_levels_per_read=dependent / max(1, reads),
        metadata_hit_rate=hits / total if total else 0.0,
    )
