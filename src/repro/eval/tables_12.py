"""Tables 1 and 2 of the paper, regenerated from the live configuration."""

from __future__ import annotations

from repro.core.hw_cost import HardwareBudget
from repro.cpu.config import CpuConfig
from repro.eval.registry import experiment
from repro.eval.tables import ascii_table
from repro.npu.config import NpuConfig
from repro.units import KiB, MiB
from repro.workloads.models import MODEL_ZOO


@experiment("table1_config", tags=("paper", "table"), cost="fast", render=None)
def render_table1() -> str:
    cpu, npu = CpuConfig(), NpuConfig()
    rows = [
        ("CPU frequency", f"{cpu.freq_hz / 1e9:.1f} GHz"),
        ("CPU cores", f"{cpu.n_cores} out-of-order"),
        ("L3 cache", f"{cpu.l3_bytes // MiB} MiB"),
        ("CPU DRAM", f"{cpu.dram.name}, {cpu.dram.peak_bw / 1e9:.1f} GB/s"),
        ("Metadata cache", f"{cpu.metadata_cache_bytes // KiB} KiB"),
        ("AES latency", f"{cpu.aes_latency_cycles} cycles"),
        ("MAC latency", f"{cpu.mac_latency_cycles} cycles"),
        ("NPU frequency", f"{npu.freq_hz / 1e9:.1f} GHz"),
        ("PE array", f"{npu.pe_rows}x{npu.pe_cols}"),
        ("Scratchpad", f"{npu.scratchpad_bytes // MiB} MiB"),
        ("NPU DRAM", f"{npu.dram.name}, {npu.dram.peak_bw / 1e9:.0f} GB/s"),
        ("Comm bus", "PCIe 4.0 x16 (10 GB/s effective)"),
    ]
    return "Table 1 — system configuration\n\n" + ascii_table(["item", "value"], rows)


@experiment("table2_workloads", tags=("paper", "table"), cost="fast", render=None)
def render_table2() -> str:
    rows = [
        (m.name, f"{m.paper_params / 1e6:.0f}M", m.batch_size,
         f"{m.n_params / 1e6:.0f}M", m.n_layers, m.hidden)
        for m in MODEL_ZOO
    ]
    return "Table 2 — workloads\n\n" + ascii_table(
        ["model", "# params (paper)", "batch", "# params (derived)", "layers", "hidden"],
        rows,
    )


@experiment("hw_overhead", tags=("paper", "table"), cost="fast", render=None)
def render_hw_overhead() -> str:
    budget = HardwareBudget()
    rows = [(k, f"{v:.0f} B") for k, v in budget.components_bytes().items()]
    rows.append(("TOTAL", f"{budget.total_bytes:.0f} B = {budget.total_kib:.1f} KiB"))
    rows.append(("area @7nm", f"{budget.area_mm2:.4f} mm^2"))
    return (
        "Section 6.5 — hardware overhead\n"
        "(paper: ~24KB total, 0.0072 mm^2)\n\n"
        + ascii_table(["component", "cost"], rows)
    )
