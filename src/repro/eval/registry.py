"""Decorator-based experiment registry.

Every paper figure/table declares itself here instead of being imported by
name from a hard-coded list: a module decorates its ``run`` function with
:func:`experiment`, and the orchestrator (``repro.eval.orchestrator``),
CLI (``python -m repro``) and benchmark harness all discover it through the
shared :data:`REGISTRY`.

A registered experiment carries a name, free-form tags, a ``cost`` class
(one of :data:`COST_CLASSES` — the scheduler's static prior when no timing
history exists; see :mod:`repro.eval.cost`), and
a parameter schema introspected from the ``run`` signature. Execution pairs
the decorated function with a renderer resolved lazily from the same module
(by attribute name), so a module's natural ``run()`` / ``render()`` layout
registers without reordering its definitions.
"""

from __future__ import annotations

import dataclasses
import importlib
import inspect
import sys
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.eval.metrics import as_metrics

#: Modules that register experiments, in paper order. ``load_all`` imports
#: these; registration order defines the default run/list order.
EXPERIMENT_MODULES: Tuple[str, ...] = (
    "repro.eval.tables_12",
    "repro.eval.fig03_adam_slowdown",
    "repro.eval.fig04_tensor_stats",
    "repro.eval.fig05_breakdown",
    "repro.eval.fig16_overall",
    "repro.eval.fig17_breakdown",
    "repro.eval.fig18_hit_rate",
    "repro.eval.fig19_cpu_perf",
    "repro.eval.fig20_mac_granularity",
    "repro.eval.fig21_comm",
    "repro.eval.ablations",
    "repro.eval.scenarios",
)

#: Tag carried by the 12 experiments ``repro.eval.runner`` regenerated in
#: the original serial harness (every paper figure/table).
PAPER_TAG = "paper"

#: Tag carried by the parameterized off-design-point scenario experiments.
SCENARIO_TAG = "scenario"

#: Accepted ``cost`` classes, cheapest first. The class is only a static
#: prior: once an experiment has journal/manifest history, the learned
#: cost model (``repro.eval.cost``) predicts from recorded seconds.
COST_CLASSES = ("fast", "medium", "slow")

#: Annotation string -> accepted runtime types for simple scalar params
#: (``int`` accepts int where ``float`` is annotated, as Python does).
_SCALAR_ANNOTATIONS: Dict[str, tuple] = {
    "int": (int,),
    "float": (int, float),
    "str": (str,),
    "bool": (bool,),
}


def normalize_params(value: Any) -> Any:
    """Reduce a parameter value to a JSON-stable form for hashing/manifests.

    Dataclasses become field dicts, sequences become lists, scalars pass
    through, and anything else falls back to ``repr``.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: normalize_params(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return {"__dataclass__": type(value).__name__, **fields}
    if isinstance(value, (list, tuple)):
        return [normalize_params(v) for v in value]
    if isinstance(value, dict):
        return {str(k): normalize_params(v) for k, v in sorted(value.items())}
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    return repr(value)


@dataclass(frozen=True)
class ExperimentOutput:
    """What one experiment execution produced."""

    name: str
    result: Any  #: the run() return value (None for text-only experiments)
    text: str  #: the rendered artifact written to results/<name>.txt

    def summary(self) -> Optional[dict]:
        """A JSON-safe digest of the result, when it knows how to make one.

        Delegates to the :class:`repro.eval.metrics.Metrics` protocol:
        any result with an ``as_dict`` participates.
        """
        return as_metrics(self.result)


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment (a paper figure, table, or ablation)."""

    name: str
    func: Callable[..., Any]
    module: str
    renderer: Optional[str]  #: attribute in ``module``; None -> func returns text
    tags: Tuple[str, ...]
    cost: str  #: one of COST_CLASSES ("fast" | "medium" | "slow")
    description: str

    def param_schema(self) -> Dict[str, dict]:
        """``{param: {"default": ..., "required": bool, "annotation": ...}}``."""
        schema: Dict[str, dict] = {}
        for name, param in inspect.signature(self.func).parameters.items():
            if param.kind in (param.VAR_POSITIONAL, param.VAR_KEYWORD):
                continue
            required = param.default is inspect.Parameter.empty
            entry = {
                "required": required,
                "default": None if required else normalize_params(param.default),
            }
            if param.annotation is not inspect.Parameter.empty:
                entry["annotation"] = str(param.annotation)
            schema[name] = entry
        return schema

    def default_of(self, param: str) -> Any:
        """The raw (un-normalized) default value of one ``run`` parameter."""
        try:
            value = inspect.signature(self.func).parameters[param].default
        except KeyError:
            raise ConfigError(
                f"experiment {self.name!r} has no parameter {param!r}; "
                f"schema: {sorted(self.param_schema())}"
            ) from None
        if value is inspect.Parameter.empty:
            raise ConfigError(
                f"experiment {self.name!r}: parameter {param!r} has no default"
            )
        return value

    def validate_params(self, params: Dict[str, Any]) -> None:
        """Check overrides against the introspected schema.

        Rejects names ``run`` does not accept, and values whose type
        contradicts a simple scalar annotation (``int``/``float``/``str``/
        ``bool`` — richer annotations are not second-guessed). The sweep
        engine funnels every expanded matrix point through this before
        anything is scheduled.
        """
        schema = self.param_schema()
        unknown = sorted(set(params) - set(schema))
        if unknown:
            raise ConfigError(
                f"experiment {self.name!r} has no parameter(s) {unknown}; "
                f"schema: {sorted(schema)}"
            )
        for name, value in params.items():
            annotation = schema[name].get("annotation")
            expected = _SCALAR_ANNOTATIONS.get(annotation)
            if expected is None:
                continue
            ok = isinstance(value, expected)
            if bool not in expected and isinstance(value, bool):
                ok = False  # bool passes isinstance(int) but isn't an int here
            if not ok:
                raise ConfigError(
                    f"experiment {self.name!r}: parameter {name!r} expects "
                    f"{annotation}, got {type(value).__name__} ({value!r})"
                )

    def execute(self, **params: Any) -> ExperimentOutput:
        """Run the experiment and render its artifact text."""
        self.validate_params(params)
        result = self.func(**params)
        if self.renderer is None:
            return ExperimentOutput(name=self.name, result=None, text=str(result))
        render = getattr(sys.modules[self.module], self.renderer)
        return ExperimentOutput(name=self.name, result=result, text=render(result))


class ExperimentRegistry:
    """Name -> :class:`ExperimentSpec`, in canonical (paper) order.

    Listing order follows :data:`EXPERIMENT_MODULES` and, within a module,
    registration order — independent of which module happened to be
    imported first in the process.
    """

    def __init__(self) -> None:
        self._specs: Dict[str, ExperimentSpec] = {}
        self._sequence: Dict[str, int] = {}
        self._loaded = False
        self._load_lock = threading.Lock()

    def _order_key(self, spec: ExperimentSpec) -> Tuple[int, int]:
        try:
            module_rank = EXPERIMENT_MODULES.index(spec.module)
        except ValueError:
            module_rank = len(EXPERIMENT_MODULES)
        return (module_rank, self._sequence.get(spec.name, len(self._sequence)))

    def register(self, spec: ExperimentSpec) -> ExperimentSpec:
        if spec.name in self._specs:
            existing = self._specs[spec.name]
            raise ConfigError(
                f"duplicate experiment name {spec.name!r}: already registered "
                f"by {existing.module}, re-registered by {spec.module}"
            )
        if spec.cost not in COST_CLASSES:
            raise ConfigError(
                f"experiment {spec.name!r}: cost must be one of "
                f"{'/'.join(COST_CLASSES)}, got {spec.cost!r}"
            )
        self._sequence[spec.name] = len(self._sequence)
        self._specs[spec.name] = spec
        return spec

    def load_all(self) -> "ExperimentRegistry":
        """Import every experiment module (idempotent) and return self.

        A module that is already imported but has no specs here (the
        registry was cleared) is reloaded so its decorators re-register.
        Thread-safe: concurrent first callers (serve handler threads
        validating submissions) serialize on one load instead of racing
        a reload into duplicate registrations.
        """
        if self._loaded:
            return self
        with self._load_lock:
            if self._loaded:
                return self
            registered = {spec.module for spec in self._specs.values()}
            for module in EXPERIMENT_MODULES:
                needs_rerun = (
                    self is REGISTRY
                    and module in sys.modules
                    and module not in registered
                )
                if needs_rerun:
                    importlib.reload(sys.modules[module])
                else:
                    importlib.import_module(module)
            self._loaded = True
        return self

    def get(self, name: str) -> ExperimentSpec:
        self.load_all()
        try:
            return self._specs[name]
        except KeyError:
            known = ", ".join(sorted(self._specs))
            raise ConfigError(f"unknown experiment {name!r}; known: {known}") from None

    def names(self) -> List[str]:
        return [spec.name for spec in self.specs()]

    def specs(self) -> List[ExperimentSpec]:
        self.load_all()
        return sorted(self._specs.values(), key=self._order_key)

    def select(
        self,
        only: Optional[Sequence[str]] = None,
        tags: Optional[Iterable[str]] = None,
    ) -> List[ExperimentSpec]:
        """Subset by explicit names and/or required tags, registry order.

        ``only`` entries are validated (unknown names raise) and the result
        keeps registry order regardless of the order names were given in.
        """
        chosen = self.specs()
        if only is not None:
            wanted = {self.get(name).name for name in only}
            chosen = [s for s in chosen if s.name in wanted]
        if tags:
            required = set(tags)
            chosen = [s for s in chosen if required.issubset(s.tags)]
        return chosen

    def clear(self) -> None:
        """Drop all registrations (test isolation only)."""
        self._specs.clear()
        self._sequence.clear()
        self._loaded = False


#: The process-wide registry all eval modules register into.
REGISTRY = ExperimentRegistry()


def experiment(
    name: str,
    *,
    tags: Sequence[str] = (),
    cost: str = "fast",
    render: Optional[str] = "render",
    description: Optional[str] = None,
    registry: Optional[ExperimentRegistry] = None,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Register the decorated ``run``-style function as an experiment.

    ``render`` names the renderer attribute looked up in the function's own
    module at execution time (pass ``None`` when the function already
    returns the artifact text).
    """

    def wrap(func: Callable[..., Any]) -> Callable[..., Any]:
        doc = description
        if doc is None:
            doc = inspect.getdoc(sys.modules[func.__module__]) or ""
            doc = doc.splitlines()[0] if doc else ""
        (registry or REGISTRY).register(
            ExperimentSpec(
                name=name,
                func=func,
                module=func.__module__,
                renderer=render,
                tags=tuple(tags),
                cost=cost,
                description=doc,
            )
        )
        return func

    return wrap
