"""Declarative parameter-sweep and scenario-matrix engine.

A *sweep spec* — a Python dict or a TOML file under ``sweeps/`` — names a
registered experiment, axes of parameter values, and the metrics to pull
out of each point's result summary::

    [sweep]
    name = "mac_policy"
    experiment = "mac_policy"
    mode = "grid"                      # or "zip"

    [[sweep.axes]]
    param = "granule_bytes"            # dotted paths reach dataclass fields
    values = [64, 256, 1024, 4096]

    [[sweep.axes]]
    param = "policy"
    values = ["eager", "delayed"]

    [[sweep.metrics]]
    name = "perf"
    path = "perf_overhead"             # dotted path into the summary

The engine expands the matrix (``grid`` = cross product in axis order,
``zip`` = position-wise), validates every point against the experiment's
introspected parameter schema, schedules all points through the
process-pool orchestrator — so points run in parallel and re-runs are
served from the content-hash cache — and consolidates the results into
``results/sweeps/<name>/sweep.json`` plus a ``sweep.csv`` table (one row
per point: axis values, status, metrics).

An axis ``param`` may use a dotted path (``config.meta_table_capacity``)
to sweep one field of a dataclass-typed parameter; the remaining fields
keep the experiment's default (or the spec's ``base`` override).
"""

from __future__ import annotations

import csv
import dataclasses
import datetime
import itertools
import json
import os
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.eval.orchestrator import (
    STATUS_CACHED,
    Orchestrator,
    PointRequest,
    RunReport,
)
from repro.eval.registry import REGISTRY, ExperimentSpec, normalize_params
from repro.eval.tables import ascii_table, results_dir

#: ``sweep.json`` layout version; bump on breaking changes.
SWEEP_SCHEMA = 1

MODE_GRID = "grid"
MODE_ZIP = "zip"
MODES = (MODE_GRID, MODE_ZIP)

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]*$")


@dataclass(frozen=True)
class Axis:
    """One swept parameter (dotted path) and its values, in sweep order."""

    param: str
    values: Tuple[Any, ...]

    @property
    def short(self) -> str:
        """Column/point-id label: the last path segment."""
        return self.param.rpartition(".")[2]


@dataclass(frozen=True)
class MetricSpec:
    """One derived metric: a dotted path into the point's result summary."""

    name: str
    path: str


@dataclass(frozen=True)
class SweepSpec:
    """A validated sweep definition (see the module docstring)."""

    name: str
    experiment: str
    axes: Tuple[Axis, ...]
    mode: str = MODE_GRID
    base: Mapping[str, Any] = field(default_factory=dict)
    metrics: Tuple[MetricSpec, ...] = ()
    description: str = ""
    seed: int = 0

    def n_points(self) -> int:
        if self.mode == MODE_ZIP:
            return len(self.axes[0].values)
        count = 1
        for axis in self.axes:
            count *= len(axis.values)
        return count


@dataclass(frozen=True)
class SweepPoint:
    """One expanded matrix point, ready to schedule."""

    index: int
    point_id: str  #: "granule_bytes=64,policy=eager" (axis order)
    coords: Dict[str, Any]  #: axis param (full dotted path) -> value
    params: Dict[str, Any]  #: resolved ``run()`` keyword overrides


# -- spec construction --------------------------------------------------------


def _slug(value: Any) -> str:
    text = str(value)
    return re.sub(r"[^A-Za-z0-9_.+-]", "-", text) or "none"


def spec_from_dict(raw: Mapping[str, Any], origin: str = "<dict>") -> SweepSpec:
    """Build and validate a :class:`SweepSpec` from a plain mapping.

    The mapping is the ``[sweep]`` table of the TOML layout; Python callers
    pass the same shape directly.
    """

    def fail(message: str) -> ConfigError:
        return ConfigError(f"sweep spec {origin}: {message}")

    if not isinstance(raw, Mapping):
        raise fail(f"expected a mapping, got {type(raw).__name__}")
    known_keys = {"name", "experiment", "mode", "base", "axes", "metrics", "description", "seed"}
    unknown = sorted(set(raw) - known_keys)
    if unknown:
        raise fail(f"unknown key(s) {unknown}; known: {sorted(known_keys)}")
    name = raw.get("name")
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise fail(f"'name' must be a filename-safe string, got {name!r}")
    experiment = raw.get("experiment")
    if not isinstance(experiment, str) or not experiment:
        raise fail("'experiment' must name a registered experiment")
    mode = raw.get("mode", MODE_GRID)
    if mode not in MODES:
        raise fail(f"'mode' must be one of {MODES}, got {mode!r}")
    base = raw.get("base", {})
    if not isinstance(base, Mapping):
        raise fail("'base' must be a table of parameter defaults")
    axes_raw = raw.get("axes")
    if not isinstance(axes_raw, Sequence) or not axes_raw:
        raise fail("'axes' must be a non-empty array of {param, values} tables")
    axes: List[Axis] = []
    for i, entry in enumerate(axes_raw):
        if not isinstance(entry, Mapping) or set(entry) != {"param", "values"}:
            raise fail(f"axes[{i}] must be a table with exactly 'param' and 'values'")
        param = entry["param"]
        values = entry["values"]
        if not isinstance(param, str) or not param:
            raise fail(f"axes[{i}].param must be a non-empty string")
        if not isinstance(values, Sequence) or isinstance(values, (str, bytes)) or not values:
            raise fail(f"axes[{i}].values must be a non-empty array")
        axes.append(Axis(param=param, values=tuple(values)))
    params = [axis.param for axis in axes]
    dupes = sorted({p for p in params if params.count(p) > 1})
    if dupes:
        raise fail(f"duplicate axis param(s) {dupes}")
    if mode == MODE_ZIP:
        lengths = {len(axis.values) for axis in axes}
        if len(lengths) > 1:
            raise fail(f"zip mode needs equal-length axes, got lengths {sorted(lengths)}")
    metrics_raw = raw.get("metrics", ())
    metrics: List[MetricSpec] = []
    if not isinstance(metrics_raw, Sequence):
        raise fail("'metrics' must be an array of {name, path} tables")
    for i, entry in enumerate(metrics_raw):
        if not isinstance(entry, Mapping) or set(entry) != {"name", "path"}:
            raise fail(f"metrics[{i}] must be a table with exactly 'name' and 'path'")
        if not entry["name"] or not entry["path"]:
            raise fail(f"metrics[{i}]: 'name' and 'path' must be non-empty")
        metrics.append(MetricSpec(name=str(entry["name"]), path=str(entry["path"])))
    metric_names = [m.name for m in metrics]
    if len(metric_names) != len(set(metric_names)):
        raise fail(f"duplicate metric name(s) in {metric_names}")
    seed = raw.get("seed", 0)
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise fail(f"'seed' must be an integer, got {seed!r}")
    for axis in axes:
        slugs = [_slug(v) for v in axis.values]
        dupes = sorted({s for s in slugs if slugs.count(s) > 1})
        if dupes:
            raise fail(f"axis {axis.param!r} has duplicate values {dupes}")
    spec = SweepSpec(
        name=name,
        experiment=experiment,
        axes=tuple(axes),
        mode=mode,
        base=dict(base),
        metrics=tuple(metrics),
        description=str(raw.get("description", "")),
        seed=seed,
    )
    _validate_spec_params(spec)
    return spec


def _validate_spec_params(spec: SweepSpec) -> None:
    """Check base + every axis value against the experiment's schema.

    Per-value validation (O(sum of axis lengths)) gives the same name and
    scalar-type guarantees as expanding the whole matrix would, without
    materializing a potentially huge cross product just to parse a spec.
    """
    experiment = REGISTRY.get(spec.experiment)
    context = f"sweep {spec.name!r}"
    base_params: Dict[str, Any] = {}
    for param, value in spec.base.items():
        _apply_param(experiment, base_params, param, value, context)
    experiment.validate_params(base_params)
    for axis in spec.axes:
        for value in axis.values:
            point = dict(base_params)
            _apply_param(experiment, point, axis.param, value, context)
            experiment.validate_params(point)


def sweeps_dir() -> str:
    """The directory spec files live in (repo-level ``sweeps/``).

    ``REPRO_SWEEPS_DIR`` overrides it — tests and CI shards point it at
    scratch trees.
    """
    override = os.environ.get("REPRO_SWEEPS_DIR")
    if override:
        return override
    here = os.path.dirname(os.path.abspath(__file__))
    repo = os.path.abspath(os.path.join(here, "..", "..", ".."))
    return os.path.join(repo, "sweeps")


def available_specs() -> List[str]:
    """Spec names shipped in :func:`sweeps_dir` (sorted, extension-less)."""
    root = sweeps_dir()
    if not os.path.isdir(root):
        return []
    return sorted(name[: -len(".toml")] for name in os.listdir(root) if name.endswith(".toml"))


def load_spec(ref: str) -> SweepSpec:
    """Load a spec from a TOML path or a name under :func:`sweeps_dir`."""
    candidates = [ref]
    if not ref.endswith(".toml"):
        candidates.append(os.path.join(sweeps_dir(), f"{ref}.toml"))
    path = next((c for c in candidates if os.path.isfile(c)), None)
    if path is None:
        known = ", ".join(available_specs()) or "(none)"
        raise ConfigError(f"no sweep spec {ref!r}; known specs: {known}")
    try:
        with open(path, "r", encoding="utf-8") as f:
            text = f.read()
    except OSError as exc:
        raise ConfigError(f"cannot read sweep spec {path!r}: {exc}") from exc
    document = _loads_toml(text, origin=path)
    table = document.get("sweep")
    if not isinstance(table, dict):
        raise ConfigError(f"sweep spec {path!r}: missing [sweep] table")
    return spec_from_dict(table, origin=path)


def _loads_toml(text: str, origin: str) -> Dict[str, Any]:
    """Parse TOML via stdlib ``tomllib``, or the subset parser on 3.10.

    ``tomllib`` landed in Python 3.11; this package supports 3.10 without
    third-party dependencies, so older interpreters fall back to
    :func:`_parse_toml_subset`, which covers exactly the constructs the
    sweep-spec layout uses.
    """
    try:
        import tomllib
    except ImportError:
        return _parse_toml_subset(text, origin)
    try:
        return tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise ConfigError(f"cannot parse sweep spec {origin!r}: {exc}") from exc


def _parse_toml_subset(text: str, origin: str) -> Dict[str, Any]:
    """Minimal TOML reader for sweep specs (the Python 3.10 fallback).

    Supports what the spec layout needs: ``[dotted.tables]``,
    ``[[arrays.of.tables]]``, bare keys, basic strings, integers, floats,
    booleans, and (multi-line) arrays of those scalars. Comments start at
    an unquoted ``#``. Anything fancier is a clear error naming the line.
    """

    def fail(lineno: int, message: str) -> ConfigError:
        return ConfigError(
            f"cannot parse sweep spec {origin!r} (line {lineno}): {message} "
            "(3.10 subset parser — use tomllib-compatible constructs)"
        )

    def strip_comment(line: str, lineno: int) -> str:
        out = []
        in_string = False
        for ch in line:
            if ch == '"':
                in_string = not in_string
            if ch == "#" and not in_string:
                break
            out.append(ch)
        if in_string:
            raise fail(lineno, "unterminated string")
        return "".join(out).strip()

    def parse_scalar(token: str, lineno: int) -> Any:
        if token.startswith('"'):
            if len(token) < 2 or not token.endswith('"') or "\\" in token:
                raise fail(lineno, f"unsupported string syntax {token!r}")
            return token[1:-1]
        if token in ("true", "false"):
            return token == "true"
        try:
            return int(token, 10)
        except ValueError:
            pass
        try:
            return float(token)
        except ValueError:
            raise fail(lineno, f"unsupported value {token!r}") from None

    def split_items(body: str, lineno: int) -> List[str]:
        items, buf, in_string = [], [], False
        for ch in body:
            if ch == '"':
                in_string = not in_string
            if ch == "," and not in_string:
                items.append("".join(buf).strip())
                buf = []
            else:
                buf.append(ch)
        tail = "".join(buf).strip()
        if tail:
            items.append(tail)
        return [item for item in items if item]

    def parse_value(token: str, lineno: int) -> Any:
        if token.startswith("["):
            if not token.endswith("]"):
                raise fail(lineno, "unterminated array")
            return [parse_scalar(i, lineno) for i in split_items(token[1:-1], lineno)]
        return parse_scalar(token, lineno)

    def descend(dotted: str, lineno: int, append: bool) -> Dict[str, Any]:
        node: Any = root
        parts = dotted.split(".")
        for part in parts[:-1]:
            node = node.setdefault(part, {})
            if isinstance(node, list):
                node = node[-1]
            if not isinstance(node, dict):
                raise fail(lineno, f"{part!r} is not a table")
        leaf = parts[-1]
        if append:
            array = node.setdefault(leaf, [])
            if not isinstance(array, list):
                raise fail(lineno, f"{leaf!r} is not an array of tables")
            array.append({})
            return array[-1]
        table = node.setdefault(leaf, {})
        if not isinstance(table, dict):
            raise fail(lineno, f"{leaf!r} is not a table")
        return table

    root: Dict[str, Any] = {}
    current = root
    pending: Optional[Tuple[str, List[str], int]] = None  # key, chunks, start line
    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        line = strip_comment(raw_line, lineno)
        if pending is not None:
            key, chunks, start = pending
            chunks.append(line)
            joined = " ".join(chunks)
            if joined.count("[") == joined.count("]"):
                current[key] = parse_value(joined, start)
                pending = None
            continue
        if not line:
            continue
        if line.startswith("[[") and line.endswith("]]"):
            current = descend(line[2:-2].strip(), lineno, append=True)
        elif line.startswith("[") and line.endswith("]"):
            current = descend(line[1:-1].strip(), lineno, append=False)
        elif "=" in line:
            key, _, value = line.partition("=")
            key, value = key.strip(), value.strip()
            if not _NAME_RE.match(key):
                raise fail(lineno, f"unsupported key {key!r}")
            if value.startswith("[") and value.count("[") != value.count("]"):
                pending = (key, [value], lineno)  # multi-line array
                continue
            current[key] = parse_value(value, lineno)
        else:
            raise fail(lineno, f"cannot parse {line!r}")
    if pending is not None:
        raise fail(pending[2], "unterminated multi-line array")
    return root


# -- expansion ----------------------------------------------------------------


def _replace_field(owner: Any, path: str, value: Any, context: str) -> Any:
    """Return ``owner`` with the dotted ``path`` field replaced by ``value``."""
    if not dataclasses.is_dataclass(owner) or isinstance(owner, type):
        raise ConfigError(
            f"{context}: cannot reach {path!r} inside non-dataclass "
            f"{type(owner).__name__}"
        )
    head, _, rest = path.partition(".")
    names = {f.name for f in dataclasses.fields(owner)}
    if head not in names:
        raise ConfigError(
            f"{context}: {type(owner).__name__} has no field {head!r}; "
            f"fields: {sorted(names)}"
        )
    new = value if not rest else _replace_field(getattr(owner, head), rest, value, context)
    return dataclasses.replace(owner, **{head: new})


def _apply_param(
    spec: ExperimentSpec, params: Dict[str, Any], path: str, value: Any, context: str
) -> None:
    """Set one (possibly dotted) parameter path on a point's overrides."""
    head, _, rest = path.partition(".")
    if not rest:
        params[head] = value
        return
    owner = params.get(head, spec.default_of(head))
    params[head] = _replace_field(owner, rest, value, context=f"{context}: {path!r}")


def effective_axes(spec: SweepSpec, quick: bool = False) -> Tuple[Axis, ...]:
    """The axes a run actually sweeps (``quick`` keeps two values each)."""
    if not quick:
        return spec.axes
    return tuple(Axis(a.param, a.values[:2]) for a in spec.axes)


def expand(spec: SweepSpec, quick: bool = False, limit: Optional[int] = None) -> List[SweepPoint]:
    """Expand the matrix into validated :class:`SweepPoint` rows.

    ``quick`` truncates every axis to its first two values (the CI smoke
    shape); ``limit`` caps the expanded point count.
    """
    experiment = REGISTRY.get(spec.experiment)
    axes = effective_axes(spec, quick=quick)
    if spec.mode == MODE_ZIP:
        combos = list(zip(*(axis.values for axis in axes)))
    else:
        combos = list(itertools.product(*(axis.values for axis in axes)))
    if limit is not None:
        if limit <= 0:
            raise ConfigError(f"limit must be positive, got {limit}")
        combos = combos[:limit]
    points: List[SweepPoint] = []
    for index, combo in enumerate(combos):
        context = f"sweep {spec.name!r} point {index}"
        params: Dict[str, Any] = {}
        for param, value in spec.base.items():
            _apply_param(experiment, params, param, value, context)
        coords: Dict[str, Any] = {}
        for axis, value in zip(axes, combo):
            coords[axis.param] = value
            _apply_param(experiment, params, axis.param, value, context)
        experiment.validate_params(params)
        point_id = ",".join(f"{axis.short}={_slug(value)}" for axis, value in zip(axes, combo))
        points.append(SweepPoint(index=index, point_id=point_id, coords=coords, params=params))
    ids = [p.point_id for p in points]
    if len(ids) != len(set(ids)):
        dupes = sorted({i for i in ids if ids.count(i) > 1})
        raise ConfigError(f"sweep {spec.name!r}: duplicate point id(s) {dupes}")
    return points


# -- metric extraction --------------------------------------------------------


def extract_metric(summary: Any, path: str) -> Any:
    """Resolve a dotted path (dict keys / list indices) in a summary.

    Returns None when any segment is missing — a point whose experiment
    has no ``as_dict`` simply yields empty metrics.
    """
    node = summary
    for segment in path.split("."):
        if isinstance(node, Mapping):
            if segment not in node:
                return None
            node = node[segment]
        elif isinstance(node, Sequence) and not isinstance(node, (str, bytes)):
            try:
                node = node[int(segment)]
            except (ValueError, IndexError):
                return None
        else:
            return None
    return node


# -- execution ----------------------------------------------------------------


@dataclass
class SweepResult:
    """Everything one sweep invocation produced.

    ``axes`` are the *effective* (possibly ``--quick``-truncated) axes of
    this run — the document records what was actually swept, never the
    spec's full value lists when they differ.
    """

    spec: SweepSpec
    points: List[SweepPoint]
    report: RunReport
    out_dir: str
    axes: Tuple[Axis, ...] = ()
    quick: bool = False
    limit: Optional[int] = None
    json_path: Optional[str] = None
    csv_path: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.axes:
            self.axes = self.spec.axes

    @property
    def ok(self) -> bool:
        return self.report.ok

    def point_records(self) -> List[dict]:
        """One consolidated record per point (the ``sweep.json`` rows)."""
        records = []
        for point, run in zip(self.points, self.report.runs):
            metrics = {m.name: extract_metric(run.summary, m.path) for m in self.spec.metrics}
            records.append(
                {
                    "point": point.point_id,
                    "index": point.index,
                    "coords": {k: normalize_params(v) for k, v in point.coords.items()},
                    "params": run.params,
                    "status": run.status,
                    "cached": run.status == STATUS_CACHED,
                    "elapsed_s": round(run.elapsed_s, 6),
                    "seed": run.seed,
                    "cache_key": run.cache_key,
                    "artifact": run.artifact,
                    "error": run.error,
                    "metrics": metrics,
                }
            )
        return records

    def document(self) -> dict:
        """The full ``sweep.json`` payload."""
        return {
            "schema": SWEEP_SCHEMA,
            "kind": "repro-sweep",
            "sweep": self.spec.name,
            "experiment": self.spec.experiment,
            "description": self.spec.description,
            "mode": self.spec.mode,
            "generated_at": datetime.datetime.now(datetime.timezone.utc).isoformat(),
            "seed": self.spec.seed,
            "jobs": self.report.jobs,
            "cache_enabled": self.report.cache_enabled,
            "quick": self.quick,
            "limit": self.limit,
            "source_digest": self.report.source_digest,
            "wall_s": round(self.report.wall_s, 6),
            "counts": self.report.counts(),
            "axes": [
                {"param": a.param, "values": [normalize_params(v) for v in a.values]}
                for a in self.axes
            ],
            "base": normalize_params(dict(self.spec.base)),
            "metrics": [{"name": m.name, "path": m.path} for m in self.spec.metrics],
            "points": self.point_records(),
        }

    def table(self) -> str:
        """ASCII table of the matrix: axis values x metrics per point."""
        headers = [a.short for a in self.axes]
        headers += ["status"] + [m.name for m in self.spec.metrics]
        rows = []
        for point, record in zip(self.points, self.point_records()):
            row = [point.coords[a.param] for a in self.axes]
            row.append(record["status"])
            for metric in self.spec.metrics:
                value = record["metrics"].get(metric.name)
                row.append(_format_cell(value))
            rows.append(row)
        title = f"Sweep {self.spec.name} — {self.spec.experiment} over {len(rows)} points"
        if self.spec.description:
            title += f"\n{self.spec.description}"
        return title + "\n\n" + ascii_table(headers, rows)

    def write(self) -> Tuple[str, str]:
        """Persist ``sweep.json`` + ``sweep.csv``; returns their paths."""
        os.makedirs(self.out_dir, exist_ok=True)
        json_path = os.path.join(self.out_dir, "sweep.json")
        tmp = json_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as f:
            json.dump(self.document(), f, indent=2)
            f.write("\n")
        os.replace(tmp, json_path)
        csv_path = os.path.join(self.out_dir, "sweep.csv")
        with open(csv_path, "w", encoding="utf-8", newline="") as f:
            writer = csv.writer(f)
            header = ["point"] + [a.short for a in self.axes]
            header += ["status", "cached", "elapsed_s"]
            header += [m.name for m in self.spec.metrics]
            writer.writerow(header)
            for point, record in zip(self.points, self.point_records()):
                row: List[Any] = [point.point_id]
                row += [point.coords[a.param] for a in self.axes]
                row += [record["status"], record["cached"], record["elapsed_s"]]
                row += [record["metrics"].get(m.name) for m in self.spec.metrics]
                writer.writerow(row)
        self.json_path = json_path
        self.csv_path = csv_path
        return json_path, csv_path


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return "-" if value is None else str(value)


def run_sweep(
    spec: SweepSpec,
    jobs: Optional[int] = None,
    use_cache: bool = True,
    quick: bool = False,
    limit: Optional[int] = None,
    verbose: bool = True,
    write: bool = True,
) -> SweepResult:
    """Expand ``spec`` and run every point through the orchestrator.

    Points are scheduled on the shared process pool with content-hash
    caching, so an unchanged re-run is all cache hits; each point's
    rendered artifact lands under ``results/sweeps/<name>/points/`` and
    the per-point manifest next to the consolidated ``sweep.json``.
    """
    points = expand(spec, quick=quick, limit=limit)
    prefix = f"sweeps/{spec.name}/points"
    requests = [
        PointRequest(
            experiment=spec.experiment,
            params=point.params,
            label=f"{prefix}/{point.point_id}",
        )
        for point in points
    ]
    out_dir = os.path.join(results_dir(), "sweeps", spec.name)
    os.makedirs(out_dir, exist_ok=True)
    orchestrator = Orchestrator(jobs=jobs, use_cache=use_cache, run_seed=spec.seed, verbose=verbose)
    report = orchestrator.run_points(
        requests,
        write_manifest=True,
        manifest_path=os.path.join(out_dir, "manifest.json"),
    )
    result = SweepResult(
        spec=spec,
        points=points,
        report=report,
        out_dir=out_dir,
        axes=effective_axes(spec, quick=quick),
        quick=quick,
        limit=limit,
    )
    if write:
        result.write()
    return result
