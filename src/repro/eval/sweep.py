"""Declarative parameter-sweep and scenario-matrix engine.

A *sweep spec* — a Python dict or a TOML file under ``sweeps/`` — names a
registered experiment, axes of parameter values, and the metrics to pull
out of each point's result summary::

    [sweep]
    name = "mac_policy"
    experiment = "mac_policy"
    mode = "grid"                      # or "zip"

    [[sweep.axes]]
    param = "granule_bytes"            # dotted paths reach dataclass fields
    values = [64, 256, 1024, 4096]

    [[sweep.axes]]
    param = "policy"
    values = ["eager", "delayed"]

    [[sweep.metrics]]
    name = "perf"
    path = "perf_overhead"             # dotted path into the summary

The engine expands the matrix (``grid`` = cross product in axis order,
``zip`` = position-wise), validates every point against the experiment's
introspected parameter schema, schedules all points through the
process-pool orchestrator — so points run in parallel and re-runs are
served from the content-hash cache — and consolidates the results into
``results/sweeps/<name>/sweep.json`` plus a ``sweep.csv`` table (one row
per point: axis values, status, metrics).

An axis ``param`` may use a dotted path (``config.meta_table_capacity``)
to sweep one field of a dataclass-typed parameter; the remaining fields
keep the experiment's default (or the spec's ``base`` override).
"""

from __future__ import annotations

import csv
import dataclasses
import datetime
import itertools
import json
import os
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.eval import cache as result_cache
from repro.eval import schedule as schedule_mod
from repro.eval.cost import CostModel
from repro.eval.journal import (
    JOURNAL_SCHEMA,
    JournalView,
    PointRecord,
    RunJournal,
    read_journal,
)
from repro.eval.orchestrator import (
    STATUS_CACHED,
    STATUS_EXECUTED,
    STATUS_FAILED,
    Orchestrator,
    PointRequest,
    RunReport,
    derive_seed,
)
from repro.eval.metrics import extract_metric
from repro.eval.registry import REGISTRY, ExperimentSpec, normalize_params
from repro.eval.tables import ascii_table, results_dir
from repro.schema import check_schema_version

#: ``sweep.json`` layout version; bump on breaking changes.
#: 1 -> 2: explicit ``schema_version`` field (readers refuse other versions
#: via :func:`repro.schema.check_schema_version` instead of KeyError-ing).
SWEEP_SCHEMA = 2

#: How to re-record a sweep document that fails the version check.
_SWEEP_REFRESH_HINT = "Re-run the sweep (`python -m repro sweep run <name>`)."

MODE_GRID = "grid"
MODE_ZIP = "zip"
MODES = (MODE_GRID, MODE_ZIP)

#: Shard-partition strategies for ``sweep run``. Round-robin is the
#: default because it is a pure function of the expansion order — every
#: machine computes the same slices with no shared state. ``cost``
#: partitions by predicted seconds (see :mod:`repro.eval.schedule`) and
#: is only deterministic for a fixed results-tree history.
BALANCE_ROUND_ROBIN = "round-robin"
BALANCE_COST = "cost"
BALANCES = (BALANCE_ROUND_ROBIN, BALANCE_COST)

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]*$")


class NoJournalError(ConfigError):
    """``sweep status`` found no journal at all: the sweep never ran.

    A distinct class (and a distinct CLI exit code) so automation can
    tell "nothing has ever run" apart from an incomplete run reporting
    pending points — the two look identical in a plain status count.
    """


@dataclass(frozen=True)
class Axis:
    """One swept parameter (dotted path) and its values, in sweep order."""

    param: str
    values: Tuple[Any, ...]

    @property
    def short(self) -> str:
        """Column/point-id label: the last path segment."""
        return self.param.rpartition(".")[2]


@dataclass(frozen=True)
class MetricSpec:
    """One derived metric: a dotted path into the point's result summary."""

    name: str
    path: str


@dataclass(frozen=True)
class SweepSpec:
    """A validated sweep definition (see the module docstring)."""

    name: str
    experiment: str
    axes: Tuple[Axis, ...]
    mode: str = MODE_GRID
    base: Mapping[str, Any] = field(default_factory=dict)
    metrics: Tuple[MetricSpec, ...] = ()
    description: str = ""
    seed: int = 0

    def n_points(self) -> int:
        if self.mode == MODE_ZIP:
            return len(self.axes[0].values)
        count = 1
        for axis in self.axes:
            count *= len(axis.values)
        return count


@dataclass(frozen=True)
class SweepPoint:
    """One expanded matrix point, ready to schedule."""

    index: int
    point_id: str  #: "granule_bytes=64,policy=eager" (axis order)
    coords: Dict[str, Any]  #: axis param (full dotted path) -> value
    params: Dict[str, Any]  #: resolved ``run()`` keyword overrides


@dataclass(frozen=True)
class Shard:
    """One slice of a sweep matrix: shard ``index`` of ``count`` (1-based)."""

    index: int
    count: int

    @property
    def tag(self) -> str:
        """Directory name of this shard's output tree, e.g. ``1of4``."""
        return f"{self.index}of{self.count}"

    def as_dict(self) -> dict:
        return {"index": self.index, "count": self.count}


def parse_shard(text: str) -> Shard:
    """Parse a CLI ``K/N`` shard selector (1-based, ``1 <= K <= N``)."""
    match = re.match(r"^(\d+)/(\d+)$", text.strip())
    if not match:
        raise ConfigError(f"shard must look like K/N (e.g. 2/4), got {text!r}")
    index, count = int(match.group(1)), int(match.group(2))
    if count < 1 or not 1 <= index <= count:
        raise ConfigError(f"shard index must satisfy 1 <= K <= N, got {index}/{count}")
    return Shard(index=index, count=count)


def shard_points(points: Sequence[SweepPoint], shard: Optional[Shard]) -> List[SweepPoint]:
    """Deterministic round-robin partition of the expanded matrix.

    Point ``i`` belongs to shard ``(i % count) + 1``; the partition is a
    pure function of the expansion order, so any machine expanding the
    same spec computes the same disjoint, complete slices.
    """
    if shard is None:
        return list(points)
    return [p for p in points if p.index % shard.count == shard.index - 1]


def shard_points_cost(
    points: Sequence[SweepPoint],
    shard: Optional[Shard],
    spec: SweepSpec,
    model: CostModel,
) -> List[SweepPoint]:
    """Cost-balanced partition: shard ``K`` is slot ``K-1`` of the solve.

    The solver bin-packs the whole matrix onto ``count`` slots by
    predicted seconds (never worse than round-robin — see
    :func:`repro.eval.schedule.solve_assignment`), so a skewed matrix
    stops putting all its slow points on one machine. Matrix order is
    preserved within each shard. The slices are still disjoint and
    complete, so ``sweep merge`` consolidates them unchanged — but they
    are only reproducible against the *same* learned history, which is
    why round-robin stays the default.
    """
    if shard is None:
        return list(points)
    cost_class = REGISTRY.get(spec.experiment).cost
    costs = [
        model.predict(spec.experiment, p.params, cost_class=cost_class).seconds
        for p in points
    ]
    assignment = schedule_mod.solve_assignment(costs, shard.count)
    return [p for p, slot in zip(points, assignment) if slot == shard.index - 1]


# -- spec construction --------------------------------------------------------


def _slug(value: Any) -> str:
    text = str(value)
    return re.sub(r"[^A-Za-z0-9_.+-]", "-", text) or "none"


def spec_from_dict(raw: Mapping[str, Any], origin: str = "<dict>") -> SweepSpec:
    """Build and validate a :class:`SweepSpec` from a plain mapping.

    The mapping is the ``[sweep]`` table of the TOML layout; Python callers
    pass the same shape directly.
    """

    def fail(message: str) -> ConfigError:
        return ConfigError(f"sweep spec {origin}: {message}")

    if not isinstance(raw, Mapping):
        raise fail(f"expected a mapping, got {type(raw).__name__}")
    known_keys = {"name", "experiment", "mode", "base", "axes", "metrics", "description", "seed"}
    unknown = sorted(set(raw) - known_keys)
    if unknown:
        raise fail(f"unknown key(s) {unknown}; known: {sorted(known_keys)}")
    name = raw.get("name")
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise fail(f"'name' must be a filename-safe string, got {name!r}")
    experiment = raw.get("experiment")
    if not isinstance(experiment, str) or not experiment:
        raise fail("'experiment' must name a registered experiment")
    mode = raw.get("mode", MODE_GRID)
    if mode not in MODES:
        raise fail(f"'mode' must be one of {MODES}, got {mode!r}")
    base = raw.get("base", {})
    if not isinstance(base, Mapping):
        raise fail("'base' must be a table of parameter defaults")
    axes_raw = raw.get("axes")
    if not isinstance(axes_raw, Sequence) or not axes_raw:
        raise fail("'axes' must be a non-empty array of {param, values} tables")
    axes: List[Axis] = []
    for i, entry in enumerate(axes_raw):
        if not isinstance(entry, Mapping) or set(entry) != {"param", "values"}:
            raise fail(f"axes[{i}] must be a table with exactly 'param' and 'values'")
        param = entry["param"]
        values = entry["values"]
        if not isinstance(param, str) or not param:
            raise fail(f"axes[{i}].param must be a non-empty string")
        if not isinstance(values, Sequence) or isinstance(values, (str, bytes)) or not values:
            raise fail(f"axes[{i}].values must be a non-empty array")
        axes.append(Axis(param=param, values=tuple(values)))
    params = [axis.param for axis in axes]
    dupes = sorted({p for p in params if params.count(p) > 1})
    if dupes:
        raise fail(f"duplicate axis param(s) {dupes}")
    if mode == MODE_ZIP:
        lengths = {len(axis.values) for axis in axes}
        if len(lengths) > 1:
            raise fail(f"zip mode needs equal-length axes, got lengths {sorted(lengths)}")
    metrics_raw = raw.get("metrics", ())
    metrics: List[MetricSpec] = []
    if not isinstance(metrics_raw, Sequence):
        raise fail("'metrics' must be an array of {name, path} tables")
    for i, entry in enumerate(metrics_raw):
        if not isinstance(entry, Mapping) or set(entry) != {"name", "path"}:
            raise fail(f"metrics[{i}] must be a table with exactly 'name' and 'path'")
        if not entry["name"] or not entry["path"]:
            raise fail(f"metrics[{i}]: 'name' and 'path' must be non-empty")
        metrics.append(MetricSpec(name=str(entry["name"]), path=str(entry["path"])))
    metric_names = [m.name for m in metrics]
    if len(metric_names) != len(set(metric_names)):
        raise fail(f"duplicate metric name(s) in {metric_names}")
    seed = raw.get("seed", 0)
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise fail(f"'seed' must be an integer, got {seed!r}")
    for axis in axes:
        slugs = [_slug(v) for v in axis.values]
        dupes = sorted({s for s in slugs if slugs.count(s) > 1})
        if dupes:
            raise fail(f"axis {axis.param!r} has duplicate values {dupes}")
    spec = SweepSpec(
        name=name,
        experiment=experiment,
        axes=tuple(axes),
        mode=mode,
        base=dict(base),
        metrics=tuple(metrics),
        description=str(raw.get("description", "")),
        seed=seed,
    )
    _validate_spec_params(spec)
    return spec


def _validate_spec_params(spec: SweepSpec) -> None:
    """Check base + every axis value against the experiment's schema.

    Per-value validation (O(sum of axis lengths)) gives the same name and
    scalar-type guarantees as expanding the whole matrix would, without
    materializing a potentially huge cross product just to parse a spec.
    """
    experiment = REGISTRY.get(spec.experiment)
    context = f"sweep {spec.name!r}"
    base_params: Dict[str, Any] = {}
    for param, value in spec.base.items():
        _apply_param(experiment, base_params, param, value, context)
    experiment.validate_params(base_params)
    for axis in spec.axes:
        for value in axis.values:
            point = dict(base_params)
            _apply_param(experiment, point, axis.param, value, context)
            experiment.validate_params(point)


def sweeps_dir() -> str:
    """The directory spec files live in (repo-level ``sweeps/``).

    ``REPRO_SWEEPS_DIR`` overrides it — tests and CI shards point it at
    scratch trees.
    """
    override = os.environ.get("REPRO_SWEEPS_DIR")
    if override:
        return override
    here = os.path.dirname(os.path.abspath(__file__))
    repo = os.path.abspath(os.path.join(here, "..", "..", ".."))
    return os.path.join(repo, "sweeps")


def available_specs() -> List[str]:
    """Spec names shipped in :func:`sweeps_dir` (sorted, extension-less)."""
    root = sweeps_dir()
    if not os.path.isdir(root):
        return []
    return sorted(name[: -len(".toml")] for name in os.listdir(root) if name.endswith(".toml"))


def load_spec(ref: str) -> SweepSpec:
    """Load a spec from a TOML path or a name under :func:`sweeps_dir`."""
    candidates = [ref]
    if not ref.endswith(".toml"):
        candidates.append(os.path.join(sweeps_dir(), f"{ref}.toml"))
    path = next((c for c in candidates if os.path.isfile(c)), None)
    if path is None:
        known = ", ".join(available_specs()) or "(none)"
        raise ConfigError(f"no sweep spec {ref!r}; known specs: {known}")
    try:
        with open(path, "r", encoding="utf-8") as f:
            text = f.read()
    except OSError as exc:
        raise ConfigError(f"cannot read sweep spec {path!r}: {exc}") from exc
    document = _loads_toml(text, origin=path)
    table = document.get("sweep")
    if not isinstance(table, dict):
        raise ConfigError(f"sweep spec {path!r}: missing [sweep] table")
    return spec_from_dict(table, origin=path)


def _loads_toml(text: str, origin: str) -> Dict[str, Any]:
    """Parse TOML via stdlib ``tomllib``, or the subset parser on 3.10.

    ``tomllib`` landed in Python 3.11; this package supports 3.10 without
    third-party dependencies, so older interpreters fall back to
    :func:`_parse_toml_subset`, which covers exactly the constructs the
    sweep-spec layout uses.
    """
    try:
        import tomllib
    except ImportError:
        return _parse_toml_subset(text, origin)
    try:
        return tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise ConfigError(f"cannot parse sweep spec {origin!r}: {exc}") from exc


def _parse_toml_subset(text: str, origin: str) -> Dict[str, Any]:
    """Minimal TOML reader for sweep specs (the Python 3.10 fallback).

    Supports what the spec layout needs: ``[dotted.tables]``,
    ``[[arrays.of.tables]]``, bare keys, basic strings, integers, floats,
    booleans, and (multi-line) arrays of those scalars. Comments start at
    an unquoted ``#``. Anything fancier is a clear error naming the line.
    """

    def fail(lineno: int, message: str) -> ConfigError:
        return ConfigError(
            f"cannot parse sweep spec {origin!r} (line {lineno}): {message} "
            "(3.10 subset parser — use tomllib-compatible constructs)"
        )

    def strip_comment(line: str, lineno: int) -> str:
        out = []
        in_string = False
        for ch in line:
            if ch == '"':
                in_string = not in_string
            if ch == "#" and not in_string:
                break
            out.append(ch)
        if in_string:
            raise fail(lineno, "unterminated string")
        return "".join(out).strip()

    def parse_scalar(token: str, lineno: int) -> Any:
        if token.startswith('"'):
            if len(token) < 2 or not token.endswith('"') or "\\" in token:
                raise fail(lineno, f"unsupported string syntax {token!r}")
            return token[1:-1]
        if token in ("true", "false"):
            return token == "true"
        try:
            return int(token, 10)
        except ValueError:
            pass
        try:
            return float(token)
        except ValueError:
            raise fail(lineno, f"unsupported value {token!r}") from None

    def split_items(body: str, lineno: int) -> List[str]:
        items, buf, in_string = [], [], False
        for ch in body:
            if ch == '"':
                in_string = not in_string
            if ch == "," and not in_string:
                items.append("".join(buf).strip())
                buf = []
            else:
                buf.append(ch)
        tail = "".join(buf).strip()
        if tail:
            items.append(tail)
        return [item for item in items if item]

    def parse_value(token: str, lineno: int) -> Any:
        if token.startswith("["):
            if not token.endswith("]"):
                raise fail(lineno, "unterminated array")
            return [parse_scalar(i, lineno) for i in split_items(token[1:-1], lineno)]
        return parse_scalar(token, lineno)

    def descend(dotted: str, lineno: int, append: bool) -> Dict[str, Any]:
        node: Any = root
        parts = dotted.split(".")
        for part in parts[:-1]:
            node = node.setdefault(part, {})
            if isinstance(node, list):
                node = node[-1]
            if not isinstance(node, dict):
                raise fail(lineno, f"{part!r} is not a table")
        leaf = parts[-1]
        if append:
            array = node.setdefault(leaf, [])
            if not isinstance(array, list):
                raise fail(lineno, f"{leaf!r} is not an array of tables")
            array.append({})
            return array[-1]
        table = node.setdefault(leaf, {})
        if not isinstance(table, dict):
            raise fail(lineno, f"{leaf!r} is not a table")
        return table

    root: Dict[str, Any] = {}
    current = root
    pending: Optional[Tuple[str, List[str], int]] = None  # key, chunks, start line
    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        line = strip_comment(raw_line, lineno)
        if pending is not None:
            key, chunks, start = pending
            chunks.append(line)
            joined = " ".join(chunks)
            if joined.count("[") == joined.count("]"):
                current[key] = parse_value(joined, start)
                pending = None
            continue
        if not line:
            continue
        if line.startswith("[[") and line.endswith("]]"):
            current = descend(line[2:-2].strip(), lineno, append=True)
        elif line.startswith("[") and line.endswith("]"):
            current = descend(line[1:-1].strip(), lineno, append=False)
        elif "=" in line:
            key, _, value = line.partition("=")
            key, value = key.strip(), value.strip()
            if not _NAME_RE.match(key):
                raise fail(lineno, f"unsupported key {key!r}")
            if value.startswith("[") and value.count("[") != value.count("]"):
                pending = (key, [value], lineno)  # multi-line array
                continue
            current[key] = parse_value(value, lineno)
        else:
            raise fail(lineno, f"cannot parse {line!r}")
    if pending is not None:
        raise fail(pending[2], "unterminated multi-line array")
    return root


# -- expansion ----------------------------------------------------------------


def _replace_field(owner: Any, path: str, value: Any, context: str) -> Any:
    """Return ``owner`` with the dotted ``path`` field replaced by ``value``."""
    if not dataclasses.is_dataclass(owner) or isinstance(owner, type):
        raise ConfigError(
            f"{context}: cannot reach {path!r} inside non-dataclass "
            f"{type(owner).__name__}"
        )
    head, _, rest = path.partition(".")
    names = {f.name for f in dataclasses.fields(owner)}
    if head not in names:
        raise ConfigError(
            f"{context}: {type(owner).__name__} has no field {head!r}; "
            f"fields: {sorted(names)}"
        )
    new = value if not rest else _replace_field(getattr(owner, head), rest, value, context)
    return dataclasses.replace(owner, **{head: new})


def _apply_param(
    spec: ExperimentSpec, params: Dict[str, Any], path: str, value: Any, context: str
) -> None:
    """Set one (possibly dotted) parameter path on a point's overrides."""
    head, _, rest = path.partition(".")
    if not rest:
        params[head] = value
        return
    owner = params.get(head, spec.default_of(head))
    params[head] = _replace_field(owner, rest, value, context=f"{context}: {path!r}")


def effective_axes(spec: SweepSpec, quick: bool = False) -> Tuple[Axis, ...]:
    """The axes a run actually sweeps (``quick`` keeps two values each)."""
    if not quick:
        return spec.axes
    return tuple(Axis(a.param, a.values[:2]) for a in spec.axes)


def expand(spec: SweepSpec, quick: bool = False, limit: Optional[int] = None) -> List[SweepPoint]:
    """Expand the matrix into validated :class:`SweepPoint` rows.

    ``quick`` truncates every axis to its first two values (the CI smoke
    shape); ``limit`` caps the expanded point count.
    """
    experiment = REGISTRY.get(spec.experiment)
    axes = effective_axes(spec, quick=quick)
    if spec.mode == MODE_ZIP:
        combos = list(zip(*(axis.values for axis in axes)))
    else:
        combos = list(itertools.product(*(axis.values for axis in axes)))
    if limit is not None:
        if limit <= 0:
            raise ConfigError(f"limit must be positive, got {limit}")
        combos = combos[:limit]
    points: List[SweepPoint] = []
    for index, combo in enumerate(combos):
        context = f"sweep {spec.name!r} point {index}"
        params: Dict[str, Any] = {}
        for param, value in spec.base.items():
            _apply_param(experiment, params, param, value, context)
        coords: Dict[str, Any] = {}
        for axis, value in zip(axes, combo):
            coords[axis.param] = value
            _apply_param(experiment, params, axis.param, value, context)
        experiment.validate_params(params)
        point_id = ",".join(f"{axis.short}={_slug(value)}" for axis, value in zip(axes, combo))
        points.append(SweepPoint(index=index, point_id=point_id, coords=coords, params=params))
    ids = [p.point_id for p in points]
    if len(ids) != len(set(ids)):
        dupes = sorted({i for i in ids if ids.count(i) > 1})
        raise ConfigError(f"sweep {spec.name!r}: duplicate point id(s) {dupes}")
    return points


# -- execution ----------------------------------------------------------------


@dataclass
class SweepResult:
    """Everything one sweep invocation produced.

    ``axes`` are the *effective* (possibly ``--quick``-truncated) axes of
    this run — the document records what was actually swept, never the
    spec's full value lists when they differ.
    """

    spec: SweepSpec
    points: List[SweepPoint]
    report: RunReport
    out_dir: str
    axes: Tuple[Axis, ...] = ()
    quick: bool = False
    limit: Optional[int] = None
    shard: Optional[Shard] = None
    json_path: Optional[str] = None
    csv_path: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.axes:
            self.axes = self.spec.axes

    @property
    def ok(self) -> bool:
        return self.report.ok

    def point_records(self) -> List[dict]:
        """One consolidated record per point (the ``sweep.json`` rows)."""
        records = []
        for point, run in zip(self.points, self.report.runs):
            metrics = {m.name: extract_metric(run.summary, m.path) for m in self.spec.metrics}
            records.append(
                {
                    "point": point.point_id,
                    "index": point.index,
                    "coords": {k: normalize_params(v) for k, v in point.coords.items()},
                    "params": run.params,
                    "status": run.status,
                    "cached": run.status == STATUS_CACHED,
                    "elapsed_s": round(run.elapsed_s, 6),
                    "seed": run.seed,
                    "cache_key": run.cache_key,
                    "artifact": run.artifact,
                    "error": run.error,
                    "error_type": run.error_type,
                    "metrics": metrics,
                }
            )
        return records

    def document(self) -> dict:
        """The full ``sweep.json`` payload."""
        document = self._document_base()
        if self.shard is not None:
            document["shard"] = self.shard.as_dict()
        return document

    def _document_base(self) -> dict:
        return {
            "schema_version": SWEEP_SCHEMA,
            "schema": SWEEP_SCHEMA,  # legacy spelling kept for older tooling
            "kind": "repro-sweep",
            "sweep": self.spec.name,
            "experiment": self.spec.experiment,
            "description": self.spec.description,
            "mode": self.spec.mode,
            "generated_at": datetime.datetime.now(datetime.timezone.utc).isoformat(),
            "seed": self.spec.seed,
            "jobs": self.report.jobs,
            "cache_enabled": self.report.cache_enabled,
            "quick": self.quick,
            "limit": self.limit,
            "source_digest": self.report.source_digest,
            "wall_s": round(self.report.wall_s, 6),
            "counts": self.report.counts(),
            "axes": [
                {"param": a.param, "values": [normalize_params(v) for v in a.values]}
                for a in self.axes
            ],
            "base": normalize_params(dict(self.spec.base)),
            "metrics": [{"name": m.name, "path": m.path} for m in self.spec.metrics],
            "points": self.point_records(),
        }

    def table(self) -> str:
        """ASCII table of the matrix: axis values x metrics per point."""
        headers = [a.short for a in self.axes]
        headers += ["status"] + [m.name for m in self.spec.metrics]
        rows = []
        for point, record in zip(self.points, self.point_records()):
            row = [point.coords[a.param] for a in self.axes]
            row.append(record["status"])
            for metric in self.spec.metrics:
                value = record["metrics"].get(metric.name)
                row.append(_format_cell(value))
            rows.append(row)
        title = f"Sweep {self.spec.name} — {self.spec.experiment} over {len(rows)} points"
        if self.spec.description:
            title += f"\n{self.spec.description}"
        return title + "\n\n" + ascii_table(headers, rows)

    def write(self) -> Tuple[str, str]:
        """Persist ``sweep.json`` + ``sweep.csv``; returns their paths."""
        self.json_path, self.csv_path = write_outputs(self.out_dir, self.document())
        return self.json_path, self.csv_path


def write_outputs(out_dir: str, document: dict) -> Tuple[str, str]:
    """Write a sweep document as ``sweep.json`` + ``sweep.csv``.

    Operates purely on the consolidated document so the live run path and
    ``sweep merge`` produce byte-identical layouts for identical content.
    """
    os.makedirs(out_dir, exist_ok=True)
    json_path = os.path.join(out_dir, "sweep.json")
    tmp = json_path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as f:
        json.dump(document, f, indent=2)
        f.write("\n")
    os.replace(tmp, json_path)
    csv_path = os.path.join(out_dir, "sweep.csv")
    axis_params = [a["param"] for a in document["axes"]]
    metric_names = [m["name"] for m in document["metrics"]]
    with open(csv_path, "w", encoding="utf-8", newline="") as f:
        writer = csv.writer(f)
        header = ["point"] + [p.rpartition(".")[2] for p in axis_params]
        header += ["status", "cached", "elapsed_s"]
        header += metric_names
        writer.writerow(header)
        for record in document["points"]:
            row: List[Any] = [record["point"]]
            row += [record["coords"][p] for p in axis_params]
            row += [record["status"], record["cached"], record["elapsed_s"]]
            row += [record["metrics"].get(name) for name in metric_names]
            writer.writerow(row)
    return json_path, csv_path


#: Top-level document keys that vary run to run without the swept content
#: changing (timing, scheduling environment, shard bookkeeping).
VOLATILE_DOCUMENT_KEYS = (
    "generated_at",
    "wall_s",
    "jobs",
    "cache_enabled",
    "counts",
    "shard",
    "shards",
)

#: Per-point keys that vary between an executed and a cache-replayed (or
#: resumed/merged) instance of the same result.
VOLATILE_POINT_KEYS = ("status", "cached", "elapsed_s", "artifact")


def canonical_document(document: dict) -> dict:
    """The run-invariant content view of a sweep document.

    Strips timing, scheduling, and path fields so that an uninterrupted
    run, a crashed-and-resumed run, and a shard-merged run of the same
    matrix compare equal — the acceptance property the crash-injection
    tests assert.
    """
    view = {k: v for k, v in document.items() if k not in VOLATILE_DOCUMENT_KEYS}
    view["points"] = [
        {k: v for k, v in record.items() if k not in VOLATILE_POINT_KEYS}
        for record in document["points"]
    ]
    return view


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return "-" if value is None else str(value)


def point_label(sweep_name: str, point_id: str) -> str:
    """The orchestrator label (and artifact path stem) of one point."""
    return f"sweeps/{sweep_name}/points/{point_id}"


def sweep_dir(sweep_name: str, shard: Optional[Shard] = None) -> str:
    """Output tree of a sweep run (a shard gets its own subtree)."""
    base = os.path.join(results_dir(), "sweeps", sweep_name)
    if shard is None:
        return base
    return os.path.join(base, "shards", shard.tag)


def expected_keys(
    spec: SweepSpec, points: Sequence[SweepPoint], digest: Optional[str] = None
) -> Dict[str, Tuple[int, str]]:
    """``{label: (seed, cache_key)}`` exactly as the orchestrator derives them.

    Resume planning matches journal records against these keys, so a
    source or parameter change (which rotates every affected key)
    automatically invalidates stale journal history.
    """
    digest = digest or result_cache.source_digest()
    out: Dict[str, Tuple[int, str]] = {}
    for point in points:
        label = point_label(spec.name, point.point_id)
        seed = derive_seed(spec.seed, label)
        key = result_cache.cache_key(
            spec.experiment, normalize_params(dict(point.params)), seed, digest
        )
        out[label] = (seed, key)
    return out


def plan_resume(
    view: JournalView,
    expected: Dict[str, Tuple[int, str]],
    retries: int,
) -> Tuple[Dict[str, int], Dict[str, PointRecord]]:
    """Split journal history into carried attempt counts and quarantines.

    A point with a journaled success under its current key is complete
    (the result cache replays it, so it needs no special handling). A
    point whose failures exhausted the ``retries`` budget is quarantined:
    its last failure record is replayed into the report without
    rescheduling. Anything else is incomplete and runs, with its burned
    attempts carried forward so the budget is bounded across resumes.
    """
    prior_attempts: Dict[str, int] = {}
    replay_failed: Dict[str, PointRecord] = {}
    for label, (_seed, key) in expected.items():
        matching = [r for r in view.records if r.label == label and r.key == key]
        if any(r.succeeded for r in matching):
            continue
        attempts = view.failed_attempts(label, key)
        if not attempts:
            continue
        if attempts > retries:
            failures = [r for r in matching if r.status == STATUS_FAILED]
            replay_failed[label] = max(failures, key=lambda r: r.attempt)
        else:
            prior_attempts[label] = attempts
    return prior_attempts, replay_failed


def _journal_header(
    spec: SweepSpec,
    points: Sequence[SweepPoint],
    shard: Optional[Shard],
    quick: bool,
    limit: Optional[int],
    digest: str,
    balance: str = BALANCE_ROUND_ROBIN,
) -> dict:
    return {
        "sweep": spec.name,
        "experiment": spec.experiment,
        "mode": spec.mode,
        "seed": spec.seed,
        "quick": quick,
        "limit": limit,
        "shard": shard.as_dict() if shard else None,
        "balance": balance,
        "source_digest": digest,
        "n_points": len(points),
        "labels": [point_label(spec.name, p.point_id) for p in points],
        "created_at": datetime.datetime.now(datetime.timezone.utc).isoformat(),
    }


def _check_resume_header(
    header: Optional[dict],
    spec: SweepSpec,
    shard: Optional[Shard],
    quick: bool,
    limit: Optional[int],
    balance: str = BALANCE_ROUND_ROBIN,
) -> None:
    """A resumed run must continue the *same* matrix the journal began."""
    if header is None:
        return  # crashed before the header line was durable: fresh start
    expected = {
        "sweep": spec.name,
        "experiment": spec.experiment,
        "mode": spec.mode,
        "seed": spec.seed,
        "quick": quick,
        "limit": limit,
        "shard": shard.as_dict() if shard else None,
        # Journals from before the balance knob existed are round-robin.
        "balance": balance,
    }
    header = dict(header)
    header.setdefault("balance", BALANCE_ROUND_ROBIN)
    mismatched = {
        name: (header.get(name), value)
        for name, value in expected.items()
        if header.get(name) != value
    }
    if mismatched:
        detail = "; ".join(
            f"{name}: journal={got!r} run={want!r}"
            for name, (got, want) in sorted(mismatched.items())
        )
        raise ConfigError(
            f"--resume does not match the journal at hand ({detail}); "
            "run without --resume to start the sweep over"
        )


def run_sweep(
    spec: SweepSpec,
    jobs: Optional[int] = None,
    use_cache: bool = True,
    quick: bool = False,
    limit: Optional[int] = None,
    verbose: bool = True,
    write: bool = True,
    shard: Optional[Shard] = None,
    resume: bool = False,
    retries: int = 0,
    orchestrator: Optional[Orchestrator] = None,
    balance: str = BALANCE_ROUND_ROBIN,
) -> SweepResult:
    """Expand ``spec`` and run every point through the orchestrator.

    Points are scheduled on the shared process pool with content-hash
    caching, so an unchanged re-run is all cache hits; each point's
    rendered artifact lands under ``results/sweeps/<name>/points/`` and
    the per-point manifest next to the consolidated ``sweep.json``.

    Fault tolerance: every outcome is appended (fsynced) to a
    ``journal.jsonl`` run journal in the output tree. ``shard`` restricts
    the run to a deterministic slice of the matrix (consolidate with
    :func:`merge_shards`); ``resume`` replays the journal plus the result
    cache and schedules only incomplete points; ``retries`` bounds
    re-execution of flaky points before they are quarantined.

    ``orchestrator`` is the service (sweep-as-job) entry: pass a live
    :class:`Orchestrator` — typically one holding a persistent worker
    pool — and the sweep is scheduled on it instead of a throwaway
    instance. Its ``jobs``/``use_cache`` settings take precedence over
    the same-named arguments here; its ``run_seed`` is set to the spec's
    seed so cache keys and resume planning stay consistent.

    ``balance="cost"`` partitions shards and plans execution by predicted
    seconds from the learned cost model instead of round-robin, and emits
    the solved plan as ``schedule.json`` next to the journal (predicted
    per-slot assignment before the run, actual seconds filled in after).
    """
    if retries < 0:
        raise ConfigError(f"retries must be >= 0, got {retries}")
    if balance not in BALANCES:
        raise ConfigError(f"balance must be one of {BALANCES}, got {balance!r}")
    if orchestrator is not None:
        orchestrator.run_seed = spec.seed
        use_cache = orchestrator.use_cache
    if resume and not use_cache:
        raise ConfigError(
            "--resume replays completed points from the result cache; "
            "it cannot be combined with --no-cache"
        )
    all_points = expand(spec, quick=quick, limit=limit)
    cost_model: Optional[CostModel] = None
    if balance == BALANCE_COST:
        cost_model = CostModel.from_results()
        points = shard_points_cost(all_points, shard, spec, cost_model)
    else:
        points = shard_points(all_points, shard)
    out_dir = sweep_dir(spec.name, shard)
    os.makedirs(out_dir, exist_ok=True)
    journal_path = os.path.join(out_dir, "journal.jsonl")
    digest = result_cache.source_digest()
    prior_attempts: Dict[str, int] = {}
    replay_failed: Dict[str, PointRecord] = {}
    if resume:
        view = read_journal(journal_path)
        _check_resume_header(view.header, spec, shard, quick, limit, balance)
        if balance == BALANCE_COST and view.header is not None:
            want = [point_label(spec.name, p.point_id) for p in points]
            if view.header.get("labels") != want:
                raise ConfigError(
                    "--resume with --balance cost: the learned cost history has "
                    "changed since this journal was started, so the cost-balanced "
                    "shard slice no longer matches; re-run without --resume "
                    "(or with the default round-robin balance)"
                )
        prior_attempts, replay_failed = plan_resume(
            view, expected_keys(spec, points, digest), retries
        )
        journal = RunJournal.attach(journal_path)
    else:
        journal = RunJournal.start(
            journal_path,
            _journal_header(spec, points, shard, quick, limit, digest, balance),
        )
    requests = [
        PointRequest(
            experiment=spec.experiment,
            params=point.params,
            label=point_label(spec.name, point.point_id),
        )
        for point in points
    ]
    if orchestrator is None:
        orchestrator = Orchestrator(
            jobs=jobs,
            use_cache=use_cache,
            run_seed=spec.seed,
            verbose=verbose,
            cost_model=cost_model,
        )
    schedule_doc: Optional[dict] = None
    schedule_path = os.path.join(out_dir, "schedule.json")
    if cost_model is not None:
        tasks = [
            schedule_mod.PointTask(
                label=point_label(spec.name, p.point_id),
                experiment=spec.experiment,
                point=p.point_id,
                params=p.params,
            )
            for p in points
        ]
        plan = schedule_mod.plan(
            tasks,
            cost_model,
            orchestrator.jobs,
            sweep=spec.name,
            experiment=spec.experiment,
            quick=quick,
            limit=limit,
        )
        schedule_doc = plan.document()
        schedule_mod.write_schedule(schedule_path, schedule_doc)
        if verbose:
            print(
                f"schedule: {schedule_path} (predicted makespan "
                f"{plan.predicted_makespan():.1f}s vs round-robin "
                f"{plan.baseline_makespan():.1f}s on {plan.slots} slot(s))",
                flush=True,
            )
    report = orchestrator.run_points(
        requests,
        write_manifest=True,
        manifest_path=os.path.join(out_dir, "manifest.json"),
        journal=journal,
        retries=retries,
        prior_attempts=prior_attempts,
        replay_failed=replay_failed,
    )
    if schedule_doc is not None:
        elapsed = {
            run.name: run.elapsed_s
            for run in report.runs
            if run.status in (STATUS_EXECUTED, STATUS_CACHED)
        }
        schedule_mod.write_schedule(schedule_path, schedule_mod.fill_actuals(schedule_doc, elapsed))
    result = SweepResult(
        spec=spec,
        points=points,
        report=report,
        out_dir=out_dir,
        axes=effective_axes(spec, quick=quick),
        quick=quick,
        limit=limit,
        shard=shard,
    )
    if write:
        result.write()
    return result


# -- shard merge & status -----------------------------------------------------


def _uniform(docs: List[dict], key: str, context: str) -> Any:
    values = {json.dumps(doc.get(key), sort_keys=True) for doc in docs}
    if len(values) > 1:
        raise ConfigError(
            f"{context}: shards disagree on {key!r} "
            f"({', '.join(sorted(values))}); re-run them from the same spec and source"
        )
    return docs[0].get(key)


def merge_shards(
    spec: SweepSpec, verbose: bool = True, expect_count: Optional[int] = None
) -> Tuple[dict, str, str]:
    """Consolidate per-shard runs into the single ``sweep.json`` + CSV.

    Reads every ``shards/*/sweep.json`` under the sweep's output tree,
    checks the slices are mutually consistent (same spec echo, same
    source digest, disjoint points) and together cover the full expanded
    matrix, then writes the consolidated document exactly where an
    unsharded run would have: ``results/sweeps/<name>/``.

    ``expect_count`` pins the shard width the caller fanned out (the
    serve layer's merge step passes its child count) so a stale shard
    tree from an earlier, differently-sized run is refused instead of
    silently merged.
    """
    base = sweep_dir(spec.name)
    shards_root = os.path.join(base, "shards")
    if not os.path.isdir(shards_root):
        raise ConfigError(
            f"no shard runs under {shards_root}; "
            f"run `sweep run {spec.name} --shard K/N` first"
        )
    context = f"sweep merge {spec.name!r}"
    docs: List[dict] = []
    dirs: List[str] = []
    for entry in sorted(os.listdir(shards_root)):
        shard_json = os.path.join(shards_root, entry, "sweep.json")
        if not os.path.isfile(shard_json):
            raise ConfigError(
                f"{context}: shard {entry} has no sweep.json — it crashed or is "
                f"still running; finish it with `sweep run {spec.name} "
                f"--shard ... --resume`"
            )
        try:
            with open(shard_json, "r", encoding="utf-8") as f:
                doc = json.load(f)
        except ValueError as exc:
            raise ConfigError(f"{context}: cannot parse {shard_json!r}: {exc}") from exc
        if doc.get("kind") != "repro-sweep" or "shard" not in doc:
            raise ConfigError(f"{context}: {shard_json!r} is not a shard sweep document")
        check_schema_version(doc, SWEEP_SCHEMA, f"{context}: {shard_json!r}", _SWEEP_REFRESH_HINT)
        if doc.get("sweep") != spec.name or doc.get("experiment") != spec.experiment:
            raise ConfigError(
                f"{context}: {shard_json!r} belongs to sweep "
                f"{doc.get('sweep')!r}/{doc.get('experiment')!r}"
            )
        docs.append(doc)
        dirs.append(os.path.join(shards_root, entry))
    counts = {doc["shard"]["count"] for doc in docs}
    if len(counts) != 1:
        raise ConfigError(f"{context}: mixed shard counts {sorted(counts)}")
    count = counts.pop()
    if expect_count is not None and count != expect_count:
        raise ConfigError(
            f"{context}: expected a {expect_count}-way shard tree, found {count}-way; "
            "a stale tree from an earlier run is in the way"
        )
    indices = sorted(doc["shard"]["index"] for doc in docs)
    if indices != list(range(1, count + 1)):
        missing = sorted(set(range(1, count + 1)) - set(indices))
        raise ConfigError(
            f"{context}: expected shards 1..{count}, have {indices}"
            + (f"; missing {missing}" if missing else "")
        )
    for key in (
        "mode",
        "seed",
        "quick",
        "limit",
        "source_digest",
        "axes",
        "base",
        "metrics",
        "schema",
        "schema_version",
    ):
        _uniform(docs, key, context)
    quick = bool(docs[0].get("quick"))
    limit = docs[0].get("limit")
    expected_ids = [p.point_id for p in expand(spec, quick=quick, limit=limit)]
    collected: Dict[str, dict] = {}
    for doc in docs:
        for record in doc["points"]:
            if record["point"] in collected:
                raise ConfigError(
                    f"{context}: point {record['point']!r} appears in more than one shard"
                )
            collected[record["point"]] = record
    missing = [pid for pid in expected_ids if pid not in collected]
    extra = sorted(set(collected) - set(expected_ids))
    if missing or extra:
        raise ConfigError(
            f"{context}: shard union does not cover the matrix "
            f"(missing {missing or 'none'}, extra {extra or 'none'})"
        )
    points = [collected[pid] for pid in expected_ids]
    status_counts = {STATUS_EXECUTED: 0, STATUS_CACHED: 0, STATUS_FAILED: 0}
    for record in points:
        status_counts[record["status"]] += 1
    merged = {
        key: docs[0][key]
        for key in (
            "schema_version",
            "schema",
            "kind",
            "sweep",
            "experiment",
            "description",
            "mode",
            "seed",
        )
    }
    merged.update(
        {
            "generated_at": datetime.datetime.now(datetime.timezone.utc).isoformat(),
            "jobs": max(doc["jobs"] for doc in docs),
            "cache_enabled": all(doc["cache_enabled"] for doc in docs),
            "quick": quick,
            "limit": limit,
            "source_digest": docs[0]["source_digest"],
            "wall_s": round(sum(doc["wall_s"] for doc in docs), 6),
            "counts": status_counts,
            "axes": docs[0]["axes"],
            "base": docs[0]["base"],
            "metrics": docs[0]["metrics"],
            "shards": [
                {
                    "index": doc["shard"]["index"],
                    "count": doc["shard"]["count"],
                    "dir": path,
                    "counts": doc["counts"],
                    "wall_s": doc["wall_s"],
                }
                for doc, path in sorted(zip(docs, dirs), key=lambda t: t[0]["shard"]["index"])
            ],
            "points": points,
        }
    )
    json_path, csv_path = write_outputs(base, merged)
    if verbose:
        print(
            f"merged {count} shard(s), {len(points)} points — "
            f"{status_counts[STATUS_EXECUTED]} executed, "
            f"{status_counts[STATUS_CACHED]} cached, "
            f"{status_counts[STATUS_FAILED]} failed",
            flush=True,
        )
    return merged, json_path, csv_path


def sweep_status(spec: SweepSpec) -> dict:
    """Done/failed/stale/pending counts from the sweep's run journal(s).

    Reads the unsharded journal and every shard journal that exists,
    takes the latest record per point, and classifies each expanded
    matrix point: ``done`` (success under its current cache key),
    ``stale`` (success under an outdated key — the sources or params
    changed since), ``failed``, or ``pending`` (never journaled).
    Nothing is executed.
    """
    base = sweep_dir(spec.name)
    candidates = [os.path.join(base, "journal.jsonl")]
    shards_root = os.path.join(base, "shards")
    if os.path.isdir(shards_root):
        candidates += [
            os.path.join(shards_root, entry, "journal.jsonl")
            for entry in sorted(os.listdir(shards_root))
        ]
    paths = [p for p in candidates if os.path.isfile(p)]
    if not paths:
        raise NoJournalError(
            f"no run journal found under {base}; sweep {spec.name!r} has never run "
            f"(start it with `sweep run {spec.name}`)"
        )
    views = [read_journal(p) for p in paths]
    headers = [v.header for v in views if v.header is not None]
    newest = max(headers, key=lambda h: str(h.get("created_at", ""))) if headers else None
    quick = bool(newest.get("quick")) if newest else False
    limit = newest.get("limit") if newest else None

    def _matches(view: JournalView) -> bool:
        if view.header is None:
            return True
        return bool(view.header.get("quick")) == quick and view.header.get("limit") == limit

    # Journals from older invocations with a different matrix shape (say a
    # leftover --quick shard tree next to a fresh full run) are ignored
    # rather than conflated with the newest run's.
    kept = [v for v in views if _matches(v)]
    points = expand(spec, quick=quick, limit=limit)
    expected = expected_keys(spec, points)
    # Latest record per label by write timestamp, not journal file order —
    # a fresh unsharded run supersedes stale shard journals and vice versa.
    ordered = sorted((record for view in kept for record in view.records), key=lambda r: r.ts)
    last: Dict[str, PointRecord] = {}
    for record in ordered:
        last[record.label] = record
    done: List[str] = []
    stale: List[str] = []
    failed: List[dict] = []
    pending: List[str] = []
    for point in points:
        label = point_label(spec.name, point.point_id)
        record = last.get(label)
        _seed, key = expected[label]
        if record is None:
            pending.append(point.point_id)
        elif record.succeeded:
            (done if record.key == key else stale).append(point.point_id)
        else:
            failed.append(
                {
                    "point": point.point_id,
                    "attempts": record.attempt + 1,
                    "error_type": record.error_type,
                    "quarantined": record.quarantined,
                }
            )
    return {
        "schema": JOURNAL_SCHEMA,
        "sweep": spec.name,
        "experiment": spec.experiment,
        "n_points": len(points),
        "quick": quick,
        "limit": limit,
        "done": len(done),
        "stale": len(stale),
        "failed": len(failed),
        "pending": len(pending),
        "complete": not stale and not failed and not pending,
        "failed_points": failed,
        "stale_points": stale,
        "pending_points": pending,
        "journals": [
            {
                "path": view.path,
                "records": len(view.records),
                "resumes": view.resumes,
                "truncated": view.truncated,
                "ignored": not _matches(view),
            }
            for view in views
        ],
    }
