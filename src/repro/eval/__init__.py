"""Evaluation harness: one generator per paper figure/table.

Each ``figNN`` module exposes a ``run(...)`` returning a result dataclass
and a ``render(result)`` producing the ASCII table, and registers itself
into :data:`repro.eval.registry.REGISTRY` under its paper name. The
orchestrator (``python -m repro run``) schedules registered experiments in
parallel with result caching; ``repro.eval.runner`` remains as a serial
shim.
"""

from repro.eval.registry import REGISTRY, experiment
from repro.eval.tables import ascii_table, save_result

__all__ = ["REGISTRY", "ascii_table", "experiment", "save_result"]
