"""Evaluation harness: one generator per paper figure/table.

Each ``figNN`` module exposes a ``run(...)`` returning a result dataclass
and a ``render(result)`` producing the ASCII table printed by the
corresponding benchmark. ``repro.eval.runner`` regenerates everything into
``results/``.
"""

from repro.eval.tables import ascii_table, save_result

__all__ = ["ascii_table", "save_result"]
