"""Figure 3: CPU TEE slowdown of the Adam workload vs thread count.

Paper shape: non-secure latency drops with threads; SGX latency flattens
early (compute- to memory-intensive transition), with the slowdown growing
to ~3.7x at 8 threads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.cpu.config import CpuConfig
from repro.cpu.sgx import sgx_costs
from repro.cpu.timing import adam_latency, non_secure_costs
from repro.eval.registry import experiment
from repro.eval.tables import ascii_table, fmt


@dataclass(frozen=True)
class Fig3Row:
    threads: int
    non_secure_s: float
    sgx_s: float

    @property
    def slowdown(self) -> float:
        return self.sgx_s / self.non_secure_s


@dataclass(frozen=True)
class Fig3Result:
    rows: List[Fig3Row]
    n_params: int

    @property
    def max_slowdown(self) -> float:
        return max(row.slowdown for row in self.rows)


@experiment("fig03_adam_slowdown", tags=("paper", "figure", "cpu"), cost="slow")
def run(n_params: int = 345_000_000, max_threads: int = 8) -> Fig3Result:
    config = CpuConfig()
    rows = []
    for threads in range(1, max_threads + 1):
        ns = adam_latency(config, n_params, threads, non_secure_costs()).total_s
        sgx = adam_latency(
            config, n_params, threads, sgx_costs(config, threads=threads)
        ).total_s
        rows.append(Fig3Row(threads, ns, sgx))
    return Fig3Result(rows=rows, n_params=n_params)


def render(result: Fig3Result) -> str:
    base = result.rows[0].non_secure_s
    table = ascii_table(
        ["threads", "non-secure (norm)", "SGX (norm)", "slowdown"],
        [
            (r.threads, fmt(r.non_secure_s / base), fmt(r.sgx_s / base), fmt(r.slowdown))
            for r in result.rows
        ],
    )
    return (
        "Figure 3 — Adam under SGX-like CPU TEE vs thread count\n"
        f"(paper: slowdown grows to ~3.7x at 8 threads; ours: "
        f"{result.max_slowdown:.2f}x)\n\n" + table
    )
