"""Figure 17: normalized stage breakdown per model under all three modes.

Paper shape: the baseline's communication (weights+gradients) dominates;
TensorTEE eliminates both the CPU-TEE overhead and the exposed transfers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.config import baseline_system, non_secure_system, tensortee_system
from repro.core.results import StageBreakdown
from repro.core.system import CollaborativeSystem
from repro.eval.registry import experiment
from repro.eval.tables import ascii_table, pct
from repro.workloads.models import MODEL_ZOO, ModelConfig


@dataclass(frozen=True)
class Fig17Result:
    breakdowns: Dict[str, Dict[str, StageBreakdown]]  # model -> mode -> stages

    def as_dict(self) -> dict:
        """JSON-safe digest for the orchestrator manifest."""
        return {
            model: {mode: b.as_dict() for mode, b in by_mode.items()}
            for model, by_mode in self.breakdowns.items()
        }


@experiment("fig17_breakdown", tags=("paper", "figure", "e2e"), cost="slow")
def run(models: tuple[ModelConfig, ...] = MODEL_ZOO) -> Fig17Result:
    systems = {
        "non-secure": CollaborativeSystem(non_secure_system()),
        "sgx+mgx": CollaborativeSystem(baseline_system()),
        "tensortee": CollaborativeSystem(tensortee_system()),
    }
    table: Dict[str, Dict[str, StageBreakdown]] = {}
    for model in models:
        table[model.name] = {
            mode: system.iteration_breakdown(model) for mode, system in systems.items()
        }
    return Fig17Result(breakdowns=table)


def render(result: Fig17Result) -> str:
    rows: List[tuple] = []
    for model_name, by_mode in result.breakdowns.items():
        for mode, breakdown in by_mode.items():
            f = breakdown.fractions()
            rows.append(
                (model_name, mode, pct(f["NPU"]), pct(f["CPU"]),
                 pct(f["Comm W"]), pct(f["Comm G"]))
            )
    table = ascii_table(["model", "config", "NPU", "CPU", "Comm W", "Comm G"], rows)
    return (
        "Figure 17 — stage fractions per model and configuration\n"
        "(paper: baseline dominated by comm + CPU; TensorTEE restores the\n"
        " non-secure profile)\n\n" + table
    )
