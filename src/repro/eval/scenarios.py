"""Off-design-point scenario experiments (the sweep engine's targets).

The 16 paper experiments each pin one configuration; these three are
*parameterized* so `repro.eval.sweep` can expand matrices over them:

- ``scale_npu_pipeline`` — the collaborative pipeline on the synthetic
  scaling zoo (``repro.workloads.models.SCALING_PRESETS``), any batch size:
  model-size x batch-size scaling beyond the fixed Table-2 rows;
- ``mee_cache_geometry`` — MEE metadata-cache (VN/MAC/Merkle) hit behaviour
  as a function of capacity and associativity, generalizing the fixed
  32 KB/8-way Table-1 point;
- ``mac_policy`` — MAC granularity x verification policy (eager vs
  delayed), generalizing Fig. 20's eager-only granularity axis;
- ``attention_layout`` — TenAnalyzer detection/merge behaviour on a
  blockwise attention pass as a function of head dim and Q/K/V storage
  layout (head-major vs feature-interleaved views);
- ``stride_detection`` — detection accuracy on a constant-stride line
  walk as a function of the stride, with the stride-aware Tensor Filter
  on or off.

Each returns a result with ``as_dict`` so sweep metrics can be extracted
from the orchestrator summary by dotted path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict

from repro import vec
from repro.core.config import baseline_system, non_secure_system, tensortee_system
from repro.core.system import CollaborativeSystem
from repro.cpu.tenanalyzer.analyzer import TenAnalyzer
from repro.errors import ConfigError
from repro.eval.registry import experiment
from repro.eval.tables import ascii_table, fmt, pct
from repro.mem.cache import LruCacheCore
from repro.mem.metadata_cache import MetadataCache, MetadataKind
from repro.npu.config import NpuConfig
from repro.npu.kernels import iteration_time_s
from repro.npu.mac import MacScheme
from repro.sim.trace_batch import KIND_READ
from repro.tensor.dtype import DType
from repro.tensor.registry import TensorRegistry
from repro.units import CACHELINE_BYTES, KiB, PAGE_BYTES
from repro.workloads.models import scaled_model
from repro.workloads.traces import (
    AttentionConfig,
    attention_batch,
    build_attention_tensors,
)

# -- scale_npu_pipeline -------------------------------------------------------


@dataclass(frozen=True)
class ScaleResult:
    """One (model size, batch size) point of the scaling scenario."""

    model: str
    n_params: int
    batch_size: int
    tokens_per_batch: int
    non_secure_s: float
    baseline_s: float
    tensortee_s: float
    npu_fraction: float  #: NPU share of the TensorTEE iteration

    @property
    def speedup(self) -> float:
        return self.baseline_s / self.tensortee_s

    @property
    def overhead_vs_ns(self) -> float:
        return self.tensortee_s / self.non_secure_s - 1.0

    def as_dict(self) -> dict:
        return {
            "model": self.model,
            "n_params": self.n_params,
            "batch_size": self.batch_size,
            "tokens_per_batch": self.tokens_per_batch,
            "non_secure_s": self.non_secure_s,
            "baseline_s": self.baseline_s,
            "tensortee_s": self.tensortee_s,
            "speedup": self.speedup,
            "overhead_vs_ns": self.overhead_vs_ns,
            "npu_fraction": self.npu_fraction,
        }


@experiment(
    "scale_npu_pipeline",
    tags=("scenario", "e2e", "sweep"),
    cost="slow",
    render="render_scale",
)
def scale_npu_pipeline(
    preset: str = "410m", batch_size: int = 0, seq_len: int = 1024
) -> ScaleResult:
    """Collaborative-pipeline latency for one synthetic (size, batch) point."""
    model = scaled_model(preset, batch_size=batch_size, seq_len=seq_len)
    systems = {
        "ns": CollaborativeSystem(non_secure_system()),
        "base": CollaborativeSystem(baseline_system()),
        "ours": CollaborativeSystem(tensortee_system()),
    }
    ours = systems["ours"].iteration_breakdown(model)
    return ScaleResult(
        model=model.name,
        n_params=model.n_params,
        batch_size=model.batch_size,
        tokens_per_batch=model.tokens_per_batch,
        non_secure_s=systems["ns"].iteration_breakdown(model).total_s,
        baseline_s=systems["base"].iteration_breakdown(model).total_s,
        tensortee_s=ours.total_s,
        npu_fraction=ours.fractions()["NPU"],
    )


def render_scale(result: ScaleResult) -> str:
    table = ascii_table(
        ["model", "params", "batch", "non-secure (s)", "SGX+MGX (s)", "TensorTEE (s)", "speedup"],
        [
            (
                result.model,
                f"{result.n_params / 1e6:.0f}M",
                result.batch_size,
                fmt(result.non_secure_s, 3),
                fmt(result.baseline_s, 3),
                fmt(result.tensortee_s, 3),
                fmt(result.speedup),
            )
        ],
    )
    return (
        "Scenario — collaborative pipeline at one (model size, batch) point\n"
        f"(TensorTEE {pct(result.overhead_vs_ns)} over non-secure, "
        f"NPU fraction {pct(result.npu_fraction)})\n\n" + table
    )


# -- mee_cache_geometry -------------------------------------------------------


@dataclass(frozen=True)
class MeeGeometryResult:
    """Metadata-cache behaviour for one (capacity, ways) geometry."""

    capacity_kib: int
    ways: int
    capacity_lines: int
    vn_lines: int
    levels: int
    accesses: int
    hit_rate: float
    kind_hit_rates: Dict[str, float]
    mean_covered_level: float

    def as_dict(self) -> dict:
        return {
            "capacity_kib": self.capacity_kib,
            "ways": self.ways,
            "capacity_lines": self.capacity_lines,
            "vn_lines": self.vn_lines,
            "levels": self.levels,
            "accesses": self.accesses,
            "hit_rate": self.hit_rate,
            "vn_hit_rate": self.kind_hit_rates["vn"],
            "mac_hit_rate": self.kind_hit_rates["mac"],
            "tree_hit_rate": self.kind_hit_rates["tree"],
            "mean_covered_level": self.mean_covered_level,
        }


def _tree_levels(vn_lines: int, arity: int = 8) -> int:
    levels = 1
    nodes = vn_lines
    while nodes > 1:
        nodes = (nodes + arity - 1) // arity
        levels += 1
    return levels


@experiment(
    "mee_cache_geometry",
    tags=("scenario", "mem", "sweep"),
    cost="fast",
    render="render_mee",
)
def mee_cache_geometry(
    capacity_kib: int = 32,
    ways: int = 8,
    tensors: int = 48,
    lines_per_tensor: int = 32,
    iterations: int = 4,
    seed: int = 2024,
) -> MeeGeometryResult:
    """Stream an optimizer-shaped metadata workload through one geometry.

    Each iteration walks every tensor (seeded-shuffled order, as the
    per-core shards interleave) and touches, per VN line: the VN and MAC
    lines on the read, a Merkle walk that stops at the lowest cached tree
    level, the read-modify-write reuse of both lines, and the tree-path
    update on the write-back. Capacity and associativity are the swept
    geometry; Table 1's fixed point is 32 KB / 8-way.
    """
    if tensors <= 0 or lines_per_tensor <= 0 or iterations <= 0:
        raise ConfigError("tensors, lines_per_tensor and iterations must be positive")
    if vec.enabled():
        return _mee_geometry_batched(
            capacity_kib=capacity_kib,
            ways=ways,
            tensors=tensors,
            lines_per_tensor=lines_per_tensor,
            iterations=iterations,
            seed=seed,
        )
    cache = MetadataCache(capacity_bytes=capacity_kib * KiB, ways=ways)
    vn_lines = tensors * lines_per_tensor
    levels = _tree_levels(vn_lines)
    rng = random.Random(seed)
    covered_total = 0.0
    covered_samples = 0
    order = list(range(tensors))
    for _ in range(iterations):
        rng.shuffle(order)
        for tensor in order:
            base = tensor * lines_per_tensor
            for offset in range(lines_per_tensor):
                index = base + offset
                # Read path: VN + MAC fetch, tree walk to the covered level.
                cache.access(MetadataKind.VN, index)
                cache.access(MetadataKind.MAC, index)
                covered = cache.covered_level(index, levels)
                covered_total += covered
                covered_samples += 1
                node = index
                for level in range(1, covered + 1):
                    node //= 8
                    cache.access(MetadataKind.TREE, node, level=level)
                # Write-back of the updated line: VN bump + fresh MAC,
                # then the tree path re-hashes up to the root.
                cache.access(MetadataKind.VN, index, write=True)
                cache.access(MetadataKind.MAC, index, write=True)
                node = index
                for level in range(1, levels):
                    node //= 8
                    cache.access(MetadataKind.TREE, node, level=level, write=True)
    counters = dict(cache.stats.flat())
    kind_hit_rates: Dict[str, float] = {}
    accesses = 0
    for kind in ("vn", "mac", "tree"):
        hits = counters.get(f"metadata_cache.{kind}_hits", 0.0)
        misses = counters.get(f"metadata_cache.{kind}_misses", 0.0)
        total = hits + misses
        kind_hit_rates[kind] = hits / total if total else 0.0
        accesses += int(total)
    return MeeGeometryResult(
        capacity_kib=capacity_kib,
        ways=ways,
        capacity_lines=capacity_kib * KiB // 64,
        vn_lines=vn_lines,
        levels=levels,
        accesses=accesses,
        hit_rate=cache.hit_rate,
        kind_hit_rates=kind_hit_rates,
        mean_covered_level=covered_total / max(covered_samples, 1),
    )


# Metadata keys in _mee_geometry_batched live in the MetadataCache synthetic
# *line-index* space: synthetic_addr // 64 = (kind*8 + level) << 34 + index,
# so the batched pass replays the exact set/tag stream the scalar
# MetadataCache reference sees.
_KEY_SHIFT = 34
_MAC_BASE = (MetadataKind.MAC.value * 8) << _KEY_SHIFT


def _mee_geometry_batched(
    capacity_kib: int,
    ways: int,
    tensors: int,
    lines_per_tensor: int,
    iterations: int,
    seed: int,
) -> MeeGeometryResult:
    """Batched twin of the ``mee_cache_geometry`` scalar loop.

    The shuffled per-iteration line order is precomputed as one NumPy
    expression; the cache replay itself is state-serial, so it runs as a
    tight loop over :class:`repro.mem.cache.LruCacheCore` with the
    touch/probe bodies inlined — no synthetic-address reconstruction, no
    ``Stats`` call and no enum dispatch per touch. The returned result is
    bit-identical to the scalar reference.
    """
    np = vec.np
    vn_lines = tensors * lines_per_tensor
    levels = _tree_levels(vn_lines)
    rng = random.Random(seed)
    order = list(range(tensors))
    offsets = np.arange(lines_per_tensor, dtype=np.int64)[None, :]
    stream: list = []
    for _ in range(iterations):
        rng.shuffle(order)
        bases = np.asarray(order, dtype=np.int64)[:, None] * lines_per_tensor
        stream.extend((bases + offsets).ravel().tolist())

    core = LruCacheCore.for_cache(capacity_kib * KiB, ways=ways)
    sets = core.sets
    n_sets = core.n_sets
    tree_base = [(MetadataKind.TREE.value * 8 + lvl) << _KEY_SHIFT for lvl in range(levels + 1)]
    vn_hits = vn_misses = mac_hits = mac_misses = tree_hits = tree_misses = 0
    covered_total = 0
    for index in stream:
        # Read path: VN + MAC fetch, tree walk to the covered level.
        cache_set = sets[index % n_sets]
        tag = index // n_sets
        dirty = cache_set.pop(tag, None)
        if dirty is not None:
            cache_set[tag] = dirty
            vn_hits += 1
        else:
            if len(cache_set) >= ways:
                cache_set.pop(next(iter(cache_set)))
            cache_set[tag] = False
            vn_misses += 1
        key = _MAC_BASE + index
        cache_set = sets[key % n_sets]
        tag = key // n_sets
        dirty = cache_set.pop(tag, None)
        if dirty is not None:
            cache_set[tag] = dirty
            mac_hits += 1
        else:
            if len(cache_set) >= ways:
                cache_set.pop(next(iter(cache_set)))
            cache_set[tag] = False
            mac_misses += 1
        # Covered-level probe: presence only, no LRU update, no counters.
        covered = levels
        node = index
        for level in range(1, levels):
            node //= 8
            key = tree_base[level] + node
            if key // n_sets in sets[key % n_sets]:
                covered = level
                break
        covered_total += covered
        node = index
        for level in range(1, covered + 1):
            node //= 8
            key = tree_base[level] + node
            cache_set = sets[key % n_sets]
            tag = key // n_sets
            dirty = cache_set.pop(tag, None)
            if dirty is not None:
                cache_set[tag] = dirty
                tree_hits += 1
            else:
                if len(cache_set) >= ways:
                    cache_set.pop(next(iter(cache_set)))
                cache_set[tag] = False
                tree_misses += 1
        # Write-back of the updated line: VN bump + fresh MAC,
        # then the tree path re-hashes up to the root.
        cache_set = sets[index % n_sets]
        tag = index // n_sets
        dirty = cache_set.pop(tag, None)
        if dirty is not None:
            cache_set[tag] = True
            vn_hits += 1
        else:
            if len(cache_set) >= ways:
                cache_set.pop(next(iter(cache_set)))
            cache_set[tag] = True
            vn_misses += 1
        key = _MAC_BASE + index
        cache_set = sets[key % n_sets]
        tag = key // n_sets
        dirty = cache_set.pop(tag, None)
        if dirty is not None:
            cache_set[tag] = True
            mac_hits += 1
        else:
            if len(cache_set) >= ways:
                cache_set.pop(next(iter(cache_set)))
            cache_set[tag] = True
            mac_misses += 1
        node = index
        for level in range(1, levels):
            node //= 8
            key = tree_base[level] + node
            cache_set = sets[key % n_sets]
            tag = key // n_sets
            dirty = cache_set.pop(tag, None)
            if dirty is not None:
                cache_set[tag] = True
                tree_hits += 1
            else:
                if len(cache_set) >= ways:
                    cache_set.pop(next(iter(cache_set)))
                cache_set[tag] = True
                tree_misses += 1

    hits = vn_hits + mac_hits + tree_hits
    total = hits + vn_misses + mac_misses + tree_misses
    kind_hit_rates = {
        "vn": vn_hits / (vn_hits + vn_misses) if vn_hits + vn_misses else 0.0,
        "mac": mac_hits / (mac_hits + mac_misses) if mac_hits + mac_misses else 0.0,
        "tree": tree_hits / (tree_hits + tree_misses) if tree_hits + tree_misses else 0.0,
    }
    return MeeGeometryResult(
        capacity_kib=capacity_kib,
        ways=ways,
        capacity_lines=capacity_kib * KiB // 64,
        vn_lines=vn_lines,
        levels=levels,
        accesses=total,
        hit_rate=hits / total if total else 0.0,
        kind_hit_rates=kind_hit_rates,
        mean_covered_level=covered_total / max(len(stream), 1),
    )


def render_mee(result: MeeGeometryResult) -> str:
    table = ascii_table(
        ["capacity", "ways", "VN hit", "MAC hit", "tree hit", "all", "covered lvl"],
        [
            (
                f"{result.capacity_kib} KiB",
                result.ways,
                pct(result.kind_hit_rates["vn"]),
                pct(result.kind_hit_rates["mac"]),
                pct(result.kind_hit_rates["tree"]),
                pct(result.hit_rate),
                fmt(result.mean_covered_level),
            )
        ],
    )
    return (
        "Scenario — MEE metadata-cache geometry "
        f"({result.vn_lines} VN lines, {result.levels}-level tree, "
        f"{result.accesses} accesses)\n\n" + table
    )


# -- mac_policy ---------------------------------------------------------------

POLICIES = ("eager", "delayed")


@dataclass(frozen=True)
class MacPolicyResult:
    """One (granularity, verification policy) trade-off point."""

    scheme: str
    granule_bytes: int
    policy: str
    model: str
    storage_overhead: float
    traffic_overhead: float
    stall_overhead: float
    perf_overhead: float
    base_iteration_s: float

    @property
    def secure_iteration_s(self) -> float:
        return self.base_iteration_s * (1.0 + self.perf_overhead)

    def as_dict(self) -> dict:
        return {
            "scheme": self.scheme,
            "granule_bytes": self.granule_bytes,
            "policy": self.policy,
            "model": self.model,
            "storage_overhead": self.storage_overhead,
            "traffic_overhead": self.traffic_overhead,
            "stall_overhead": self.stall_overhead,
            "perf_overhead": self.perf_overhead,
            "base_iteration_s": self.base_iteration_s,
            "secure_iteration_s": self.secure_iteration_s,
        }


@experiment(
    "mac_policy",
    tags=("scenario", "npu", "sweep"),
    cost="fast",
    render="render_mac",
)
def mac_policy(
    granule_bytes: int = 512, policy: str = "eager", preset: str = "2.8b"
) -> MacPolicyResult:
    """Storage/perf trade-off of one MAC granularity under one policy.

    ``granule_bytes=0`` is the tensor-wise scheme; ``policy`` picks eager
    (consume-after-verify, Fig. 20's axis) or delayed (poison-tracked)
    verification. Fig. 20 only ever pairs delayed with tensor-wise; the
    full cross product is the off-paper scenario.
    """
    if policy not in POLICIES:
        raise ConfigError(f"unknown policy {policy!r}; known: {', '.join(POLICIES)}")
    config = NpuConfig()
    label = "tensor" if granule_bytes == 0 else f"{granule_bytes}B"
    scheme = MacScheme(f"{label}/{policy}", granule_bytes, delayed=policy == "delayed")
    model = scaled_model(preset)
    return MacPolicyResult(
        scheme=scheme.name,
        granule_bytes=granule_bytes,
        policy=policy,
        model=model.name,
        storage_overhead=scheme.storage_overhead(),
        traffic_overhead=scheme.traffic_overhead(),
        stall_overhead=scheme.stall_overhead(config),
        perf_overhead=scheme.performance_overhead(config),
        base_iteration_s=iteration_time_s(config, model),
    )


# -- attention_layout ---------------------------------------------------------


@dataclass(frozen=True)
class AttentionLayoutResult:
    """TenAnalyzer behaviour on one (layout, head_dim) attention point."""

    layout: str
    head_dim: int
    n_heads: int
    seq_len: int
    stride_detect: bool
    accesses: int
    trace_lines: int
    covered_fraction: float  #: distinct trace lines under a Meta Table entry
    hit_in: float
    hit_boundary: float
    hit_all: float
    write_violations: int
    insertions: int
    insertions_strided: int
    merges: int
    n_entries: int
    n_strided_entries: int

    def as_dict(self) -> dict:
        return {
            "layout": self.layout,
            "head_dim": self.head_dim,
            "n_heads": self.n_heads,
            "seq_len": self.seq_len,
            "stride_detect": self.stride_detect,
            "accesses": self.accesses,
            "trace_lines": self.trace_lines,
            "covered_fraction": self.covered_fraction,
            "hit_in": self.hit_in,
            "hit_boundary": self.hit_boundary,
            "hit_all": self.hit_all,
            "write_violations": self.write_violations,
            "insertions": self.insertions,
            "insertions_strided": self.insertions_strided,
            "merges": self.merges,
            "n_entries": self.n_entries,
            "n_strided_entries": self.n_strided_entries,
        }


def _covered_fraction(analyzer: TenAnalyzer, vaddrs) -> tuple[int, float]:
    """(distinct trace lines, fraction covered by resident entries)."""
    lines = {va - va % CACHELINE_BYTES for va in vaddrs}
    covered = sum(1 for va in lines if analyzer.table.entry_of(va) is not None)
    return len(lines), covered / len(lines) if lines else 0.0


@experiment(
    "attention_layout",
    tags=("scenario", "cpu", "sweep"),
    cost="fast",
    render="render_attention",
)
def attention_layout(
    layout: str = "head_major",
    head_dim: int = 64,
    n_heads: int = 8,
    seq_len: int = 128,
    block_q: int = 32,
    block_k: int = 32,
    stride_detect: bool = False,
) -> AttentionLayoutResult:
    """Replay one blockwise attention layer through the TenAnalyzer.

    ``head_major`` storage gives each head a private contiguous block, so
    per-head streams satisfy the paper's line-contiguity condition;
    ``interleaved`` storage (fused-projection feature dim) makes each
    head's stream run ``head_dim`` elements then skip the other heads —
    short runs the Tensor Filter cannot collect once the run drops below
    its collect target. The online-softmax rescale also rewrites O lines
    once per key block, so covering entries trip Assert1.
    """
    config = AttentionConfig(
        n_heads=n_heads,
        seq_len=seq_len,
        head_dim=head_dim,
        block_q=block_q,
        block_k=block_k,
    )
    registry = TensorRegistry(guard_bytes=PAGE_BYTES)
    tensors = build_attention_tensors(registry, config, layout)
    batch = attention_batch(tensors, config)
    vaddrs, kinds, _, _ = batch.columns()
    analyzer = TenAnalyzer(stride_detect=stride_detect)
    analyzer.replay_window(vaddrs, kinds)
    rates = analyzer.hit_rates()
    trace_lines, covered = _covered_fraction(analyzer, vaddrs)
    table_stats = analyzer.table.stats
    return AttentionLayoutResult(
        layout=layout,
        head_dim=head_dim,
        n_heads=n_heads,
        seq_len=seq_len,
        stride_detect=stride_detect,
        accesses=len(batch),
        trace_lines=trace_lines,
        covered_fraction=covered,
        hit_in=rates["hit_in"],
        hit_boundary=rates["hit_boundary"],
        hit_all=rates["hit_all"],
        write_violations=int(analyzer.stats["write_violation"]),
        insertions=int(table_stats["insertions"]),
        insertions_strided=int(table_stats["insertions_strided"]),
        merges=int(table_stats["merges"]),
        n_entries=analyzer.table.n_entries,
        n_strided_entries=analyzer.table.n_strided_entries,
    )


def render_attention(result: AttentionLayoutResult) -> str:
    table = ascii_table(
        ["layout", "head dim", "hit_in", "hit_all", "covered", "violations", "merges"],
        [
            (
                result.layout,
                result.head_dim,
                pct(result.hit_in),
                pct(result.hit_all),
                pct(result.covered_fraction),
                result.write_violations,
                result.merges,
            )
        ],
    )
    return (
        "Scenario — TenAnalyzer on a blockwise attention pass "
        f"({result.n_heads} heads, seq {result.seq_len}, "
        f"stride_detect={'on' if result.stride_detect else 'off'}, "
        f"{result.accesses} accesses)\n\n" + table
    )


# -- stride_detection ---------------------------------------------------------


@dataclass(frozen=True)
class StrideDetectionResult:
    """Detection accuracy on one constant-stride walk."""

    stride_lines: int
    rows: int
    detect: bool
    trace_lines: int
    covered_fraction: float  #: after the cold (detection) pass
    hit_all: float  #: warm-pass read hit rate
    detections: int
    stride_locks: int
    insertions_strided: int
    merges: int

    def as_dict(self) -> dict:
        return {
            "stride_lines": self.stride_lines,
            "rows": self.rows,
            "detect": self.detect,
            "trace_lines": self.trace_lines,
            "covered_fraction": self.covered_fraction,
            "hit_all": self.hit_all,
            "detections": self.detections,
            "stride_locks": self.stride_locks,
            "insertions_strided": self.insertions_strided,
            "merges": self.merges,
        }


@experiment(
    "stride_detection",
    tags=("scenario", "cpu", "sweep"),
    cost="fast",
    render="render_stride",
)
def stride_detection(
    stride_lines: int = 1, rows: int = 256, detect: bool = True
) -> StrideDetectionResult:
    """Cold + warm read passes over a stride-``stride_lines`` line walk.

    The walk is a width-one-line column slice of a ``(rows, stride_lines
    * elems_per_line)`` tensor: one line per row, consecutive lines
    ``stride_lines`` apart (``stride_lines=1`` degenerates to the
    contiguous stream every prior experiment used). The cold pass feeds
    detection; ``covered_fraction`` is how much of the walk ends up under
    Meta Table entries, and ``hit_all`` is the warm-pass hit rate those
    entries buy.
    """
    if stride_lines <= 0 or rows <= 0:
        raise ConfigError("stride_lines and rows must be positive")
    elems_per_line = CACHELINE_BYTES // DType.FP32.nbytes
    registry = TensorRegistry(guard_bytes=PAGE_BYTES)
    storage = registry.allocate(
        "stride.walk", (rows, stride_lines * elems_per_line), DType.FP32
    )
    view = storage.slice_(1, 0, elems_per_line, name="stride.walk.col")
    vaddrs = list(view.line_addresses())
    kinds = [KIND_READ] * len(vaddrs)
    analyzer = TenAnalyzer(stride_detect=detect)
    analyzer.replay_window(vaddrs, kinds)  # cold: detection
    trace_lines, covered = _covered_fraction(analyzer, vaddrs)
    analyzer.reset_rate_counters()
    analyzer.replay_window(vaddrs, kinds)  # warm: measure the benefit
    return StrideDetectionResult(
        stride_lines=stride_lines,
        rows=rows,
        detect=detect,
        trace_lines=trace_lines,
        covered_fraction=covered,
        hit_all=analyzer.hit_rates()["hit_all"],
        detections=int(analyzer.filter.stats["detections"]),
        stride_locks=int(analyzer.filter.stats["stride_locks"]),
        insertions_strided=int(analyzer.table.stats["insertions_strided"]),
        merges=int(analyzer.table.stats["merges"]),
    )


def render_stride(result: StrideDetectionResult) -> str:
    table = ascii_table(
        ["stride (lines)", "detect", "covered", "warm hit_all", "detections", "merges"],
        [
            (
                result.stride_lines,
                "on" if result.detect else "off",
                pct(result.covered_fraction),
                pct(result.hit_all),
                result.detections,
                result.merges,
            )
        ],
    )
    return (
        "Scenario — stream detection vs line stride "
        f"({result.rows} lines walked)\n\n" + table
    )


def render_mac(result: MacPolicyResult) -> str:
    table = ascii_table(
        ["scheme", "storage", "traffic", "stall", "perf overhead", "iteration (s)"],
        [
            (
                result.scheme,
                pct(result.storage_overhead),
                pct(result.traffic_overhead),
                pct(result.stall_overhead),
                pct(result.perf_overhead),
                fmt(result.secure_iteration_s, 3),
            )
        ],
    )
    return (
        "Scenario — MAC granularity x verification policy "
        f"(model {result.model})\n\n" + table
    )
