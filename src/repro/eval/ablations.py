"""Ablation studies for the design choices DESIGN.md calls out.

1. **Meta Table capacity** — Sec. 6.2's scalability limitation: "if an
   algorithm involves more than 512 tensors, the performance improvement
   gradually diminishes". We sweep the tensor-count-to-capacity ratio and
   report the steady-state hit_in.
2. **Replacement policy** — pseudo-random vs strict LRU under cyclic reuse
   (why the Meta Table needs random replacement).
3. **Merge triggering** — merge window size vs convergence speed.
4. **EnTMF off** — the whole unit disabled (non-tensor application mode):
   everything misses, performance falls back to the SGX path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.cpu.adam import AdamExperiment, AdamExperimentConfig
from repro.eval.registry import experiment
from repro.eval.tables import ascii_table, fmt


@dataclass(frozen=True)
class AblationRow:
    label: str
    hit_in_early: float  # iteration 1
    hit_in_late: float  # final iteration
    entries: int


def _run(config: AdamExperimentConfig, iterations: int = 8) -> AblationRow:
    experiment = AdamExperiment(config)
    records = experiment.run(iterations)
    return AblationRow(
        label="",
        hit_in_early=records[1].hit_in,
        hit_in_late=records[-1].hit_in,
        entries=records[-1].n_entries,
    )


@experiment(
    "ablation_capacity", tags=("ablation", "cpu"), cost="slow", render="render_capacity"
)
def capacity_sweep(iterations: int = 8) -> List[AblationRow]:
    """Steady-state hit rates as tensor count outgrows the Meta Table."""
    rows = []
    for n_layers, capacity in ((8, 512), (16, 512), (24, 288), (24, 160), (32, 160)):
        config = AdamExperimentConfig(
            n_layers=n_layers,
            lines_per_tensor=32,
            threads=8,
            meta_table_capacity=capacity,
            merge_window=4,
            install_transfer_descriptors=True,
        )
        tensors = n_layers * 5
        row = _run(config, iterations)
        rows.append(
            AblationRow(
                label=f"{tensors} tensors / {capacity} entries",
                hit_in_early=row.hit_in_early,
                hit_in_late=row.hit_in_late,
                entries=row.entries,
            )
        )
    return rows


@experiment(
    "ablation_replacement",
    tags=("ablation", "cpu"),
    cost="slow",
    render="render_replacement",
)
def replacement_sweep(iterations: int = 8) -> List[AblationRow]:
    """Random vs LRU replacement under shard-entry pressure."""
    from repro.cpu.adam import AdamExperiment

    rows = []
    for policy in ("random", "lru"):
        config = AdamExperimentConfig(
            n_layers=24,
            lines_per_tensor=32,
            threads=8,
            meta_table_capacity=288,
            merge_window=4,
        )
        experiment = AdamExperiment(config)
        experiment.analyzer.table.replacement = policy
        records = experiment.run(iterations)
        rows.append(
            AblationRow(
                label=policy,
                hit_in_early=records[1].hit_in,
                hit_in_late=records[-1].hit_in,
                entries=records[-1].n_entries,
            )
        )
    return rows


@experiment(
    "ablation_merge_window",
    tags=("ablation", "cpu"),
    cost="slow",
    render="render_merge_window",
)
def merge_window_sweep(iterations: int = 8) -> List[AblationRow]:
    """Convergence speed vs merge window size."""
    rows = []
    for window in (2, 4, 8, 16):
        config = AdamExperimentConfig(
            n_layers=24,
            lines_per_tensor=32,
            threads=8,
            meta_table_capacity=288,
            merge_window=window,
            install_transfer_descriptors=True,
        )
        row = _run(config, iterations)
        rows.append(
            AblationRow(
                label=f"window={window}",
                hit_in_early=row.hit_in_early,
                hit_in_late=row.hit_in_late,
                entries=row.entries,
            )
        )
    return rows


@experiment(
    "ablation_entmf", tags=("ablation", "cpu"), cost="fast", render="render_entmf"
)
def entmf_disabled(iterations: int = 3) -> AblationRow:
    """Tensor-wise management disabled: the SGX fallback path."""
    config = AdamExperimentConfig(
        n_layers=8, lines_per_tensor=32, threads=4, meta_table_capacity=512
    )
    experiment = AdamExperiment(config)
    experiment.analyzer.enabled = False
    records = experiment.run(iterations)
    return AblationRow(
        label="EnTMF=0",
        hit_in_early=records[1].hit_in,
        hit_in_late=records[-1].hit_in,
        entries=records[-1].n_entries,
    )


def render(rows: List[AblationRow], title: str) -> str:
    table = ascii_table(
        ["configuration", "hit_in @1", "hit_in final", "entries"],
        [(r.label, fmt(r.hit_in_early, 3), fmt(r.hit_in_late, 3), r.entries) for r in rows],
    )
    return f"{title}\n\n{table}"


# Single-argument renderers the registry resolves by name (one per study).

def render_capacity(rows: List[AblationRow]) -> str:
    return render(rows, "Ablation — tensors vs Meta Table capacity")


def render_replacement(rows: List[AblationRow]) -> str:
    return render(rows, "Ablation — Meta Table replacement policy")


def render_merge_window(rows: List[AblationRow]) -> str:
    return render(rows, "Ablation — merge window size")


def render_entmf(row: AblationRow) -> str:
    return render([row], "Ablation — EnTMF disabled")
