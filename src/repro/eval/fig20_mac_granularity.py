"""Figure 20: NPU performance and storage vs MAC granularity.

Paper shape: storage falls with granularity; performance overhead dips
around 256 B then climbs to ~13% at 4 KB (verification stalls); TensorTEE's
tensor-wise delayed scheme pays ~2.5% with negligible storage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.eval.registry import experiment
from repro.eval.tables import ascii_table, pct
from repro.npu.config import NpuConfig
from repro.npu.mac import fig20_schemes


@dataclass(frozen=True)
class Fig20Row:
    scheme: str
    granule_bytes: int
    storage_overhead: float
    perf_overhead: float


@dataclass(frozen=True)
class Fig20Result:
    rows: List[Fig20Row]

    def row(self, name: str) -> Fig20Row:
        for row in self.rows:
            if row.scheme == name:
                return row
        raise KeyError(name)


@experiment("fig20_mac_granularity", tags=("paper", "figure", "npu"), cost="fast")
def run(config: NpuConfig | None = None) -> Fig20Result:
    config = config if config is not None else NpuConfig()
    rows = []
    for scheme in fig20_schemes():
        rows.append(
            Fig20Row(
                scheme=scheme.name,
                granule_bytes=scheme.granule_bytes,
                storage_overhead=scheme.storage_overhead(),
                perf_overhead=scheme.performance_overhead(config),
            )
        )
    return Fig20Result(rows=rows)


def render(result: Fig20Result) -> str:
    table = ascii_table(
        ["MAC granularity", "storage overhead", "perf overhead"],
        [(r.scheme, pct(r.storage_overhead), pct(r.perf_overhead)) for r in result.rows],
    )
    return (
        "Figure 20 — MAC granularity sweep (NPU)\n"
        "(paper: ~11-12% at 64B, dip near 256B, 13% at 4KB; ours 2.5%, ~0 storage)\n\n"
        + table
    )
