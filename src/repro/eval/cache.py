"""Content-hash result cache for experiment runs.

A cache entry is keyed on ``(experiment name, normalized params, seed,
source digest)`` where the source digest covers every ``.py`` file in the
``repro`` package — any change to the models invalidates every entry, a
param change invalidates exactly the experiments it reaches, and re-running
an unchanged experiment is a metadata read instead of a multi-second
simulation. Entries live under ``<results>/.cache/`` as one JSON file each
so they survive across processes and are trivially inspectable.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.eval.tables import results_dir

#: Bump when the cache entry layout changes; old entries then miss cleanly.
CACHE_SCHEMA = 1


def source_digest() -> str:
    """SHA-256 over every ``.py`` file of the installed ``repro`` package.

    Deterministic: files are walked in sorted relative-path order and the
    path itself is folded into the hash, so renames invalidate too.
    """
    import repro

    root = os.path.dirname(os.path.abspath(repro.__file__))
    digest = hashlib.sha256()
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            digest.update(os.path.relpath(path, root).encode())
            with open(path, "rb") as f:
                digest.update(f.read())
    return digest.hexdigest()


def cache_key(name: str, params: Dict[str, Any], seed: int, digest: str) -> str:
    """Stable hex key for one (experiment, params, seed, source) tuple."""
    payload = json.dumps(
        {"schema": CACHE_SCHEMA, "name": name, "params": params,
         "seed": seed, "source": digest},
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:20]


@dataclass(frozen=True)
class CacheEntry:
    """A previously executed experiment, ready to replay."""

    name: str
    key: str
    text: str
    elapsed_s: float
    seed: int
    params: Dict[str, Any]
    summary: Optional[dict] = None


class ResultCache:
    """Filesystem-backed cache of rendered experiment outputs."""

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = root if root is not None else os.path.join(results_dir(), ".cache")

    def _path(self, name: str, key: str) -> str:
        return os.path.join(self.root, f"{name}-{key}.json")

    def load(self, name: str, key: str) -> Optional[CacheEntry]:
        """Return the entry for ``key``, or None on miss/corruption."""
        path = self._path(name, key)
        try:
            with open(path, "r", encoding="utf-8") as f:
                record = json.load(f)
        except (OSError, ValueError):
            return None
        if record.get("schema") != CACHE_SCHEMA or record.get("key") != key:
            return None
        return CacheEntry(
            name=record["name"],
            key=record["key"],
            text=record["text"],
            elapsed_s=record["elapsed_s"],
            seed=record["seed"],
            params=record["params"],
            summary=record.get("summary"),
        )

    def store(self, entry: CacheEntry) -> str:
        """Persist ``entry``; returns the file path."""
        os.makedirs(self.root, exist_ok=True)
        path = self._path(entry.name, entry.key)
        record = {
            "schema": CACHE_SCHEMA,
            "name": entry.name,
            "key": entry.key,
            "text": entry.text,
            "elapsed_s": entry.elapsed_s,
            "seed": entry.seed,
            "params": entry.params,
            "summary": entry.summary,
        }
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as f:
            json.dump(record, f, indent=1)
            # The run journal records a point as done only after its cache
            # entry is durable, so fsync before the atomic rename — a crash
            # must never leave a journaled success without a replayable entry.
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
        return path

    def clear(self) -> int:
        """Delete all cache entries; returns how many were removed."""
        if not os.path.isdir(self.root):
            return 0
        removed = 0
        for filename in os.listdir(self.root):
            if filename.endswith(".json") or filename.endswith(".tmp"):
                os.unlink(os.path.join(self.root, filename))
                removed += 1
        return removed
