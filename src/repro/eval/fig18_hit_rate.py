"""Figure 18: Meta Table hit rates across optimizer iterations.

Paper shape: hit_all is high after a single iteration (detection essentially
complete); hit_in converges gradually (~80% by iteration 5, ~95% by 20) as
entry merging consolidates the per-core shard entries below table capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.cpu.adam import AdamExperiment, AdamExperimentConfig, IterationStats
from repro.eval.registry import experiment


#: Scaled configuration with the capacity pressure that makes convergence
#: gradual: 24 layers x 5 buffers sharded over 8 threads start far above the
#: scaled capacity and consolidate across iterations.
FIG18_CONFIG = AdamExperimentConfig(
    n_layers=24,
    lines_per_tensor=64,
    threads=8,
    meta_table_capacity=288,
    merge_window=4,
    install_transfer_descriptors=True,
    seed=2024,
)


@dataclass(frozen=True)
class Fig18Result:
    records: List[IterationStats]

    def hit_in_at(self, iteration: int) -> float:
        return self.records[iteration].hit_in

    @property
    def final_hit_all(self) -> float:
        return self.records[-1].hit_all


@experiment("fig18_hit_rate", tags=("paper", "figure", "cpu"), cost="slow")
def run(iterations: int = 20, config: AdamExperimentConfig = FIG18_CONFIG) -> Fig18Result:
    experiment = AdamExperiment(config)
    return Fig18Result(records=experiment.run(iterations))


def render(result: Fig18Result) -> str:
    from repro.eval.tables import ascii_table, fmt

    table = ascii_table(
        ["iteration", "hit_in", "hit_boundary", "hit_all", "entries", "evictions"],
        [
            (r.iteration, fmt(r.hit_in, 3), fmt(r.hit_boundary, 3),
             fmt(r.hit_all, 3), r.n_entries, int(r.evictions))
            for r in result.records
        ],
    )
    return (
        "Figure 18 — Meta Table hit rate vs iteration (scaled functional run)\n"
        "(paper: hit_all ~1 after one iteration; hit_in converges to ~0.95)\n\n"
        + table
    )
