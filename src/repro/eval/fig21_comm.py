"""Figure 21: gradient-transfer breakdown, baseline vs TensorTEE.

Paper shape: the baseline pays re-encryption + transfer + decryption,
serialized against computation; TensorTEE removes the AES passes and hides
the transfer under backward (reported improvement: ~18.7x).

We report two accountings: *busy* (total channel/engine occupancy) and
*exposed* (non-overlapped time added to the iteration). The paper's 18.7x
falls between them — see EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.comm.scheduler import CommConfig, direct_transfer, graviton_transfer
from repro.core.config import tensortee_system
from repro.core.system import CollaborativeSystem
from repro.eval.registry import experiment
from repro.eval.tables import ascii_table, fmt
from repro.workloads.models import MODEL_ZOO, ModelConfig
from repro.workloads.zero_offload import ZeroOffloadSchedule


@dataclass(frozen=True)
class Fig21Row:
    model: str
    reenc_s: float
    link_s: float
    dec_s: float
    ours_busy_s: float
    ours_exposed_s: float

    @property
    def baseline_total_s(self) -> float:
        return self.reenc_s + self.link_s + self.dec_s

    @property
    def busy_improvement(self) -> float:
        return self.baseline_total_s / max(self.ours_busy_s, 1e-12)

    @property
    def exposed_improvement(self) -> float:
        return self.baseline_total_s / max(self.ours_exposed_s, 1e-12)


@dataclass(frozen=True)
class Fig21Result:
    rows: List[Fig21Row]

    @property
    def mean_busy_improvement(self) -> float:
        return sum(r.busy_improvement for r in self.rows) / len(self.rows)

    @property
    def mean_exposed_improvement(self) -> float:
        return sum(r.exposed_improvement for r in self.rows) / len(self.rows)


@experiment("fig21_comm", tags=("paper", "figure", "comm"), cost="slow")
def run(models: tuple[ModelConfig, ...] = MODEL_ZOO) -> Fig21Result:
    comm = CommConfig()
    ours_system = CollaborativeSystem(tensortee_system())
    rows = []
    for model in models:
        schedule = ZeroOffloadSchedule(model)
        volumes = schedule.volumes()
        grad_overlap, _ = schedule.overlap_fractions()
        baseline = graviton_transfer(comm, volumes.grad_bytes, sender_is_npu=True)
        breakdown = ours_system.iteration_breakdown(model)
        grad_window = breakdown.npu_s * (2.0 / 3.0) + breakdown.cpu_s * 0.8
        ours = direct_transfer(
            comm, volumes.grad_bytes, grad_overlap, grad_window,
            n_tensors=max(1, model.n_layers),
        )
        rows.append(
            Fig21Row(
                model=model.name,
                reenc_s=baseline.reenc_s,
                link_s=baseline.link_s,
                dec_s=baseline.dec_s,
                ours_busy_s=ours.busy_s,
                ours_exposed_s=ours.exposed_s,
            )
        )
    return Fig21Result(rows=rows)


def render(result: Fig21Result) -> str:
    table = ascii_table(
        ["model", "base re-enc (s)", "base link (s)", "base dec (s)",
         "base total (s)", "ours busy (s)", "ours exposed (s)", "x(busy)", "x(exposed)"],
        [
            (r.model, fmt(r.reenc_s, 3), fmt(r.link_s, 3), fmt(r.dec_s, 3),
             fmt(r.baseline_total_s, 3), fmt(r.ours_busy_s, 3),
             fmt(r.ours_exposed_s, 4), fmt(r.busy_improvement, 1),
             fmt(r.exposed_improvement, 1))
            for r in result.rows
        ],
    )
    return (
        "Figure 21 — gradient transfer breakdown (baseline vs TensorTEE)\n"
        f"(paper: ~18.7x improvement; ours: {result.mean_busy_improvement:.1f}x busy / "
        f"{result.mean_exposed_improvement:.0f}x exposed)\n\n" + table
    )
