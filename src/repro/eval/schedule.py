"""Deterministic schedule solver: bin-pack points onto slots by predicted cost.

Following the declarative-solve framing (state the schedule explicitly,
keep it inspectable), this module turns a point set plus a
:class:`repro.eval.cost.CostModel` into an explicit assignment problem:
pack N points onto K slots (pool workers, fleet shards) to minimize the
predicted makespan. The solver is greedy LPT (longest processing time
first onto the least-loaded slot) — pure Python, O(n log n),
deterministic — **guarded by the round-robin baseline**: LPT is a 4/3
approximation but is not universally better than round-robin on every
cost vector, so :func:`solve_assignment` computes both and keeps
whichever has the smaller makespan. Planned makespan <= round-robin
makespan therefore holds by construction.

The plan is emitted as ``schedule.json`` (see :func:`SchedulePlan.document`
for the layout): per-slot point assignment with per-point predicted
seconds and provenance, predicted vs round-robin makespan, and an
``actual`` section filled in post-run by :func:`fill_actuals` so
predicted-vs-actual drift is a grep away. :func:`check_schedule`
validates a document (every point exactly once, makespans consistent)
and is shared by the tests and the nightly CI gate.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.errors import ConfigError
from repro.eval.cost import CostModel
from repro.eval.registry import REGISTRY

#: schedule.json layout version; bump on breaking changes.
SCHEDULE_SCHEMA = 1

SCHEDULE_KIND = "repro-schedule"


def makespan(costs: Sequence[float], assignment: Sequence[int], slots: int) -> float:
    """The busiest slot's total predicted seconds under ``assignment``."""
    loads = [0.0] * slots
    for cost, slot in zip(costs, assignment):
        loads[slot] += cost
    return max(loads) if loads else 0.0


def lpt_assignment(costs: Sequence[float], slots: int) -> List[int]:
    """Greedy LPT: longest point first, onto the least-loaded slot.

    Ties (equal costs, equal loads) break on the lower index, so the
    assignment is a pure function of the cost vector.
    """
    if slots < 1:
        raise ConfigError(f"slots must be >= 1, got {slots}")
    loads = [0.0] * slots
    assignment = [0] * len(costs)
    for index in sorted(range(len(costs)), key=lambda i: (-costs[i], i)):
        slot = min(range(slots), key=lambda k: (loads[k], k))
        assignment[index] = slot
        loads[slot] += costs[index]
    return assignment


def round_robin_assignment(count: int, slots: int) -> List[int]:
    """The naive baseline: point ``i`` on slot ``i % slots``.

    Matches the sweep engine's default ``--shard K/N`` partition, which
    is what ``--balance cost`` must beat (or match) to be worth using.
    """
    if slots < 1:
        raise ConfigError(f"slots must be >= 1, got {slots}")
    return [i % slots for i in range(count)]


def round_robin_makespan(costs: Sequence[float], slots: int) -> float:
    """Makespan of the naive round-robin partition."""
    return makespan(costs, round_robin_assignment(len(costs), slots), slots)


def solve_assignment(costs: Sequence[float], slots: int) -> List[int]:
    """Best of LPT and round-robin — never worse than the naive baseline."""
    lpt = lpt_assignment(costs, slots)
    rr = round_robin_assignment(len(costs), slots)
    if makespan(costs, lpt, slots) <= makespan(costs, rr, slots):
        return lpt
    return rr


@dataclass(frozen=True)
class PointTask:
    """One schedulable unit handed to the planner.

    ``label`` is the orchestrator/journal label (unique), ``point`` the
    short display id (a sweep's ``point_id``; equal to ``label`` when
    there is no shorter form), ``params`` the raw run() overrides (the
    cost model normalizes them itself).
    """

    label: str
    experiment: str
    point: str = ""
    params: Mapping[str, Any] = field(default_factory=dict)

    @property
    def display(self) -> str:
        return self.point or self.label


@dataclass
class SchedulePlan:
    """A solved assignment of :class:`PointTask`s onto slots."""

    sweep: str
    experiment: str
    slots: int
    tasks: List[PointTask]  #: matrix order (assignment indexes into this)
    costs: List[float]  #: predicted seconds per task
    sources: List[str]  #: estimate provenance per task
    assignment: List[int]  #: slot per task
    quick: bool = False
    limit: Optional[int] = None

    def predicted_makespan(self) -> float:
        return makespan(self.costs, self.assignment, self.slots)

    def baseline_makespan(self) -> float:
        return round_robin_makespan(self.costs, self.slots)

    def slot_points(self) -> List[List[int]]:
        """Task indices per slot, matrix order preserved within a slot."""
        slots: List[List[int]] = [[] for _ in range(self.slots)]
        for index, slot in enumerate(self.assignment):
            slots[slot].append(index)
        return slots

    def document(self) -> dict:
        """The ``schedule.json`` payload (schema :data:`SCHEDULE_SCHEMA`)."""
        slot_plans = []
        for slot, indices in enumerate(self.slot_points()):
            points = [
                {
                    "label": self.tasks[i].label,
                    "point": self.tasks[i].display,
                    "experiment": self.tasks[i].experiment,
                    "predicted_s": round(self.costs[i], 6),
                    "source": self.sources[i],
                    "actual_s": None,
                }
                for i in indices
            ]
            slot_plans.append(
                {
                    "slot": slot,
                    "predicted_s": round(sum(self.costs[i] for i in indices), 6),
                    "actual_s": None,
                    "points": points,
                }
            )
        source_counts: Dict[str, int] = {}
        for source in self.sources:
            source_counts[source] = source_counts.get(source, 0) + 1
        return {
            "schema": SCHEDULE_SCHEMA,
            "kind": SCHEDULE_KIND,
            "sweep": self.sweep,
            "experiment": self.experiment,
            "quick": self.quick,
            "limit": self.limit,
            "slots": self.slots,
            "n_points": len(self.tasks),
            "predicted_makespan_s": round(self.predicted_makespan(), 6),
            "round_robin_makespan_s": round(self.baseline_makespan(), 6),
            "cost_sources": source_counts,
            "slot_plan": slot_plans,
            "actual": {"filled": False, "makespan_s": None},
        }

    def write(self, path: str) -> str:
        return write_schedule(path, self.document())


def plan(
    tasks: Sequence[PointTask],
    model: CostModel,
    slots: int,
    *,
    sweep: str = "",
    experiment: str = "",
    quick: bool = False,
    limit: Optional[int] = None,
) -> SchedulePlan:
    """Solve the assignment of ``tasks`` onto ``slots`` under ``model``."""
    if slots < 1:
        raise ConfigError(f"slots must be >= 1, got {slots}")
    costs: List[float] = []
    sources: List[str] = []
    for task in tasks:
        estimate = model.predict(
            task.experiment, task.params, cost_class=_cost_class(task.experiment)
        )
        costs.append(estimate.seconds)
        sources.append(estimate.source)
    assignment = solve_assignment(costs, slots)
    return SchedulePlan(
        sweep=sweep,
        experiment=experiment,
        slots=slots,
        tasks=list(tasks),
        costs=costs,
        sources=sources,
        assignment=assignment,
        quick=quick,
        limit=limit,
    )


def _cost_class(experiment: str) -> str:
    """Registry cost class, defaulting to ``fast`` for unregistered names."""
    try:
        return REGISTRY.get(experiment).cost
    except ConfigError:
        return "fast"


def write_schedule(path: str, document: dict) -> str:
    """Atomically write a schedule document as pretty JSON."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as f:
        json.dump(document, f, indent=2, sort_keys=True)
        f.write("\n")
    os.replace(tmp, path)
    return path


def fill_actuals(document: dict, elapsed_by_label: Mapping[str, float]) -> dict:
    """A copy of ``document`` with post-run actual seconds filled in.

    Points without a recorded elapsed (failed, or still pending) keep
    ``actual_s: null``; ``actual.filled`` is only true once every point
    has one, and ``actual.makespan_s`` is the busiest slot's known total.
    """
    filled = json.loads(json.dumps(document))
    covered = 0
    slot_totals: List[float] = []
    for slot_plan in filled.get("slot_plan", []):
        total = 0.0
        for point in slot_plan.get("points", []):
            elapsed = elapsed_by_label.get(point["label"])
            if elapsed is not None:
                point["actual_s"] = round(float(elapsed), 6)
                total += float(elapsed)
                covered += 1
        slot_plan["actual_s"] = round(total, 6)
        slot_totals.append(total)
    complete = covered == filled.get("n_points", 0)
    filled["actual"] = {
        "filled": complete,
        "makespan_s": round(max(slot_totals), 6) if covered and slot_totals else None,
    }
    return filled


def check_schedule(document: dict, expected_labels: Optional[Sequence[str]] = None) -> None:
    """Validate a schedule document; raises :class:`ConfigError` on defects.

    Checks the schema stamp, that every point appears exactly once, that
    slot ids are the dense range the header declares, and that the
    recorded makespans are consistent (predicted == busiest slot,
    predicted <= round-robin). The tests and the nightly CI gate call
    this instead of re-deriving the invariants.
    """
    if document.get("kind") != SCHEDULE_KIND:
        raise ConfigError(f"not a schedule document: kind={document.get('kind')!r}")
    if document.get("schema") != SCHEDULE_SCHEMA:
        raise ConfigError(
            f"unsupported schedule schema {document.get('schema')!r} "
            f"(expected {SCHEDULE_SCHEMA})"
        )
    slot_plans = document.get("slot_plan", [])
    if [p.get("slot") for p in slot_plans] != list(range(document.get("slots", -1))):
        raise ConfigError("slot_plan does not cover slots 0..slots-1 in order")
    labels: List[str] = []
    loads: List[float] = []
    for slot_plan in slot_plans:
        points = slot_plan.get("points", [])
        labels.extend(p.get("label") for p in points)
        loads.append(sum(p.get("predicted_s", 0.0) for p in points))
    if len(labels) != len(set(labels)):
        dupes = sorted({x for x in labels if labels.count(x) > 1})
        raise ConfigError(f"schedule assigns point(s) more than once: {dupes}")
    if len(labels) != document.get("n_points"):
        raise ConfigError(
            f"schedule covers {len(labels)} point(s), header says "
            f"{document.get('n_points')}"
        )
    if expected_labels is not None and sorted(labels) != sorted(expected_labels):
        missing = sorted(set(expected_labels) - set(labels))
        extra = sorted(set(labels) - set(expected_labels))
        raise ConfigError(f"schedule point set mismatch: missing {missing}, unexpected {extra}")
    predicted = document.get("predicted_makespan_s", 0.0)
    busiest = max(loads) if loads else 0.0
    # Per-point predicted_s values are rounded to 1e-6 in the document,
    # so the busiest-slot sum can drift by up to n_points * 5e-7.
    tolerance = 1e-5 + 1e-6 * len(labels)
    if abs(predicted - busiest) > tolerance:
        raise ConfigError(f"predicted makespan {predicted} != busiest slot {busiest:.6f}")
    baseline = document.get("round_robin_makespan_s", 0.0)
    if predicted > baseline + tolerance:
        raise ConfigError(f"planned makespan {predicted} exceeds round-robin baseline {baseline}")


def read_schedule(path: str) -> dict:
    """Load and validate a ``schedule.json``."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            document = json.load(f)
    except OSError as exc:
        raise ConfigError(f"no schedule at {path!r}: {exc}") from exc
    except ValueError as exc:
        raise ConfigError(f"unparseable schedule at {path!r}: {exc}") from exc
    check_schedule(document)
    return document
