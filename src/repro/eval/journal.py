"""Append-only JSONL run journal for fault-tolerant sweep execution.

The orchestrator writes one fsynced record per scheduled point — label,
cache key, params, seed, status, attempt number, elapsed time, and the
full error traceback on failure — so a run that is killed mid-sweep
leaves a durable, inspectable log of exactly which points completed.
``sweep run --resume`` replays the journal (plus the content-hash result
cache) to schedule only the incomplete points; ``sweep status`` reports
done/failed/pending counts from it without running anything.

Layout: one JSON object per line. The first line is a ``header`` record
describing the run (sweep name, effective matrix, shard, source digest);
every later line is a ``point`` record or a ``resume`` marker. The
``repro serve`` job queue reuses the same machinery with ``job`` records
(one line per queue state transition — see :class:`JobRecord`). A record
is only considered written once its line is flushed *and* fsynced, so a
crash can at worst truncate the final line — :func:`read_journal`
tolerates a torn tail and surfaces it as ``truncated``.

Fault injection: when ``REPRO_JOURNAL_CRASH_AFTER=N`` is set, the
process hard-exits (``os._exit``) immediately after the N-th point
record is made durable. This exists solely for the crash-injection
tests, which kill a sweep mid-run and assert ``--resume`` completes it.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.errors import ConfigError

#: Journal line layout version; bump on breaking changes.
JOURNAL_SCHEMA = 1

KIND_HEADER = "header"
KIND_POINT = "point"
KIND_RESUME = "resume"
KIND_JOB = "job"

#: Lifecycle of a queued service job (``repro serve``): a submission is
#: appended as ``submitted``, claimed as ``running``, and finished as one
#: of the terminal statuses. The newest record per ``job_id`` wins, so the
#: whole queue state is reconstructable from the journal alone. Lease
#: transitions (a remote ``repro worker`` claiming, heartbeating, or
#: losing a job) are plain ``running``/``submitted`` records carrying the
#: ``worker``/``lease_expires_at`` fields — liveness state is journaled,
#: never held only in server memory.
JOB_SUBMITTED = "submitted"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"
JOB_CANCELLED = "cancelled"
JOB_STATUSES = (JOB_SUBMITTED, JOB_RUNNING, JOB_DONE, JOB_FAILED, JOB_CANCELLED)
TERMINAL_JOB_STATUSES = (JOB_DONE, JOB_FAILED, JOB_CANCELLED)

#: Exit code of the REPRO_JOURNAL_CRASH_AFTER fault-injection hard exit.
CRASH_EXIT_CODE = 17

#: Statuses that mean a point's work is durably complete (mirrors the
#: orchestrator's STATUS_EXECUTED / STATUS_CACHED).
SUCCESS_STATUSES = ("executed", "cached")


@dataclass(frozen=True)
class PointRecord:
    """One journaled point outcome (or failed attempt)."""

    label: str
    experiment: str
    key: str  #: content-hash cache key the point was keyed under
    seed: int
    status: str  #: "executed" | "cached" | "failed"
    params: Dict[str, Any] = field(default_factory=dict)
    attempt: int = 0  #: 0-based attempt index (monotonic across resumes)
    elapsed_s: float = 0.0
    error: Optional[str] = None  #: full traceback text on failure
    error_type: Optional[str] = None  #: exception class name on failure
    quarantined: bool = False  #: failed with the retry budget exhausted
    ts: float = 0.0  #: wall-clock write time (time.time())

    def to_json(self) -> dict:
        payload: Dict[str, Any] = {"kind": KIND_POINT, "schema": JOURNAL_SCHEMA}
        payload.update(dataclasses.asdict(self))
        return payload

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "PointRecord":
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in names})

    @property
    def succeeded(self) -> bool:
        return self.status in SUCCESS_STATUSES


@dataclass(frozen=True)
class JobRecord:
    """One journaled queue-job state transition (``repro serve``).

    A job wraps a whole orchestrator invocation (an experiment, a sweep,
    or a bench run) rather than a single point; ``spec`` is the canonical
    submission payload and ``fingerprint`` its content hash under the
    current source digest, which is what duplicate-submission cache hits
    key on.
    """

    job_id: str
    task: str  #: "experiment" | "sweep" | "bench"
    status: str  #: one of JOB_STATUSES
    spec: Dict[str, Any] = field(default_factory=dict)
    priority: int = 0  #: higher runs first; FIFO within a priority
    attempt: int = 0  #: 0-based execution attempt (restart recovery bumps it)
    fingerprint: str = ""  #: content hash of (spec, source digest)
    cached: bool = False  #: served from the result cache without executing
    elapsed_s: float = 0.0
    error: Optional[str] = None  #: full worker traceback on failure
    error_type: Optional[str] = None  #: exception class name on failure
    result: Optional[dict] = None  #: terminal payload (artifact/document/report)
    submitted_at: float = 0.0  #: wall-clock submission time (time.time())
    ts: float = 0.0  #: wall-clock write time of this record
    worker: str = ""  #: id of the worker (or server) holding the job
    lease_ttl: float = 0.0  #: lease length granted at claim (0 = no lease)
    lease_expires_at: float = 0.0  #: wall-clock lease expiry (0 = no lease)
    tags: List[str] = field(default_factory=list)  #: routing tags (worker capabilities)
    parent: str = ""  #: fan-out parent job id (sweep shard jobs)
    children: List[str] = field(default_factory=list)  #: shard job ids (fan-out parents)

    def to_json(self) -> dict:
        payload: Dict[str, Any] = {"kind": KIND_JOB, "schema": JOURNAL_SCHEMA}
        payload.update(dataclasses.asdict(self))
        return payload

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "JobRecord":
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in names})

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_JOB_STATUSES


@dataclass
class JournalView:
    """A parsed journal: header, point records in write order, markers."""

    path: str
    header: Optional[dict]
    records: List[PointRecord]
    resumes: int = 0
    truncated: bool = False  #: the final line was torn by a crash
    malformed: int = 0  #: valid-JSON point lines missing required fields
    jobs: List[JobRecord] = field(default_factory=list)  #: queue-job records

    def last_by_label(self) -> Dict[str, PointRecord]:
        """Latest record per point label (later lines supersede earlier)."""
        last: Dict[str, PointRecord] = {}
        for record in self.records:
            last[record.label] = record
        return last

    def last_by_job(self) -> Dict[str, JobRecord]:
        """Latest record per job id (later lines supersede earlier)."""
        last: Dict[str, JobRecord] = {}
        for record in self.jobs:
            last[record.job_id] = record
        return last

    def failed_attempts(self, label: str, key: str) -> int:
        """Attempts burned on ``label`` under cache key ``key``.

        Counts only failures recorded against the *current* key, so a
        source or parameter change (which rotates the key) resets the
        budget automatically.
        """
        attempts = [
            r.attempt
            for r in self.records
            if r.label == label and r.key == key and r.status == "failed"
        ]
        return max(attempts) + 1 if attempts else 0


def read_journal(path: str) -> JournalView:
    """Parse a journal file, tolerating a crash-torn final line.

    Parsing stops at the first undecodable line (``truncated=True``) —
    everything before it was fsynced and is trusted. A decodable point
    line missing required fields (hand-edited, or a future schema) is
    skipped and counted in ``malformed`` rather than crashing the
    reader. A missing file is a :class:`ConfigError`: there is nothing
    to resume or report on.
    """
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as exc:
        raise ConfigError(f"no run journal at {path!r}: {exc}") from exc
    header: Optional[dict] = None
    records: List[PointRecord] = []
    jobs: List[JobRecord] = []
    resumes = 0
    truncated = False
    malformed = 0
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except ValueError:
            truncated = True
            break
        if not isinstance(payload, dict):
            truncated = True
            break
        kind = payload.get("kind")
        if kind == KIND_HEADER and header is None:
            header = payload
        elif kind == KIND_POINT:
            try:
                records.append(PointRecord.from_json(payload))
            except TypeError:
                malformed += 1
        elif kind == KIND_JOB:
            try:
                jobs.append(JobRecord.from_json(payload))
            except TypeError:
                malformed += 1
        elif kind == KIND_RESUME:
            resumes += 1
        # Unknown kinds are skipped for forward compatibility.
    return JournalView(
        path=path,
        header=header,
        records=records,
        resumes=resumes,
        truncated=truncated,
        malformed=malformed,
        jobs=jobs,
    )


class RunJournal:
    """Writer half: every appended line is flushed and fsynced.

    The file is reopened per record — the write rate is one line per
    completed experiment point, and a short-lived handle keeps the
    journal consistent even if the owning process is killed between
    points (the crash mode the whole layer exists for).
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._points_written = 0

    @classmethod
    def start(cls, path: str, header: Optional[dict] = None) -> "RunJournal":
        """Begin a fresh journal (truncating any previous run's)."""
        journal = cls(path)
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            if header is not None:
                payload = {"kind": KIND_HEADER, "schema": JOURNAL_SCHEMA}
                payload.update(header)
                f.write(json.dumps(payload, sort_keys=True) + "\n")
            f.flush()
            os.fsync(f.fileno())
        return journal

    @classmethod
    def attach(cls, path: str) -> "RunJournal":
        """Append to an existing journal (the ``--resume`` path).

        A crash tears the journal only mid-line — i.e. the file does not
        end in a newline — so the torn tail (never a durable record) is
        truncated away first. Appending straight after it would fuse the
        partial line with the resume marker into one unparseable line and
        hide every later record from :func:`read_journal`.
        """
        journal = cls(path)
        journal._truncate_torn_tail()
        journal._append_line({"kind": KIND_RESUME, "schema": JOURNAL_SCHEMA, "ts": time.time()})
        return journal

    def _truncate_torn_tail(self) -> None:
        try:
            with open(self.path, "rb") as f:
                data = f.read()
        except OSError:
            return
        if not data or data.endswith(b"\n"):
            return
        keep = data.rfind(b"\n") + 1  # 0 when no complete line survived
        with open(self.path, "r+b") as f:
            f.truncate(keep)
            f.flush()
            os.fsync(f.fileno())

    def append(self, record: PointRecord) -> None:
        self._append_line(record.to_json())
        self._points_written += 1
        self._maybe_crash()

    def append_job(self, record: JobRecord) -> None:
        """Durably append one queue-job state transition.

        Job records do not count toward ``REPRO_JOURNAL_CRASH_AFTER`` —
        the crash-injection knob targets point execution, and the serve
        tests kill the server process directly instead.
        """
        self._append_line(record.to_json())

    def append_jobs(self, records: List[JobRecord]) -> None:
        """Durably append several queue-job records with one fsync.

        The batch-submission fast path: the per-record open/flush/fsync
        cycle dominates single submissions, so a batch writes every line
        under one file handle and syncs once. All lines become durable
        together — a crash before the fsync loses the whole batch, never
        a prefix that the caller believed was partially durable (the
        store updates its in-memory state only after this returns).
        """
        if not records:
            return
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as f:
            for record in records:
                f.write(json.dumps(record.to_json(), sort_keys=True) + "\n")
            f.flush()
            os.fsync(f.fileno())

    def _append_line(self, payload: dict) -> None:
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as f:
            f.write(json.dumps(payload, sort_keys=True) + "\n")
            f.flush()
            os.fsync(f.fileno())

    def _maybe_crash(self) -> None:
        knob = os.environ.get("REPRO_JOURNAL_CRASH_AFTER")
        if knob and self._points_written >= int(knob):
            os._exit(CRASH_EXIT_CODE)
