"""Learned per-point cost model for schedule planning.

Every journal and manifest this repo writes already records the true
``elapsed_s`` of every experiment point, so predicted cost does not have
to be guessed from a static class: :class:`CostModel` ingests that
history (``results/manifest.json`` plus every sweep/shard
``journal.jsonl``) and predicts seconds for an (experiment, params)
point. The estimate resolution order is:

1. **point-history** — samples recorded for this exact experiment at
   these exact normalized params (median by default, EWMA optional);
2. **experiment-history** — samples for the same experiment at any
   params (a new matrix point of a known experiment);
3. **prior** — the static cost-class priors
   (:data:`STATIC_PRIORS`: ``slow`` > ``medium`` > ``fast``) when the
   experiment has never run here.

The model is deliberately simple and deterministic: for a fixed results
tree it always produces the same predictions, which is what lets the
schedule solver (:mod:`repro.eval.schedule`) emit reproducible plans.
Consumers: ``Orchestrator._execute`` (longest-predicted-first ordering),
``sweep run --balance cost``, ``serve --autosplit-min-seconds``, and the
``repro sched plan`` CLI.
"""

from __future__ import annotations

import datetime
import glob
import json
import os
import statistics
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import ConfigError
from repro.eval.journal import SUCCESS_STATUSES, read_journal
from repro.eval.registry import COST_CLASSES, normalize_params
from repro.eval.tables import results_dir

#: Static per-cost-class priors (predicted seconds) used when an
#: experiment has no recorded history. Strictly ordered slow > medium >
#: fast — this ordering is what the orchestrator's history-free fallback
#: scheduling relies on.
STATIC_PRIORS: Dict[str, float] = {"slow": 30.0, "medium": 5.0, "fast": 1.0}

#: Where a :class:`CostEstimate` came from (most to least specific).
SOURCE_POINT = "point-history"
SOURCE_EXPERIMENT = "experiment-history"
SOURCE_PRIOR = "prior"

#: Newest samples kept per key; older history beyond the window is
#: ignored so a sped-up implementation stops paying for ancient timings.
DEFAULT_WINDOW = 16

_ESTIMATORS = ("median", "ewma")


def params_key(params: Optional[Mapping[str, Any]]) -> str:
    """Canonical string key for a parameter point (normalized, sorted)."""
    return json.dumps(normalize_params(dict(params or {})), sort_keys=True)


@dataclass(frozen=True)
class CostEstimate:
    """One predicted duration with its provenance."""

    seconds: float
    source: str  #: SOURCE_POINT | SOURCE_EXPERIMENT | SOURCE_PRIOR
    samples: int  #: history samples behind the estimate (0 for priors)


class CostModel:
    """Predict per-point seconds from recorded run history.

    Samples are ``(ts, elapsed_s)`` pairs indexed twice — by
    (experiment, params-key) and by experiment alone — so prediction can
    fall from the exact point to the experiment to the static prior.
    """

    def __init__(
        self,
        priors: Optional[Mapping[str, float]] = None,
        estimator: str = "median",
        ewma_alpha: float = 0.5,
        window: int = DEFAULT_WINDOW,
    ) -> None:
        if estimator not in _ESTIMATORS:
            raise ConfigError(f"cost estimator must be one of {_ESTIMATORS}, got {estimator!r}")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ConfigError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        if window < 1:
            raise ConfigError(f"window must be >= 1, got {window}")
        self.priors = dict(STATIC_PRIORS)
        self.priors.update(priors or {})
        missing = sorted(set(COST_CLASSES) - set(self.priors))
        if missing:
            raise ConfigError(f"priors missing cost class(es) {missing}")
        self.estimator = estimator
        self.ewma_alpha = ewma_alpha
        self.window = window
        self._point: Dict[Tuple[str, str], List[Tuple[float, float]]] = {}
        self._experiment: Dict[str, List[Tuple[float, float]]] = {}

    # ------------------------------------------------------------------
    # Observation

    def observe(
        self,
        experiment: str,
        params: Optional[Mapping[str, Any]],
        elapsed_s: float,
        ts: float = 0.0,
    ) -> None:
        """Record one completed point's wall time.

        Non-positive durations are dropped: a 0.0 ``elapsed_s`` means the
        record never actually timed an execution.
        """
        if elapsed_s <= 0.0:
            return
        sample = (float(ts), float(elapsed_s))
        self._point.setdefault((experiment, params_key(params)), []).append(sample)
        self._experiment.setdefault(experiment, []).append(sample)

    def sample_count(self) -> int:
        """Total observations ingested (for logs and ``sched plan``)."""
        return sum(len(samples) for samples in self._experiment.values())

    # ------------------------------------------------------------------
    # Prediction

    def _estimate(self, samples: List[Tuple[float, float]]) -> float:
        ordered = [v for _, v in sorted(samples)][-self.window :]
        if self.estimator == "median":
            return float(statistics.median(ordered))
        value = ordered[0]
        for sample in ordered[1:]:
            value = self.ewma_alpha * sample + (1.0 - self.ewma_alpha) * value
        return float(value)

    def prior(self, cost_class: str) -> float:
        """The static prior for a cost class (unknown classes -> fast)."""
        return self.priors.get(cost_class, self.priors["fast"])

    def predict(
        self,
        experiment: str,
        params: Optional[Mapping[str, Any]] = None,
        cost_class: str = "fast",
    ) -> CostEstimate:
        """Predicted seconds for one point, most specific history first."""
        samples = self._point.get((experiment, params_key(params)))
        if samples:
            return CostEstimate(self._estimate(samples), SOURCE_POINT, len(samples))
        samples = self._experiment.get(experiment)
        if samples:
            return CostEstimate(self._estimate(samples), SOURCE_EXPERIMENT, len(samples))
        return CostEstimate(self.prior(cost_class), SOURCE_PRIOR, 0)

    # ------------------------------------------------------------------
    # Ingestion

    def ingest_journal(self, path: str) -> int:
        """Feed every successful point record of one run journal."""
        view = read_journal(path)
        count = 0
        for record in view.records:
            if record.succeeded and record.elapsed_s > 0.0:
                self.observe(record.experiment, record.params, record.elapsed_s, record.ts)
                count += 1
        return count

    def ingest_manifest(self, path: str) -> int:
        """Feed every successful experiment row of a results manifest.

        Cached rows carry the *original* execution's elapsed time, so they
        are timing samples too (re-observing an already-journaled run is
        harmless: duplicate identical samples do not move a median).
        """
        with open(path, "r", encoding="utf-8") as f:
            document = json.load(f)
        ts = _parse_iso_ts(document.get("generated_at"))
        count = 0
        for row in document.get("experiments", []):
            if not isinstance(row, dict):
                continue
            if row.get("status") not in SUCCESS_STATUSES:
                continue
            elapsed = row.get("elapsed_s") or 0.0
            experiment = row.get("experiment") or row.get("name")
            if not experiment or not isinstance(elapsed, (int, float)) or elapsed <= 0:
                continue
            self.observe(str(experiment), row.get("params") or {}, float(elapsed), ts)
            count += 1
        return count

    @classmethod
    def from_results(cls, root: Optional[str] = None, **kwargs: Any) -> "CostModel":
        """Build a model from everything under the results tree.

        Scans ``manifest.json`` plus every sweep and shard journal.
        Unreadable or torn files are skipped — history is advisory, and a
        half-written journal must never fail a schedule plan.
        """
        model = cls(**kwargs)
        root = root or results_dir()
        candidates = [os.path.join(root, "manifest.json")]
        candidates.extend(sorted(glob.glob(os.path.join(root, "sweeps", "*", "manifest.json"))))
        journals = sorted(glob.glob(os.path.join(root, "sweeps", "*", "journal.jsonl")))
        journals.extend(
            sorted(glob.glob(os.path.join(root, "sweeps", "*", "shards", "*", "journal.jsonl")))
        )
        for path in candidates:
            try:
                model.ingest_manifest(path)
            except (OSError, ValueError):
                continue
        for path in journals:
            try:
                model.ingest_journal(path)
            except (ConfigError, OSError, ValueError):
                continue
        return model


def _parse_iso_ts(value: Any) -> float:
    """Epoch seconds from a manifest ``generated_at`` stamp (0.0 on junk)."""
    if not isinstance(value, str):
        return 0.0
    try:
        return datetime.datetime.fromisoformat(value).timestamp()
    except ValueError:
        return 0.0
