"""Parallel experiment scheduler with caching and a machine-readable manifest.

The experiments are embarrassingly parallel — each one derives its
figure/table from the analytic models with no shared mutable state — so the
scheduler fans them out over a :class:`concurrent.futures.ProcessPoolExecutor`
(longest-predicted-first via the learned cost model, to minimize makespan),
replays unchanged experiments
from the :mod:`repro.eval.cache`, and records per-experiment timing, seed,
cache key and artifact path in ``results/manifest.json``.

``jobs=1`` runs everything in-process in registry order — byte-identical to
the legacy serial runner and friendlier to debuggers.
"""

from __future__ import annotations

import concurrent.futures
import datetime
import hashlib
import json
import os
import random
import shutil
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ConfigError
from repro.eval import cache as result_cache
from repro.eval.cost import CostModel
from repro.eval.journal import PointRecord, RunJournal
from repro.eval.registry import REGISTRY, normalize_params
from repro.eval.tables import results_dir, save_result
from repro.sim.stats import Stats

#: results/manifest.json layout version.
MANIFEST_SCHEMA = 1

STATUS_EXECUTED = "executed"
STATUS_CACHED = "cached"
STATUS_FAILED = "failed"


def derive_seed(run_seed: int, name: str) -> int:
    """Per-experiment RNG seed, stable across runs and worker placement."""
    digest = hashlib.sha256(f"{run_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:4], "big")


def format_error(exc: BaseException) -> str:
    """Full traceback text for ``exc``, including chained causes.

    For pool failures the exception re-raised by ``Future.result()``
    chains the worker-side ``_RemoteTraceback``, so the text names the
    actual raising frame inside the worker, not just the join site.
    """
    return "".join(traceback.format_exception(type(exc), exc, exc.__traceback__))


@dataclass(frozen=True)
class PointRequest:
    """One scheduling request: an experiment at one parameter point.

    ``label`` names the point in logs, the manifest and artifact paths;
    it defaults to the experiment name and must be unique within a batch
    (a sweep schedules many points of the *same* experiment, so its labels
    carry the axis values).
    """

    experiment: str
    params: Dict[str, Any] = field(default_factory=dict)
    label: Optional[str] = None
    priority: int = 0  #: higher schedules first (service jobs set it)

    @property
    def display(self) -> str:
        return self.label or self.experiment


@dataclass
class ExperimentRun:
    """Outcome of one scheduled experiment (or sweep point)."""

    name: str  #: display label (== experiment name outside sweeps)
    status: str
    elapsed_s: float  #: execution time (original run's time when cached)
    seed: int
    cache_key: str
    params: Dict[str, Any]
    tags: List[str]
    cost: str
    experiment: str = ""  #: registry name (defaults to ``name``)
    text: str = ""
    artifact: Optional[str] = None
    error: Optional[str] = None
    error_type: Optional[str] = None  #: exception class name on failure
    attempts: int = 0  #: execution attempts (0 when served from cache)
    summary: Optional[dict] = None

    def __post_init__(self) -> None:
        if not self.experiment:
            self.experiment = self.name

    def manifest_record(self) -> dict:
        return {
            "name": self.name,
            "experiment": self.experiment,
            "status": self.status,
            "elapsed_s": round(self.elapsed_s, 6),
            "seed": self.seed,
            "cache_key": self.cache_key,
            "params": self.params,
            "tags": self.tags,
            "cost": self.cost,
            "attempts": self.attempts,
            "artifact": self.artifact,
            "error": self.error,
            "error_type": self.error_type,
            "summary": self.summary,
        }


@dataclass
class _Job:
    """Internal pairing of a pending run with what executing it needs."""

    run: ExperimentRun
    overrides: Dict[str, Any]
    save_artifact: bool = True
    attempt: int = 0  #: 0-based index of the current try (resumes carry over)
    priority: int = 0


@dataclass
class RunReport:
    """Everything one orchestrator invocation did."""

    runs: List[ExperimentRun]
    jobs: int
    cache_enabled: bool
    source_digest: str
    wall_s: float
    stats: Stats = field(default_factory=lambda: Stats("orchestrator"))

    @property
    def ok(self) -> bool:
        return all(r.status != STATUS_FAILED for r in self.runs)

    def rendered(self) -> Dict[str, str]:
        """``{name: text}`` in scheduling order (the legacy runner's shape)."""
        return {r.name: r.text for r in self.runs}

    def counts(self) -> Dict[str, int]:
        counts = {STATUS_EXECUTED: 0, STATUS_CACHED: 0, STATUS_FAILED: 0}
        for run in self.runs:
            counts[run.status] += 1
        return counts

    def manifest(self) -> dict:
        return {
            "schema": MANIFEST_SCHEMA,
            "generated_at": datetime.datetime.now(datetime.timezone.utc).isoformat(),
            "jobs": self.jobs,
            "cache_enabled": self.cache_enabled,
            "source_digest": self.source_digest,
            "wall_s": round(self.wall_s, 6),
            "counts": self.counts(),
            "counters": self.stats.as_dict(),
            "experiments": [r.manifest_record() for r in self.runs],
        }

    def write_manifest(self, path: Optional[str] = None) -> str:
        path = path or os.path.join(results_dir(), "manifest.json")
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as f:
            json.dump(self.manifest(), f, indent=2)
            f.write("\n")
        os.replace(tmp, path)
        return path


def _execute_one(name: str, seed: int, params: Dict[str, Any]) -> dict:
    """Worker entry point: run one experiment by registry name.

    Runs in a pool worker (or inline for ``jobs=1``); returns a picklable
    record, never the result object itself.
    """
    random.seed(seed)
    spec = REGISTRY.get(name)
    start = time.perf_counter()
    output = spec.execute(**params)
    elapsed = time.perf_counter() - start
    return {
        "name": name,
        "text": output.text,
        "summary": output.summary(),
        "elapsed_s": elapsed,
    }


class Orchestrator:
    """Schedules registered experiments; owns the cache and the manifest."""

    def __init__(
        self,
        jobs: Optional[int] = None,
        use_cache: bool = True,
        run_seed: int = 0,
        verbose: bool = True,
        show_text: bool = False,
        persistent_pool: bool = False,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        self.jobs = jobs if jobs and jobs > 0 else (os.cpu_count() or 1)
        self.use_cache = use_cache
        self.run_seed = run_seed
        self.verbose = verbose
        self.show_text = show_text
        #: Predicts per-point seconds for scheduling order; built lazily
        #: from the results-tree history on first use when not injected.
        self.cost_model = cost_model
        #: Keep one warm worker pool across run()/run_points() calls (the
        #: ``repro serve`` mode) instead of building a pool per batch.
        self.persistent_pool = persistent_pool
        self._pool: Optional[concurrent.futures.ProcessPoolExecutor] = None
        self._pool_broken = False

    def _log(self, message: str) -> None:
        if self.verbose:
            print(message, flush=True)

    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        """The shared worker pool, (re)built on first use or after a break.

        A :class:`BrokenExecutor` poisons a pool permanently, so a broken
        persistent pool is recycled rather than resubmitted to — the batch
        that observed the break still reports its points failed, but the
        *next* batch gets fresh workers instead of inheriting the corpse.
        """
        if self._pool_broken:
            self.shutdown_pool()
        if self._pool is None:
            self._pool = concurrent.futures.ProcessPoolExecutor(max_workers=self.jobs)
            self._pool_broken = False
        return self._pool

    def shutdown_pool(self) -> None:
        """Tear down the persistent worker pool (no-op when none is live)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "Orchestrator":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown_pool()

    def run(
        self,
        only: Optional[Sequence[str]] = None,
        tags: Optional[Sequence[str]] = None,
        params: Optional[Dict[str, Dict[str, Any]]] = None,
        write_manifest: bool = True,
        journal: Optional[RunJournal] = None,
        retries: int = 0,
    ) -> RunReport:
        """Run the selected experiments; returns the full report.

        ``params`` maps experiment name -> keyword overrides for its
        ``run`` function (overrides participate in the cache key).
        """
        specs = REGISTRY.select(only=only, tags=tags)
        params = params or {}
        unmatched = sorted(set(params) - {spec.name for spec in specs})
        if unmatched:
            raise ConfigError(
                f"param overrides for experiment(s) not in this run: {unmatched}; "
                f"selected: {[spec.name for spec in specs]}"
            )
        points = [
            PointRequest(experiment=spec.name, params=dict(params.get(spec.name, {})))
            for spec in specs
        ]
        return self.run_points(
            points, write_manifest=write_manifest, journal=journal, retries=retries
        )

    def run_points(
        self,
        points: Sequence[PointRequest],
        write_manifest: bool = True,
        manifest_path: Optional[str] = None,
        save_artifacts: bool = True,
        journal: Optional[RunJournal] = None,
        retries: int = 0,
        prior_attempts: Optional[Dict[str, int]] = None,
        replay_failed: Optional[Dict[str, PointRecord]] = None,
    ) -> RunReport:
        """Schedule an explicit batch of (experiment, params) points.

        This is the sweep engine's entry: many points may target the *same*
        experiment at different parameters, each keyed and cached
        independently. Labels must be unique — they name the manifest rows
        and (when ``save_artifacts``) the ``results/`` artifact files,
        nested directories allowed.

        Fault tolerance: every terminal outcome (and every failed retry
        attempt) is appended to ``journal`` as an fsynced record. A failed
        point is re-executed up to ``retries`` extra times before it is
        quarantined — one flaky point never aborts the batch.
        ``prior_attempts`` carries attempt counts from a resumed journal so
        the budget is bounded across restarts, and ``replay_failed`` rows
        (points already quarantined in a previous run) are reported straight
        from their journal record without being rescheduled.
        """
        if retries < 0:
            raise ConfigError(f"retries must be >= 0, got {retries}")
        seen: Dict[str, str] = {}
        for point in points:
            if point.display in seen:
                raise ConfigError(
                    f"duplicate point label {point.display!r} "
                    f"(experiments {seen[point.display]!r} and {point.experiment!r})"
                )
            seen[point.display] = point.experiment
        prior_attempts = dict(prior_attempts or {})
        replay_failed = dict(replay_failed or {})
        unknown = sorted((set(prior_attempts) | set(replay_failed)) - set(seen))
        if unknown:
            raise ConfigError(f"resume state for unscheduled point label(s) {unknown}")
        stats = Stats("orchestrator")
        digest = result_cache.source_digest()
        cache = result_cache.ResultCache()
        start = time.perf_counter()

        pending: List[_Job] = []
        runs: List[ExperimentRun] = []
        for point in points:
            spec = REGISTRY.get(point.experiment)
            overrides = dict(point.params)
            spec.validate_params(overrides)
            label = point.display
            seed = derive_seed(self.run_seed, label)
            norm = normalize_params(overrides)
            key = result_cache.cache_key(spec.name, norm, seed, digest)
            run = ExperimentRun(
                name=label,
                status=STATUS_FAILED,
                elapsed_s=0.0,
                seed=seed,
                cache_key=key,
                params=norm,
                tags=list(spec.tags),
                cost=spec.cost,
                experiment=spec.name,
            )
            runs.append(run)
            if label in replay_failed:
                # Quarantined in a previous run: report the recorded failure
                # without rescheduling (and without re-journaling it).
                record = replay_failed[label]
                run.error = record.error
                run.error_type = record.error_type
                run.elapsed_s = record.elapsed_s
                run.attempts = record.attempt + 1
                stats.add("experiments.quarantined")
                self._log(f"[quarantined after {run.attempts} attempt(s)] {label}")
                continue
            entry = cache.load(spec.name, key) if self.use_cache else None
            if entry is not None:
                run.status = STATUS_CACHED
                run.text = entry.text
                run.elapsed_s = entry.elapsed_s
                run.summary = entry.summary
                if save_artifacts:
                    run.artifact = save_result(label, entry.text)
                stats.add("cache.hits")
                self._journal(journal, run, attempt=0)
                self._log(f"[cached {entry.elapsed_s:6.1f}s] {run.artifact or label}")
            else:
                if self.use_cache:
                    stats.add("cache.misses")
                pending.append(
                    _Job(
                        run=run,
                        overrides=overrides,
                        save_artifact=save_artifacts,
                        attempt=prior_attempts.get(label, 0),
                        priority=point.priority,
                    )
                )

        if pending:
            self._execute(pending, cache, stats, journal=journal, retries=retries)

        report = RunReport(
            runs=runs,
            jobs=self.jobs,
            cache_enabled=self.use_cache,
            source_digest=digest,
            wall_s=time.perf_counter() - start,
            stats=stats,
        )
        if write_manifest:
            path = report.write_manifest(manifest_path)
            self._log(f"manifest: {path}")
        counts = report.counts()
        self._log(
            f"done in {report.wall_s:.1f}s — {counts[STATUS_EXECUTED]} executed, "
            f"{counts[STATUS_CACHED]} cached, {counts[STATUS_FAILED]} failed"
            f" (jobs={self.jobs})"
        )
        return report

    def _predicted_s(self, run: ExperimentRun) -> float:
        """Predicted seconds for one pending run (scheduling order key)."""
        if self.cost_model is None:
            self.cost_model = CostModel.from_results()
        return self.cost_model.predict(run.experiment, run.params, cost_class=run.cost).seconds

    def _execute(
        self,
        pending: List[_Job],
        cache: result_cache.ResultCache,
        stats: Stats,
        journal: Optional[RunJournal] = None,
        retries: int = 0,
    ) -> None:
        # Higher-priority jobs first, then longest-predicted first so the
        # pool's tail is short. Prediction comes from recorded history
        # (journals/manifests) and falls back to the static
        # slow > medium > fast priors, so even a history-free run orders
        # all three cost classes instead of the old binary slow/not-slow
        # sort that let "medium" points schedule dead last.
        ordered = sorted(pending, key=lambda j: (-j.priority, -self._predicted_s(j.run)))
        if self.jobs == 1 or (len(pending) == 1 and not self.persistent_pool):
            for job in ordered:
                while True:
                    record, error, error_type = self._run_inline(job)
                    if record is not None or not self._maybe_retry(
                        job, error, error_type, journal, stats, retries
                    ):
                        break
                self._finish(job, record, error, error_type, cache, stats, journal)
            return
        if self.persistent_pool:
            self._drain_pool(self._ensure_pool(), ordered, cache, stats, journal, retries)
            return
        workers = min(self.jobs, len(ordered))
        with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
            self._drain_pool(pool, ordered, cache, stats, journal, retries)

    def _drain_pool(
        self,
        pool: concurrent.futures.ProcessPoolExecutor,
        ordered: List[_Job],
        cache: result_cache.ResultCache,
        stats: Stats,
        journal: Optional[RunJournal],
        retries: int,
    ) -> None:
        futures = {
            pool.submit(_execute_one, job.run.experiment, job.run.seed, job.overrides): job
            for job in ordered
        }
        while futures:
            done, _ = concurrent.futures.wait(
                futures, return_when=concurrent.futures.FIRST_COMPLETED
            )
            for future in done:
                job = futures.pop(future)
                record, error, error_type = None, None, None
                retryable = True
                try:
                    record = future.result()
                except concurrent.futures.BrokenExecutor as exc:
                    # A worker died hard (segfault/OOM-kill): the pool is
                    # unusable, so resubmitting could only crash the run.
                    # Record the failure; the remaining futures drain the
                    # same way and the report/journal stay complete.
                    error, error_type = format_error(exc), type(exc).__name__
                    retryable = False
                    self._pool_broken = True
                except Exception as exc:
                    error, error_type = format_error(exc), type(exc).__name__
                if (
                    record is None
                    and retryable
                    and self._maybe_retry(job, error, error_type, journal, stats, retries)
                ):
                    try:
                        resubmitted = pool.submit(
                            _execute_one, job.run.experiment, job.run.seed, job.overrides
                        )
                    except concurrent.futures.BrokenExecutor as exc:
                        # The pool broke between the failure and the retry.
                        self._pool_broken = True
                        self._finish(
                            job,
                            None,
                            format_error(exc),
                            type(exc).__name__,
                            cache,
                            stats,
                            journal,
                        )
                    else:
                        futures[resubmitted] = job
                else:
                    self._finish(job, record, error, error_type, cache, stats, journal)

    def _run_inline(self, job: _Job):
        try:
            record = _execute_one(job.run.experiment, job.run.seed, job.overrides)
            return record, None, None
        except Exception as exc:
            return None, format_error(exc), type(exc).__name__

    def _maybe_retry(
        self,
        job: _Job,
        error: Optional[str],
        error_type: Optional[str],
        journal: Optional[RunJournal],
        stats: Stats,
        retries: int,
    ) -> bool:
        """Journal a failed attempt and decide whether to try again.

        The attempt index is monotonic across resumed runs, so ``retries``
        bounds the *total* executions of a point, not per-invocation ones.
        """
        if job.attempt >= retries:
            return False
        run = job.run
        if journal is not None:
            journal.append(
                PointRecord(
                    label=run.name,
                    experiment=run.experiment,
                    key=run.cache_key,
                    seed=run.seed,
                    status=STATUS_FAILED,
                    params=run.params,
                    attempt=job.attempt,
                    error=error,
                    error_type=error_type,
                    quarantined=False,
                    ts=time.time(),
                )
            )
        stats.add("experiments.retried")
        self._log(f"[retry {job.attempt + 1}/{retries}] {run.name}: {error_type}")
        job.attempt += 1
        return True

    def _journal(
        self, journal: Optional[RunJournal], run: ExperimentRun, attempt: int
    ) -> None:
        if journal is None:
            return
        journal.append(
            PointRecord(
                label=run.name,
                experiment=run.experiment,
                key=run.cache_key,
                seed=run.seed,
                status=run.status,
                params=run.params,
                attempt=attempt,
                elapsed_s=run.elapsed_s,
                error=run.error,
                error_type=run.error_type,
                quarantined=run.status == STATUS_FAILED,
                ts=time.time(),
            )
        )

    def _finish(
        self,
        job: _Job,
        record: Optional[dict],
        error: Optional[str],
        error_type: Optional[str],
        cache: result_cache.ResultCache,
        stats: Stats,
        journal: Optional[RunJournal] = None,
    ) -> None:
        run = job.run
        run.attempts = job.attempt + 1
        if record is None:
            run.status = STATUS_FAILED
            run.error = error or "unknown failure"
            run.error_type = error_type
            stats.add("experiments.failed")
            self._journal(journal, run, attempt=job.attempt)
            self._log(f"[FAILED] {run.name}\n{run.error}")
            return
        run.status = STATUS_EXECUTED
        run.text = record["text"]
        run.summary = record["summary"]
        run.elapsed_s = record["elapsed_s"]
        if job.save_artifact:
            run.artifact = save_result(run.name, run.text)
        stats.add("experiments.executed")
        stats.add("experiments.executed_s", run.elapsed_s)
        if self.use_cache:
            # Persist (and fsync) the cache entry *before* journaling
            # success: a journaled success must imply a replayable result.
            cache.store(
                result_cache.CacheEntry(
                    name=run.experiment,
                    key=run.cache_key,
                    text=run.text,
                    elapsed_s=run.elapsed_s,
                    seed=run.seed,
                    params=run.params,
                    summary=run.summary,
                )
            )
        self._journal(journal, run, attempt=job.attempt)
        self._log(f"[{run.elapsed_s:6.1f}s] {run.artifact or run.name}")
        if self.show_text:
            self._log(run.text + "\n")


def clean(remove_cache: bool = True) -> List[str]:
    """Delete rendered artifacts, the manifest, and (optionally) the cache.

    Only touches files the orchestrator itself writes; returns their paths.
    """
    removed: List[str] = []
    root = results_dir()
    REGISTRY.load_all()
    known = set(REGISTRY.names())
    for filename in sorted(os.listdir(root)):
        path = os.path.join(root, filename)
        is_artifact = filename.endswith(".txt") and filename[: -len(".txt")] in known
        if is_artifact or filename == "manifest.json":
            os.unlink(path)
            removed.append(path)
    sweeps_root = os.path.join(root, "sweeps")
    if os.path.isdir(sweeps_root):
        shutil.rmtree(sweeps_root)
        removed.append(sweeps_root)
    if remove_cache:
        cache = result_cache.ResultCache()
        count = cache.clear()
        if count:
            removed.append(f"{cache.root} ({count} entries)")
        if os.path.isdir(cache.root) and not os.listdir(cache.root):
            os.rmdir(cache.root)
    return removed
