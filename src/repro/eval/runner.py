"""Backward-compatible serial runner (thin shim over the orchestrator).

``python -m repro.eval.runner`` regenerates every paper figure/table into
``results/`` exactly as before; the real scheduler now lives in
:mod:`repro.eval.orchestrator` and is driven by ``python -m repro run``
(parallel, cached — see EXPERIMENTS.md).
"""

from __future__ import annotations

import sys

from repro.eval.orchestrator import Orchestrator
from repro.eval.registry import PAPER_TAG


def run_all(verbose: bool = True) -> dict:
    """Run every paper experiment serially; returns {name: rendered text}.

    Caching is disabled so the shim always re-executes, matching the
    original runner's behavior.
    """
    orchestrator = Orchestrator(
        jobs=1, use_cache=False, verbose=verbose, show_text=verbose
    )
    report = orchestrator.run(tags=(PAPER_TAG,), write_manifest=True)
    if not report.ok:
        raise RuntimeError(
            "experiments failed: "
            + ", ".join(r.name for r in report.runs if r.error is not None)
        )
    return report.rendered()


if __name__ == "__main__":
    run_all(verbose="-q" not in sys.argv)
