"""Regenerate every table and figure into ``results/``.

Run as ``python -m repro.eval.runner``; EXPERIMENTS.md references the
outputs.
"""

from __future__ import annotations

import sys
import time

from repro.eval import tables_12
from repro.eval import (
    fig03_adam_slowdown,
    fig04_tensor_stats,
    fig05_breakdown,
    fig16_overall,
    fig17_breakdown,
    fig18_hit_rate,
    fig19_cpu_perf,
    fig20_mac_granularity,
    fig21_comm,
)
from repro.eval.tables import save_result


def run_all(verbose: bool = True) -> dict:
    """Run every experiment; returns {name: rendered text}."""
    experiments = {
        "table1_config": lambda: tables_12.render_table1(),
        "table2_workloads": lambda: tables_12.render_table2(),
        "hw_overhead": lambda: tables_12.render_hw_overhead(),
        "fig03_adam_slowdown": lambda: fig03_adam_slowdown.render(fig03_adam_slowdown.run()),
        "fig04_tensor_stats": lambda: fig04_tensor_stats.render(fig04_tensor_stats.run()),
        "fig05_breakdown": lambda: fig05_breakdown.render(fig05_breakdown.run()),
        "fig16_overall": lambda: fig16_overall.render(fig16_overall.run()),
        "fig17_breakdown": lambda: fig17_breakdown.render(fig17_breakdown.run()),
        "fig18_hit_rate": lambda: fig18_hit_rate.render(fig18_hit_rate.run()),
        "fig19_cpu_perf": lambda: fig19_cpu_perf.render(fig19_cpu_perf.run()),
        "fig20_mac_granularity": lambda: fig20_mac_granularity.render(
            fig20_mac_granularity.run()
        ),
        "fig21_comm": lambda: fig21_comm.render(fig21_comm.run()),
    }
    rendered = {}
    for name, job in experiments.items():
        start = time.time()
        text = job()
        rendered[name] = text
        path = save_result(name, text)
        if verbose:
            print(f"[{time.time() - start:6.1f}s] {path}")
            print(text)
            print()
    return rendered


if __name__ == "__main__":
    run_all(verbose="-q" not in sys.argv)
