"""ASCII table rendering and result persistence."""

from __future__ import annotations

import os
from typing import Iterable, List, Sequence


def ascii_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a fixed-width table."""
    materialized: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()
    out = [line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(row) for row in materialized)
    return "\n".join(out)


def results_dir() -> str:
    """The results directory (created on demand).

    ``REPRO_RESULTS_DIR`` overrides the default repo-level ``results/`` —
    the orchestrator's tests and CI shards use it for isolated output trees.
    """
    path = os.environ.get("REPRO_RESULTS_DIR")
    if not path:
        here = os.path.dirname(os.path.abspath(__file__))
        repo = os.path.abspath(os.path.join(here, "..", "..", ".."))
        path = os.path.join(repo, "results")
    os.makedirs(path, exist_ok=True)
    return path


def save_result(name: str, text: str) -> str:
    """Persist a rendered experiment to results/<name>.txt.

    ``name`` may carry directory components (sweep points save under
    ``results/sweeps/<sweep>/points/``); intermediate directories are
    created on demand.
    """
    path = os.path.join(results_dir(), f"{name}.txt")
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        f.write(text.rstrip() + "\n")
    return path


def fmt(value: float, digits: int = 2) -> str:
    return f"{value:.{digits}f}"


def pct(value: float, digits: int = 1) -> str:
    return f"{value * 100:.{digits}f}%"
