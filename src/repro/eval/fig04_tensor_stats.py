"""Figure 4: tensor count / size characteristics of the optimizer update.

Paper shape: tensor sizes grow to MBytes (hundreds of MB for the largest
models) while the tensor count stays at a few hundred.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.eval.registry import experiment
from repro.eval.tables import ascii_table, fmt
from repro.units import MiB
from repro.workloads.models import MODEL_ZOO, ModelConfig
from repro.workloads.transformer import TransformerInventory


@dataclass(frozen=True)
class Fig4Row:
    model: str
    tensor_count: int
    max_tensor_mib: float
    max_layer_tensor_mib: float
    mean_tensor_mib: float


@dataclass(frozen=True)
class Fig4Result:
    rows: List[Fig4Row]

    @property
    def max_count(self) -> int:
        return max(row.tensor_count for row in self.rows)


@experiment("fig04_tensor_stats", tags=("paper", "figure", "workloads"), cost="fast")
def run(models: tuple[ModelConfig, ...] = MODEL_ZOO) -> Fig4Result:
    rows = []
    for model in models:
        inventory = TransformerInventory(model)
        rows.append(
            Fig4Row(
                model=model.name,
                tensor_count=inventory.n_param_tensors,
                max_tensor_mib=inventory.max_tensor_bytes / MiB,
                max_layer_tensor_mib=inventory.max_layer_tensor_bytes / MiB,
                mean_tensor_mib=inventory.mean_tensor_bytes / MiB,
            )
        )
    return Fig4Result(rows=rows)


def render(result: Fig4Result) -> str:
    table = ascii_table(
        ["model", "tensor num", "max MiB", "max layer-tensor MiB", "mean MiB"],
        [
            (r.model, r.tensor_count, fmt(r.max_tensor_mib, 1),
             fmt(r.max_layer_tensor_mib, 1), fmt(r.mean_tensor_mib, 1))
            for r in result.rows
        ],
    )
    return (
        "Figure 4 — optimizer-update tensor characteristics\n"
        "(paper: counts stay at a few hundred, sizes reach 100s of MB)\n\n"
        + table
    )
