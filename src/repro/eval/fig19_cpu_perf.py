"""Figure 19: CPU Adam latency of TensorTEE (by iteration) vs SGX and SoftVN.

Paper numbers (normalized to non-secure):

========  =====  =====
config      4t     8t
========  =====  =====
SGX        2.64   3.65
SoftVN     1.04   1.13
ours@1     2.56   3.32
ours@40    1.05   1.03
========  =====  =====
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.cpu.adam import AdamExperiment, AdamExperimentConfig
from repro.cpu.config import CpuConfig
from repro.cpu.sgx import sgx_costs
from repro.cpu.softvn import softvn_costs
from repro.cpu.tensortee_mode import tensortee_costs
from repro.cpu.timing import adam_latency, non_secure_costs
from repro.eval.registry import experiment
from repro.eval.tables import ascii_table, fmt


@dataclass(frozen=True)
class Fig19Result:
    #: iteration -> {threads -> normalized latency} for TensorTEE
    ours_by_iteration: Dict[int, Dict[int, float]]
    sgx: Dict[int, float]
    softvn: Dict[int, float]
    iterations_reported: List[int]
    threads: List[int]


@experiment("fig19_cpu_perf", tags=("paper", "figure", "cpu"), cost="slow")
def run(
    n_params: int = 345_000_000,
    iterations: tuple[int, ...] = (1, 2, 5, 10, 20, 30, 40),
    threads: tuple[int, ...] = (4, 8),
) -> Fig19Result:
    config = CpuConfig()
    max_iter = max(iterations)
    # One scaled functional run per thread count (interleaving differs).
    per_thread_records = {}
    for t in threads:
        experiment = AdamExperiment(
            AdamExperimentConfig(
                n_layers=24,
                lines_per_tensor=64,
                threads=t,
                meta_table_capacity=512,
                merge_window=4,
                install_transfer_descriptors=True,
            )
        )
        per_thread_records[t] = experiment.run(max_iter)

    ours: Dict[int, Dict[int, float]] = {}
    for iteration in iterations:
        ours[iteration] = {}
        for t in threads:
            rates = per_thread_records[t][iteration - 1].rates
            costs = tensortee_costs(config, rates, threads=t)
            secure = adam_latency(config, n_params, t, costs).total_s
            base = adam_latency(config, n_params, t, non_secure_costs()).total_s
            ours[iteration][t] = secure / base
    sgx = {}
    softvn = {}
    for t in threads:
        base = adam_latency(config, n_params, t, non_secure_costs()).total_s
        sgx[t] = adam_latency(config, n_params, t, sgx_costs(config, threads=t)).total_s / base
        softvn[t] = (
            adam_latency(config, n_params, t, softvn_costs(config, threads=t)).total_s / base
        )
    return Fig19Result(
        ours_by_iteration=ours,
        sgx=sgx,
        softvn=softvn,
        iterations_reported=list(iterations),
        threads=list(threads),
    )


def render(result: Fig19Result) -> str:
    headers = ["config"] + [f"{t} threads" for t in result.threads]
    rows = [["non-secure"] + ["1.00" for _ in result.threads]]
    for iteration in result.iterations_reported:
        row = [f"TensorTEE @ iter {iteration}"]
        row += [fmt(result.ours_by_iteration[iteration][t]) for t in result.threads]
        rows.append(row)
    rows.append(["SGX"] + [fmt(result.sgx[t]) for t in result.threads])
    rows.append(["SoftVN"] + [fmt(result.softvn[t]) for t in result.threads])
    table = ascii_table(headers, rows)
    return (
        "Figure 19 — CPU Adam latency normalized to non-secure\n"
        "(paper: SGX 2.64/3.65; SoftVN 1.04/1.13; ours converges ~1.05)\n\n"
        + table
    )
