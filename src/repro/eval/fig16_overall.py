"""Figure 16: overall performance across the Table-2 zoo.

Paper shape: TensorTEE speeds up 2.1x..5.5x (avg 4.0x) over SGX+MGX, with
the gain growing with model size, while staying within ~2.1% of non-secure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.config import baseline_system, non_secure_system, tensortee_system
from repro.core.system import CollaborativeSystem
from repro.eval.registry import experiment
from repro.eval.tables import ascii_table, fmt, pct
from repro.workloads.models import MODEL_ZOO, ModelConfig


@dataclass(frozen=True)
class Fig16Row:
    model: str
    non_secure_s: float
    baseline_s: float
    tensortee_s: float

    @property
    def speedup(self) -> float:
        return self.baseline_s / self.tensortee_s

    @property
    def overhead(self) -> float:
        return self.tensortee_s / self.non_secure_s - 1.0


@dataclass(frozen=True)
class Fig16Result:
    rows: List[Fig16Row]

    @property
    def mean_speedup(self) -> float:
        return sum(r.speedup for r in self.rows) / len(self.rows)

    @property
    def max_speedup(self) -> float:
        return max(r.speedup for r in self.rows)

    @property
    def mean_overhead(self) -> float:
        return sum(r.overhead for r in self.rows) / len(self.rows)

    def as_dict(self) -> dict:
        """JSON-safe digest for the orchestrator manifest."""
        return {
            "mean_speedup": self.mean_speedup,
            "max_speedup": self.max_speedup,
            "mean_overhead": self.mean_overhead,
            "rows": [
                {
                    "model": r.model,
                    "non_secure_s": r.non_secure_s,
                    "baseline_s": r.baseline_s,
                    "tensortee_s": r.tensortee_s,
                    "speedup": r.speedup,
                    "overhead": r.overhead,
                }
                for r in self.rows
            ],
        }


@experiment("fig16_overall", tags=("paper", "figure", "e2e"), cost="slow")
def run(models: tuple[ModelConfig, ...] = MODEL_ZOO) -> Fig16Result:
    systems = {
        "ns": CollaborativeSystem(non_secure_system()),
        "base": CollaborativeSystem(baseline_system()),
        "ours": CollaborativeSystem(tensortee_system()),
    }
    rows = []
    for model in models:
        rows.append(
            Fig16Row(
                model=model.name,
                non_secure_s=systems["ns"].iteration_breakdown(model).total_s,
                baseline_s=systems["base"].iteration_breakdown(model).total_s,
                tensortee_s=systems["ours"].iteration_breakdown(model).total_s,
            )
        )
    return Fig16Result(rows=rows)


def render(result: Fig16Result) -> str:
    table = ascii_table(
        ["model", "non-secure (s)", "SGX+MGX (s)", "TensorTEE (s)", "speedup", "vs NS"],
        [
            (r.model, fmt(r.non_secure_s, 3), fmt(r.baseline_s, 3),
             fmt(r.tensortee_s, 3), fmt(r.speedup), pct(r.overhead))
            for r in result.rows
        ],
    )
    return (
        "Figure 16 — overall per-iteration latency and TensorTEE speedup\n"
        f"(paper: avg 4.0x / max 5.5x speedup, ~2.1% over non-secure; ours: "
        f"avg {result.mean_speedup:.2f}x / max {result.max_speedup:.2f}x, "
        f"{result.mean_overhead * 100:.1f}% over non-secure)\n\n" + table
    )
