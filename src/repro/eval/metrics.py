"""The one documented surface for turning results into metric mappings.

Three ad-hoc conversions grew up around "give me this result's numbers as
a dict": :meth:`repro.core.results.StageBreakdown.as_dict` (stage timing
records), :meth:`repro.sim.stats.Stats.as_dict` (flattened counters), and
the sweep engine's dotted-path metric extraction. They all meet here:

- :class:`Metrics` is the structural protocol every metric-bearing result
  implements — a zero-argument ``as_dict`` returning a JSON-safe mapping;
- :func:`as_metrics` is how consumers (the orchestrator summary, the
  sweep engine, the serve layer) obtain that mapping without hasattr
  probing;
- :func:`extract_metric` resolves a dotted path inside the mapping — the
  sweep ``metrics:`` entries are paths into ``as_metrics`` output.

A result type joins the surface by implementing ``as_dict``; nothing
registers anywhere.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Protocol, Sequence, runtime_checkable


@runtime_checkable
class Metrics(Protocol):
    """Structural interface of every metric-bearing result object."""

    def as_dict(self) -> Mapping[str, Any]:
        """The JSON-safe metric mapping of this object."""
        ...  # pragma: no cover - protocol declaration


def as_metrics(value: Any) -> Optional[dict]:
    """The metric mapping of ``value``, or None when it exposes none.

    Accepts anything satisfying :class:`Metrics`; a text-only or
    metric-less result yields None, which downstream consumers treat as
    "no summary" (the sweep engine then records empty metrics).
    """
    if isinstance(value, Metrics):
        return dict(value.as_dict())
    return None


def extract_metric(summary: Any, path: str) -> Any:
    """Resolve a dotted path (dict keys / list indices) in a summary.

    Returns None when any segment is missing — a point whose experiment
    has no metrics simply yields empty values.
    """
    node = summary
    for segment in path.split("."):
        if isinstance(node, Mapping):
            if segment not in node:
                return None
            node = node[segment]
        elif isinstance(node, Sequence) and not isinstance(node, (str, bytes)):
            try:
                node = node[int(segment)]
            except (ValueError, IndexError):
                return None
        else:
            return None
    return node
