"""Figure 5: GPT2-M ZeRO-Offload stage breakdown, non-secure vs SGX+MGX.

Paper shape: communication is ~12% of the non-secure iteration but balloons
to ~53% under the mismatched-granularity baseline TEE.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import baseline_system, non_secure_system
from repro.core.results import StageBreakdown
from repro.core.system import CollaborativeSystem
from repro.eval.registry import experiment
from repro.eval.tables import ascii_table, pct
from repro.workloads.models import model_by_name


@dataclass(frozen=True)
class Fig5Result:
    non_secure: StageBreakdown
    baseline: StageBreakdown

    def comm_fraction(self, breakdown: StageBreakdown) -> float:
        f = breakdown.fractions()
        return f["Comm W"] + f["Comm G"]

    def as_dict(self) -> dict:
        """JSON-safe digest for the orchestrator manifest."""
        return {
            "non_secure": self.non_secure.as_dict(),
            "baseline": self.baseline.as_dict(),
        }


@experiment("fig05_breakdown", tags=("paper", "figure", "e2e"), cost="fast")
def run(model_name: str = "GPT2-M") -> Fig5Result:
    model = model_by_name(model_name)
    ns = CollaborativeSystem(non_secure_system()).iteration_breakdown(model)
    base = CollaborativeSystem(baseline_system()).iteration_breakdown(model)
    return Fig5Result(non_secure=ns, baseline=base)


def render(result: Fig5Result) -> str:
    rows = []
    for breakdown in (result.non_secure, result.baseline):
        f = breakdown.fractions()
        rows.append(
            (breakdown.mode, pct(f["NPU"]), pct(f["CPU"]), pct(f["Comm W"]),
             pct(f["Comm G"]), pct(f["Comm W"] + f["Comm G"]))
        )
    table = ascii_table(
        ["config", "NPU", "CPU", "Comm W", "Comm G", "Comm total"], rows
    )
    return (
        "Figure 5 — GPT2-M stage breakdown (non-secure vs SGX+MGX baseline)\n"
        "(paper: comm 12% -> 53% once the mismatched TEE is enabled)\n\n"
        + table
    )
