"""Transfer timing and compute/communication overlap (Secs. 3.3, 4.4, 6.4).

Three protocol timings:

- **plain** (non-secure): DMA over PCIe; gradient transfer streams behind
  backward layer by layer (all but the last chunk hidden), weight upload is
  exposed before the next forward (the ZeRO-Offload schedule, Fig. 5).
- **graviton** (baseline, Fig. 6a): the sender decrypts enclave memory and
  re-encrypts into a non-secure staging buffer (bounded by the AES engine),
  transfers, and the receiver decrypts + re-encrypts into its enclave.
  AES/DRAM contention forbids overlap with computation (Fig. 7), so the
  whole chain is exposed.
- **direct** (TensorTEE, Fig. 6b): metadata over the trusted channel in
  parallel with a raw ciphertext DMA; no AES on the transfer path, so the
  transfer overlaps computation like the non-secure case (Fig. 15), plus a
  small verification-barrier synchronization.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.comm.aes_engine import AesEngine
from repro.comm.pcie import PcieLink
from repro.errors import ConfigError


@dataclass(frozen=True)
class CommConfig:
    """Link + engine configuration shared by all protocols."""

    link: PcieLink = field(default_factory=PcieLink)
    npu_aes: AesEngine = field(default_factory=AesEngine)
    cpu_aes: AesEngine = field(default_factory=lambda: AesEngine(name="cpu-aes"))
    #: Verification-barrier synchronization before a direct transfer
    #: (MAC comparison + poison check, a few microseconds).
    barrier_sync_s: float = 20e-6
    #: Per-tensor metadata message cost on the trusted channel.
    metadata_msg_s: float = 2e-6


@dataclass(frozen=True)
class TransferTiming:
    """Exposed (non-overlapped) time and total occupancy of one transfer."""

    exposed_s: float
    busy_s: float
    reenc_s: float = 0.0
    link_s: float = 0.0
    dec_s: float = 0.0


def plain_transfer(
    config: CommConfig,
    nbytes: float,
    overlap_fraction: float,
    compute_window_s: float,
) -> TransferTiming:
    """Non-secure DMA with partial overlap under a compute window."""
    if not 0 <= overlap_fraction <= 1:
        raise ConfigError("overlap fraction must be in [0, 1]")
    link_s = config.link.transfer_time(nbytes)
    hideable = min(link_s * overlap_fraction, max(0.0, compute_window_s))
    return TransferTiming(
        exposed_s=link_s - hideable,
        busy_s=link_s,
        link_s=link_s,
    )


def graviton_transfer(config: CommConfig, nbytes: float, sender_is_npu: bool) -> TransferTiming:
    """Baseline protocol: decrypt -> staging -> transfer -> re-encrypt.

    Every byte is decrypted out of the sender's enclave and re-encrypted
    into a non-secure staging region (one AES pass each way on the sender),
    moved over PCIe, then decrypted and re-encrypted by the receiver. The
    sender/receiver AES passes are limited by their engines; nothing
    overlaps computation (AES and DRAM bandwidth contention, Sec. 3.3).
    """
    sender = config.npu_aes if sender_is_npu else config.cpu_aes
    receiver = config.cpu_aes if sender_is_npu else config.npu_aes
    reenc_s = sender.crypt_time(nbytes) * 2  # decrypt + re-encrypt to staging
    link_s = config.link.transfer_time(nbytes)
    dec_s = receiver.crypt_time(nbytes) * 2  # decrypt staging + enclave re-encrypt
    exposed = reenc_s + link_s + dec_s
    return TransferTiming(
        exposed_s=exposed,
        busy_s=exposed,
        reenc_s=reenc_s,
        link_s=link_s,
        dec_s=dec_s,
    )


def direct_transfer(
    config: CommConfig,
    nbytes: float,
    overlap_fraction: float,
    compute_window_s: float,
    n_tensors: int = 1,
) -> TransferTiming:
    """TensorTEE protocol: trusted metadata + raw ciphertext DMA.

    The ciphertext moves without touching an AES engine, so the transfer
    overlaps computation exactly like the non-secure DMA; the metadata
    messages ride the trusted channel in parallel (only the barrier
    synchronization is exposed).
    """
    if n_tensors <= 0:
        raise ConfigError("a transfer involves at least one tensor")
    link_s = config.link.transfer_time(nbytes)
    metadata_s = n_tensors * config.metadata_msg_s
    hideable = min(link_s * overlap_fraction, max(0.0, compute_window_s))
    exposed = (link_s - hideable) + config.barrier_sync_s + max(0.0, metadata_s - link_s)
    return TransferTiming(
        exposed_s=exposed,
        busy_s=link_s + metadata_s,
        link_s=link_s,
    )
