"""PCIe link model (Table 1: PCIe 4.0 x16).

The raw link is ~32 GB/s; sustained host<->device tensor copies achieve a
fraction of that once protocol overhead, non-pinned staging and
synchronization are paid — we model the effective rate the paper's
communication volumes imply.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.units import gb_per_s


@dataclass(frozen=True)
class PcieLink:
    """Point-to-point link with an effective bandwidth and base latency."""

    name: str = "pcie4x16"
    effective_bw: float = gb_per_s(10.0)
    base_latency_s: float = 5e-6

    def __post_init__(self) -> None:
        if self.effective_bw <= 0 or self.base_latency_s < 0:
            raise ConfigError("link parameters must be positive")

    def transfer_time(self, nbytes: float) -> float:
        """Time to move ``nbytes`` over the link."""
        if nbytes < 0:
            raise ConfigError("cannot transfer negative bytes")
        if nbytes == 0:
            return 0.0
        return self.base_latency_s + nbytes / self.effective_bw
