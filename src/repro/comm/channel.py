"""The trusted metadata channel (Sec. 4.4.2).

Carries per-tensor (address range, VN, MAC) triples between the enclaves,
encrypted and authenticated under the DH session keys with monotonic
sequence numbers (replay protection). Payloads are tiny compared to tensor
data, so the channel's timing contribution is negligible; its functional
correctness is what the integration tests exercise.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict

from repro.crypto.ctr import CounterModeCipher
from repro.crypto.mac import MacEngine
from repro.errors import IntegrityError, ProtocolError
from repro.units import CACHELINE_BYTES


@dataclass(frozen=True)
class TensorMetadata:
    """What the receiver needs to admit a ciphertext tensor."""

    name: str
    src_base_va: int
    src_base_pa: int
    n_lines: int
    vn: int
    tensor_mac: int

    def to_payload(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "src_base_va": self.src_base_va,
            "src_base_pa": self.src_base_pa,
            "n_lines": self.n_lines,
            "vn": self.vn,
            "tensor_mac": self.tensor_mac,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "TensorMetadata":
        return cls(**payload)


class TrustedChannel:
    """Authenticated-encryption message pipe between two enclaves."""

    def __init__(self, aes_key: bytes, mac_key: bytes, name: str = "trusted") -> None:
        self._cipher = CounterModeCipher(aes_key, line_bytes=CACHELINE_BYTES)
        self._mac = MacEngine(mac_key)
        self.name = name
        self._send_seq = 0
        self._recv_seq = 0

    def _crypt(self, blob: bytes, seq: int) -> bytes:
        padded_len = -(-len(blob) // CACHELINE_BYTES) * CACHELINE_BYTES
        padded = blob.ljust(padded_len, b"\x00")
        out = bytearray()
        for i in range(0, padded_len, CACHELINE_BYTES):
            out += self._cipher.encrypt_line(
                padded[i : i + CACHELINE_BYTES], pa=i, vn=seq
            )
        return bytes(out)

    def send(self, metadata: TensorMetadata) -> Dict[str, Any]:
        """Encrypt+authenticate one metadata message; returns the wire form."""
        blob = json.dumps(metadata.to_payload()).encode("utf-8")
        seq = self._send_seq
        self._send_seq += 1
        ciphertext = self._crypt(blob, seq)
        tag = self._mac.digest(seq.to_bytes(8, "big") + ciphertext)
        return {"seq": seq, "len": len(blob), "ciphertext": ciphertext, "tag": tag}

    def receive(self, message: Dict[str, Any]) -> TensorMetadata:
        """Verify, decrypt and sequence-check one message."""
        seq = message["seq"]
        if seq != self._recv_seq:
            raise ProtocolError(
                f"{self.name}: out-of-order message (seq {seq}, expected {self._recv_seq})"
            )
        tag = self._mac.digest(seq.to_bytes(8, "big") + message["ciphertext"])
        if tag != message["tag"]:
            raise IntegrityError(f"{self.name}: metadata message tag mismatch")
        self._recv_seq += 1
        blob = self._crypt(message["ciphertext"], seq)[: message["len"]]
        return TensorMetadata.from_payload(json.loads(blob.decode("utf-8")))
