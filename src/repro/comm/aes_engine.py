"""AES engine bandwidth model (Sec. 3.3).

The paper's key observation: one fully-pipelined AES engine provides about
8 GB/s — not even enough for NPU compute IO (>= 20 GB/s), so baseline
re-encryption for communication serializes against computation. TensorTEE
assumes one engine per memory channel; the *communication path* in the
baseline still has to re-encrypt through these engines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.units import gb_per_s


@dataclass(frozen=True)
class AesEngine:
    """A fixed-throughput cryptographic engine."""

    name: str = "aes"
    bandwidth: float = gb_per_s(8.0)
    n_engines: int = 1

    def __post_init__(self) -> None:
        if self.bandwidth <= 0 or self.n_engines <= 0:
            raise ConfigError("engine bandwidth/count must be positive")

    @property
    def total_bandwidth(self) -> float:
        return self.bandwidth * self.n_engines

    def crypt_time(self, nbytes: float) -> float:
        """Time to encrypt or decrypt ``nbytes``."""
        if nbytes < 0:
            raise ConfigError("cannot encrypt negative bytes")
        return nbytes / self.total_bandwidth
