"""Functional Graviton-like baseline transfer (Fig. 6a).

The granularity mismatch forces the path through a non-secure staging
region: the sender decrypts its enclave data and re-encrypts it under a
session key into staging; the receiver decrypts staging and re-encrypts
into its own enclave format. Every byte crosses an AES engine four times —
the overhead Fig. 21 charges to the baseline.

The staging buffer is exposed to the bus adversary; its session-key
encryption is what keeps the data confidential in transit.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.crypto.ctr import CounterModeCipher
from repro.crypto.mac import MacEngine
from repro.errors import IntegrityError, ProtocolError
from repro.tee.device import CpuSecureDevice, NpuSecureDevice
from repro.tensor.tensor import TensorDesc
from repro.units import CACHELINE_BYTES

LINE = CACHELINE_BYTES


class GravitonTransferProtocol:
    """Baseline staged transfer with re-encryption at both ends."""

    def __init__(
        self,
        cpu: CpuSecureDevice,
        npu: NpuSecureDevice,
        session_keys: Tuple[bytes, bytes],
    ) -> None:
        self.cpu = cpu
        self.npu = npu
        aes_key, mac_key = session_keys
        self._staging_cipher = CounterModeCipher(aes_key)
        self._staging_mac = MacEngine(mac_key)
        self._seq = 0

    def _stage(self, plaintext_lines: List[bytes]) -> Tuple[List[bytes], List[int], int]:
        """Re-encrypt plaintext lines into the non-secure staging format."""
        seq = self._seq
        self._seq += 1
        staged = []
        tags = []
        for i, line in enumerate(plaintext_lines):
            ciphertext = self._staging_cipher.encrypt_line(line, pa=i, vn=seq)
            staged.append(ciphertext)
            tags.append(self._staging_mac.line_mac(ciphertext, i, seq))
        return staged, tags, seq

    def _unstage(self, staged: List[bytes], tags: List[int], seq: int) -> List[bytes]:
        """Verify and decrypt the staging buffer on the receiving side."""
        lines = []
        for i, (ciphertext, tag) in enumerate(zip(staged, tags)):
            if self._staging_mac.line_mac(ciphertext, i, seq) != tag:
                raise IntegrityError("staging buffer tampered in transit")
            lines.append(self._staging_cipher.decrypt_line(ciphertext, i, seq))
        return lines

    def cpu_to_npu(self, src: TensorDesc, dst: TensorDesc) -> None:
        """CPU decrypt -> staging -> transfer -> NPU re-encrypt."""
        if src.n_lines != dst.n_lines:
            raise ProtocolError("transfer shape mismatch")
        plaintext = self.cpu.read_tensor(src)
        lines = [
            plaintext[i * LINE : (i + 1) * LINE].ljust(LINE, b"\x00")
            for i in range(src.n_lines)
        ]
        staged, tags, seq = self._stage(lines)
        recovered = self._unstage(staged, tags, seq)
        self.npu.write_tensor(dst, b"".join(recovered)[: dst.nbytes])

    def npu_to_cpu(self, src: TensorDesc, dst: TensorDesc) -> None:
        """NPU decrypt (after barrier) -> staging -> transfer -> CPU re-encrypt."""
        if src.n_lines != dst.n_lines:
            raise ProtocolError("transfer shape mismatch")
        self.npu.engine.verification_barrier([src])
        plaintext = self.npu.read_tensor_delayed(src)
        self.npu.engine.verification_barrier([src])
        lines = [
            plaintext[i * LINE : (i + 1) * LINE].ljust(LINE, b"\x00")
            for i in range(src.n_lines)
        ]
        staged, tags, seq = self._stage(lines)
        recovered = self._unstage(staged, tags, seq)
        data = b"".join(recovered)[: dst.nbytes]
        if len(data) != dst.nbytes:
            raise ProtocolError("staging size mismatch")
        # CPU-side enclave write through the analyzer + MEE.
        self.cpu.write_tensor(dst, data)
