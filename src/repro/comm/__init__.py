"""CPU<->NPU communication: links, protocols, overlap scheduling."""

from repro.comm.pcie import PcieLink
from repro.comm.aes_engine import AesEngine
from repro.comm.channel import TrustedChannel
from repro.comm.scheduler import CommConfig, TransferTiming

__all__ = ["PcieLink", "AesEngine", "TrustedChannel", "CommConfig", "TransferTiming"]
