"""Functional direct data transfer protocol (Sec. 4.4, Fig. 6b).

Moves ciphertext straight between the two enclaves' DRAMs over the (modelled)
PCIe direct channel, with per-tensor metadata riding the trusted channel.
No decryption or re-encryption happens anywhere on the path — the receiving
device verifies the tensor MAC on first use against the metadata.

NPU→CPU receives also install the tensor into the CPU's Meta Table using
the transfer descriptor (the Sec. 4.2 fast path).
"""

from __future__ import annotations

from typing import Tuple

from repro.comm.channel import TensorMetadata, TrustedChannel
from repro.errors import IntegrityError, ProtocolError
from repro.tee.device import CpuSecureDevice, NpuSecureDevice
from repro.tensor.tensor import TensorDesc
from repro.units import CACHELINE_BYTES

LINE = CACHELINE_BYTES


class DirectTransferProtocol:
    """Direct ciphertext transfers between an attested CPU/NPU pair."""

    def __init__(
        self,
        cpu: CpuSecureDevice,
        npu: NpuSecureDevice,
        channel_keys: Tuple[bytes, bytes],
    ) -> None:
        self.cpu = cpu
        self.npu = npu
        aes_key, mac_key = channel_keys
        self._cpu_to_npu = TrustedChannel(aes_key, mac_key, name="cpu->npu")
        self._npu_to_cpu = TrustedChannel(aes_key, mac_key, name="npu->cpu")

    # -- CPU -> NPU (weights) ------------------------------------------------

    def cpu_to_npu(self, src: TensorDesc, dst: TensorDesc) -> None:
        """Transfer a CPU tensor into an NPU tensor slot."""
        if src.n_lines != dst.n_lines:
            raise ProtocolError(
                f"shape mismatch: {src.name} ({src.n_lines} lines) -> "
                f"{dst.name} ({dst.n_lines} lines)"
            )
        vn, tensor_mac = self.cpu.tensor_metadata(src)
        metadata = TensorMetadata(
            name=src.name,
            src_base_va=src.base_va,
            src_base_pa=self.cpu.base_pa(src),
            n_lines=src.n_lines,
            vn=vn,
            tensor_mac=tensor_mac,
        )
        wire = self._cpu_to_npu.send(metadata)
        received = self._cpu_to_npu.receive(wire)
        # Direct channel: raw ciphertext DMA, line by line.
        for i in range(src.n_lines):
            src_pa = self.cpu.mee.pages.translate(src.base_va + i * LINE)
            ciphertext = self.cpu.mee.dram.read_line(src_pa)
            self.npu.raw_write_line(dst.base_va + i * LINE, ciphertext)
        self.npu.admit_transfer(
            dst,
            vn=received.vn,
            tensor_mac=received.tensor_mac,
            src_base_pa=received.src_base_pa,
        )

    # -- NPU -> CPU (gradients) ------------------------------------------------

    def npu_to_cpu(self, src: TensorDesc, dst: TensorDesc) -> None:
        """Transfer an NPU tensor into a CPU tensor slot.

        Enforces the verification barrier first: a poisoned/unverified
        tensor must not leave the NPU enclave (Sec. 4.3).
        """
        if src.n_lines != dst.n_lines:
            raise ProtocolError("transfer shape mismatch")
        self.npu.engine.verification_barrier([src])
        vn, tensor_mac = self.npu.tensor_metadata(src)
        metadata = TensorMetadata(
            name=src.name,
            src_base_va=src.base_va,
            src_base_pa=self.npu.base_pa(src),
            n_lines=src.n_lines,
            vn=vn,
            tensor_mac=tensor_mac,
        )
        wire = self._npu_to_cpu.send(metadata)
        received = self._npu_to_cpu.receive(wire)
        # Ciphertext DMA into CPU DRAM. The CPU records the tensor's source
        # crypto coordinates per line so its MEE can decrypt (and installs
        # the entry into the Meta Table via the transfer descriptor).
        running_mac = 0
        for i in range(src.n_lines):
            src_pa = self.npu.base_pa(src) + i * LINE
            host_pa = self.npu.mee.pages.translate(src.base_va + i * LINE)
            ciphertext = self.npu.mee.dram.read_line(host_pa)
            running_mac ^= self.cpu.mee.mac.line_mac(ciphertext, src_pa, received.vn)
            plaintext = self.cpu.mee.cipher.decrypt_line(ciphertext, src_pa, received.vn)
            # The CPU MEE re-homes the line under its own (PA, VN) counter as
            # it lands — a pipelined XOR re-keying with no AES on the path
            # is possible because keystreams are precomputable from the
            # metadata that arrived ahead of the data.
            self.cpu.mee.write_line(dst.base_va + i * LINE, plaintext, vn=received.vn)
        if running_mac != received.tensor_mac:
            raise IntegrityError(
                f"{src.name}: ciphertext stream does not match the trusted metadata MAC"
            )
        self.cpu.analyzer.install_from_transfer(dst.base_va, dst.n_lines, received.vn)
