"""TensorTEE reproduction (ASPLOS 2024).

Public API surface: the secure devices, the transfer protocols, the
end-to-end system model and the workload zoo. Subsystems are importable as
``repro.crypto``, ``repro.cpu``, ``repro.npu``, ``repro.comm``,
``repro.tee``, ``repro.workloads``, ``repro.core`` and ``repro.eval``.
"""

from repro.core.config import (
    SystemConfig,
    SystemMode,
    baseline_system,
    non_secure_system,
    tensortee_system,
)
from repro.core.system import CollaborativeSystem
from repro.tee.device import CpuSecureDevice, NpuSecureDevice
from repro.tee.enclave import Enclave, TrustDomain, mutual_attestation
from repro.workloads.models import MODEL_ZOO, model_by_name

__version__ = "1.0.0"

__all__ = [
    "SystemConfig",
    "SystemMode",
    "baseline_system",
    "non_secure_system",
    "tensortee_system",
    "CollaborativeSystem",
    "CpuSecureDevice",
    "NpuSecureDevice",
    "Enclave",
    "TrustDomain",
    "mutual_attestation",
    "MODEL_ZOO",
    "model_by_name",
    "__version__",
]
