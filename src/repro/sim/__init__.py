"""Simulation kernel: clock domains, statistics, discrete-event engine."""

from repro.sim.clock import Clock
from repro.sim.engine import Event, EventEngine
from repro.sim.stats import Stats

__all__ = ["Clock", "Event", "EventEngine", "Stats"]
