"""Memory-trace record types shared by the workload generators and TEEs.

A trace is an iterable of :class:`MemAccess`. The TenAnalyzer consumes the
*core-side virtual-address* stream (Fig. 9b of the paper); the MEE consumes
the *memory-controller physical* stream. ``tensor_id`` tags are generator
ground truth used only for accuracy accounting, never by the hardware models.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List


class AccessKind(enum.Enum):
    """What a memory request is for."""

    READ = "R"
    WRITE = "W"
    INST = "I"  # instruction fetch (isInst flag, Sec. 4.3)


@dataclass(frozen=True)
class MemAccess:
    """One 64-byte-line memory request.

    ``vaddr`` is the line-aligned virtual address issued by a core;
    ``thread`` identifies the issuing hardware thread; ``tensor_id`` is
    ground-truth provenance for accuracy accounting (-1 = non-tensor data).
    """

    vaddr: int
    kind: AccessKind = AccessKind.READ
    thread: int = 0
    tensor_id: int = -1

    def is_write(self) -> bool:
        return self.kind is AccessKind.WRITE

    def is_inst(self) -> bool:
        return self.kind is AccessKind.INST


def interleave_round_robin(streams: List[List[MemAccess]], chunk: int = 4) -> List[MemAccess]:
    """Interleave per-thread streams in round-robin ``chunk``-sized bursts.

    Models how requests from multiple cores arrive interleaved at the memory
    controller (the disruption TenAnalyzer must tolerate, Sec. 4.2).
    """
    cursors = [0] * len(streams)
    merged: List[MemAccess] = []
    remaining = sum(len(s) for s in streams)
    while remaining:
        for idx, stream in enumerate(streams):
            start = cursors[idx]
            if start >= len(stream):
                continue
            stop = min(start + chunk, len(stream))
            merged.extend(stream[start:stop])
            taken = stop - start
            cursors[idx] = stop
            remaining -= taken
    return merged
