"""Columnar (structure-of-arrays) memory-trace batches.

The object trace API (:class:`repro.sim.trace.MemAccess`) materializes one
frozen dataclass per 64-byte request — fine for unit tests, ruinous for the
hot replay loops that stream hundreds of thousands of requests per figure.
:class:`TraceBatch` keeps the same four fields as parallel columns
(``vaddr`` / ``kind`` / ``thread`` / ``tensor_id``): NumPy ``int64`` arrays
when NumPy is importable, plain lists otherwise, so the package still works
on NumPy-less installs.

Contract shared with every batch API behind :mod:`repro.vec`:

- the *content* of a batch never depends on the vectorization mode — a
  ``REPRO_NO_VECTORIZE=1`` run sees the same addresses in the same order,
  which is what keeps the paper artifacts digest-identical across modes;
- the object API remains a thin view: :meth:`from_accesses` /
  :meth:`to_accesses` round-trip losslessly, and iterating a batch yields
  :class:`MemAccess` records;
- windowed slicing (:meth:`window` / :meth:`windows`) is zero-copy on the
  NumPy representation, so replay loops can process whole trace windows
  without re-materializing them.

Kinds are stored as small integer codes (:data:`KIND_READ`,
:data:`KIND_WRITE`, :data:`KIND_INST`) matching the enum order of
:class:`repro.sim.trace.AccessKind`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

from repro import vec
from repro.errors import ConfigError
from repro.sim.trace import AccessKind, MemAccess

#: Integer kind codes (column representation of :class:`AccessKind`).
KIND_READ = 0
KIND_WRITE = 1
KIND_INST = 2

_KIND_TO_CODE = {
    AccessKind.READ: KIND_READ,
    AccessKind.WRITE: KIND_WRITE,
    AccessKind.INST: KIND_INST,
}
_CODE_TO_KIND = (AccessKind.READ, AccessKind.WRITE, AccessKind.INST)


def _column(values: Sequence[int]):
    """Materialize one column: ``int64`` array with NumPy, list without."""
    if vec.HAVE_NUMPY:
        np = vec.np
        array = np.asarray(values, dtype=np.int64)
        if array.ndim != 1:
            raise ConfigError("trace columns must be one-dimensional")
        return array
    return [int(v) for v in values]


class TraceBatch:
    """One window of a memory trace, stored column-wise."""

    __slots__ = ("vaddr", "kind", "thread", "tensor_id")

    def __init__(self, vaddr, kind, thread, tensor_id) -> None:
        self.vaddr = _column(vaddr)
        self.kind = _column(kind)
        self.thread = _column(thread)
        self.tensor_id = _column(tensor_id)
        n = len(self.vaddr)
        if not (len(self.kind) == len(self.thread) == len(self.tensor_id) == n):
            raise ConfigError(
                "trace columns must be equal length, got "
                f"{n}/{len(self.kind)}/{len(self.thread)}/{len(self.tensor_id)}"
            )

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_columns(cls, vaddr, kind, thread, tensor_id) -> "TraceBatch":
        """Build from four parallel columns (the generator fast path)."""
        return cls(vaddr, kind, thread, tensor_id)

    @classmethod
    def from_accesses(cls, accesses: Iterable[MemAccess]) -> "TraceBatch":
        """Columnarize an object trace (bridge from the legacy API)."""
        vaddr: List[int] = []
        kind: List[int] = []
        thread: List[int] = []
        tensor_id: List[int] = []
        code_of = _KIND_TO_CODE
        for access in accesses:
            vaddr.append(access.vaddr)
            kind.append(code_of[access.kind])
            thread.append(access.thread)
            tensor_id.append(access.tensor_id)
        return cls(vaddr, kind, thread, tensor_id)

    @classmethod
    def of_kind(
        cls, addresses: Sequence[int], code: int, thread: int = 0, tensor_id: int = -1
    ) -> "TraceBatch":
        """Wrap raw line addresses into a single-kind batch."""
        if code not in (KIND_READ, KIND_WRITE, KIND_INST):
            raise ConfigError(f"unknown access-kind code {code!r}")
        n = len(addresses)
        return cls(addresses, [code] * n, [thread] * n, [tensor_id] * n)

    @classmethod
    def reads(cls, addresses: Sequence[int], thread: int = 0, tensor_id: int = -1) -> "TraceBatch":
        """Read batch over raw line addresses (replaces ``trace.reads``)."""
        return cls.of_kind(addresses, KIND_READ, thread, tensor_id)

    @classmethod
    def writes(cls, addresses: Sequence[int], thread: int = 0, tensor_id: int = -1) -> "TraceBatch":
        """Write batch over raw line addresses (replaces ``trace.writes``)."""
        return cls.of_kind(addresses, KIND_WRITE, thread, tensor_id)

    @classmethod
    def empty(cls) -> "TraceBatch":
        return cls((), (), (), ())

    @classmethod
    def concat(cls, batches: Sequence["TraceBatch"]) -> "TraceBatch":
        """Concatenate batches in order."""
        if not batches:
            return cls.empty()
        if vec.HAVE_NUMPY:
            np = vec.np
            return cls(
                np.concatenate([b.vaddr for b in batches]),
                np.concatenate([b.kind for b in batches]),
                np.concatenate([b.thread for b in batches]),
                np.concatenate([b.tensor_id for b in batches]),
            )
        vaddr: List[int] = []
        kind: List[int] = []
        thread: List[int] = []
        tensor_id: List[int] = []
        for b in batches:
            vaddr.extend(b.vaddr)
            kind.extend(b.kind)
            thread.extend(b.thread)
            tensor_id.extend(b.tensor_id)
        return cls(vaddr, kind, thread, tensor_id)

    # -- views -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.vaddr)

    def window(self, start: int, stop: int | None = None) -> "TraceBatch":
        """The ``[start:stop)`` slice as a batch (zero-copy under NumPy)."""
        return TraceBatch(
            self.vaddr[start:stop],
            self.kind[start:stop],
            self.thread[start:stop],
            self.tensor_id[start:stop],
        )

    def windows(self, size: int) -> Iterator["TraceBatch"]:
        """Successive windows of at most ``size`` accesses."""
        if size <= 0:
            raise ConfigError(f"window size must be positive, got {size}")
        for start in range(0, len(self), size):
            yield self.window(start, start + size)

    def columns(self) -> Tuple[List[int], List[int], List[int], List[int]]:
        """The four columns as plain Python lists.

        Serial replay loops iterate these: elementwise iteration over
        native lists is ~3x faster than over NumPy arrays (no per-element
        boxing), and the values are plain ``int``.
        """
        if vec.HAVE_NUMPY:
            return (
                self.vaddr.tolist(),
                self.kind.tolist(),
                self.thread.tolist(),
                self.tensor_id.tolist(),
            )
        return (list(self.vaddr), list(self.kind), list(self.thread), list(self.tensor_id))

    def to_accesses(self) -> List[MemAccess]:
        """Materialize the legacy object view."""
        kinds = _CODE_TO_KIND
        vaddr, kind, thread, tensor_id = self.columns()
        return [
            MemAccess(vaddr=va, kind=kinds[k], thread=t, tensor_id=tid)
            for va, k, t, tid in zip(vaddr, kind, thread, tensor_id)
        ]

    def __iter__(self) -> Iterator[MemAccess]:
        return iter(self.to_accesses())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceBatch):
            return NotImplemented
        return self.columns() == other.columns()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceBatch({len(self)} accesses)"

    # -- stream composition ----------------------------------------------------

    @staticmethod
    def interleave_round_robin(streams: Sequence["TraceBatch"], chunk: int = 4) -> "TraceBatch":
        """Round-robin ``chunk``-burst interleave of per-thread streams.

        Columnar twin of :func:`repro.sim.trace.interleave_round_robin`:
        identical output order, assembled as whole-slice copies instead of
        per-access appends.
        """
        if chunk <= 0:
            raise ConfigError(f"chunk must be positive, got {chunk}")
        pieces: List[Tuple[int, int, int]] = []  # (stream index, start, stop)
        cursors = [0] * len(streams)
        lengths = [len(s) for s in streams]
        remaining = sum(lengths)
        while remaining:
            for idx in range(len(streams)):
                start = cursors[idx]
                if start >= lengths[idx]:
                    continue
                stop = min(start + chunk, lengths[idx])
                pieces.append((idx, start, stop))
                cursors[idx] = stop
                remaining -= stop - start
        return TraceBatch.concat([streams[i].window(a, b) for i, a, b in pieces])
