"""A minimal discrete-event engine.

Most of the reproduction uses closed-form stage models, but the overlap
scheduler (:mod:`repro.comm.scheduler`) and the NPU pipeline model replay
ordered events; this engine provides deterministic time-ordered dispatch.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import SimulationError


@dataclass(order=True)
class Event:
    """A scheduled callback. Ordering: time, then insertion sequence."""

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it."""
        self.cancelled = True


class EventEngine:
    """Deterministic discrete-event loop.

    >>> eng = EventEngine()
    >>> order = []
    >>> _ = eng.at(2.0, lambda: order.append("b"))
    >>> _ = eng.at(1.0, lambda: order.append("a"))
    >>> eng.run()
    >>> order
    ['a', 'b']
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._dispatched = 0

    def at(self, time: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` at absolute ``time`` (>= now)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule {label or action!r} at {time} < now ({self.now})"
            )
        event = Event(time=time, seq=next(self._seq), action=action, label=label)
        heapq.heappush(self._queue, event)
        return event

    def at_many(
        self,
        times: "list[float]",
        action: Callable[[int], None],
        label: str = "",
    ) -> "list[Event]":
        """Bulk-schedule ``action(i)`` at each ``times[i]`` (all >= now).

        One heap push per event, validated up front — the batched twin of
        calling :meth:`at` in a loop with index-capturing lambdas.
        """
        for time in times:
            if time < self.now:
                raise SimulationError(
                    f"cannot schedule {label or action!r} at {time} < now ({self.now})"
                )
        return [
            self.at(time, (lambda i=i: action(i)), label=label)
            for i, time in enumerate(times)
        ]

    def after(self, delay: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay} for {label or action!r}")
        return self.at(self.now + delay, action, label)

    def step(self) -> Optional[Event]:
        """Dispatch the single next pending event; None when queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now = event.time
            event.action()
            self._dispatched += 1
            return event
        return None

    def run(self, until: float | None = None, max_events: int = 10_000_000) -> None:
        """Dispatch events until the queue drains (or ``until`` is reached)."""
        for _ in range(max_events):
            if not self._queue:
                return
            if until is not None and self._queue[0].time > until:
                self.now = until
                return
            self.step()
        raise SimulationError(f"event budget exhausted after {max_events} events")

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for event in self._queue if not event.cancelled)

    @property
    def dispatched(self) -> int:
        """Total events executed so far."""
        return self._dispatched
