"""Hierarchical statistics registry.

Every simulated component owns a :class:`Stats` scope and bumps named
counters; scopes nest so a whole-system report can be rendered at the end of
a run. Counters are plain floats — rates and ratios are computed on demand.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, Tuple


class Stats:
    """A nestable bag of named counters.

    >>> s = Stats("mee")
    >>> s.add("reads", 3)
    >>> s["reads"]
    3.0
    >>> child = s.scope("metadata_cache")
    >>> child.add("hits")
    >>> dict(s.flat())["mee.metadata_cache.hits"]
    1.0
    """

    def __init__(self, name: str = "root") -> None:
        self.name = name
        self._counters: Dict[str, float] = defaultdict(float)
        self._children: Dict[str, "Stats"] = {}

    def add(self, key: str, value: float = 1.0) -> None:
        """Increment counter ``key`` by ``value``."""
        self._counters[key] += value

    def set(self, key: str, value: float) -> None:
        """Overwrite counter ``key`` with ``value``."""
        self._counters[key] = value

    def get(self, key: str, default: float = 0.0) -> float:
        """Read counter ``key`` (``default`` when absent)."""
        return self._counters.get(key, default)

    def __getitem__(self, key: str) -> float:
        return self._counters.get(key, 0.0)

    def scope(self, name: str) -> "Stats":
        """Return (creating on first use) the child scope ``name``."""
        if name not in self._children:
            self._children[name] = Stats(name)
        return self._children[name]

    def ratio(self, numerator: str, denominator: str) -> float:
        """``numerator / denominator`` counters; 0.0 when denominator is 0."""
        denom = self._counters.get(denominator, 0.0)
        if denom == 0.0:
            return 0.0
        return self._counters.get(numerator, 0.0) / denom

    def reset(self) -> None:
        """Zero all counters in this scope and children."""
        self._counters.clear()
        for child in self._children.values():
            child.reset()

    def flat(self, prefix: str | None = None) -> Iterator[Tuple[str, float]]:
        """Yield ``(dotted.name, value)`` for this scope and all children."""
        base = self.name if prefix is None else prefix
        for key in sorted(self._counters):
            yield f"{base}.{key}", self._counters[key]
        for child_name in sorted(self._children):
            child = self._children[child_name]
            yield from child.flat(prefix=f"{base}.{child_name}")

    def as_dict(self) -> Dict[str, float]:
        """Flatten to ``{dotted.name: value}`` for machine-readable reports
        (the orchestrator embeds this in ``results/manifest.json``;
        implements the :class:`repro.eval.metrics.Metrics` protocol)."""
        return dict(self.flat())

    def report(self) -> str:
        """Render a sorted ``name = value`` listing."""
        lines = [f"{name} = {value:g}" for name, value in self.flat()]
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        n_keys = len(self._counters)
        return f"Stats({self.name!r}, {n_keys} counters, {len(self._children)} children)"
