"""Clock domains.

The CPU runs at 3.5 GHz and the NPU at 1 GHz (Table 1). Components express
latencies in their own cycles; cross-domain composition happens in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class Clock:
    """A fixed-frequency clock domain.

    >>> cpu = Clock(name="cpu", freq_hz=3.5e9)
    >>> cpu.cycles_to_seconds(35)
    1e-08
    """

    name: str
    freq_hz: float

    def __post_init__(self) -> None:
        if self.freq_hz <= 0:
            raise ConfigError(f"clock {self.name!r} needs a positive frequency")

    @property
    def period_s(self) -> float:
        """Duration of one cycle in seconds."""
        return 1.0 / self.freq_hz

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert a cycle count in this domain to seconds."""
        return cycles / self.freq_hz

    def seconds_to_cycles(self, seconds: float) -> float:
        """Convert seconds to (fractional) cycles in this domain."""
        return seconds * self.freq_hz


#: Clock domains from Table 1.
CPU_CLOCK = Clock(name="cpu", freq_hz=3.5e9)
NPU_CLOCK = Clock(name="npu", freq_hz=1.0e9)
