"""Tensor allocation and lookup.

Each device (CPU host memory, NPU GDDR) owns a registry; the registry is the
ground truth the accuracy accounting compares TenAnalyzer's detected
structures against, and the place the NPU's tensor-granularity VN/MAC tables
key off.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import ConfigError
from repro.tensor.dtype import DType
from repro.tensor.tensor import TensorDesc
from repro.units import CACHELINE_BYTES, align_up, PAGE_BYTES


class TensorRegistry:
    """Bump allocator + id/address indexes for tensors on one device."""

    def __init__(
        self,
        base_va: int = 0x7F00_0000_0000,
        alignment: int = PAGE_BYTES,
        guard_bytes: int = 0,
    ) -> None:
        """``guard_bytes`` inserts an unmapped gap after each tensor.

        Scaled-down functional simulations use this to preserve the "tensors
        are far apart in the address space" property of full-size models, so
        the TenAnalyzer cannot mistake neighbouring scaled tensors for rows
        of one tiled tensor.
        """
        if alignment % CACHELINE_BYTES:
            raise ConfigError("alignment must be a multiple of the line size")
        if guard_bytes < 0:
            raise ConfigError("guard must be non-negative")
        self._next_va = base_va
        self._alignment = alignment
        self._guard_bytes = guard_bytes
        self._by_id: Dict[int, TensorDesc] = {}
        self._by_name: Dict[str, TensorDesc] = {}
        self._ranges: List[Tuple[int, int, int]] = []  # (start, end, tensor_id)
        self._next_id = 0

    def allocate(
        self,
        name: str,
        shape: Tuple[int, ...],
        dtype: DType = DType.FP32,
        role: str = "data",
    ) -> TensorDesc:
        """Allocate a new tensor at the next aligned address."""
        if name in self._by_name:
            raise ConfigError(f"tensor name {name!r} already allocated")
        tensor = TensorDesc(
            name=name,
            base_va=self._next_va,
            shape=shape,
            dtype=dtype,
            tensor_id=self._next_id,
            role=role,
        )
        self._next_va = align_up(
            self._next_va + tensor.nbytes + self._guard_bytes, self._alignment
        )
        self._by_id[tensor.tensor_id] = tensor
        self._by_name[name] = tensor
        self._ranges.append(
            (tensor.base_va, tensor.base_va + tensor.n_lines * CACHELINE_BYTES, tensor.tensor_id)
        )
        self._next_id += 1
        return tensor

    def register_view(self, view: TensorDesc) -> TensorDesc:
        """Index a derived view by name (no new storage, same tensor id).

        Views created with :meth:`TensorDesc.view` / ``slice_`` /
        ``select`` / ``transpose`` / ``channels_last`` share their
        parent's allocation; registering makes them addressable by name.
        ``find``/``by_id`` keep resolving to the owning storage tensor.
        """
        if view.name in self._by_name:
            raise ConfigError(f"tensor name {view.name!r} already allocated")
        if view.tensor_id not in self._by_id:
            raise ConfigError(
                f"view {view.name!r} does not derive from an allocated tensor"
            )
        self._by_name[view.name] = view
        return view

    def by_id(self, tensor_id: int) -> TensorDesc:
        if tensor_id not in self._by_id:
            raise ConfigError(f"unknown tensor id {tensor_id}")
        return self._by_id[tensor_id]

    def by_name(self, name: str) -> TensorDesc:
        if name not in self._by_name:
            raise ConfigError(f"unknown tensor {name!r}")
        return self._by_name[name]

    def find(self, vaddr: int) -> Optional[TensorDesc]:
        """Tensor containing ``vaddr``, or None for non-tensor data."""
        for start, end, tensor_id in self._ranges:
            if start <= vaddr < end:
                return self._by_id[tensor_id]
        return None

    def __iter__(self) -> Iterator[TensorDesc]:
        return iter(self._by_id.values())

    def __len__(self) -> int:
        return len(self._by_id)

    @property
    def total_bytes(self) -> int:
        """Sum of all allocated tensor payloads."""
        return sum(t.nbytes for t in self._by_id.values())
