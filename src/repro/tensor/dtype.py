"""Element dtypes used by the collaborative-training workloads."""

from __future__ import annotations

import enum


class DType(enum.Enum):
    """Tensor element type and width."""

    FP16 = ("fp16", 2)
    FP32 = ("fp32", 4)

    def __init__(self, label: str, nbytes: int) -> None:
        self.label = label
        self.nbytes = nbytes

    def __repr__(self) -> str:
        return f"DType.{self.name}"
