"""Tensor descriptors.

A :class:`TensorDesc` is a *named view over a storage allocation*: a base
virtual address plus a :class:`repro.tensor.geometry.TensorGeometry`
(shape, element strides, storage offset, dtype), plus the iteration
helpers the trace generators and the TEE components need — line streams,
per-thread shards, and 2D tile walks (for GEMM workloads).

The default descriptor (``strides=None, storage_offset=0``) is the
contiguous row-major case every pre-geometry call site used; those paths
keep their original closed-form arithmetic behind the
:meth:`TensorDesc.is_contiguous` fast path, so contiguous enumeration is
bit-identical to the legacy API. Derived views (:meth:`view`,
:meth:`slice_`, :meth:`select`, :meth:`transpose`, :meth:`channels_last`)
share the parent's storage, ``tensor_id`` and role; their line streams
come from the geometry walk (distinct lines, first-touch order).

**Span semantics are line-granular**: a tensor owns whole cachelines, so
``end_va`` is the line-rounded end of coverage and ``contains`` agrees
with it exactly — ``contains(va)`` iff ``base_va <= va < end_va`` for
contiguous tensors (the tail line belongs to the tensor even when its
payload ends mid-line), and iff the line is actually covered for strided
views.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterator, List, Optional, Tuple

from repro.errors import ConfigError
from repro.tensor.dtype import DType
from repro.tensor.geometry import TensorGeometry
from repro.units import CACHELINE_BYTES, lines_in


@dataclass(frozen=True)
class TensorDesc:
    """A named view over a storage allocation.

    ``strides`` (elements) and ``storage_offset`` (elements) default to
    the contiguous row-major layout over ``shape``; derived views carry
    explicit values and share the parent's ``base_va`` / ``tensor_id``.
    """

    name: str
    base_va: int
    shape: Tuple[int, ...]
    dtype: DType = DType.FP32
    tensor_id: int = -1
    role: str = "data"  # e.g. weight / grad / momentum / variance / activation
    strides: Optional[Tuple[int, ...]] = None
    storage_offset: int = 0

    def __post_init__(self) -> None:
        if self.base_va % CACHELINE_BYTES:
            raise ConfigError(f"{self.name}: base VA must be line-aligned")
        if not self.shape or any(dim <= 0 for dim in self.shape):
            raise ConfigError(f"{self.name}: shape must be positive, got {self.shape}")
        if self.strides is not None:
            object.__setattr__(self, "strides", tuple(self.strides))
            # Validate the full geometry eagerly (stride/offset checks).
            self.geometry  # noqa: B018 — raises ConfigError on bad metadata

    # -- geometry --------------------------------------------------------------

    @property
    def geometry(self) -> TensorGeometry:
        """The shape/stride/offset metadata of this view."""
        if self.strides is None:
            return TensorGeometry.contiguous(self.shape, self.dtype, self.storage_offset)
        return TensorGeometry(self.shape, self.strides, self.storage_offset, self.dtype)

    def is_contiguous(self) -> bool:
        """Dense row-major walk from a line-aligned start (the fast path)."""
        if self.strides is None:
            return self.storage_offset == 0
        return self.storage_offset == 0 and self.geometry.is_contiguous

    def _covered(self) -> Tuple[int, ...]:
        """Distinct covered lines, first-touch order (cached, strided path)."""
        cached = self.__dict__.get("_covered_lines")
        if cached is None:
            cached = tuple(self.geometry.line_addresses(self.base_va))
            object.__setattr__(self, "_covered_lines", cached)
        return cached

    def _covered_set(self) -> FrozenSet[int]:
        cached = self.__dict__.get("_covered_line_set")
        if cached is None:
            cached = frozenset(self._covered())
            object.__setattr__(self, "_covered_line_set", cached)
        return cached

    # -- derived views ---------------------------------------------------------

    def _derived(self, geometry: TensorGeometry, suffix: str, name: Optional[str]) -> "TensorDesc":
        return TensorDesc(
            name=name if name is not None else f"{self.name}{suffix}",
            base_va=self.base_va,
            shape=geometry.shape,
            dtype=self.dtype,
            tensor_id=self.tensor_id,
            role=self.role,
            strides=geometry.strides,
            storage_offset=geometry.storage_offset,
        )

    def view(self, shape: Tuple[int, ...], name: Optional[str] = None) -> "TensorDesc":
        """Reinterpret this (contiguous) view under a new shape."""
        return self._derived(self.geometry.view(shape), ".view", name)

    def slice_(
        self, dim: int, start: int, stop: int, step: int = 1, name: Optional[str] = None
    ) -> "TensorDesc":
        """Narrow dimension ``dim`` to ``[start, stop)`` with ``step``."""
        geometry = self.geometry.slice_(dim, start, stop, step)
        return self._derived(geometry, f".s{dim}[{start}:{stop}:{step}]", name)

    def select(self, dim: int, index: int, name: Optional[str] = None) -> "TensorDesc":
        """Drop dimension ``dim`` by fixing it at ``index``."""
        return self._derived(self.geometry.select(dim, index), f".sel{dim}[{index}]", name)

    def transpose(
        self, dim0: int = -2, dim1: int = -1, name: Optional[str] = None
    ) -> "TensorDesc":
        """Swap two dimensions (metadata-only view)."""
        return self._derived(self.geometry.transpose(dim0, dim1), ".T", name)

    def channels_last(self, name: Optional[str] = None) -> "TensorDesc":
        """NHWC-layout twin of an NCHW tensor (relayout, not a byte view)."""
        return self._derived(self.geometry.channels_last(), ".cl", name)

    # -- sizes -----------------------------------------------------------------

    @property
    def n_elements(self) -> int:
        count = 1
        for dim in self.shape:
            count *= dim
        return count

    @property
    def nbytes(self) -> int:
        """Payload bytes: elements x element width (not the storage span)."""
        return self.n_elements * self.dtype.nbytes

    @property
    def n_lines(self) -> int:
        """Distinct cachelines the view touches."""
        if self.is_contiguous():
            return lines_in(self.nbytes)
        return len(self._covered())

    @property
    def end_va(self) -> int:
        """One past the last covered cacheline (line-granular span end).

        Containment agrees with this bound: for a contiguous tensor,
        ``contains(va)`` iff ``base_va <= va < end_va``. The payload may
        end mid-line; the tail line still belongs to the tensor.
        """
        if self.is_contiguous():
            return self.base_va + self.n_lines * CACHELINE_BYTES
        return self.last_line_va + CACHELINE_BYTES

    @property
    def last_line_va(self) -> int:
        """VA of the last (highest) cacheline of the view."""
        if self.is_contiguous():
            return self.base_va + (self.n_lines - 1) * CACHELINE_BYTES
        return max(self._covered())

    def contains(self, vaddr: int) -> bool:
        """Whether an address falls on a cacheline covered by this view."""
        if self.is_contiguous():
            return self.base_va <= vaddr < self.end_va
        return vaddr - (vaddr % CACHELINE_BYTES) in self._covered_set()

    # -- iteration helpers ---------------------------------------------------

    def line_addresses(self) -> Iterator[int]:
        """Covered line addresses in walk (first-touch) order.

        Contiguous views stream ascending from ``base_va`` — bit-identical
        to the pre-geometry enumeration; strided views walk the geometry
        in row-major order, each line yielded once.
        """
        if self.is_contiguous():
            for i in range(self.n_lines):
                yield self.base_va + i * CACHELINE_BYTES
            return
        yield from self._covered()

    def shard_lines(self, n_shards: int, shard: int) -> List[int]:
        """Line addresses of contiguous shard ``shard`` of ``n_shards``.

        Used to model data-parallel Adam: thread *t* updates shard *t*.
        Shards partition the walk-order line stream: disjoint, complete,
        and balanced to within one line under any geometry.
        """
        if not 0 <= shard < n_shards:
            raise ConfigError(f"shard {shard} out of range for {n_shards}")
        total = self.n_lines
        base = total // n_shards
        extra = total % n_shards
        start = shard * base + min(shard, extra)
        length = base + (1 if shard < extra else 0)
        if self.is_contiguous():
            return [
                self.base_va + i * CACHELINE_BYTES for i in range(start, start + length)
            ]
        return list(self._covered()[start : start + length])

    def tile_row_lines(self, row: int, col0: int, tile_cols: int) -> List[int]:
        """Line addresses covering one row segment of a 2D tile.

        ``row`` is the absolute row index and the segment spans elements
        ``[col0, col0 + tile_cols)``; the element walk follows the view's
        strides (row-major contiguity is just the default geometry).
        """
        if len(self.shape) != 2:
            raise ConfigError(f"{self.name}: tile iteration needs a 2D tensor")
        n_cols = self.shape[1]
        if not (0 <= row < self.shape[0] and 0 <= col0 and col0 + tile_cols <= n_cols):
            raise ConfigError(f"{self.name}: tile segment out of bounds")
        if self.is_contiguous():
            start = self.base_va + (row * n_cols + col0) * self.dtype.nbytes
            end = start + tile_cols * self.dtype.nbytes
            first = start - (start % CACHELINE_BYTES)
            lines = []
            addr = first
            while addr < end:
                lines.append(addr)
                addr += CACHELINE_BYTES
            return lines
        segment = self.geometry.slice_(0, row, row + 1).slice_(1, col0, col0 + tile_cols)
        return segment.line_addresses(self.base_va)

    @property
    def row_stride_bytes(self) -> int:
        """Byte stride between consecutive rows (2D tensors)."""
        if len(self.shape) != 2:
            raise ConfigError(f"{self.name}: row stride needs a 2D tensor")
        if self.strides is None:
            return self.shape[1] * self.dtype.nbytes
        return self.strides[0] * self.dtype.nbytes
