"""Tensor descriptors.

A :class:`TensorDesc` is metadata only — base virtual address, shape, dtype —
plus the iteration helpers the trace generators and the TEE components need:
line streams, per-thread shards, and 2D tile walks (for GEMM workloads).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.errors import ConfigError
from repro.tensor.dtype import DType
from repro.units import CACHELINE_BYTES, lines_in


@dataclass(frozen=True)
class TensorDesc:
    """An allocated tensor: contiguous row-major VA range."""

    name: str
    base_va: int
    shape: Tuple[int, ...]
    dtype: DType = DType.FP32
    tensor_id: int = -1
    role: str = "data"  # e.g. weight / grad / momentum / variance / activation

    def __post_init__(self) -> None:
        if self.base_va % CACHELINE_BYTES:
            raise ConfigError(f"{self.name}: base VA must be line-aligned")
        if not self.shape or any(dim <= 0 for dim in self.shape):
            raise ConfigError(f"{self.name}: shape must be positive, got {self.shape}")

    @property
    def n_elements(self) -> int:
        count = 1
        for dim in self.shape:
            count *= dim
        return count

    @property
    def nbytes(self) -> int:
        return self.n_elements * self.dtype.nbytes

    @property
    def n_lines(self) -> int:
        return lines_in(self.nbytes)

    @property
    def end_va(self) -> int:
        """One past the last byte (not line-aligned in general)."""
        return self.base_va + self.nbytes

    @property
    def last_line_va(self) -> int:
        """VA of the last cacheline of the tensor."""
        return self.base_va + (self.n_lines - 1) * CACHELINE_BYTES

    def contains(self, vaddr: int) -> bool:
        """Whether a (line) address falls inside the tensor."""
        return self.base_va <= vaddr < self.base_va + self.n_lines * CACHELINE_BYTES

    # -- iteration helpers ---------------------------------------------------

    def line_addresses(self) -> Iterator[int]:
        """All line addresses of the tensor in streaming order."""
        for i in range(self.n_lines):
            yield self.base_va + i * CACHELINE_BYTES

    def shard_lines(self, n_shards: int, shard: int) -> List[int]:
        """Line addresses of contiguous shard ``shard`` of ``n_shards``.

        Used to model data-parallel Adam: thread *t* updates shard *t*.
        """
        if not 0 <= shard < n_shards:
            raise ConfigError(f"shard {shard} out of range for {n_shards}")
        total = self.n_lines
        base = total // n_shards
        extra = total % n_shards
        start = shard * base + min(shard, extra)
        length = base + (1 if shard < extra else 0)
        return [
            self.base_va + i * CACHELINE_BYTES for i in range(start, start + length)
        ]

    def tile_row_lines(self, row: int, col0: int, tile_cols: int) -> List[int]:
        """Line addresses covering one row segment of a 2D tile.

        For a row-major 2D tensor, ``row`` is the absolute row index and the
        segment spans elements ``[col0, col0 + tile_cols)``.
        """
        if len(self.shape) != 2:
            raise ConfigError(f"{self.name}: tile iteration needs a 2D tensor")
        n_cols = self.shape[1]
        if not (0 <= row < self.shape[0] and 0 <= col0 and col0 + tile_cols <= n_cols):
            raise ConfigError(f"{self.name}: tile segment out of bounds")
        start = self.base_va + (row * n_cols + col0) * self.dtype.nbytes
        end = start + tile_cols * self.dtype.nbytes
        first = start - (start % CACHELINE_BYTES)
        lines = []
        addr = first
        while addr < end:
            lines.append(addr)
            addr += CACHELINE_BYTES
        return lines

    @property
    def row_stride_bytes(self) -> int:
        """Byte stride between consecutive rows (2D tensors)."""
        if len(self.shape) != 2:
            raise ConfigError(f"{self.name}: row stride needs a 2D tensor")
        return self.shape[1] * self.dtype.nbytes
