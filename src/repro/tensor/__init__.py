"""Tensor descriptors: the unit of protection in TensorTEE."""

from repro.tensor.dtype import DType
from repro.tensor.geometry import TensorGeometry, contiguous_strides
from repro.tensor.tensor import TensorDesc
from repro.tensor.registry import TensorRegistry

__all__ = ["DType", "TensorDesc", "TensorGeometry", "TensorRegistry", "contiguous_strides"]
