"""Tensor geometry: shape, strides and storage offset.

A :class:`TensorGeometry` describes how a logical tensor maps onto a flat
storage allocation — the minimal metadata PyTorch keeps in
``TensorGeometry`` / ``ExtraMeta`` (sizes, strides, storage offset) — so
views, non-contiguous slices, transposes and channels-last layouts can be
expressed without copying anything. Strides are in **elements** (PyTorch
convention); byte math happens only at the line-enumeration boundary.

Everything here is pure metadata: geometries know nothing about virtual
addresses. :class:`repro.tensor.tensor.TensorDesc` binds a geometry to a
named storage allocation and derives the line streams the trace generators
and TEE components consume.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Iterator, List, Tuple

from repro.errors import ConfigError
from repro.tensor.dtype import DType
from repro.units import CACHELINE_BYTES


def contiguous_strides(shape: Tuple[int, ...]) -> Tuple[int, ...]:
    """Row-major (C-order) element strides for ``shape``."""
    strides: List[int] = [0] * len(shape)
    acc = 1
    for dim in range(len(shape) - 1, -1, -1):
        strides[dim] = acc
        acc *= shape[dim]
    return tuple(strides)


@dataclass(frozen=True)
class TensorGeometry:
    """How a logical tensor maps onto flat storage.

    ``strides`` and ``storage_offset`` are in elements. Strides must be
    positive: the simulator's access streams always walk storage forward,
    and forward-only strides keep line enumeration trivially in-bounds.
    Overlapping walks (e.g. a stride smaller than the inner extent) are
    legal — line enumeration deduplicates in first-touch order.
    """

    shape: Tuple[int, ...]
    strides: Tuple[int, ...]
    storage_offset: int = 0
    dtype: DType = DType.FP32

    def __post_init__(self) -> None:
        object.__setattr__(self, "shape", tuple(self.shape))
        object.__setattr__(self, "strides", tuple(self.strides))
        if not self.shape or any(dim <= 0 for dim in self.shape):
            raise ConfigError(f"shape must be positive, got {self.shape}")
        if len(self.strides) != len(self.shape):
            raise ConfigError(
                f"strides {self.strides} must pair with shape {self.shape}"
            )
        if any(stride <= 0 for stride in self.strides):
            raise ConfigError(f"strides must be positive, got {self.strides}")
        if self.storage_offset < 0:
            raise ConfigError("storage offset must be non-negative")

    @classmethod
    def contiguous(
        cls, shape: Tuple[int, ...], dtype: DType = DType.FP32, storage_offset: int = 0
    ) -> "TensorGeometry":
        """A dense row-major geometry over ``shape``."""
        return cls(tuple(shape), contiguous_strides(tuple(shape)), storage_offset, dtype)

    # -- shape metadata --------------------------------------------------------

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def n_elements(self) -> int:
        count = 1
        for dim in self.shape:
            count *= dim
        return count

    @property
    def nbytes(self) -> int:
        """Payload bytes: elements x element width (not the storage span)."""
        return self.n_elements * self.dtype.nbytes

    @property
    def is_contiguous(self) -> bool:
        """Whether the row-major walk visits storage densely in order.

        Size-1 dimensions carry no address information, so their strides
        are ignored (PyTorch semantics). A non-zero ``storage_offset``
        does not affect contiguity — it only shifts where the walk starts.
        """
        acc = 1
        for dim in range(len(self.shape) - 1, -1, -1):
            if self.shape[dim] == 1:
                continue
            if self.strides[dim] != acc:
                return False
            acc *= self.shape[dim]
        return True

    @property
    def span_elements(self) -> int:
        """One past the highest element offset the walk can touch."""
        last = self.storage_offset
        for dim, stride in zip(self.shape, self.strides):
            last += (dim - 1) * stride
        return last + 1

    # -- derived views ---------------------------------------------------------

    def view(self, shape: Tuple[int, ...]) -> "TensorGeometry":
        """Reinterpret a contiguous geometry under a new shape."""
        shape = tuple(shape)
        if not self.is_contiguous:
            raise ConfigError("view requires a contiguous geometry")
        new = TensorGeometry.contiguous(shape, self.dtype, self.storage_offset)
        if new.n_elements != self.n_elements:
            raise ConfigError(
                f"view shape {shape} has {new.n_elements} elements, "
                f"source has {self.n_elements}"
            )
        return new

    def slice_(self, dim: int, start: int, stop: int, step: int = 1) -> "TensorGeometry":
        """Narrow dimension ``dim`` to ``[start, stop)`` with ``step``."""
        dim = self._check_dim(dim)
        if step <= 0:
            raise ConfigError("slice step must be positive")
        if not (0 <= start < stop <= self.shape[dim]):
            raise ConfigError(
                f"slice [{start}, {stop}) out of bounds for dim {dim} "
                f"of extent {self.shape[dim]}"
            )
        length = -(-(stop - start) // step)
        shape = self.shape[:dim] + (length,) + self.shape[dim + 1 :]
        strides = (
            self.strides[:dim] + (self.strides[dim] * step,) + self.strides[dim + 1 :]
        )
        offset = self.storage_offset + start * self.strides[dim]
        return TensorGeometry(shape, strides, offset, self.dtype)

    def select(self, dim: int, index: int) -> "TensorGeometry":
        """Drop dimension ``dim`` by fixing it at ``index``."""
        dim = self._check_dim(dim)
        if self.ndim == 1:
            raise ConfigError("select on a 1D geometry would leave no dims")
        if not 0 <= index < self.shape[dim]:
            raise ConfigError(
                f"index {index} out of bounds for dim {dim} of extent {self.shape[dim]}"
            )
        shape = self.shape[:dim] + self.shape[dim + 1 :]
        strides = self.strides[:dim] + self.strides[dim + 1 :]
        offset = self.storage_offset + index * self.strides[dim]
        return TensorGeometry(shape, strides, offset, self.dtype)

    def transpose(self, dim0: int = -2, dim1: int = -1) -> "TensorGeometry":
        """Swap two dimensions (a pure metadata permutation)."""
        dim0 = self._check_dim(dim0)
        dim1 = self._check_dim(dim1)
        shape = list(self.shape)
        strides = list(self.strides)
        shape[dim0], shape[dim1] = shape[dim1], shape[dim0]
        strides[dim0], strides[dim1] = strides[dim1], strides[dim0]
        return replace(self, shape=tuple(shape), strides=tuple(strides))

    def channels_last(self) -> "TensorGeometry":
        """NHWC strides for an NCHW shape (a relayout, not a byte view).

        The logical shape stays (N, C, H, W); the storage order becomes
        channels-last, i.e. the geometry describes a *fresh* allocation
        laid out NHWC — the PyTorch ``memory_format`` notion rather than
        a view of the same bytes.
        """
        if self.ndim != 4:
            raise ConfigError("channels_last needs a 4D (N, C, H, W) geometry")
        n, c, h, w = self.shape
        return TensorGeometry(
            (n, c, h, w), (c * h * w, 1, w * c, c), self.storage_offset, self.dtype
        )

    def _check_dim(self, dim: int) -> int:
        if dim < 0:
            dim += self.ndim
        if not 0 <= dim < self.ndim:
            raise ConfigError(f"dim {dim} out of range for {self.ndim}D geometry")
        return dim

    # -- enumeration -----------------------------------------------------------

    def element_offsets(self) -> Iterator[int]:
        """Element offsets of the row-major walk (storage units)."""
        inner_extent = self.shape[-1]
        inner_stride = self.strides[-1]
        for outer in itertools.product(*(range(d) for d in self.shape[:-1])):
            base = self.storage_offset + sum(
                i * s for i, s in zip(outer, self.strides)
            )
            for j in range(inner_extent):
                yield base + j * inner_stride
        return

    def line_addresses(self, base_va: int) -> List[int]:
        """Distinct cacheline addresses touched, in first-touch order.

        The walk is the row-major element order; every line appears exactly
        once, the first time an element lands on it. For a contiguous
        geometry with ``storage_offset == 0`` and a line-aligned
        ``base_va`` this is exactly the legacy ascending enumeration.
        """
        esize = self.dtype.nbytes
        line = CACHELINE_BYTES
        seen = set()
        out: List[int] = []
        inner_extent = self.shape[-1]
        inner_stride_bytes = self.strides[-1] * esize
        for outer in itertools.product(*(range(d) for d in self.shape[:-1])):
            start = base_va + esize * (
                self.storage_offset + sum(i * s for i, s in zip(outer, self.strides))
            )
            if inner_stride_bytes < line:
                # Dense (or overlapping) inner walk: whole-row line range.
                first = start - start % line
                end = start + (inner_extent - 1) * inner_stride_bytes + esize
                for addr in range(first, end, line):
                    if addr not in seen:
                        seen.add(addr)
                        out.append(addr)
            else:
                for j in range(inner_extent):
                    byte = start + j * inner_stride_bytes
                    addr = byte - byte % line
                    if addr not in seen:
                        seen.add(addr)
                        out.append(addr)
        return out
