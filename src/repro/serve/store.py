"""Durable, journal-backed job queue for ``repro serve``.

The queue has no in-memory-only state: every transition —
``submitted -> running -> done | failed``, or ``submitted ->
cancelled`` — is appended to ``jobs.jsonl`` as one fsynced
:class:`~repro.eval.journal.JobRecord` line (the same append/fsync/torn-
tail discipline as the sweep run journal), and the newest record per job
id *is* the job's state. Killing the server at any instant therefore
loses at most the line being written; reopening the store replays the
journal and :meth:`JobStore.recover` re-enqueues whatever a dead server
left ``running``.

The store is thread-safe (the HTTP handler threads submit/cancel while
the executor thread claims/finishes) but single-process: one server owns
one queue directory.
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time
import uuid
from typing import Dict, List, Optional

from repro.errors import ConfigError
from repro.eval.journal import (
    JOB_CANCELLED,
    JOB_DONE,
    JOB_RUNNING,
    JOB_SUBMITTED,
    JobRecord,
    RunJournal,
    read_journal,
)
from repro.eval.tables import results_dir


def default_queue_dir() -> str:
    """Where the queue lives unless ``--queue-dir`` says otherwise."""
    return os.path.join(results_dir(), "queue")


class JobStore:
    """The durable queue: submit, claim, finish, cancel — all journaled."""

    def __init__(self, root: Optional[str] = None, recover: bool = True) -> None:
        self.root = root or default_queue_dir()
        self.path = os.path.join(self.root, "jobs.jsonl")
        self._lock = threading.RLock()
        self._jobs: Dict[str, JobRecord] = {}  #: newest record per job id
        self._order: Dict[str, int] = {}  #: submission sequence (FIFO tiebreak)
        self._seq = 0
        if os.path.isfile(self.path):
            self._replay()
            # attach() truncates a torn tail and appends a resume marker,
            # so every store reopening is visible in the journal itself.
            self._journal = RunJournal.attach(self.path)
        else:
            self._journal = RunJournal.start(
                self.path, {"queue": "repro-serve", "created_at": time.time()}
            )
        if recover:
            self.recover()

    def _replay(self) -> None:
        view = read_journal(self.path)
        for record in view.jobs:
            if record.job_id not in self._order:
                self._order[record.job_id] = self._seq
                self._seq += 1
            self._jobs[record.job_id] = record

    def recover(self) -> List[JobRecord]:
        """Re-enqueue jobs a dead server left mid-execution.

        A ``running`` record with no terminal successor means the server
        died while executing: the job goes back to ``submitted`` with its
        attempt count bumped, so restart resumes the queue where the
        crash cut it off. Returns the re-enqueued records.
        """
        requeued: List[JobRecord] = []
        with self._lock:
            for job_id, record in sorted(self._jobs.items(), key=lambda kv: self._order[kv[0]]):
                if record.status == JOB_RUNNING:
                    fresh = dataclasses.replace(
                        record,
                        status=JOB_SUBMITTED,
                        attempt=record.attempt + 1,
                        ts=time.time(),
                    )
                    self._append(fresh)
                    requeued.append(fresh)
        return requeued

    def _append(self, record: JobRecord) -> None:
        self._journal.append_job(record)
        if record.job_id not in self._order:
            self._order[record.job_id] = self._seq
            self._seq += 1
        self._jobs[record.job_id] = record

    def _new_id(self) -> str:
        while True:
            job_id = uuid.uuid4().hex[:12]
            if job_id not in self._jobs:
                return job_id

    def submit(
        self,
        spec: Dict[str, object],
        priority: int = 0,
        fingerprint: str = "",
        cached_result: Optional[dict] = None,
    ) -> JobRecord:
        """Enqueue a canonical spec; returns the journaled record.

        With ``cached_result`` the job is born terminal (``done`` with
        ``cached: true``) — the submission was answered from the result
        cache and never touches the executor.
        """
        with self._lock:
            now = time.time()
            record = JobRecord(
                job_id=self._new_id(),
                task=str(spec["task"]),
                status=JOB_DONE if cached_result is not None else JOB_SUBMITTED,
                spec=dict(spec),
                priority=priority,
                fingerprint=fingerprint,
                cached=cached_result is not None,
                result=cached_result,
                submitted_at=now,
                ts=now,
            )
            self._append(record)
            return record

    def claim(self) -> Optional[JobRecord]:
        """Move the best pending job to ``running`` and return it.

        "Best" is highest priority first, submission order within a
        priority — the job-priority scheduling the executor drains by.
        """
        with self._lock:
            pending = [r for r in self._jobs.values() if r.status == JOB_SUBMITTED]
            if not pending:
                return None
            best = min(pending, key=lambda r: (-r.priority, self._order[r.job_id]))
            running = dataclasses.replace(best, status=JOB_RUNNING, ts=time.time())
            self._append(running)
            return running

    def finish(
        self,
        job_id: str,
        status: str,
        result: Optional[dict] = None,
        error: Optional[str] = None,
        error_type: Optional[str] = None,
        elapsed_s: float = 0.0,
    ) -> JobRecord:
        """Journal a running job's terminal outcome."""
        with self._lock:
            record = self.get(job_id)
            if record.status != JOB_RUNNING:
                raise ConfigError(
                    f"job {job_id} is {record.status!r}, not running; cannot finish it"
                )
            done = dataclasses.replace(
                record,
                status=status,
                result=result,
                error=error,
                error_type=error_type,
                elapsed_s=elapsed_s,
                ts=time.time(),
            )
            self._append(done)
            return done

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a job that has not started; anything else is refused."""
        with self._lock:
            record = self.get(job_id)
            if record.status != JOB_SUBMITTED:
                raise ConfigError(
                    f"job {job_id} is {record.status!r}; only queued jobs can be cancelled"
                )
            cancelled = dataclasses.replace(record, status=JOB_CANCELLED, ts=time.time())
            self._append(cancelled)
            return cancelled

    def get(self, job_id: str) -> JobRecord:
        with self._lock:
            record = self._jobs.get(job_id)
            if record is None:
                raise ConfigError(f"unknown job id {job_id!r}")
            return record

    def jobs(self) -> List[JobRecord]:
        """Every job, submission order."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda r: self._order[r.job_id])

    def counts(self) -> Dict[str, int]:
        with self._lock:
            out: Dict[str, int] = {}
            for record in self._jobs.values():
                out[record.status] = out.get(record.status, 0) + 1
            return out

    def active(self) -> int:
        """Jobs still needing the executor (queued or running)."""
        with self._lock:
            return sum(1 for r in self._jobs.values() if r.status in (JOB_SUBMITTED, JOB_RUNNING))

    def total(self) -> int:
        with self._lock:
            return len(self._jobs)

    def find_completed(self, fingerprint: str) -> Optional[JobRecord]:
        """The newest successfully completed job with this fingerprint.

        This is the duplicate-submission fast path for tasks the result
        cache cannot answer point-wise (whole sweeps, bench reports): the
        prior job's terminal payload is served as the cache hit.
        """
        with self._lock:
            matches = [
                r
                for r in self._jobs.values()
                if r.fingerprint == fingerprint and r.status == JOB_DONE and r.result is not None
            ]
            if not matches:
                return None
            return max(matches, key=lambda r: self._order[r.job_id])
