"""Durable, journal-backed job queue for ``repro serve``.

The queue has no in-memory-only state: every transition —
``submitted -> running -> done | failed``, or ``submitted ->
cancelled`` — is appended to ``jobs.jsonl`` as one fsynced
:class:`~repro.eval.journal.JobRecord` line (the same append/fsync/torn-
tail discipline as the sweep run journal), and the newest record per job
id *is* the job's state. Killing the server at any instant therefore
loses at most the line being written; reopening the store replays the
journal and :meth:`JobStore.recover` re-enqueues whatever a dead server
left ``running``. The journal is compacted down to its
newest-record-per-job snapshot both at recovery time and online — once
the live file exceeds a record threshold (``compact_records``) with at
least half its lines superseded — so ``jobs.jsonl`` stays bounded by
queue size under sustained load, not just across restarts.

Remote workers hold jobs under *leases*: a claim with ``lease_ttl > 0``
journals the worker id and a wall-clock expiry, heartbeats re-journal a
pushed-out expiry, and :meth:`JobStore.expire_leases` re-enqueues any
running job whose lease lapsed (attempt + 1) — the dead-server recovery
model applied per worker. A lease-holding worker survives a server
restart: its journaled lease is still live, so recovery leaves the job
running and the worker's heartbeats pick up against the new process.

The store is thread-safe (the HTTP handler threads submit/cancel while
the executor thread claims/finishes) but single-process: one server owns
one queue directory.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
import time
import uuid
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.eval.journal import (
    CRASH_EXIT_CODE,
    JOB_CANCELLED,
    JOB_DONE,
    JOB_FAILED,
    JOB_RUNNING,
    JOB_SUBMITTED,
    JOURNAL_SCHEMA,
    KIND_HEADER,
    JobRecord,
    RunJournal,
    read_journal,
)
from repro.eval.tables import results_dir

#: Executions a job may burn through expired leases before it is failed
#: outright instead of re-enqueued (guards against a poison job that
#: kills every worker which picks it up).
MAX_LEASE_ATTEMPTS = 5

#: Journal record count past which a live store compacts itself (override
#: per store via the constructor, or process-wide with the
#: ``REPRO_STORE_COMPACT_RECORDS`` environment variable). Compaction also
#: waits until at least half the lines are superseded, so a genuinely
#: large queue is never rewritten on every transition.
DEFAULT_COMPACT_RECORDS = 4096


def default_queue_dir() -> str:
    """Where the queue lives unless ``--queue-dir`` says otherwise."""
    return os.path.join(results_dir(), "queue")


class JobStore:
    """The durable queue: submit, claim, finish, cancel — all journaled."""

    def __init__(
        self,
        root: Optional[str] = None,
        recover: bool = True,
        compact_records: Optional[int] = None,
    ) -> None:
        """Open (or create) the queue at ``root`` and replay its journal.

        Opening journals a ``resume`` marker on an existing queue (after
        truncating any crash-torn tail) and removes a stale compaction
        temp file a crash may have left behind — the swap is atomic, so
        an orphaned ``.compact.tmp`` is never part of committed state.
        With ``recover`` (the default) dead-server recovery and a
        compaction pass run before the store is handed out.
        """
        self.root = root or default_queue_dir()
        self.path = os.path.join(self.root, "jobs.jsonl")
        if compact_records is None:
            compact_records = int(
                os.environ.get("REPRO_STORE_COMPACT_RECORDS", DEFAULT_COMPACT_RECORDS)
            )
        if compact_records < 2:
            raise ConfigError(f"compact_records must be >= 2, got {compact_records}")
        self.compact_records = compact_records
        self._lock = threading.RLock()
        self._jobs: Dict[str, JobRecord] = {}  #: newest record per job id
        self._order: Dict[str, int] = {}  #: submission sequence (FIFO tiebreak)
        self._seq = 0
        self._lines = 0  #: job lines in the journal file (compaction trigger)
        stale_tmp = self.path + ".compact.tmp"
        if os.path.isfile(stale_tmp):
            os.remove(stale_tmp)  # a crash mid-compaction; the real journal won
        if os.path.isfile(self.path):
            self._replay()
            # attach() truncates a torn tail and appends a resume marker,
            # so every store reopening is visible in the journal itself.
            self._journal = RunJournal.attach(self.path)
        else:
            self._journal = RunJournal.start(
                self.path, {"queue": "repro-serve", "created_at": time.time()}
            )
        if recover:
            self.recover()

    def _replay(self) -> None:
        """Rebuild the in-memory newest-record map from the journal."""
        view = read_journal(self.path)
        for record in view.jobs:
            if record.job_id not in self._order:
                self._order[record.job_id] = self._seq
                self._seq += 1
            self._jobs[record.job_id] = record
        self._lines = len(view.jobs)

    def recover(self) -> List[JobRecord]:
        """Re-enqueue jobs a dead server left mid-execution, then compact.

        A ``running`` record with no terminal successor means an executor
        died mid-job: the job goes back to ``submitted`` with its attempt
        count bumped, so restart resumes the queue where the crash cut it
        off. The exception is a job under a still-live worker lease — its
        executor is a *remote* process that may well have survived this
        server's death, so it stays running; if the worker is in fact
        dead too, the supervisor's :meth:`expire_leases` sweep reaps it
        the moment the lease lapses. Returns the re-enqueued records.
        """
        requeued: List[JobRecord] = []
        with self._lock:
            now = time.time()
            for job_id, record in sorted(self._jobs.items(), key=lambda kv: self._order[kv[0]]):
                if record.status == JOB_RUNNING and record.lease_expires_at <= now:
                    fresh = dataclasses.replace(
                        record,
                        status=JOB_SUBMITTED,
                        attempt=record.attempt + 1,
                        worker="",
                        lease_ttl=0.0,
                        lease_expires_at=0.0,
                        ts=now,
                    )
                    self._append(fresh)
                    requeued.append(fresh)
            self._compact()
        return requeued

    def _compact(self) -> bool:
        """Rewrite the journal as its newest-record-per-job snapshot.

        Every queue transition appends a line, so under sustained load
        (or across many restarts) the journal would grow without bound
        even for a small queue. When superseded records exist, the
        snapshot (newest record per job, submission order) is written to
        a sibling ``.compact.tmp`` file, fsynced once, and atomically
        swapped in with ``os.replace``; a crash mid-compaction therefore
        leaves either the old journal or the new one, never a hybrid,
        and readers of ``jobs.jsonl`` never observe the temp file.
        Runs at recovery time and — via :meth:`_maybe_compact` — while
        the store is live, always under the store lock, so listings and
        claims only ever see committed state. No-op (returns False) when
        every line is already live state.

        Fault injection: ``REPRO_STORE_CRASH_IN_COMPACT=1`` hard-exits
        the process after the snapshot is durable but *before* the swap
        — the widest window a real crash could hit — for the
        kill-during-compaction tests.
        """
        with self._lock:
            view = read_journal(self.path)
            if len(view.jobs) <= len(self._jobs):
                self._lines = len(view.jobs)
                return False
            header = {k: v for k, v in (view.header or {}).items() if k not in ("kind", "schema")}
            header["compacted_at"] = time.time()
            header["compactions"] = int(header.get("compactions", 0)) + 1
            tmp = self.path + ".compact.tmp"
            self._write_snapshot(tmp, header)
            if os.environ.get("REPRO_STORE_CRASH_IN_COMPACT") == "1":
                os._exit(CRASH_EXIT_CODE)
            os.replace(tmp, self.path)
            self._lines = len(self._jobs)
            return True

    def _write_snapshot(self, tmp: str, header: Dict[str, object]) -> None:
        """Write header + newest-record-per-job lines to ``tmp``, one fsync."""
        head = {"kind": KIND_HEADER, "schema": JOURNAL_SCHEMA}
        head.update(header)
        with open(tmp, "w", encoding="utf-8") as f:
            f.write(json.dumps(head, sort_keys=True) + "\n")
            for record in self.jobs():
                f.write(json.dumps(record.to_json(), sort_keys=True) + "\n")
            f.flush()
            os.fsync(f.fileno())

    def _maybe_compact(self) -> bool:
        """Compact when the live journal has outgrown its queue.

        Triggers once the file holds at least ``compact_records`` job
        lines *and* half of them are superseded — the hysteresis keeps a
        large queue of mostly-live records from being rewritten on every
        transition. Called after each journal append, under the lock, so
        ``jobs.jsonl`` stays bounded by ``max(compact_records, 2 x
        queue size)`` no matter how long the server runs.
        """
        with self._lock:
            if self._lines < max(self.compact_records, 2 * len(self._jobs)):
                return False
            return self._compact()

    def expire_leases(self, max_attempts: int = MAX_LEASE_ATTEMPTS) -> List[JobRecord]:
        """Reap running jobs whose worker lease has lapsed.

        Each is re-enqueued as ``submitted`` with attempt + 1 and its
        lease cleared — unless that would be execution ``max_attempts``,
        in which case the job is failed outright with a synthetic
        ``LeaseExpired`` error. Returns the transitioned records; the
        supervisor loop calls this every poll tick.
        """
        transitioned: List[JobRecord] = []
        with self._lock:
            now = time.time()
            for record in self.jobs():
                if record.status != JOB_RUNNING:
                    continue
                if record.lease_expires_at <= 0 or record.lease_expires_at > now:
                    continue
                attempt = record.attempt + 1
                cleared = dict(worker="", lease_ttl=0.0, lease_expires_at=0.0, ts=now)
                if attempt >= max_attempts:
                    fresh = dataclasses.replace(
                        record,
                        status=JOB_FAILED,
                        attempt=attempt,
                        error=(
                            f"lease expired under worker {record.worker!r}; "
                            f"execution attempt {attempt} of {max_attempts} — "
                            "giving up on this job"
                        ),
                        error_type="LeaseExpired",
                        **cleared,
                    )
                else:
                    fresh = dataclasses.replace(
                        record, status=JOB_SUBMITTED, attempt=attempt, **cleared
                    )
                self._append(fresh)
                transitioned.append(fresh)
        return transitioned

    def _append(self, record: JobRecord) -> None:
        """Journal one record durably, then mirror it into memory.

        The journal line lands (fsynced) before the in-memory map sees
        the new state, so committed state is always a subset of the
        durable journal. Appending may trigger a live compaction pass
        (:meth:`_maybe_compact`) once the file outgrows the queue.
        """
        self._journal.append_job(record)
        if record.job_id not in self._order:
            self._order[record.job_id] = self._seq
            self._seq += 1
        self._jobs[record.job_id] = record
        self._lines += 1
        self._maybe_compact()

    def _new_id(self) -> str:
        while True:
            job_id = uuid.uuid4().hex[:12]
            if job_id not in self._jobs:
                return job_id

    def submit(
        self,
        spec: Dict[str, object],
        priority: int = 0,
        fingerprint: str = "",
        cached_result: Optional[dict] = None,
        tags: Sequence[str] = (),
    ) -> JobRecord:
        """Enqueue a canonical spec; returns the journaled record.

        With ``cached_result`` the job is born terminal (``done`` with
        ``cached: true``) — the submission was answered from the result
        cache and never touches the executor. ``tags`` constrain which
        workers may claim the job (a claim must cover them all).
        """
        with self._lock:
            now = time.time()
            record = JobRecord(
                job_id=self._new_id(),
                task=str(spec["task"]),
                status=JOB_DONE if cached_result is not None else JOB_SUBMITTED,
                spec=dict(spec),
                priority=priority,
                fingerprint=fingerprint,
                cached=cached_result is not None,
                result=cached_result,
                submitted_at=now,
                ts=now,
                tags=sorted(tags),
            )
            self._append(record)
            return record

    def submit_many(self, entries: Sequence[Dict[str, object]]) -> List[JobRecord]:
        """Enqueue many specs with one lock hold and one journal fsync.

        ``entries`` is a list of keyword dicts accepted by
        :meth:`submit` (``spec`` required; ``priority``, ``fingerprint``,
        ``cached_result``, ``tags`` optional). The whole batch is
        journaled as a single durable append
        (:meth:`~repro.eval.journal.RunJournal.append_jobs`), which
        amortizes the per-submission fsync, and the in-memory queue is
        updated only once the batch is on disk — so a concurrent
        :meth:`claim` observes either none of the batch or all of it,
        never a prefix. Returns the journaled records in entry order.
        """
        if not entries:
            return []
        with self._lock:
            now = time.time()
            taken = set(self._jobs)
            records: List[JobRecord] = []
            for entry in entries:
                spec = dict(entry["spec"])  # type: ignore[arg-type]
                cached_result = entry.get("cached_result")
                job_id = uuid.uuid4().hex[:12]
                while job_id in taken:
                    job_id = uuid.uuid4().hex[:12]
                taken.add(job_id)
                records.append(
                    JobRecord(
                        job_id=job_id,
                        task=str(spec["task"]),
                        status=JOB_DONE if cached_result is not None else JOB_SUBMITTED,
                        spec=spec,
                        priority=int(entry.get("priority", 0)),  # type: ignore[arg-type]
                        fingerprint=str(entry.get("fingerprint", "")),
                        cached=cached_result is not None,
                        result=cached_result,  # type: ignore[arg-type]
                        submitted_at=now,
                        ts=now,
                        tags=sorted(entry.get("tags", ())),  # type: ignore[arg-type]
                    )
                )
            self._journal.append_jobs(records)
            for record in records:
                self._order[record.job_id] = self._seq
                self._seq += 1
                self._jobs[record.job_id] = record
            self._lines += len(records)
            self._maybe_compact()
            return records

    def submit_fanout(
        self,
        spec: Dict[str, object],
        children: Sequence[Tuple[Dict[str, object], str]],
        priority: int = 0,
        fingerprint: str = "",
        tags: Sequence[str] = (),
    ) -> JobRecord:
        """Enqueue a fan-out parent plus one child job per shard slice.

        ``children`` is ``[(child_spec, child_fingerprint), ...]``. The
        parent is journaled first (carrying every child id), then the
        children (each carrying the parent id); the parent is never
        claimable — the server completes it by merging once the children
        are terminal. Returns the parent record.
        """
        with self._lock:
            now = time.time()
            taken = set(self._jobs)

            def fresh_id() -> str:
                while True:
                    job_id = uuid.uuid4().hex[:12]
                    if job_id not in taken:
                        taken.add(job_id)
                        return job_id

            parent_id = fresh_id()
            child_ids = [fresh_id() for _ in children]
            parent = JobRecord(
                job_id=parent_id,
                task=str(spec["task"]),
                status=JOB_SUBMITTED,
                spec=dict(spec),
                priority=priority,
                fingerprint=fingerprint,
                submitted_at=now,
                ts=now,
                tags=sorted(tags),
                children=child_ids,
            )
            self._append(parent)
            for child_id, (child_spec, child_fp) in zip(child_ids, children):
                self._append(
                    JobRecord(
                        job_id=child_id,
                        task=str(child_spec["task"]),
                        status=JOB_SUBMITTED,
                        spec=dict(child_spec),
                        priority=priority,
                        fingerprint=child_fp,
                        submitted_at=now,
                        ts=now,
                        tags=sorted(tags),
                        parent=parent_id,
                    )
                )
            return parent

    def children_of(self, parent_id: str) -> List[JobRecord]:
        """Current records of a fan-out parent's shard children."""
        with self._lock:
            parent = self.get(parent_id)
            return [self._jobs[cid] for cid in parent.children if cid in self._jobs]

    def claim(
        self,
        worker: str = "",
        lease_ttl: float = 0.0,
        tags: Optional[Iterable[str]] = None,
    ) -> Optional[JobRecord]:
        """Move the best pending job to ``running`` and return it.

        "Best" is highest priority first, submission order within a
        priority — the job-priority scheduling the executor drains by.
        Fan-out parents are never handed out (the server itself merges
        them). With ``lease_ttl > 0`` the claim journals a lease:
        ``worker`` owns the job until ``lease_expires_at``, renewable by
        :meth:`heartbeat`. ``tags`` is the claimer's capability set —
        ``None`` (the in-process executor) matches every job; a worker's
        list matches jobs whose tags it covers.
        """
        with self._lock:
            offered = None if tags is None else set(tags)
            pending = [
                r
                for r in self._jobs.values()
                if r.status == JOB_SUBMITTED
                and not r.children
                and (offered is None or set(r.tags) <= offered)
            ]
            if not pending:
                return None
            best = min(pending, key=lambda r: (-r.priority, self._order[r.job_id]))
            now = time.time()
            running = dataclasses.replace(
                best,
                status=JOB_RUNNING,
                worker=worker,
                lease_ttl=lease_ttl if lease_ttl > 0 else 0.0,
                lease_expires_at=now + lease_ttl if lease_ttl > 0 else 0.0,
                ts=now,
            )
            self._append(running)
            return running

    def begin(self, job_id: str, worker: str = "") -> JobRecord:
        """Move one specific queued job to ``running`` (no lease).

        The server's own path for work it executes in-process — notably
        a fan-out parent entering its merge step.
        """
        with self._lock:
            record = self.get(job_id)
            if record.status != JOB_SUBMITTED:
                raise ConfigError(
                    f"job {job_id} is {record.status!r}; only queued jobs can start"
                )
            running = dataclasses.replace(
                record,
                status=JOB_RUNNING,
                worker=worker,
                lease_ttl=0.0,
                lease_expires_at=0.0,
                ts=time.time(),
            )
            self._append(running)
            return running

    def heartbeat(self, job_id: str, worker: str) -> JobRecord:
        """Renew a worker's lease; the refreshed record is journaled.

        Refused (with "lease" in the message, which the server maps to a
        409) once the lease is lost — the job expired back to the queue,
        finished, or is held by someone else.
        """
        with self._lock:
            record = self.get(job_id)
            if record.status != JOB_RUNNING or record.worker != worker:
                raise ConfigError(
                    f"job {job_id} lease lost: it is {record.status!r}"
                    + (f" under worker {record.worker!r}" if record.worker else "")
                )
            if record.lease_ttl <= 0:
                raise ConfigError(f"job {job_id} holds no lease to heartbeat")
            now = time.time()
            fresh = dataclasses.replace(
                record, lease_expires_at=now + record.lease_ttl, ts=now
            )
            self._append(fresh)
            return fresh

    def finish(
        self,
        job_id: str,
        status: str,
        result: Optional[dict] = None,
        error: Optional[str] = None,
        error_type: Optional[str] = None,
        elapsed_s: float = 0.0,
        worker: Optional[str] = None,
    ) -> JobRecord:
        """Journal a running job's terminal outcome.

        With ``worker`` the caller must still hold the job's lease; a
        completion arriving after the lease expired and the job moved on
        is refused rather than clobbering the re-enqueued (or re-run)
        state.
        """
        with self._lock:
            record = self.get(job_id)
            if record.status != JOB_RUNNING:
                raise ConfigError(
                    f"job {job_id} is {record.status!r}, not running; cannot finish it"
                )
            if worker is not None and record.worker != worker:
                raise ConfigError(
                    f"job {job_id} lease lost: it is held by {record.worker!r}, "
                    f"not {worker!r}"
                )
            done = dataclasses.replace(
                record,
                status=status,
                result=result,
                error=error,
                error_type=error_type,
                elapsed_s=elapsed_s,
                worker=worker if worker is not None else record.worker,
                lease_ttl=0.0,
                lease_expires_at=0.0,
                ts=time.time(),
            )
            self._append(done)
            return done

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a job that has not started; anything else is refused."""
        with self._lock:
            record = self.get(job_id)
            if record.status != JOB_SUBMITTED:
                raise ConfigError(
                    f"job {job_id} is {record.status!r}; only queued jobs can be cancelled"
                )
            cancelled = dataclasses.replace(record, status=JOB_CANCELLED, ts=time.time())
            self._append(cancelled)
            return cancelled

    def get(self, job_id: str) -> JobRecord:
        """The newest committed record of one job; unknown ids raise."""
        with self._lock:
            record = self._jobs.get(job_id)
            if record is None:
                raise ConfigError(f"unknown job id {job_id!r}")
            return record

    def jobs(self) -> List[JobRecord]:
        """Every job, submission order — committed state only.

        Served from the in-memory newest-record map under the store
        lock, never from the journal file: a listing issued while a
        compaction is rewriting the journal blocks on the lock and then
        sees the complete committed queue, not a half-written
        ``.compact.tmp`` snapshot.
        """
        with self._lock:
            return sorted(self._jobs.values(), key=lambda r: self._order[r.job_id])

    def counts(self) -> Dict[str, int]:
        """Committed job count per status (for ``/v1/health``)."""
        with self._lock:
            out: Dict[str, int] = {}
            for record in self._jobs.values():
                out[record.status] = out.get(record.status, 0) + 1
            return out

    def active(self) -> int:
        """Jobs still needing the executor (queued or running)."""
        with self._lock:
            return sum(1 for r in self._jobs.values() if r.status in (JOB_SUBMITTED, JOB_RUNNING))

    def total(self) -> int:
        """Jobs ever submitted (any status)."""
        with self._lock:
            return len(self._jobs)

    def find_completed(self, fingerprint: str) -> Optional[JobRecord]:
        """The newest successfully completed job with this fingerprint.

        This is the duplicate-submission fast path for tasks the result
        cache cannot answer point-wise (whole sweeps, bench reports): the
        prior job's terminal payload is served as the cache hit.
        """
        with self._lock:
            matches = [
                r
                for r in self._jobs.values()
                if r.fingerprint == fingerprint and r.status == JOB_DONE and r.result is not None
            ]
            if not matches:
                return None
            return max(matches, key=lambda r: self._order[r.job_id])
