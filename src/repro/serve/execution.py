"""Job execution shared by the serve executor and ``repro worker``.

:func:`execute_job` turns one canonical job spec into its terminal
outcome tuple ``(ok, result, error, error_type)`` on a caller-supplied
:class:`~repro.eval.orchestrator.Orchestrator`. The server's in-process
executor thread and every remote worker run the *same* code path, so a
job produces byte-identical artifacts no matter which process claimed it
— the orchestrator's content-hash result cache and ``save_result`` do
all the writing, both of which are atomic (`os.replace`) and therefore
safe for several workers sharing one results tree.

Sweep specs may carry ``shard: "K/N"`` — the deterministic round-robin
slice ``sweep run --shard K/N`` executes — which is how a fan-out parent
spreads a matrix over a worker fleet.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.eval.orchestrator import STATUS_CACHED, STATUS_FAILED, Orchestrator, PointRequest
from repro.serve import schema

#: (ok, result payload, error traceback, error type name)
Outcome = Tuple[bool, Optional[dict], Optional[str], Optional[str]]


def execute_job(
    task: str, spec: Dict[str, Any], orchestrator: Orchestrator, priority: int = 0
) -> Outcome:
    """Run one claimed job to its terminal outcome.

    Never raises for a *job* failure — that comes back as ``ok=False``
    plus the traceback; only programming errors escape.
    """
    if task == schema.TASK_EXPERIMENT:
        return _execute_experiment(spec, orchestrator, priority)
    if task == schema.TASK_SWEEP:
        return _execute_sweep(spec, orchestrator)
    if task == schema.TASK_BENCH:
        return _execute_bench(spec)
    raise ValueError(f"unknown job task {task!r}")


def _execute_experiment(
    spec: Dict[str, Any], orchestrator: Orchestrator, priority: int
) -> Outcome:
    orchestrator.run_seed = spec["seed"]
    report = orchestrator.run_points(
        [
            PointRequest(
                experiment=spec["experiment"],
                params=dict(spec["params"]),
                priority=priority,
            )
        ],
        write_manifest=False,
    )
    run = report.runs[0]
    if run.status == STATUS_FAILED:
        return False, None, run.error, run.error_type
    result = {
        "task": schema.TASK_EXPERIMENT,
        "status": run.status,
        "cached": run.status == STATUS_CACHED,
        "artifact": run.artifact,
        "text": run.text,
        "elapsed_s": run.elapsed_s,
        "cache_key": run.cache_key,
        "summary": run.summary,
    }
    return True, result, None, None


def _execute_sweep(spec: Dict[str, Any], orchestrator: Orchestrator) -> Outcome:
    from repro.eval import sweep as sweep_mod

    sweep_spec = sweep_mod.load_spec(spec["spec"])
    shard = spec.get("shard")
    outcome = sweep_mod.run_sweep(
        sweep_spec,
        quick=spec["quick"],
        limit=spec["limit"],
        verbose=False,
        shard=None if shard is None else sweep_mod.parse_shard(shard),
        orchestrator=orchestrator,
    )
    result = {
        "task": schema.TASK_SWEEP,
        "cached": all(r.status == STATUS_CACHED for r in outcome.report.runs),
        "document": outcome.document(),
        "json_path": outcome.json_path,
        "csv_path": outcome.csv_path,
    }
    if outcome.ok:
        return True, result, None, None
    failed = [r for r in outcome.report.runs if r.status == STATUS_FAILED]
    return False, result, failed[0].error, failed[0].error_type


def _execute_bench(spec: Dict[str, Any]) -> Outcome:
    from repro.perf.harness import run_benchmarks, validate_report
    from repro.perf.registry import BENCH_REGISTRY

    specs = BENCH_REGISTRY.select(only=spec["only"])
    report = run_benchmarks(specs, quick=spec["quick"], progress=None)
    problems = validate_report(report)
    if problems:
        return False, None, "invalid bench report: " + "; ".join(problems), "ValueError"
    return True, {"task": schema.TASK_BENCH, "cached": False, "report": report}, None, None
