"""The ``repro worker`` process: a remote executor of the serve queue.

A worker is just another HTTP client of a running ``repro serve``
instance. Its loop is claim → execute → complete:

- **claim** leases the best pending job (``/v1/jobs/claim``) under this
  worker's id for ``lease_ttl`` seconds;
- while the job runs on the worker's own persistent-pool
  :class:`~repro.eval.orchestrator.Orchestrator`, a daemon thread
  **heartbeats** every ``lease_ttl / 3`` seconds, pushing the journaled
  expiry out — so as long as the process is alive the job stays its;
- **complete** reports the terminal outcome. A 409 answer means the
  lease was lost first (the worker stalled past its TTL and the server
  re-enqueued the job); the worker drops the result on the floor —
  whoever re-ran the job journaled the canonical outcome — and moves on.

A worker that dies mid-job needs no cleanup protocol at all: its
heartbeats simply stop, the lease lapses, and the server's supervisor
re-enqueues the job with attempt + 1.

Workers share the results tree (the content-hash cache and artifact
writes are atomic ``os.replace`` operations), so co-located workers
deduplicate work naturally. ``--once`` is the fleet drain mode for CI:
exit as soon as a claim comes back empty, nothing is outstanding, and
at least one job has ever been submitted — the same "wait for work,
then drain" contract as ``serve --once``, so a fleet can be pre-warmed
before the first submission arrives.

(``REPRO_WORKER_HOLD_S=N`` makes the worker sleep N seconds after
claiming, before executing — heartbeating all the while. A fault-
injection knob: the crash tests SIGKILL the held worker mid-lease and
assert the queue recovers.)
"""

from __future__ import annotations

import os
import socket
import threading
import time
from typing import Any, Dict, Optional, Sequence

from repro.errors import ServiceError
from repro.eval.orchestrator import Orchestrator, format_error
from repro.serve import schema
from repro.serve.client import ServeClient
from repro.serve.execution import execute_job


def default_worker_id() -> str:
    """Unique-enough worker identity: ``<hostname>-<pid>``."""
    return f"{socket.gethostname()}-{os.getpid()}"


class Worker:
    """One claim→execute→complete loop against one serve endpoint."""

    def __init__(
        self,
        host: str = schema.DEFAULT_HOST,
        port: int = schema.DEFAULT_PORT,
        worker_id: Optional[str] = None,
        lease_ttl: float = schema.DEFAULT_LEASE_TTL,
        tags: Sequence[str] = (),
        jobs: Optional[int] = None,
        once: bool = False,
        poll: float = 0.2,
        verbose: bool = True,
    ) -> None:
        self.client = ServeClient(host, port)
        self.worker_id = worker_id or default_worker_id()
        self.lease_ttl = float(lease_ttl)
        self.tags = sorted(tags)
        self.once = once
        self.poll = poll
        self.verbose = verbose
        self.orchestrator = Orchestrator(jobs=jobs, verbose=False, persistent_pool=True)
        self._failed_jobs = 0
        self._stop = threading.Event()

    def _log(self, message: str) -> None:
        if self.verbose:
            print(f"[worker {self.worker_id}] {message}", flush=True)

    def request_stop(self) -> None:
        """Finish the current job, then exit the loop."""
        self._stop.set()

    def wait_for_server(self, timeout: float = 30.0) -> Dict[str, Any]:
        """Poll ``/health`` until the server answers (startup racing)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.client.health()
            except ServiceError:
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.2)

    def run(self) -> int:
        """Work the queue until stopped (or drained, under ``--once``).

        Exit status: 0 clean, 1 if any job this worker ran failed, 2 if
        the server became unreachable.
        """
        health = self.wait_for_server()
        self._log(
            f"joined http://{self.client.host}:{self.client.port} "
            f"(queue: {health.get('queue_dir')}, lease {self.lease_ttl:g}s"
            + (f", tags {','.join(self.tags)}" if self.tags else "")
            + (", once" if self.once else "")
            + ")"
        )
        try:
            while not self._stop.is_set():
                answer = self.client.claim(self.worker_id, self.lease_ttl, self.tags)
                view = answer.get("job")
                if view is None:
                    if self.once and answer.get("total") and not answer.get("outstanding"):
                        self._log("queue drained; exiting (--once)")
                        break
                    self._stop.wait(self.poll)
                    continue
                self._run_job(view)
        except ServiceError as exc:
            print(f"[worker {self.worker_id}] server lost: {exc}", flush=True)
            return 2
        finally:
            self.orchestrator.shutdown_pool()
        return 0 if self._failed_jobs == 0 else 1

    def _heartbeat_loop(self, job_id: str, stop: threading.Event) -> None:
        interval = max(self.lease_ttl / 3.0, 0.05)
        while not stop.wait(interval):
            try:
                self.client.heartbeat(job_id, self.worker_id)
            except ServiceError as exc:
                self._log(f"lease on job {job_id} lost: {exc}")
                return

    def _run_job(self, view: Dict[str, Any]) -> None:
        job_id = view["id"]
        self._log(f"job {job_id} claimed: {view['task']} (attempt {view['attempts']})")
        stop_beat = threading.Event()
        beat = threading.Thread(
            target=self._heartbeat_loop, args=(job_id, stop_beat), daemon=True
        )
        beat.start()
        start = time.perf_counter()
        try:
            hold = float(os.environ.get("REPRO_WORKER_HOLD_S") or 0)
            if hold > 0:
                # Fault injection: look alive (heartbeating) but never
                # reach execution, so a test can SIGKILL us mid-lease.
                time.sleep(hold)
            ok, result, error, error_type = execute_job(
                view["task"], dict(view["spec"]), self.orchestrator, priority=view["priority"]
            )
        except Exception as exc:  # a job must never kill the worker loop
            ok, result = False, None
            error, error_type = format_error(exc), type(exc).__name__
        finally:
            stop_beat.set()
            beat.join(timeout=5)
        elapsed = time.perf_counter() - start
        if not ok:
            self._failed_jobs += 1
        try:
            self.client.complete(
                job_id,
                self.worker_id,
                ok=ok,
                result=result,
                error=error,
                error_type=error_type,
                elapsed_s=elapsed,
            )
            self._log(f"job {job_id} {'done' if ok else 'failed'} in {elapsed:.1f}s")
        except ServiceError as exc:
            if exc.status != 409:
                raise
            # The lease lapsed while we worked: the job was re-enqueued
            # (or re-run) and someone else's outcome is canonical now.
            self._log(f"job {job_id} completion refused (lease lost): {exc}")


def build_worker(args: Any) -> Worker:
    """CLI entry: a :class:`Worker` from ``repro worker`` arguments."""
    host, _, port = args.server.rpartition(":")
    try:
        port_num = int(port)
    except ValueError:
        raise ServiceError(
            f"--server must look like HOST:PORT (e.g. 127.0.0.1:8765), "
            f"got {args.server!r}"
        ) from None
    return Worker(
        host=host or schema.DEFAULT_HOST,
        port=port_num,
        worker_id=args.id,
        lease_ttl=args.lease_ttl,
        tags=args.tags or [],
        jobs=args.jobs,
        once=args.once,
        poll=args.poll,
        verbose=not args.quiet,
    )
