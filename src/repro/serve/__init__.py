"""``repro serve`` — a persistent job-queue service over the orchestrator.

Submissions (experiments, sweeps, bench runs) arrive over a localhost
HTTP JSON API, are journaled into a durable on-disk queue, and execute
on one long-lived process pool with the content-hash result cache as the
serving layer — duplicate submissions come back ``cached`` immediately.

- :mod:`repro.serve.schema` — wire schema (endpoints, submissions, views)
- :mod:`repro.serve.store` — the fsynced, journal-backed queue
- :mod:`repro.serve.server` — HTTP front end + executor back end
- :mod:`repro.serve.client` — stdlib client (`repro jobs ...` uses it)
"""

from repro.serve.client import ServeClient
from repro.serve.schema import DEFAULT_HOST, DEFAULT_PORT
from repro.serve.server import JobService
from repro.serve.store import JobStore

__all__ = ["DEFAULT_HOST", "DEFAULT_PORT", "JobService", "JobStore", "ServeClient"]
