"""Wire schema of the ``repro serve`` job-queue service.

The service speaks JSON over localhost HTTP. Every endpoint lives under
the ``/v1`` prefix:

========================  ======================================================
``GET  /v1/health``       service liveness + queue counts
``POST /v1/jobs``         submit a job (body: a *submission*, below);
                          returns the job view — already terminal with
                          ``cached: true`` when the result cache serves it
``POST /v1/jobs/submit_batch``  submit many jobs in one round trip
                          (body: ``{"jobs": [submission, ...]}``); the
                          response's ``jobs`` list is aligned to the
                          request — a view per accepted entry, an
                          ``{"index", "error"}`` object per rejected one
                          (a bad spec rejects only its own entry), plus
                          ``accepted``/``rejected`` counts. Accepted
                          entries are journaled as one durable batch.
``POST /v1/jobs/status_batch``  many job views in one round trip (body:
                          ``{"ids": [...]}`` or ``{"all": true}``);
                          unknown ids come back as per-entry errors
``GET  /v1/jobs``         all jobs, submission order (``{"jobs": [...]}``)
``GET  /v1/jobs/<id>``    one job view (status, attempts, error traceback)
``GET  /v1/jobs/<id>/result``  terminal payload (409 until the job finishes)
``POST /v1/jobs/<id>/cancel``  cancel a still-queued job (409 otherwise)
``POST /v1/jobs/claim``   lease the best pending job to a remote worker
                          (body: ``{"worker", "lease_ttl", "tags"}``);
                          ``{"job": null, "outstanding": N, "total": N}``
                          when idle
``POST /v1/jobs/<id>/heartbeat``  extend a held lease (409 once lost)
``POST /v1/jobs/<id>/complete``   report a leased job's terminal outcome
``POST /v1/shutdown``     graceful stop: finish the running job, then exit
========================  ======================================================

A *submission* body names a task and its arguments::

    {"task": "experiment", "experiment": "fig16_overall",
     "params": {...}, "seed": 0, "priority": 0}
    {"task": "sweep", "spec": "mee_geometry", "quick": true,
     "limit": null, "priority": 0, "shards": 3}
    {"task": "bench", "quick": true, "only": ["crypto.aes_blocks"],
     "priority": 0}

A sweep submission may fan out: ``shards: N`` (or the server's
``--autosplit`` default) splits the matrix into N deterministic
round-robin slice jobs — the same partition as ``sweep run --shard K/N``
— that a worker fleet work-steals independently; the server merges the
canonical ``sweep.json``/CSV once every shard lands. ``shard: "K/N"``
instead submits exactly one slice.

:func:`validate_submission` canonicalizes a body (defaults filled,
unknown keys rejected, experiment params checked against the registry
schema) so invalid work is refused at submit time with a 400, never
enqueued. :func:`fingerprint` hashes the canonical spec together with
the package source digest — the key under which duplicate submissions
are served straight from completed results.

Errors are ``{"error": "<message>"}`` with a 4xx status.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Mapping, Tuple

from repro.errors import ConfigError
from repro.eval.journal import JOB_DONE, JOB_FAILED, JOB_RUNNING, JobRecord
from repro.eval.registry import REGISTRY, normalize_params

#: Wire payload layout version; bump on breaking changes.
SERVE_SCHEMA = 1

#: All endpoints live under this prefix.
API_PREFIX = "/v1"

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8765

TASK_EXPERIMENT = "experiment"
TASK_SWEEP = "sweep"
TASK_BENCH = "bench"
TASKS = (TASK_EXPERIMENT, TASK_SWEEP, TASK_BENCH)

#: Lease length a worker gets when its claim names none (seconds).
DEFAULT_LEASE_TTL = 60.0

#: Entries one ``/v1/jobs/submit_batch`` or ``status_batch`` body may
#: carry; a cap so a runaway client cannot wedge a handler thread.
MAX_BATCH = 1000


def _require_bool(value: Any, name: str) -> bool:
    if not isinstance(value, bool):
        raise ConfigError(f"submission field {name!r} must be a boolean, got {value!r}")
    return value


def _require_int(value: Any, name: str) -> int:
    if not isinstance(value, int) or isinstance(value, bool):
        raise ConfigError(f"submission field {name!r} must be an integer, got {value!r}")
    return value


def _require_tags(value: Any, name: str = "tags") -> list:
    if value is None:
        return []
    if not isinstance(value, list) or not all(isinstance(t, str) and t for t in value):
        raise ConfigError(f"{name!r} must be a list of non-empty strings, got {value!r}")
    return sorted(set(value))


def validate_submission(payload: Any, autosplit: int = 1) -> Tuple[Dict[str, Any], int]:
    """Canonicalize a submission body; returns ``(spec, priority)``.

    The canonical spec is a plain JSON-safe dict with every default made
    explicit — it is what gets journaled, fingerprinted, and executed.
    ``priority`` rides outside the spec so that submitting the same work
    at a different priority still deduplicates. Any problem raises
    :class:`ConfigError` (the server answers 400; nothing is enqueued).

    ``autosplit`` is the server's default sweep fan-out width: a sweep
    submission naming neither ``shards`` nor ``shard`` splits into that
    many slice jobs. The width is clamped to the expanded point count and
    a resolved width of 1 leaves the spec shard-free, so specs (and
    therefore fingerprints) of non-fanned sweeps are unchanged.
    """
    if not isinstance(payload, Mapping):
        raise ConfigError(f"submission must be a JSON object, got {type(payload).__name__}")
    task = payload.get("task")
    if task not in TASKS:
        raise ConfigError(f"submission 'task' must be one of {TASKS}, got {task!r}")
    priority = _require_int(payload.get("priority", 0), "priority")
    _require_tags(payload.get("tags"))
    known = {"task", "priority", "tags"}
    spec: Dict[str, Any] = {"task": task}
    if task == TASK_EXPERIMENT:
        known |= {"experiment", "params", "seed"}
        name = payload.get("experiment")
        if not isinstance(name, str) or not name:
            raise ConfigError("experiment submission needs an 'experiment' name")
        experiment = REGISTRY.get(name)  # raises ConfigError on unknown names
        params = payload.get("params", {})
        if not isinstance(params, Mapping):
            raise ConfigError(f"'params' must be a JSON object, got {type(params).__name__}")
        params = dict(params)
        experiment.validate_params(params)
        spec["experiment"] = experiment.name
        spec["params"] = normalize_params(params)
        spec["seed"] = _require_int(payload.get("seed", 0), "seed")
    elif task == TASK_SWEEP:
        known |= {"spec", "quick", "limit", "shard", "shards"}
        from repro.eval.sweep import expand, load_spec, parse_shard

        name = payload.get("spec")
        if not isinstance(name, str) or not name:
            raise ConfigError("sweep submission needs a 'spec' name")
        sweep_spec = load_spec(name)  # raises ConfigError on unknown specs
        limit = payload.get("limit")
        if limit is not None:
            limit = _require_int(limit, "limit")
            if limit <= 0:
                raise ConfigError(f"'limit' must be positive, got {limit}")
        spec["spec"] = sweep_spec.name if not name.endswith(".toml") else name
        spec["quick"] = _require_bool(payload.get("quick", False), "quick")
        spec["limit"] = limit
        shard = payload.get("shard")
        shards = payload.get("shards")
        if shard is not None and shards is not None:
            raise ConfigError("sweep submission takes 'shard' or 'shards', not both")
        if shard is not None:
            if not isinstance(shard, str):
                raise ConfigError(f"'shard' must be a K/N string, got {shard!r}")
            parsed = parse_shard(shard)
            if parsed.count > 1:  # 1/1 is the whole matrix: canonically shard-free
                spec["shard"] = f"{parsed.index}/{parsed.count}"
        else:
            width = shards if shards is not None else autosplit
            width = _require_int(width, "shards")
            if width < 1:
                raise ConfigError(f"'shards' must be >= 1, got {width}")
            if width > 1:
                width = min(width, len(expand(sweep_spec, quick=spec["quick"], limit=limit)))
            if width > 1:
                spec["shards"] = width
    else:  # TASK_BENCH
        known |= {"quick", "only"}
        from repro.perf.registry import BENCH_REGISTRY

        only = payload.get("only")
        if only is not None:
            if not isinstance(only, list) or not all(isinstance(n, str) for n in only):
                raise ConfigError(f"'only' must be a list of benchmark names, got {only!r}")
            only = sorted(only)
            if not BENCH_REGISTRY.select(only=only):
                raise ConfigError(f"'only' selects no benchmarks: {only}")
        spec["quick"] = _require_bool(payload.get("quick", True), "quick")
        spec["only"] = only
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ConfigError(f"unknown submission field(s) {unknown} for task {task!r}")
    return spec, priority


def validate_batch_jobs(payload: Any) -> list:
    """Shape-check a ``/jobs/submit_batch`` envelope; returns the entries.

    Only the envelope (a ``{"jobs": [...]}`` object, non-empty, at most
    :data:`MAX_BATCH` entries) is validated here — envelope problems are
    a whole-request 400. Each entry is validated individually by the
    server so that one bad spec rejects only that entry, never its batch
    mates.
    """
    if not isinstance(payload, Mapping):
        raise ConfigError(f"batch must be a JSON object, got {type(payload).__name__}")
    unknown = sorted(set(payload) - {"jobs"})
    if unknown:
        raise ConfigError(f"unknown batch field(s) {unknown}")
    jobs = payload.get("jobs")
    if not isinstance(jobs, list) or not jobs:
        raise ConfigError("batch needs a non-empty 'jobs' list of submissions")
    if len(jobs) > MAX_BATCH:
        raise ConfigError(f"batch of {len(jobs)} jobs exceeds the limit of {MAX_BATCH}")
    return list(jobs)


def validate_batch_status(payload: Any) -> Tuple[list, bool]:
    """Canonicalize a ``/jobs/status_batch`` body: ``(ids, all_jobs)``.

    Either ``{"ids": [...]}`` (explicit job ids, capped at
    :data:`MAX_BATCH`) or ``{"all": true}`` (every job the server
    knows); naming both is refused.
    """
    if not isinstance(payload, Mapping):
        raise ConfigError(f"status batch must be a JSON object, got {type(payload).__name__}")
    unknown = sorted(set(payload) - {"ids", "all"})
    if unknown:
        raise ConfigError(f"unknown status batch field(s) {unknown}")
    all_jobs = payload.get("all", False)
    if not isinstance(all_jobs, bool):
        raise ConfigError(f"status batch 'all' must be a boolean, got {all_jobs!r}")
    ids = payload.get("ids")
    if all_jobs:
        if ids is not None:
            raise ConfigError("status batch takes 'ids' or 'all', not both")
        return [], True
    if not isinstance(ids, list) or not ids or not all(isinstance(i, str) and i for i in ids):
        raise ConfigError("status batch needs a non-empty 'ids' list of job ids (or 'all': true)")
    if len(ids) > MAX_BATCH:
        raise ConfigError(f"status batch of {len(ids)} ids exceeds the limit of {MAX_BATCH}")
    return list(ids), False


def submission_tags(payload: Mapping[str, Any]) -> list:
    """Routing tags of a submission body, canonicalized (sorted, unique).

    Tags constrain *where* a job may run — a worker claims a job only
    when its own tags cover the job's — and ride outside the canonical
    spec so they never perturb fingerprints.
    """
    return _require_tags(payload.get("tags"))


def shard_specs(spec: Mapping[str, Any]) -> list:
    """The child slice specs of a fan-out sweep spec.

    Each child is the parent spec with ``shards`` dropped and an explicit
    ``shard: "K/N"`` slice — exactly what ``sweep run --shard K/N``
    executes, so shard trees merge with the existing ``sweep merge``
    machinery.
    """
    count = spec.get("shards", 1)
    base = {k: v for k, v in spec.items() if k != "shards"}
    return [dict(base, shard=f"{k}/{count}") for k in range(1, count + 1)]


def validate_claim(payload: Any) -> Tuple[str, float, list]:
    """Canonicalize a ``/jobs/claim`` body: ``(worker, lease_ttl, tags)``."""
    if not isinstance(payload, Mapping):
        raise ConfigError(f"claim must be a JSON object, got {type(payload).__name__}")
    unknown = sorted(set(payload) - {"worker", "lease_ttl", "tags"})
    if unknown:
        raise ConfigError(f"unknown claim field(s) {unknown}")
    worker = payload.get("worker")
    if not isinstance(worker, str) or not worker:
        raise ConfigError("claim needs a non-empty 'worker' id")
    ttl = payload.get("lease_ttl", DEFAULT_LEASE_TTL)
    if isinstance(ttl, bool) or not isinstance(ttl, (int, float)) or ttl <= 0:
        raise ConfigError(f"'lease_ttl' must be a positive number of seconds, got {ttl!r}")
    return worker, float(ttl), _require_tags(payload.get("tags"))


def validate_complete(payload: Any) -> Dict[str, Any]:
    """Canonicalize a ``/jobs/<id>/complete`` body.

    Returns ``{"worker", "ok", "result", "error", "error_type",
    "elapsed_s"}`` with defaults filled; the failure fields are required
    exactly when ``ok`` is false.
    """
    if not isinstance(payload, Mapping):
        raise ConfigError(f"completion must be a JSON object, got {type(payload).__name__}")
    known = {"worker", "ok", "result", "error", "error_type", "elapsed_s"}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ConfigError(f"unknown completion field(s) {unknown}")
    worker = payload.get("worker")
    if not isinstance(worker, str) or not worker:
        raise ConfigError("completion needs a non-empty 'worker' id")
    ok = _require_bool(payload.get("ok"), "ok")
    result = payload.get("result")
    if result is not None and not isinstance(result, Mapping):
        raise ConfigError(f"'result' must be a JSON object, got {type(result).__name__}")
    error = payload.get("error")
    error_type = payload.get("error_type")
    if not ok and (not isinstance(error, str) or not error):
        raise ConfigError("a failed completion needs a non-empty 'error' traceback")
    if error is not None and not isinstance(error, str):
        raise ConfigError(f"'error' must be a string, got {type(error).__name__}")
    if error_type is not None and not isinstance(error_type, str):
        raise ConfigError(f"'error_type' must be a string, got {type(error_type).__name__}")
    elapsed = payload.get("elapsed_s", 0.0)
    if isinstance(elapsed, bool) or not isinstance(elapsed, (int, float)) or elapsed < 0:
        raise ConfigError(f"'elapsed_s' must be a non-negative number, got {elapsed!r}")
    return {
        "worker": worker,
        "ok": ok,
        "result": None if result is None else dict(result),
        "error": error,
        "error_type": error_type,
        "elapsed_s": float(elapsed),
    }


def fingerprint(spec: Mapping[str, Any], source_digest: str) -> str:
    """Content hash of a canonical spec under one source digest.

    Two submissions with the same fingerprint request byte-identical
    work: same task, same canonical arguments, same package sources.
    """
    payload = json.dumps(
        {"schema": SERVE_SCHEMA, "spec": dict(spec), "source": source_digest},
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:20]


def job_view(record: JobRecord, result: bool = False) -> Dict[str, Any]:
    """The JSON shape of one job on the wire (and in CLI output).

    The fat ``result`` payload (rendered artifact text, a whole sweep
    document) stays off the default view — the ``/result`` endpoint
    serves it — but failures always carry the full worker traceback.
    """
    # Attempts = executions actually started: the prior-life count a
    # restart recovery journaled, plus the current one once the job is
    # (or was) on the executor. Cache-served and still-queued/cancelled
    # jobs never ran, so their current life does not count.
    executing = record.status in (JOB_RUNNING, JOB_DONE, JOB_FAILED) and not record.cached
    view = {
        "schema": SERVE_SCHEMA,
        "id": record.job_id,
        "task": record.task,
        "status": record.status,
        "spec": dict(record.spec),
        "priority": record.priority,
        "attempts": record.attempt + (1 if executing else 0),
        "fingerprint": record.fingerprint,
        "cached": record.cached,
        "elapsed_s": round(record.elapsed_s, 6),
        "submitted_at": record.submitted_at,
        "updated_at": record.ts,
        "error": record.error,
        "error_type": record.error_type,
        "has_result": record.result is not None,
        "worker": record.worker,
        "lease_expires_at": record.lease_expires_at,
        "tags": list(record.tags),
        "parent": record.parent,
        "children": list(record.children),
    }
    if result:
        view["result"] = record.result
    return view


def parse_body(raw: bytes) -> Any:
    """Decode a request body as JSON; :class:`ConfigError` on garbage."""
    if not raw:
        raise ConfigError("empty request body; expected a JSON object")
    try:
        return json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ConfigError(f"request body is not valid JSON: {exc}") from exc


def error_body(message: str) -> Dict[str, str]:
    """The wire shape of every error answer: ``{"error": message}``."""
    return {"error": message}


def extract_error(payload: Any, fallback: str) -> str:
    """The server's error message out of a response body, defensively."""
    if isinstance(payload, Mapping) and isinstance(payload.get("error"), str):
        return payload["error"]
    return fallback


def view_is_terminal(view: Mapping[str, Any]) -> bool:
    """Whether a wire job view carries a terminal status."""
    from repro.eval.journal import TERMINAL_JOB_STATUSES

    return view.get("status") in TERMINAL_JOB_STATUSES
