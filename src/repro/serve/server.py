"""The ``repro serve`` service: HTTP front end + supervisor back end.

Architecture::

    clients ──HTTP──▶ ThreadingHTTPServer (handler threads)
    workers ──HTTP──▶     │  submit / status / result / cancel
                          │  claim / heartbeat / complete   (lease wire)
                          ▼
                      JobStore  (fsynced jobs.jsonl — the only state)
                          ▲
                          │  expire leases / merge fan-outs / claim / finish
                      supervisor thread ──▶ Orchestrator (persistent pool)

Handler threads only ever touch the store (plus a synchronous result-
cache probe at submit time). The single supervisor thread does the rest,
every poll tick: reap expired worker leases (re-enqueue, attempt + 1),
complete fan-out parents whose shard children all landed (by running
``sweep merge`` over their trees), and — unless ``--external-only`` —
claim and run the next job on one long-lived process pool, so the pool's
warm workers and the content-hash cache are shared across every
submission. All service state lives in the store's journal: kill the
process at any point and a restart resumes the queue.

Remote ``repro worker`` processes are just another client of the same
``/v1`` API: they claim under a lease, heartbeat while executing, and
report completion; a worker that dies mid-job simply stops heartbeating
and the supervisor re-enqueues the job once the lease lapses. Sweep
submissions wider than one shard (``shards: N``, or the server's
``--autosplit`` default) fan out into N slice jobs the fleet
work-steals; the server consolidates the canonical ``sweep.json``/CSV.

``--once`` is the CI mode: the service exits by itself once at least one
job exists, nothing is queued or running, and no request has arrived for
``grace`` seconds — long enough for a test to submit, wait, and resubmit
for the cache-hit assertion before the server stands down.

(`REPRO_SERVE_NO_EXECUTOR=1` starts the server without its supervisor
thread — a fault-injection knob for the kill/restart tests only.)
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import ConfigError
from repro.eval import cache as result_cache
from repro.eval.cost import CostModel
from repro.eval.journal import JOB_DONE, JOB_FAILED, JOB_SUBMITTED, JobRecord
from repro.eval.orchestrator import STATUS_CACHED, Orchestrator, derive_seed, format_error
from repro.eval.registry import REGISTRY, normalize_params
from repro.eval.tables import save_result
from repro.serve import schema
from repro.serve.execution import execute_job
from repro.serve.store import JobStore

#: How long the executor naps between empty queue polls.
_POLL_S = 0.05


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    service: "JobService"


class JobService:
    """One queue directory, one HTTP endpoint, one executor, one pool."""

    def __init__(
        self,
        queue_dir: Optional[str] = None,
        host: str = schema.DEFAULT_HOST,
        port: int = schema.DEFAULT_PORT,
        workers: Optional[int] = None,
        once: bool = False,
        grace: float = 5.0,
        verbose: bool = True,
        start_executor: bool = True,
        external_only: bool = False,
        autosplit: int = 1,
        autosplit_min_s: float = 0.0,
    ) -> None:
        if autosplit < 1:
            raise ConfigError(f"--autosplit must be >= 1, got {autosplit}")
        if autosplit_min_s < 0:
            raise ConfigError(f"--autosplit-min-seconds must be >= 0, got {autosplit_min_s}")
        self.store = JobStore(queue_dir)
        self.orchestrator = Orchestrator(jobs=workers, verbose=False, persistent_pool=True)
        self.once = once
        self.grace = grace
        self.verbose = verbose
        self.start_executor = start_executor
        self.external_only = external_only
        self.autosplit = autosplit
        self.autosplit_min_s = autosplit_min_s
        #: Lazily-built cost model for fan-out sizing; pinned for the
        #: server's lifetime so a resubmitted sweep resizes identically
        #: (and therefore fingerprints identically, keeping dedupe hits).
        self._cost_model: Optional[CostModel] = None
        self.source_digest = result_cache.source_digest()
        self._stop = threading.Event()
        self._failed_jobs = 0
        self._last_activity = time.monotonic()
        self._threads: List[threading.Thread] = []
        try:
            self.httpd = _Server((host, port), _Handler)
        except OSError as exc:
            raise ConfigError(f"cannot bind {host}:{port}: {exc}") from exc
        self.httpd.service = self
        self.host, self.port = self.httpd.server_address[:2]

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Start the HTTP thread (and the executor unless disabled)."""
        http = threading.Thread(target=self.httpd.serve_forever, daemon=True)
        http.start()
        self._threads.append(http)
        if self.start_executor:
            executor = threading.Thread(target=self._executor_loop, daemon=True)
            executor.start()
            self._threads.append(executor)
        self._log(
            f"serving on http://{self.host}:{self.port}{schema.API_PREFIX} "
            f"(queue: {self.store.root}, workers: {self.orchestrator.jobs}"
            f"{', once' if self.once else ''})"
        )

    def run(self) -> int:
        """Serve until shut down; exit 0 unless a job failed."""
        self.start()
        try:
            while not self._stop.wait(0.1):
                pass
        except KeyboardInterrupt:
            self._log("interrupted; shutting down")
        finally:
            self.close()
        return 0 if self._failed_jobs == 0 else 1

    def request_shutdown(self) -> None:
        """Ask the service to stop (the running job finishes first)."""
        self._stop.set()

    def close(self) -> None:
        """Stop every thread, the HTTP listener, and the worker pool."""
        self._stop.set()
        self.httpd.shutdown()
        self.httpd.server_close()
        for thread in self._threads:
            if thread is not threading.current_thread():
                thread.join(timeout=30)
        self._threads.clear()
        self.orchestrator.shutdown_pool()

    def _log(self, message: str) -> None:
        if self.verbose:
            print(f"[serve] {message}", flush=True)

    def touch(self) -> None:
        """Note client activity (defers the ``--once`` drain exit)."""
        self._last_activity = time.monotonic()

    # -- submission (handler threads) ------------------------------------------

    def submit(self, payload: Any) -> JobRecord:
        """Validate, cache-probe, and enqueue one submission.

        A sweep spec that resolved to ``shards: N`` fans out: the parent
        job is journaled alongside one claimable child per slice, unless
        the whole sweep is already answerable from a completed prior job
        (then the parent is born terminal like any cache hit).
        """
        spec, priority = schema.validate_submission(payload, autosplit=self.autosplit)
        spec = self._size_fanout(payload, spec)
        tags = schema.submission_tags(payload)
        fp = schema.fingerprint(spec, self.source_digest)
        cached = self._probe_cache(spec, fp)
        if cached is None and spec.get("shards", 1) > 1:
            children = [
                (child, schema.fingerprint(child, self.source_digest))
                for child in schema.shard_specs(spec)
            ]
            record = self.store.submit_fanout(
                spec, children, priority=priority, fingerprint=fp, tags=tags
            )
            self._log(
                f"job {record.job_id} submitted: {spec['task']} "
                f"(fan-out into {len(children)} shard jobs)"
            )
            return record
        record = self.store.submit(
            spec, priority=priority, fingerprint=fp, cached_result=cached, tags=tags
        )
        self._log(
            f"job {record.job_id} submitted: {spec['task']}"
            + (" (cache hit)" if cached is not None else "")
        )
        return record

    def _size_fanout(self, payload: Any, spec: Dict[str, Any]) -> Dict[str, Any]:
        """Right-size a server-default sweep fan-out from the cost model.

        ``--autosplit N`` is a fixed width; with ``--autosplit-min-seconds``
        the width shrinks until every shard job carries at least that much
        *predicted* work, so a 4-point quick sweep does not fan out into
        jobs whose queue/merge overhead dwarfs their points. Only applies
        to widths the server itself chose — a client that asked for
        ``shards``/``shard`` explicitly is never second-guessed.
        """
        width = spec.get("shards", 1)
        if width <= 1 or self.autosplit_min_s <= 0:
            return spec
        if isinstance(payload, Mapping) and (
            payload.get("shards") is not None or payload.get("shard") is not None
        ):
            return spec
        from repro.eval.sweep import expand, load_spec

        if self._cost_model is None:
            self._cost_model = CostModel.from_results()
        sweep_spec = load_spec(spec["spec"])
        cost_class = REGISTRY.get(sweep_spec.experiment).cost
        total = sum(
            self._cost_model.predict(
                sweep_spec.experiment, point.params, cost_class=cost_class
            ).seconds
            for point in expand(sweep_spec, quick=spec["quick"], limit=spec["limit"])
        )
        sized = max(1, min(width, int(total // self.autosplit_min_s)))
        if sized == width:
            return spec
        resized = dict(spec)
        if sized > 1:
            resized["shards"] = sized
        else:
            resized.pop("shards", None)
        self._log(
            f"autosplit resized {width} -> {sized} shard job(s) "
            f"(predicted {total:.1f}s of work, min {self.autosplit_min_s:.1f}s/shard)"
        )
        return resized

    def submit_batch(self, payload: Any) -> Dict[str, Any]:
        """Validate, cache-probe, and enqueue a whole submission batch.

        Each entry is validated independently: a bad spec becomes an
        ``{"index", "error"}`` entry in the response while its batch
        mates proceed. Every accepted non-fan-out entry is journaled in
        one durable batch append (:meth:`JobStore.submit_many` — one
        fsync, one lock hold, so a concurrent claim sees none or all of
        them); fan-out sweeps are journaled individually through
        :meth:`JobStore.submit_fanout`. The response's ``jobs`` list is
        aligned to the request order.
        """
        bodies = schema.validate_batch_jobs(payload)
        entries: List[Optional[Dict[str, Any]]] = [None] * len(bodies)
        prepared: List[Tuple[int, Dict[str, Any]]] = []
        for index, body in enumerate(bodies):
            try:
                spec, priority = schema.validate_submission(body, autosplit=self.autosplit)
                spec = self._size_fanout(body, spec)
                tags = schema.submission_tags(body)
                fp = schema.fingerprint(spec, self.source_digest)
                cached = self._probe_cache(spec, fp)
            except ConfigError as exc:
                entries[index] = {"index": index, "error": str(exc)}
                continue
            if cached is None and spec.get("shards", 1) > 1:
                children = [
                    (child, schema.fingerprint(child, self.source_digest))
                    for child in schema.shard_specs(spec)
                ]
                record = self.store.submit_fanout(
                    spec, children, priority=priority, fingerprint=fp, tags=tags
                )
                entries[index] = schema.job_view(record)
                continue
            prepared.append(
                (
                    index,
                    {
                        "spec": spec,
                        "priority": priority,
                        "fingerprint": fp,
                        "cached_result": cached,
                        "tags": tags,
                    },
                )
            )
        records = self.store.submit_many([entry for _, entry in prepared])
        for (index, _), record in zip(prepared, records):
            entries[index] = schema.job_view(record)
        accepted = sum(1 for entry in entries if entry is not None and "id" in entry)
        rejected = len(entries) - accepted
        self._log(
            f"batch submitted: {accepted} accepted, {rejected} rejected "
            f"of {len(entries)} entries"
        )
        return {
            "schema": schema.SERVE_SCHEMA,
            "jobs": entries,
            "accepted": accepted,
            "rejected": rejected,
        }

    def status_batch(self, payload: Any) -> Dict[str, Any]:
        """Answer many status lookups from committed store state.

        ``{"all": true}`` lists every job in submission order (one
        consistent snapshot); ``{"ids": [...]}`` resolves each id, with
        unknown ids answered as per-entry ``{"id", "error"}`` objects
        rather than failing the batch. Reads only; nothing is journaled.
        """
        ids, all_jobs = schema.validate_batch_status(payload)
        if all_jobs:
            views: List[Dict[str, Any]] = [schema.job_view(r) for r in self.store.jobs()]
        else:
            views = []
            for job_id in ids:
                try:
                    views.append(schema.job_view(self.store.get(job_id)))
                except ConfigError as exc:
                    views.append({"id": job_id, "error": str(exc)})
        return {
            "schema": schema.SERVE_SCHEMA,
            "jobs": views,
            "total": self.store.total(),
        }

    def complete(self, job_id: str, payload: Any) -> JobRecord:
        """Apply a worker's completion report to its leased job."""
        done = schema.validate_complete(payload)
        record = self.store.finish(
            job_id,
            status=JOB_DONE if done["ok"] else JOB_FAILED,
            result=done["result"],
            error=done["error"],
            error_type=done["error_type"],
            elapsed_s=done["elapsed_s"],
            worker=done["worker"],
        )
        if not done["ok"]:
            self._failed_jobs += 1
        self._log(
            f"job {record.job_id} {record.status} by worker {done['worker']} "
            f"in {done['elapsed_s']:.1f}s"
        )
        return record

    def _probe_cache(self, spec: Dict[str, Any], fp: str) -> Optional[dict]:
        """A terminal result for this spec, if one is already durable.

        Experiments probe the content-hash result cache directly (hitting
        results computed by ``repro run`` or earlier jobs alike); sweeps
        and bench runs are served from the newest completed job with the
        same fingerprint.
        """
        if spec["task"] == schema.TASK_EXPERIMENT:
            name = spec["experiment"]
            seed = derive_seed(spec["seed"], name)
            key = result_cache.cache_key(
                name, normalize_params(dict(spec["params"])), seed, self.source_digest
            )
            entry = result_cache.ResultCache().load(name, key)
            if entry is None:
                return None
            return {
                "task": schema.TASK_EXPERIMENT,
                "status": STATUS_CACHED,
                "cached": True,
                "artifact": save_result(name, entry.text),
                "text": entry.text,
                "elapsed_s": entry.elapsed_s,
                "cache_key": key,
                "summary": entry.summary,
            }
        prior = self.store.find_completed(fp)
        if prior is None:
            return None
        result = dict(prior.result or {})
        result["cached"] = True
        return result

    # -- supervision (the executor thread) --------------------------------------

    def _executor_loop(self) -> None:
        """The supervisor tick: reap leases, merge fan-outs, run jobs."""
        while not self._stop.is_set():
            try:
                progressed = self._reap_leases()
                progressed = self._merge_ready_parents() or progressed
                if not self.external_only:
                    job = self.store.claim()
                    if job is not None:
                        self.touch()
                        self._execute(job)
                        self.touch()
                        progressed = True
                if progressed:
                    continue
                if self.once and self._drained():
                    self._log("queue drained; exiting (--once)")
                    self._stop.set()
                    break
                self._stop.wait(_POLL_S)
            except Exception as exc:
                # A store I/O failure (disk full, EIO on the journal
                # fsync) must not kill the executor silently while the
                # HTTP side keeps accepting work; log, count it as a
                # failure, back off, retry. Restart recovery re-enqueues
                # any job caught between claim and finish.
                self._failed_jobs += 1
                print(f"[serve] executor error: {format_error(exc)}", flush=True)
                self._stop.wait(1.0)

    def _drained(self) -> bool:
        return (
            self.store.total() > 0
            and self.store.active() == 0
            and time.monotonic() - self._last_activity > self.grace
        )

    def _reap_leases(self) -> bool:
        """Re-enqueue (or fail out) running jobs whose lease lapsed."""
        reaped = self.store.expire_leases()
        for record in reaped:
            if record.status == JOB_FAILED:
                self._failed_jobs += 1
                self._log(f"job {record.job_id} failed: lease attempts exhausted")
            else:
                self._log(
                    f"job {record.job_id} lease expired; re-enqueued "
                    f"(attempt {record.attempt + 1})"
                )
        return bool(reaped)

    def _merge_ready_parents(self) -> bool:
        """Complete fan-out parents whose shard children all landed."""
        merged = False
        for record in self.store.jobs():
            if record.status != JOB_SUBMITTED or not record.children:
                continue
            children = self.store.children_of(record.job_id)
            if len(children) < len(record.children) or not all(c.terminal for c in children):
                continue
            self.touch()
            merged = True
            self.store.begin(record.job_id, worker="server")
            start = time.perf_counter()
            failed = [c for c in children if c.status != JOB_DONE]
            if failed:
                ok, result = False, None
                error = (
                    f"{len(failed)} of {len(children)} shard jobs did not complete "
                    f"(first: job {failed[0].job_id} {failed[0].status})"
                    + (f"\n{failed[0].error}" if failed[0].error else "")
                )
                error_type = failed[0].error_type or "ShardFailed"
            else:
                try:
                    ok, result, error, error_type = self._merge_parent(record)
                except Exception as exc:  # a bad merge must not kill the supervisor
                    ok, result = False, None
                    error, error_type = format_error(exc), type(exc).__name__
            if not ok:
                self._failed_jobs += 1
            done = self.store.finish(
                record.job_id,
                status=JOB_DONE if ok else JOB_FAILED,
                result=result,
                error=error,
                error_type=error_type,
                elapsed_s=time.perf_counter() - start,
            )
            self._log(
                f"job {done.job_id} {done.status}: merged {len(children)} shard jobs"
            )
            self.touch()
        return merged

    def _merge_parent(
        self, record: JobRecord
    ) -> Tuple[bool, Optional[dict], Optional[str], Optional[str]]:
        from repro.eval import sweep as sweep_mod

        spec = record.spec
        sweep_spec = sweep_mod.load_spec(spec["spec"])
        document, json_path, csv_path = sweep_mod.merge_shards(
            sweep_spec, verbose=False, expect_count=len(record.children)
        )
        result = {
            "task": schema.TASK_SWEEP,
            "cached": False,
            "document": document,
            "json_path": json_path,
            "csv_path": csv_path,
        }
        return True, result, None, None

    def _execute(self, job: JobRecord) -> None:
        self._log(f"job {job.job_id} running: {job.task} (priority {job.priority})")
        start = time.perf_counter()
        try:
            ok, result, error, error_type = execute_job(
                job.task, job.spec, self.orchestrator, priority=job.priority
            )
        except Exception as exc:  # a job must never kill the executor
            ok, result = False, None
            error, error_type = format_error(exc), type(exc).__name__
        elapsed = time.perf_counter() - start
        if not ok:
            self._failed_jobs += 1
        record = self.store.finish(
            job.job_id,
            status=JOB_DONE if ok else JOB_FAILED,
            result=result,
            error=error,
            error_type=error_type,
            elapsed_s=elapsed,
        )
        self._log(f"job {record.job_id} {record.status} in {elapsed:.1f}s")


class _Handler(BaseHTTPRequestHandler):
    """Thin JSON router over :class:`JobService` (see the wire schema)."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"
    server: _Server

    @property
    def service(self) -> JobService:
        """The owning :class:`JobService` (shared across handler threads)."""
        return self.server.service

    def log_message(self, format: str, *args: Any) -> None:
        """Route http.server's access log through the service logger."""
        if self.service.verbose:
            print(f"[serve] {self.address_string()} {format % args}", flush=True)

    def _send(self, code: int, payload: dict) -> None:
        """Answer with a JSON body and an exact Content-Length."""
        body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _route(self) -> Tuple[str, ...]:
        """The request path as ``/v1``-relative segments (empty = miss)."""
        path = self.path.split("?", 1)[0].rstrip("/")
        if not path.startswith(schema.API_PREFIX):
            return ()
        return tuple(p for p in path[len(schema.API_PREFIX) :].split("/") if p)

    def _read_body(self) -> bytes:
        """Drain the request body regardless of route.

        Under HTTP/1.1 keep-alive, unread body bytes would be parsed as
        the *next* request line on the connection — so every POST must
        consume its body even when the route ignores it.
        """
        length = int(self.headers.get("Content-Length") or 0)
        return self.rfile.read(length) if length > 0 else b""

    def _guarded(self, respond: Any) -> None:
        """Run one route, mapping failures onto wire-schema errors."""
        try:
            respond()
        except ConfigError as exc:
            code = 404 if "unknown job id" in str(exc) else 400
            message = str(exc)
            if (
                "only queued jobs" in message
                or "not running" in message
                or "lease" in message
            ):
                code = 409
            self._send(code, schema.error_body(str(exc)))
        except Exception as exc:  # never drop the connection without a body
            try:
                self._send(500, schema.error_body(f"internal error: {format_error(exc)}"))
            except OSError:
                pass  # client already gone; nothing left to answer

    def do_GET(self) -> None:
        """Dispatch a GET request (read-only; nothing is journaled)."""
        self.service.touch()
        self._guarded(self._get)

    def _get(self) -> None:
        """Serve the read-only endpoints: health, listings, job views.

        Every answer comes from the store's committed in-memory state
        under its lock — a request arriving mid-compaction blocks
        briefly and then sees the full queue, never a partial snapshot.
        """
        route = self._route()
        if route == ("health",):
            store = self.service.store
            self._send(
                200,
                {
                    "schema": schema.SERVE_SCHEMA,
                    "status": "ok",
                    "queue_dir": store.root,
                    "jobs": store.total(),
                    "counts": store.counts(),
                    "workers": self.service.orchestrator.jobs,
                    "once": self.service.once,
                    "external_only": self.service.external_only,
                    "autosplit": self.service.autosplit,
                    "source_digest": self.service.source_digest,
                },
            )
        elif route == ("jobs",):
            views = [schema.job_view(r) for r in self.service.store.jobs()]
            self._send(200, {"jobs": views})
        elif len(route) == 2 and route[0] == "jobs":
            self._send(200, schema.job_view(self.service.store.get(route[1])))
        elif len(route) == 3 and route[0] == "jobs" and route[2] == "result":
            record = self.service.store.get(route[1])
            if not record.terminal:
                self._send(
                    409,
                    schema.error_body(
                        f"job {record.job_id} is {record.status!r}; result not ready"
                    ),
                )
                return
            self._send(200, schema.job_view(record, result=True))
        else:
            self._send(404, schema.error_body(f"no such endpoint: GET {self.path}"))

    def do_POST(self) -> None:
        """Dispatch a POST request, draining its body first (keep-alive)."""
        self.service.touch()
        body = self._read_body()
        self._guarded(lambda: self._post(body))

    def _post(self, body: bytes) -> None:
        """Serve the mutating endpoints; each success is journaled.

        Submissions (single and batch), claims, heartbeats, completions,
        and cancels all append fsynced records to ``jobs.jsonl`` before
        answering — the response never promises state the journal does
        not yet hold. ``status_batch`` and ``shutdown`` journal nothing.
        """
        route = self._route()
        if route == ("jobs",):
            record = self.service.submit(schema.parse_body(body))
            self._send(200, schema.job_view(record))
        elif route == ("jobs", "submit_batch"):
            self._send(200, self.service.submit_batch(schema.parse_body(body)))
        elif route == ("jobs", "status_batch"):
            self._send(200, self.service.status_batch(schema.parse_body(body)))
        elif route == ("jobs", "claim"):
            worker, lease_ttl, tags = schema.validate_claim(schema.parse_body(body))
            record = self.service.store.claim(worker=worker, lease_ttl=lease_ttl, tags=tags)
            self._send(
                200,
                {
                    "job": None if record is None else schema.job_view(record),
                    "outstanding": self.service.store.active(),
                    "total": self.service.store.total(),
                },
            )
        elif len(route) == 3 and route[0] == "jobs" and route[2] == "heartbeat":
            payload = schema.parse_body(body)
            if not isinstance(payload, dict) or not isinstance(payload.get("worker"), str):
                raise ConfigError("heartbeat needs a JSON body naming its 'worker'")
            record = self.service.store.get(route[1])  # 404 before 409
            self._send(
                200, schema.job_view(self.service.store.heartbeat(record.job_id, payload["worker"]))
            )
        elif len(route) == 3 and route[0] == "jobs" and route[2] == "complete":
            record = self.service.store.get(route[1])  # 404 before 409
            self._send(
                200, schema.job_view(self.service.complete(record.job_id, schema.parse_body(body)))
            )
        elif len(route) == 3 and route[0] == "jobs" and route[2] == "cancel":
            record = self.service.store.get(route[1])  # 404 before 409
            self._send(200, schema.job_view(self.service.store.cancel(record.job_id)))
        elif route == ("shutdown",):
            self._send(200, {"status": "stopping"})
            self.service.request_shutdown()
        else:
            self._send(404, schema.error_body(f"no such endpoint: POST {self.path}"))


def build_service(args: Any) -> JobService:
    """CLI entry: a :class:`JobService` from ``repro serve`` arguments."""
    return JobService(
        queue_dir=args.queue_dir,
        host=args.host,
        port=args.port,
        workers=args.workers,
        once=args.once,
        grace=args.grace,
        verbose=not args.quiet,
        start_executor=os.environ.get("REPRO_SERVE_NO_EXECUTOR") != "1",
        external_only=args.external_only,
        autosplit=args.autosplit,
        autosplit_min_s=args.autosplit_min_seconds,
    )
