"""Stdlib HTTP client for the ``repro serve`` job queue.

Wraps the wire schema (:mod:`repro.serve.schema`) behind plain methods
returning parsed JSON. Every failure — unreachable server, 4xx answer,
wait timeout — surfaces as :class:`~repro.errors.ServiceError` with a
human-readable message, which the CLI turns into a clean exit 2.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional

from repro.errors import ServiceError
from repro.serve import schema


class ServeClient:
    """Talks to one ``repro serve`` endpoint."""

    def __init__(
        self,
        host: str = schema.DEFAULT_HOST,
        port: int = schema.DEFAULT_PORT,
        timeout: float = 30.0,
    ) -> None:
        """Point the client at one server; no connection is made yet."""
        self.host = host
        self.port = port
        self.timeout = timeout
        #: HTTP round trips issued over this client's lifetime — the
        #: batching tests assert a batch of M jobs costs O(1) of these.
        self.requests = 0

    @property
    def base_url(self) -> str:
        """The server's ``/v1`` API root, e.g. ``http://127.0.0.1:8765/v1``."""
        return f"http://{self.host}:{self.port}{schema.API_PREFIX}"

    def _request(self, method: str, path: str, payload: Optional[dict] = None) -> Any:
        """One HTTP round trip; every failure becomes a ServiceError."""
        self.requests += 1
        url = self.base_url + path
        data = None if payload is None else json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            url, data=data, method=method, headers={"Content-Type": "application/json"}
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read().decode("utf-8"))
            except ValueError:
                body = None
            message = schema.extract_error(body, f"{method} {url} failed: HTTP {exc.code}")
            raise ServiceError(message, status=exc.code) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach repro serve at {self.host}:{self.port} ({exc.reason}); "
                "is the server running?"
            ) from exc
        except (ValueError, OSError) as exc:
            raise ServiceError(f"{method} {url} failed: {exc}") from exc

    # -- endpoints -------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """Server liveness plus queue counts (``GET /health``)."""
        return self._request("GET", "/health")

    def submit(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Submit one job; returns its wire view (maybe already done)."""
        return self._request("POST", "/jobs", payload)

    def submit_batch(self, payloads: List[Dict[str, Any]]) -> Dict[str, Any]:
        """Submit many jobs in one ``POST /jobs/submit_batch`` round trip.

        Returns the batch answer: ``jobs`` aligned to ``payloads`` (a
        job view per accepted entry, ``{"index", "error"}`` per rejected
        one) plus ``accepted``/``rejected`` counts. Accepted entries hit
        the server journal as a single durable append; a malformed
        *envelope* (not a list, too many entries) is a whole-request
        :class:`~repro.errors.ServiceError` instead.
        """
        return self._request("POST", "/jobs/submit_batch", {"jobs": list(payloads)})

    def status_batch(
        self, ids: Optional[List[str]] = None, all_jobs: bool = False
    ) -> Dict[str, Any]:
        """Fetch many job views in one ``POST /jobs/status_batch`` trip.

        With ``all_jobs`` the server lists every job it knows (one
        consistent snapshot, submission order); otherwise ``ids`` are
        resolved individually and unknown ids come back as per-entry
        ``{"id", "error"}`` objects. Read-only; nothing is journaled.
        """
        body = {"all": True} if all_jobs else {"ids": list(ids or [])}
        return self._request("POST", "/jobs/status_batch", body)

    def job(self, job_id: str) -> Dict[str, Any]:
        """One job's wire view (no result payload)."""
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self) -> List[Dict[str, Any]]:
        """Every job the server knows, submission order."""
        return self._request("GET", "/jobs")["jobs"]

    def result(self, job_id: str) -> Dict[str, Any]:
        """The job view including its terminal ``result`` payload."""
        return self._request("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """Cancel a still-queued job (journaled); 409 once it started."""
        return self._request("POST", f"/jobs/{job_id}/cancel", {})

    def claim(
        self,
        worker: str,
        lease_ttl: float = schema.DEFAULT_LEASE_TTL,
        tags: Optional[List[str]] = None,
    ) -> Dict[str, Any]:
        """Lease the best pending job; ``{"job": view|None, "outstanding": N, "total": N}``."""
        return self._request(
            "POST",
            "/jobs/claim",
            {"worker": worker, "lease_ttl": lease_ttl, "tags": list(tags or [])},
        )

    def heartbeat(self, job_id: str, worker: str) -> Dict[str, Any]:
        """Renew a held lease; 409 :class:`ServiceError` once it is lost."""
        return self._request("POST", f"/jobs/{job_id}/heartbeat", {"worker": worker})

    def complete(
        self,
        job_id: str,
        worker: str,
        ok: bool,
        result: Optional[dict] = None,
        error: Optional[str] = None,
        error_type: Optional[str] = None,
        elapsed_s: float = 0.0,
    ) -> Dict[str, Any]:
        """Report a leased job's terminal outcome; returns the final view."""
        return self._request(
            "POST",
            f"/jobs/{job_id}/complete",
            {
                "worker": worker,
                "ok": ok,
                "result": result,
                "error": error,
                "error_type": error_type,
                "elapsed_s": elapsed_s,
            },
        )

    def shutdown(self) -> Dict[str, Any]:
        """Ask the server to stop once its running job finishes."""
        return self._request("POST", "/shutdown", {})

    def wait(
        self, job_id: str, timeout: Optional[float] = None, interval: float = 0.2
    ) -> Dict[str, Any]:
        """Poll until the job is terminal; returns its final view.

        Raises :class:`ServiceError` if ``timeout`` seconds pass first.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            view = self.job(job_id)
            if schema.view_is_terminal(view):
                return view
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    f"timed out after {timeout:.1f}s waiting for job {job_id} "
                    f"(last status: {view.get('status')!r})"
                )
            time.sleep(interval)
