"""Stdlib HTTP client for the ``repro serve`` job queue.

Wraps the wire schema (:mod:`repro.serve.schema`) behind plain methods
returning parsed JSON. Every failure — unreachable server, 4xx answer,
wait timeout — surfaces as :class:`~repro.errors.ServiceError` with a
human-readable message, which the CLI turns into a clean exit 2.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional

from repro.errors import ServiceError
from repro.serve import schema


class ServeClient:
    """Talks to one ``repro serve`` endpoint."""

    def __init__(
        self,
        host: str = schema.DEFAULT_HOST,
        port: int = schema.DEFAULT_PORT,
        timeout: float = 30.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}{schema.API_PREFIX}"

    def _request(self, method: str, path: str, payload: Optional[dict] = None) -> Any:
        url = self.base_url + path
        data = None if payload is None else json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            url, data=data, method=method, headers={"Content-Type": "application/json"}
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read().decode("utf-8"))
            except ValueError:
                body = None
            message = schema.extract_error(body, f"{method} {url} failed: HTTP {exc.code}")
            raise ServiceError(message, status=exc.code) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach repro serve at {self.host}:{self.port} ({exc.reason}); "
                "is the server running?"
            ) from exc
        except (ValueError, OSError) as exc:
            raise ServiceError(f"{method} {url} failed: {exc}") from exc

    # -- endpoints -------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/health")

    def submit(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Submit one job; returns its wire view (maybe already done)."""
        return self._request("POST", "/jobs", payload)

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/jobs")["jobs"]

    def result(self, job_id: str) -> Dict[str, Any]:
        """The job view including its terminal ``result`` payload."""
        return self._request("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/jobs/{job_id}/cancel", {})

    def claim(
        self,
        worker: str,
        lease_ttl: float = schema.DEFAULT_LEASE_TTL,
        tags: Optional[List[str]] = None,
    ) -> Dict[str, Any]:
        """Lease the best pending job; ``{"job": view|None, "outstanding": N, "total": N}``."""
        return self._request(
            "POST",
            "/jobs/claim",
            {"worker": worker, "lease_ttl": lease_ttl, "tags": list(tags or [])},
        )

    def heartbeat(self, job_id: str, worker: str) -> Dict[str, Any]:
        """Renew a held lease; 409 :class:`ServiceError` once it is lost."""
        return self._request("POST", f"/jobs/{job_id}/heartbeat", {"worker": worker})

    def complete(
        self,
        job_id: str,
        worker: str,
        ok: bool,
        result: Optional[dict] = None,
        error: Optional[str] = None,
        error_type: Optional[str] = None,
        elapsed_s: float = 0.0,
    ) -> Dict[str, Any]:
        """Report a leased job's terminal outcome; returns the final view."""
        return self._request(
            "POST",
            f"/jobs/{job_id}/complete",
            {
                "worker": worker,
                "ok": ok,
                "result": result,
                "error": error,
                "error_type": error_type,
                "elapsed_s": elapsed_s,
            },
        )

    def shutdown(self) -> Dict[str, Any]:
        return self._request("POST", "/shutdown", {})

    def wait(
        self, job_id: str, timeout: Optional[float] = None, interval: float = 0.2
    ) -> Dict[str, Any]:
        """Poll until the job is terminal; returns its final view.

        Raises :class:`ServiceError` if ``timeout`` seconds pass first.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            view = self.job(job_id)
            if schema.view_is_terminal(view):
                return view
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    f"timed out after {timeout:.1f}s waiting for job {job_id} "
                    f"(last status: {view.get('status')!r})"
                )
            time.sleep(interval)
