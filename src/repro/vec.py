"""Vectorization gate: one switch for every batched-NumPy fast path.

The hot kernels (counter-mode keystreams, MEE line streams, MAC folding,
tensor-analyzer trace scans, systolic roofline sweeps) each expose a batch
API whose implementation is chosen here: a NumPy array program when NumPy
is importable and vectorization is not disabled, otherwise the original
per-element scalar loop. Both implementations are bit-identical on their
outputs — the parity tests in ``tests/test_perf_bench.py`` enforce it —
so the switch only ever changes speed, never results.

Disabling:

- environment: ``REPRO_NO_VECTORIZE=1`` (any value other than ``""``/``0``)
  forces every batch API onto its scalar loop — the reference mode the
  ``python -m repro bench`` harness measures speedups against;
- in-process: the :func:`scalar_fallback` context manager does the same
  reversibly (the bench harness and the parity tests use it so they do not
  have to mutate ``os.environ``).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

try:  # NumPy is optional: every batch API keeps a scalar fallback.
    import numpy as np

    HAVE_NUMPY = True
    NUMPY_VERSION: Optional[str] = np.__version__
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False
    NUMPY_VERSION = None

#: Environment variable that forces the scalar reference paths.
NO_VECTORIZE_ENV = "REPRO_NO_VECTORIZE"

_forced_scalar_depth = 0


def enabled() -> bool:
    """True when batch APIs should take their NumPy implementation."""
    if not HAVE_NUMPY or _forced_scalar_depth > 0:
        return False
    return os.environ.get(NO_VECTORIZE_ENV, "") in ("", "0")


@contextmanager
def scalar_fallback() -> Iterator[None]:
    """Force the scalar reference loops for the duration of the block."""
    global _forced_scalar_depth
    _forced_scalar_depth += 1
    try:
        yield
    finally:
        _forced_scalar_depth -= 1


def mode() -> str:
    """``"vector"`` or ``"scalar"`` — what a batch API would pick now."""
    return "vector" if enabled() else "scalar"
