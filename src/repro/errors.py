"""Exception hierarchy for the TensorTEE reproduction.

The security-relevant errors mirror the failure classes of the paper's
threat model (Sec. 2.4): integrity violations (tampering), freshness
violations (replay), and protocol violations (e.g. attempting to move a
poisoned tensor across the verification barrier).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """A configuration value is inconsistent or out of the modelled range."""


class SchemaVersionError(ConfigError):
    """A machine-readable artifact (``BENCH_*.json``, ``sweep.json``) was
    written under a different schema version than this reader expects.

    Raised by :func:`repro.schema.check_schema_version` instead of letting
    stale documents surface as KeyErrors deep in a comparison; the CLI
    maps it (like every ConfigError) to exit code 2.
    """

    def __init__(self, message: str, expected: int, found: object) -> None:
        super().__init__(message)
        self.expected = expected
        self.found = found


class ServiceError(ReproError):
    """A ``repro serve`` request failed (unreachable server, bad job id, ...)."""

    def __init__(self, message: str, status: int = 0) -> None:
        super().__init__(message)
        self.status = status  #: HTTP status code when the server answered


class SecurityError(ReproError):
    """Base class for detected attacks / violated security invariants."""


class IntegrityError(SecurityError):
    """MAC verification failed: the ciphertext or metadata was tampered with."""


class ReplayError(IntegrityError):
    """Freshness check failed: stale (ciphertext, MAC) pair was replayed."""


class CodeIntegrityError(IntegrityError):
    """Instruction fetch failed its (non-delayed) verification (Sec. 4.3)."""


class PoisonedTensorError(SecurityError):
    """A tensor with a set poison bit reached a communication boundary."""


class AttestationError(SecurityError):
    """Remote attestation failed: enclave measurement/report mismatch."""


class ProtocolError(ReproError):
    """A transfer-protocol step was invoked in an invalid state."""


class EnclaveError(ReproError):
    """Enclave lifecycle misuse (e.g. entering a destroyed enclave)."""


class SimulationError(ReproError):
    """Internal simulator invariant violated (a bug, not an attack)."""
