"""Command-line interface: ``python -m repro {run,list,clean,bench}``.

Examples::

    python -m repro list
    python -m repro run --jobs 4
    python -m repro run --only fig16_overall,fig17_breakdown --no-cache
    python -m repro run --tag paper --json
    python -m repro clean
    python -m repro bench --quick
    python -m repro bench --quick --compare benchmarks/baseline.json --threshold 1.25

See EXPERIMENTS.md for the experiment catalogue and the bench JSON schema.
"""

from __future__ import annotations

import argparse
import datetime
import json
import sys
from typing import List, Optional, Sequence

from repro.errors import ConfigError
from repro.eval.orchestrator import Orchestrator, clean
from repro.eval.registry import REGISTRY


def _split_names(values: Sequence[str]) -> Optional[List[str]]:
    """Flatten repeated/comma-separated ``--only``/``--tag`` values."""
    names = [name.strip() for value in values for name in value.split(",")]
    names = [name for name in names if name]
    return names or None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's figures and tables (see EXPERIMENTS.md).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="execute experiments (parallel, cached)")
    run.add_argument(
        "--only",
        action="append",
        default=[],
        metavar="NAME[,NAME...]",
        help="run only these experiments (repeatable or comma-separated)",
    )
    run.add_argument(
        "--tag",
        action="append",
        default=[],
        metavar="TAG[,TAG...]",
        help="run only experiments carrying every given tag",
    )
    run.add_argument(
        "--jobs", "-j", type=int, default=None,
        help="worker processes (default: CPU count; 1 = in-process serial)",
    )
    run.add_argument(
        "--no-cache", action="store_true",
        help="always execute, and do not store new cache entries",
    )
    run.add_argument("--seed", type=int, default=0, help="run-level RNG seed")
    run.add_argument(
        "--json", action="store_true",
        help="print the manifest to stdout instead of progress lines",
    )
    run.add_argument(
        "--show-text", action="store_true",
        help="echo each rendered artifact (the legacy runner's output)",
    )
    run.add_argument("--quiet", "-q", action="store_true", help="no progress lines")

    lst = sub.add_parser("list", help="list registered experiments")
    lst.add_argument("--tag", action="append", default=[], metavar="TAG[,TAG...]")
    lst.add_argument("--json", action="store_true", help="machine-readable listing")

    cln = sub.add_parser("clean", help="remove rendered artifacts + manifest + cache")
    cln.add_argument(
        "--keep-cache", action="store_true", help="leave the result cache in place"
    )

    bench = sub.add_parser("bench", help="run microbenchmarks (vector vs scalar)")
    bench.add_argument(
        "--quick", action="store_true",
        help="smaller problem sizes and fewer repeats (CI smoke mode)",
    )
    bench.add_argument(
        "--json", metavar="PATH", default=None,
        help="report path (default: BENCH_<timestamp>.json in the cwd)",
    )
    bench.add_argument(
        "--only",
        action="append",
        default=[],
        metavar="NAME[,NAME...]",
        help="run only these benchmarks (repeatable or comma-separated)",
    )
    bench.add_argument(
        "--tag", action="append", default=[], metavar="TAG[,TAG...]",
        help="run only benchmarks carrying every given tag",
    )
    bench.add_argument(
        "--compare", metavar="BASELINE", default=None,
        help="compare medians against a previous BENCH json; regressions exit 1",
    )
    bench.add_argument(
        "--threshold", type=float, default=1.25,
        help="regression threshold for --compare (default: 1.25x slower)",
    )
    bench.add_argument("--list", action="store_true", help="list benchmarks and exit")
    bench.add_argument("--quiet", "-q", action="store_true", help="no progress lines")
    return parser


def cmd_run(args: argparse.Namespace) -> int:
    orchestrator = Orchestrator(
        jobs=args.jobs,
        use_cache=not args.no_cache,
        run_seed=args.seed,
        verbose=not (args.quiet or args.json),
        show_text=args.show_text,
    )
    report = orchestrator.run(
        only=_split_names(args.only), tags=_split_names(args.tag)
    )
    if args.json:
        json.dump(report.manifest(), sys.stdout, indent=2)
        sys.stdout.write("\n")
    return 0 if report.ok else 1


def cmd_list(args: argparse.Namespace) -> int:
    specs = REGISTRY.select(tags=_split_names(args.tag))
    if args.json:
        listing = [
            {
                "name": s.name,
                "module": s.module,
                "tags": list(s.tags),
                "cost": s.cost,
                "description": s.description,
                "params": s.param_schema(),
            }
            for s in specs
        ]
        json.dump(listing, sys.stdout, indent=2)
        sys.stdout.write("\n")
        return 0
    width = max((len(s.name) for s in specs), default=0)
    for spec in specs:
        tags = ",".join(spec.tags)
        print(f"{spec.name:<{width}}  [{spec.cost}] ({tags}) {spec.description}")
    return 0


def cmd_clean(args: argparse.Namespace) -> int:
    for path in clean(remove_cache=not args.keep_cache):
        print(f"removed {path}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.perf.harness import compare_reports, run_benchmarks, validate_report
    from repro.perf.registry import BENCH_REGISTRY

    specs = BENCH_REGISTRY.select(only=_split_names(args.only), tags=_split_names(args.tag))
    if args.list:
        width = max((len(s.name) for s in specs), default=0)
        for spec in specs:
            mode = "vector+scalar" if spec.paired else "single"
            print(f"{spec.name:<{width}}  [{mode}] ({','.join(spec.tags)}) {spec.description}")
        return 0
    if not specs:
        print("error: no benchmarks selected", file=sys.stderr)
        return 2
    progress = None if args.quiet else lambda line: print(line, flush=True)
    report = run_benchmarks(specs, quick=args.quick, progress=progress)
    problems = validate_report(report)
    if problems:
        for problem in problems:
            print(f"error: invalid report: {problem}", file=sys.stderr)
        return 2
    path = args.json
    if path is None:
        stamp = datetime.datetime.now(datetime.timezone.utc).strftime("%Y%m%dT%H%M%SZ")
        path = f"BENCH_{stamp}.json"
    try:
        with open(path, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=2)
            f.write("\n")
    except OSError as exc:
        raise ConfigError(f"cannot write report {path!r}: {exc}") from exc
    if not args.quiet:
        print(f"report: {path}")
    if args.compare is not None:
        try:
            with open(args.compare, "r", encoding="utf-8") as f:
                baseline = json.load(f)
        except (OSError, ValueError) as exc:
            raise ConfigError(f"cannot read baseline {args.compare!r}: {exc}") from exc
        lines, regressions = compare_reports(report, baseline, threshold=args.threshold)
        for line in lines:
            print(line)
        if regressions:
            print(
                f"{len(regressions)} regression(s) beyond {args.threshold:.2f}x",
                file=sys.stderr,
            )
            return 1
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "run": cmd_run,
        "list": cmd_list,
        "clean": cmd_clean,
        "bench": cmd_bench,
    }[args.command]
    try:
        return handler(args)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
