"""CLI: ``python -m repro {run,list,clean,bench,sweep,sched,digest,serve,worker,jobs}``.

Examples::

    python -m repro list
    python -m repro run --jobs 4
    python -m repro run --only fig16_overall,fig17_breakdown --no-cache
    python -m repro run --tag paper --json
    python -m repro clean
    python -m repro bench --quick
    python -m repro bench --quick --compare benchmarks/baseline.json --threshold 1.25
    python -m repro sweep list
    python -m repro sweep show mac_policy
    python -m repro sweep run npu_scaling --jobs 4
    python -m repro sweep run npu_scaling --shard 1/2 --retries 2
    python -m repro sweep run npu_scaling --resume
    python -m repro sweep run npu_scaling --balance cost --jobs 4
    python -m repro sweep merge npu_scaling
    python -m repro sweep status npu_scaling
    python -m repro sched plan npu_scaling --slots 4
    python -m repro digest --check benchmarks/artifact_digests.json
    python -m repro serve --port 8765 --workers 4
    python -m repro serve --external-only --autosplit 3
    python -m repro worker --server 127.0.0.1:8765 --lease-ttl 60 --once
    python -m repro jobs submit experiment fig16_overall --wait
    python -m repro jobs submit sweep mee_geometry --quick --shards 3
    python -m repro jobs status <id> / wait <id> / result <id> / cancel <id> / list

See EXPERIMENTS.md for the experiment catalogue, the sweep-spec format,
the bench JSON schema, and the service wire schema.
"""

from __future__ import annotations

import argparse
import datetime
import hashlib
import json
import sys
from typing import List, Optional, Sequence

from repro.errors import ConfigError, ServiceError
from repro.eval.orchestrator import Orchestrator, _execute_one, clean, derive_seed
from repro.eval.registry import REGISTRY

#: ``sweep status`` exit code when no journal exists at all — distinct
#: from 1 (incomplete sweep) and 2 (configuration error) so automation
#: can tell "never ran" apart from "ran and has pending points".
EXIT_NO_JOURNAL = 3


def _split_names(values: Sequence[str]) -> Optional[List[str]]:
    """Flatten repeated/comma-separated ``--only``/``--tag`` values."""
    names = [name.strip() for value in values for name in value.split(",")]
    names = [name for name in names if name]
    return names or None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's figures and tables (see EXPERIMENTS.md).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="execute experiments (parallel, cached)")
    run.add_argument(
        "--only",
        action="append",
        default=[],
        metavar="NAME[,NAME...]",
        help="run only these experiments (repeatable or comma-separated)",
    )
    run.add_argument(
        "--tag",
        action="append",
        default=[],
        metavar="TAG[,TAG...]",
        help="run only experiments carrying every given tag",
    )
    run.add_argument(
        "--jobs", "-j", type=int, default=None,
        help="worker processes (default: CPU count; 1 = in-process serial)",
    )
    run.add_argument(
        "--no-cache", action="store_true",
        help="always execute, and do not store new cache entries",
    )
    run.add_argument("--seed", type=int, default=0, help="run-level RNG seed")
    run.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="re-execute a failed experiment up to N extra times",
    )
    run.add_argument(
        "--json", action="store_true",
        help="print the manifest to stdout instead of progress lines",
    )
    run.add_argument(
        "--show-text", action="store_true",
        help="echo each rendered artifact (the legacy runner's output)",
    )
    run.add_argument("--quiet", "-q", action="store_true", help="no progress lines")

    lst = sub.add_parser("list", help="list registered experiments")
    lst.add_argument("--tag", action="append", default=[], metavar="TAG[,TAG...]")
    lst.add_argument("--json", action="store_true", help="machine-readable listing")

    cln = sub.add_parser("clean", help="remove rendered artifacts + manifest + cache")
    cln.add_argument(
        "--keep-cache", action="store_true", help="leave the result cache in place"
    )

    bench = sub.add_parser("bench", help="run microbenchmarks (vector vs scalar)")
    bench.add_argument(
        "--quick", action="store_true",
        help="smaller problem sizes and fewer repeats (CI smoke mode)",
    )
    bench.add_argument(
        "--json", metavar="PATH", default=None,
        help="report path (default: BENCH_<timestamp>.json in the cwd)",
    )
    bench.add_argument(
        "--only",
        action="append",
        default=[],
        metavar="NAME[,NAME...]",
        help="run only these benchmarks (repeatable or comma-separated)",
    )
    bench.add_argument(
        "--tag", action="append", default=[], metavar="TAG[,TAG...]",
        help="run only benchmarks carrying every given tag",
    )
    bench.add_argument(
        "--compare", metavar="BASELINE", default=None,
        help="compare medians against a previous BENCH json; regressions exit 1",
    )
    bench.add_argument(
        "--threshold", type=float, default=1.25,
        help="regression threshold for --compare (default: 1.25x slower)",
    )
    bench.add_argument("--list", action="store_true", help="list benchmarks and exit")
    bench.add_argument("--quiet", "-q", action="store_true", help="no progress lines")

    sweep = sub.add_parser("sweep", help="declarative parameter sweeps (sweeps/*.toml)")
    sweep_sub = sweep.add_subparsers(dest="sweep_command", required=True)

    sweep_run = sweep_sub.add_parser("run", help="expand a spec and run every point")
    sweep_run.add_argument("spec", help="spec name under sweeps/ or a TOML path")
    sweep_run.add_argument(
        "--jobs", "-j", type=int, default=None,
        help="worker processes (default: CPU count; 1 = in-process serial)",
    )
    sweep_run.add_argument(
        "--no-cache", action="store_true",
        help="always execute, and do not store new cache entries",
    )
    sweep_run.add_argument(
        "--quick", action="store_true",
        help="truncate every axis to its first two values (CI smoke shape)",
    )
    sweep_run.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="cap the expanded matrix at its first N points",
    )
    sweep_run.add_argument(
        "--shard", metavar="K/N", default=None,
        help="run only the K-th of N deterministic matrix slices "
        "(consolidate with `sweep merge`)",
    )
    sweep_run.add_argument(
        "--resume", action="store_true",
        help="replay the run journal + result cache and schedule only "
        "incomplete points",
    )
    sweep_run.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="re-execute a failed point up to N extra times before "
        "quarantining it (budget persists across --resume)",
    )
    sweep_run.add_argument(
        "--balance", choices=("round-robin", "cost"), default="round-robin",
        help="shard/schedule partition strategy: round-robin (default, "
        "deterministic everywhere) or cost (predicted seconds from the "
        "learned cost model; writes schedule.json next to the journal)",
    )
    sweep_run.add_argument(
        "--json", action="store_true",
        help="print the consolidated sweep document to stdout",
    )
    sweep_run.add_argument("--quiet", "-q", action="store_true", help="no progress lines")

    sweep_list = sweep_sub.add_parser("list", help="list shipped sweep specs")
    sweep_list.add_argument("--json", action="store_true", help="machine-readable listing")

    sweep_show = sweep_sub.add_parser("show", help="print a spec's expanded matrix")
    sweep_show.add_argument("spec", help="spec name under sweeps/ or a TOML path")
    sweep_show.add_argument("--quick", action="store_true", help="apply the --quick truncation")
    sweep_show.add_argument("--json", action="store_true", help="machine-readable matrix")

    sweep_merge = sweep_sub.add_parser(
        "merge", help="consolidate per-shard runs into sweep.json + sweep.csv"
    )
    sweep_merge.add_argument("spec", help="spec name under sweeps/ or a TOML path")
    sweep_merge.add_argument(
        "--json", action="store_true", help="print the merged document to stdout"
    )
    sweep_merge.add_argument("--quiet", "-q", action="store_true", help="no progress lines")

    sweep_status = sweep_sub.add_parser(
        "status", help="done/failed/pending counts from the run journal(s)"
    )
    sweep_status.add_argument("spec", help="spec name under sweeps/ or a TOML path")
    sweep_status.add_argument(
        "--json", action="store_true", help="machine-readable status"
    )

    serve = sub.add_parser(
        "serve", help="persistent job-queue service over the orchestrator"
    )
    serve.add_argument("--host", default=None, help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=None, help="bind port (default: 8765)")
    serve.add_argument(
        "--workers", "-w", type=int, default=None,
        help="pool worker processes (default: CPU count; 1 = in-process)",
    )
    serve.add_argument(
        "--queue-dir", default=None, metavar="DIR",
        help="queue directory (default: <results>/queue)",
    )
    serve.add_argument(
        "--once", action="store_true",
        help="exit once at least one job was submitted and the queue has "
        "drained (headless CI mode)",
    )
    serve.add_argument(
        "--grace", type=float, default=5.0, metavar="SECONDS",
        help="idle time after the last request before --once exits (default: 5)",
    )
    serve.add_argument(
        "--external-only", action="store_true",
        help="never execute jobs in-process; only `repro worker` processes "
        "drain the queue (the server still merges sweep fan-outs)",
    )
    serve.add_argument(
        "--autosplit", type=int, default=1, metavar="N",
        help="fan sweep submissions out into N shard jobs by default "
        "(clamped to the matrix size; default: 1 = no fan-out)",
    )
    serve.add_argument(
        "--autosplit-min-seconds", type=float, default=0.0, metavar="SECONDS",
        help="size server-default fan-outs off the learned cost model: "
        "shrink the --autosplit width until every shard job carries at "
        "least this much predicted work (default: 0 = fixed width)",
    )
    serve.add_argument("--quiet", "-q", action="store_true", help="no request/job lines")

    worker = sub.add_parser(
        "worker", help="remote executor: claim jobs from a `repro serve` queue"
    )
    worker.add_argument(
        "--server", default=None, metavar="HOST:PORT",
        help="serve endpoint to pull from (default: 127.0.0.1:8765)",
    )
    worker.add_argument(
        "--lease-ttl", type=float, default=None, metavar="SECONDS",
        help="lease length per claim; heartbeats renew it (default: 60)",
    )
    worker.add_argument(
        "--tags", action="append", default=[], metavar="TAG[,TAG...]",
        help="capabilities this worker offers (claims only jobs it covers)",
    )
    worker.add_argument(
        "--jobs", "-j", type=int, default=None,
        help="worker pool processes (default: CPU count; 1 = in-process serial)",
    )
    worker.add_argument(
        "--once", action="store_true",
        help="exit once a claim comes back empty and nothing is outstanding "
        "(fleet drain mode for CI)",
    )
    worker.add_argument(
        "--poll", type=float, default=0.2, metavar="SECONDS",
        help="nap between empty claims (default: 0.2)",
    )
    worker.add_argument(
        "--id", default=None, metavar="NAME",
        help="worker identity in leases and logs (default: <hostname>-<pid>)",
    )
    worker.add_argument("--quiet", "-q", action="store_true", help="no per-job lines")

    sched = sub.add_parser(
        "sched", help="cost-model schedule planning (see EXPERIMENTS.md § Scheduling)"
    )
    sched_sub = sched.add_subparsers(dest="sched_command", required=True)
    sched_plan = sched_sub.add_parser(
        "plan", help="solve a sweep's schedule from learned costs without executing"
    )
    sched_plan.add_argument("spec", help="spec name under sweeps/ or a TOML path")
    sched_plan.add_argument(
        "--slots", type=int, default=None, metavar="N",
        help="slots (pool workers / fleet shards) to pack onto "
        "(default: CPU count)",
    )
    sched_plan.add_argument(
        "--quick", action="store_true",
        help="plan the --quick-truncated matrix (what a quick run schedules)",
    )
    sched_plan.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="cap the expanded matrix at its first N points",
    )
    sched_plan.add_argument(
        "--out", metavar="PATH", default=None,
        help="schedule.json path (default: results/sweeps/<name>/schedule.json)",
    )
    sched_plan.add_argument(
        "--json", action="store_true",
        help="print the schedule document to stdout instead of the summary",
    )
    sched_plan.add_argument("--quiet", "-q", action="store_true", help="no summary lines")

    jobs = sub.add_parser("jobs", help="client for a running `repro serve`")
    jobs_sub = jobs.add_subparsers(dest="jobs_command", required=True)

    def client_flags(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument("--host", default=None, help="server address (default: 127.0.0.1)")
        sub_parser.add_argument("--port", type=int, default=None, help="server port (default: 8765)")
        sub_parser.add_argument("--json", action="store_true", help="machine-readable output")

    jobs_submit = jobs_sub.add_parser("submit", help="submit an experiment/sweep/bench job")
    jobs_submit.add_argument(
        "task",
        nargs="?",
        default=None,
        choices=("experiment", "sweep", "bench"),
        help="what kind of work to enqueue (omit with --batch-file)",
    )
    jobs_submit.add_argument(
        "target", nargs="?", default=None,
        help="experiment name or sweep spec (bench takes no target)",
    )
    jobs_submit.add_argument(
        "--params", metavar="JSON", default=None,
        help="experiment keyword overrides as a JSON object",
    )
    jobs_submit.add_argument("--seed", type=int, default=0, help="experiment run seed")
    jobs_submit.add_argument(
        "--quick", action="store_true", help="sweep/bench smoke shape (CI sizes)"
    )
    jobs_submit.add_argument(
        "--limit", type=int, default=None, metavar="N", help="cap a sweep matrix at N points"
    )
    jobs_submit.add_argument(
        "--only",
        action="append",
        default=[],
        metavar="NAME[,NAME...]",
        help="bench: run only these benchmarks",
    )
    jobs_submit.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="sweep: fan out into N shard jobs a worker fleet work-steals",
    )
    jobs_submit.add_argument(
        "--shard", metavar="K/N", default=None,
        help="sweep: submit only slice K of N (see `sweep run --shard`)",
    )
    jobs_submit.add_argument(
        "--priority", type=int, default=0, help="higher runs first (default: 0)"
    )
    jobs_submit.add_argument(
        "--wait", action="store_true", help="block until the job is terminal"
    )
    jobs_submit.add_argument(
        "--timeout", type=float, default=600.0, metavar="SECONDS",
        help="--wait deadline (default: 600)",
    )
    jobs_submit.add_argument(
        "--batch-file", metavar="FILE", default=None,
        help="submit every submission in FILE (a JSON array, or JSONL with "
        "one submission object per line) in a single batch round trip",
    )
    client_flags(jobs_submit)

    jobs_status = jobs_sub.add_parser("status", help="job status (and failure traceback)")
    jobs_status.add_argument(
        "id", nargs="*", default=[],
        help="job id(s) from `jobs submit`; several ids go out as one "
        "status batch round trip",
    )
    jobs_status.add_argument(
        "--all", action="store_true",
        help="every job the server knows, one round trip",
    )
    client_flags(jobs_status)

    jobs_wait = jobs_sub.add_parser("wait", help="block until a job is terminal")
    jobs_wait.add_argument("id", help="job id from `jobs submit`")
    jobs_wait.add_argument(
        "--timeout", type=float, default=600.0, metavar="SECONDS",
        help="give up (exit 2) after this long (default: 600)",
    )
    jobs_wait.add_argument(
        "--interval", type=float, default=0.2, metavar="SECONDS",
        help="poll interval (default: 0.2)",
    )
    client_flags(jobs_wait)

    jobs_result = jobs_sub.add_parser("result", help="a finished job's result payload")
    jobs_result.add_argument("id", help="job id from `jobs submit`")
    jobs_result.add_argument(
        "--text", action="store_true",
        help="print only the rendered artifact text (experiment jobs)",
    )
    client_flags(jobs_result)

    jobs_cancel = jobs_sub.add_parser("cancel", help="cancel a still-queued job")
    jobs_cancel.add_argument("id", help="job id from `jobs submit`")
    client_flags(jobs_cancel)

    jobs_list = jobs_sub.add_parser("list", help="every job the server knows about")
    client_flags(jobs_list)

    digest = sub.add_parser(
        "digest", help="SHA-256 digests of rendered artifacts (CI drift tripwire)"
    )
    digest_mode = digest.add_mutually_exclusive_group(required=True)
    digest_mode.add_argument(
        "--check", metavar="PATH", default=None,
        help="regenerate the file's experiments and fail on any digest drift",
    )
    digest_mode.add_argument(
        "--update", metavar="PATH", default=None,
        help="write current digests to PATH (keeps its experiment set unless --only)",
    )
    digest.add_argument(
        "--only",
        action="append",
        default=[],
        metavar="NAME[,NAME...]",
        help="with --update: record exactly these experiments; "
        "with --check: verify only this subset of the file",
    )
    return parser


def _selection(only_args: Sequence[str], tag_args: Sequence[str]):
    """Resolve --only/--tag into a non-empty experiment selection.

    A flag that was given but names nothing, and a tag set no experiment
    carries, both used to run the wrong thing silently (everything and
    nothing respectively); they are hard errors listing the valid names.
    """
    only = _split_names(only_args)
    tags = _split_names(tag_args)
    if only_args and only is None:
        raise ConfigError(
            f"--only given but empty; known experiments: {', '.join(REGISTRY.names())}"
        )
    if tag_args and tags is None:
        known_tags = sorted({t for s in REGISTRY.specs() for t in s.tags})
        raise ConfigError(f"--tag given but empty; known tags: {', '.join(known_tags)}")
    if not REGISTRY.select(only=only, tags=tags):
        known_tags = sorted({t for s in REGISTRY.specs() for t in s.tags})
        raise ConfigError(
            f"selection matches no experiments (only={only}, tags={tags}); "
            f"known experiments: {', '.join(REGISTRY.names())}; "
            f"known tags: {', '.join(known_tags)}"
        )
    return only, tags


def cmd_run(args: argparse.Namespace) -> int:
    only, tags = _selection(args.only, args.tag)
    orchestrator = Orchestrator(
        jobs=args.jobs,
        use_cache=not args.no_cache,
        run_seed=args.seed,
        verbose=not (args.quiet or args.json),
        show_text=args.show_text,
    )
    report = orchestrator.run(only=only, tags=tags, retries=args.retries)
    if args.json:
        json.dump(report.manifest(), sys.stdout, indent=2)
        sys.stdout.write("\n")
    return 0 if report.ok else 1


def cmd_list(args: argparse.Namespace) -> int:
    _, tags = _selection([], args.tag)
    specs = REGISTRY.select(tags=tags)
    if args.json:
        listing = [
            {
                "name": s.name,
                "module": s.module,
                "tags": list(s.tags),
                "cost": s.cost,
                "description": s.description,
                "params": s.param_schema(),
            }
            for s in specs
        ]
        json.dump(listing, sys.stdout, indent=2)
        sys.stdout.write("\n")
        return 0
    width = max((len(s.name) for s in specs), default=0)
    for spec in specs:
        tags = ",".join(spec.tags)
        print(f"{spec.name:<{width}}  [{spec.cost}] ({tags}) {spec.description}")
    return 0


def cmd_clean(args: argparse.Namespace) -> int:
    for path in clean(remove_cache=not args.keep_cache):
        print(f"removed {path}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.perf.harness import compare_reports, run_benchmarks, validate_report
    from repro.perf.registry import BENCH_REGISTRY

    specs = BENCH_REGISTRY.select(only=_split_names(args.only), tags=_split_names(args.tag))
    if args.list:
        width = max((len(s.name) for s in specs), default=0)
        for spec in specs:
            mode = "vector+scalar" if spec.paired else "single"
            print(f"{spec.name:<{width}}  [{mode}] ({','.join(spec.tags)}) {spec.description}")
        return 0
    if not specs:
        print("error: no benchmarks selected", file=sys.stderr)
        return 2
    progress = None if args.quiet else lambda line: print(line, flush=True)
    report = run_benchmarks(specs, quick=args.quick, progress=progress)
    problems = validate_report(report)
    if problems:
        for problem in problems:
            print(f"error: invalid report: {problem}", file=sys.stderr)
        return 2
    path = args.json
    if path is None:
        stamp = datetime.datetime.now(datetime.timezone.utc).strftime("%Y%m%dT%H%M%SZ")
        path = f"BENCH_{stamp}.json"
    try:
        with open(path, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=2)
            f.write("\n")
    except OSError as exc:
        raise ConfigError(f"cannot write report {path!r}: {exc}") from exc
    if not args.quiet:
        print(f"report: {path}")
    if args.compare is not None:
        try:
            with open(args.compare, "r", encoding="utf-8") as f:
                baseline = json.load(f)
        except (OSError, ValueError) as exc:
            raise ConfigError(f"cannot read baseline {args.compare!r}: {exc}") from exc
        lines, regressions = compare_reports(report, baseline, threshold=args.threshold)
        for line in lines:
            print(line)
        if regressions:
            print(
                f"{len(regressions)} regression(s) beyond {args.threshold:.2f}x",
                file=sys.stderr,
            )
            return 1
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.eval import sweep as sweep_mod

    if args.sweep_command == "list":
        names = sweep_mod.available_specs()
        if args.json:
            listing = []
            for name in names:
                spec = sweep_mod.load_spec(name)
                listing.append(
                    {
                        "name": spec.name,
                        "experiment": spec.experiment,
                        "mode": spec.mode,
                        "points": spec.n_points(),
                        "description": spec.description,
                    }
                )
            json.dump(listing, sys.stdout, indent=2)
            sys.stdout.write("\n")
            return 0
        if not names:
            print(f"no sweep specs under {sweep_mod.sweeps_dir()}")
            return 0
        width = max(len(n) for n in names)
        for name in names:
            spec = sweep_mod.load_spec(name)
            print(
                f"{name:<{width}}  {spec.experiment} [{spec.mode}] "
                f"{spec.n_points()} points — {spec.description}"
            )
        return 0

    spec = sweep_mod.load_spec(args.spec)
    if args.sweep_command == "merge":
        document, json_path, csv_path = sweep_mod.merge_shards(
            spec, verbose=not (args.quiet or args.json)
        )
        if args.json:
            json.dump(document, sys.stdout, indent=2)
            sys.stdout.write("\n")
        elif not args.quiet:
            print(f"sweep: {json_path}\ncsv:   {csv_path}")
        return 0 if document["counts"]["failed"] == 0 else 1

    if args.sweep_command == "status":
        try:
            status = sweep_mod.sweep_status(spec)
        except sweep_mod.NoJournalError as exc:
            # Distinct from an incomplete sweep (exit 1): nothing has ever
            # run here, so there is nothing to resume or merge either.
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_NO_JOURNAL
        if args.json:
            json.dump(status, sys.stdout, indent=2)
            sys.stdout.write("\n")
        else:
            print(
                f"sweep {status['sweep']}: {status['n_points']} points — "
                f"{status['done']} done, {status['failed']} failed, "
                f"{status['stale']} stale, {status['pending']} pending"
            )
            for entry in status["failed_points"]:
                flag = " (quarantined)" if entry["quarantined"] else ""
                print(
                    f"  failed: {entry['point']} "
                    f"[{entry['error_type']}, {entry['attempts']} attempt(s)]{flag}"
                )
            for point_id in status["stale_points"]:
                print(f"  stale:  {point_id}")
            for point_id in status["pending_points"]:
                print(f"  pending: {point_id}")
            for journal in status["journals"]:
                torn = ", torn tail" if journal["truncated"] else ""
                print(
                    f"journal: {journal['path']} ({journal['records']} records, "
                    f"{journal['resumes']} resume(s){torn})"
                )
        return 0 if status["complete"] else 1

    if args.sweep_command == "show":
        points = sweep_mod.expand(spec, quick=args.quick)
        if args.json:
            matrix = [
                {"point": p.point_id, "index": p.index, "coords": p.coords}
                for p in points
            ]
            json.dump(
                {"sweep": spec.name, "experiment": spec.experiment, "points": matrix},
                sys.stdout,
                indent=2,
                default=repr,
            )
            sys.stdout.write("\n")
            return 0
        print(f"sweep {spec.name}: {spec.experiment} [{spec.mode}], {len(points)} points")
        for point in points:
            print(f"  {point.index:3d}  {point.point_id}")
        return 0

    result = sweep_mod.run_sweep(
        spec,
        jobs=args.jobs,
        use_cache=not args.no_cache,
        quick=args.quick,
        limit=args.limit,
        verbose=not (args.quiet or args.json),
        shard=sweep_mod.parse_shard(args.shard) if args.shard else None,
        resume=args.resume,
        retries=args.retries,
        balance=args.balance,
    )
    if args.json:
        json.dump(result.document(), sys.stdout, indent=2)
        sys.stdout.write("\n")
    elif not args.quiet:
        print()
        print(result.table())
        print(f"\nsweep: {result.json_path}\ncsv:   {result.csv_path}")
    return 0 if result.ok else 1


def cmd_sched(args: argparse.Namespace) -> int:
    import os

    from repro.eval import schedule as schedule_mod
    from repro.eval import sweep as sweep_mod
    from repro.eval.cost import CostModel

    spec = sweep_mod.load_spec(args.spec)
    points = sweep_mod.expand(spec, quick=args.quick, limit=args.limit)
    slots = args.slots if args.slots and args.slots > 0 else (os.cpu_count() or 1)
    model = CostModel.from_results()
    tasks = [
        schedule_mod.PointTask(
            label=sweep_mod.point_label(spec.name, p.point_id),
            experiment=spec.experiment,
            point=p.point_id,
            params=p.params,
        )
        for p in points
    ]
    plan = schedule_mod.plan(
        tasks,
        model,
        slots,
        sweep=spec.name,
        experiment=spec.experiment,
        quick=args.quick,
        limit=args.limit,
    )
    document = plan.document()
    out = args.out or os.path.join(sweep_mod.sweep_dir(spec.name), "schedule.json")
    schedule_mod.write_schedule(out, document)
    if args.json:
        json.dump(document, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
        return 0
    if not args.quiet:
        sources = ", ".join(
            f"{count} {source}" for source, count in sorted(document["cost_sources"].items())
        )
        print(
            f"schedule {spec.name}: {len(points)} point(s) onto {plan.slots} slot(s) "
            f"[{sources}; {model.sample_count()} history sample(s)]"
        )
        for slot_plan in document["slot_plan"]:
            ids = ", ".join(p["point"] for p in slot_plan["points"]) or "(idle)"
            print(f"  slot {slot_plan['slot']}  {slot_plan['predicted_s']:8.2f}s  {ids}")
        baseline = document["round_robin_makespan_s"]
        predicted = document["predicted_makespan_s"]
        ratio = f" ({baseline / predicted:.2f}x better)" if predicted > 0 else ""
        print(
            f"predicted makespan: {predicted:.2f}s; round-robin: {baseline:.2f}s{ratio}"
        )
        print(f"schedule: {out}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import schema as serve_schema
    from repro.serve.server import build_service

    if args.host is None:
        args.host = serve_schema.DEFAULT_HOST
    if args.port is None:
        args.port = serve_schema.DEFAULT_PORT
    if args.grace < 0:
        raise ConfigError(f"--grace must be >= 0, got {args.grace}")
    return build_service(args).run()


def cmd_worker(args: argparse.Namespace) -> int:
    from repro.serve import schema as serve_schema
    from repro.serve.worker import build_worker

    if args.server is None:
        args.server = f"{serve_schema.DEFAULT_HOST}:{serve_schema.DEFAULT_PORT}"
    if args.lease_ttl is None:
        args.lease_ttl = serve_schema.DEFAULT_LEASE_TTL
    if args.lease_ttl <= 0:
        raise ConfigError(f"--lease-ttl must be > 0, got {args.lease_ttl}")
    if args.poll <= 0:
        raise ConfigError(f"--poll must be > 0, got {args.poll}")
    args.tags = _split_names(args.tags) or []
    return build_worker(args).run()


def _reject_flags(task: str, given: dict) -> None:
    """Refuse `jobs submit` flags the chosen task would silently ignore."""
    offending = sorted(flag for flag, used in given.items() if used)
    if offending:
        raise ConfigError(
            f"jobs submit {task} does not take {', '.join(offending)}; "
            "see `python -m repro jobs submit --help`"
        )


def _submission_payload(args: argparse.Namespace) -> dict:
    """Build the wire submission from `jobs submit` arguments."""
    payload: dict = {"task": args.task, "priority": args.priority}
    sharding = {"--shards": args.shards is not None, "--shard": args.shard is not None}
    if args.task == "experiment":
        if not args.target:
            raise ConfigError("jobs submit experiment needs an experiment name")
        _reject_flags(
            "experiment",
            {
                "--quick": args.quick,
                "--limit": args.limit is not None,
                "--only": bool(args.only),
                **sharding,
            },
        )
        params = {}
        if args.params is not None:
            try:
                params = json.loads(args.params)
            except ValueError as exc:
                raise ConfigError(f"--params is not valid JSON: {exc}") from exc
            if not isinstance(params, dict):
                raise ConfigError(f"--params must be a JSON object, got {args.params!r}")
        payload.update({"experiment": args.target, "params": params, "seed": args.seed})
    elif args.task == "sweep":
        if not args.target:
            raise ConfigError("jobs submit sweep needs a spec name")
        _reject_flags(
            "sweep",
            {
                "--params": args.params is not None,
                "--seed": args.seed != 0,
                "--only": bool(args.only),
            },
        )
        payload.update({"spec": args.target, "quick": args.quick, "limit": args.limit})
        if args.shards is not None:
            payload["shards"] = args.shards
        if args.shard is not None:
            payload["shard"] = args.shard
    else:  # bench
        if args.target:
            raise ConfigError(
                f"jobs submit bench takes no target (got {args.target!r}); "
                "use --only NAME[,NAME...] to subset"
            )
        _reject_flags(
            "bench",
            {
                "--params": args.params is not None,
                "--seed": args.seed != 0,
                "--limit": args.limit is not None,
                **sharding,
            },
        )
        payload.update({"quick": args.quick, "only": _split_names(args.only)})
    return payload


def _load_batch_file(path: str) -> list:
    """Parse a `jobs submit --batch-file`: a JSON array, or JSONL lines."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            text = f.read()
    except OSError as exc:
        raise ConfigError(f"cannot read --batch-file {path!r}: {exc}") from exc
    stripped = text.lstrip()
    if not stripped:
        raise ConfigError(f"--batch-file {path!r} is empty")
    if stripped.startswith("["):
        try:
            entries = json.loads(text)
        except ValueError as exc:
            raise ConfigError(f"--batch-file {path!r} is not valid JSON: {exc}") from exc
        if not isinstance(entries, list):
            raise ConfigError(f"--batch-file {path!r} must hold a JSON array of submissions")
        return entries
    entries = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            entries.append(json.loads(line))
        except ValueError as exc:
            raise ConfigError(
                f"--batch-file {path!r} line {lineno} is not valid JSON: {exc}"
            ) from exc
    return entries


def _entry_is_error(view: dict) -> bool:
    """Whether a batch answer entry is a rejection, not a job view."""
    return "error" in view and "status" not in view


def _submit_batch(client, args: argparse.Namespace) -> int:
    """`jobs submit --batch-file`: one round trip for the whole file."""
    from repro.serve import schema as serve_schema

    if args.task is not None:
        raise ConfigError(
            "jobs submit --batch-file takes no positional task; "
            "each file entry names its own"
        )
    _reject_flags(
        "--batch-file",
        {
            "--params": args.params is not None,
            "--seed": args.seed != 0,
            "--quick": args.quick,
            "--limit": args.limit is not None,
            "--only": bool(args.only),
            "--shards": args.shards is not None,
            "--shard": args.shard is not None,
            "--priority": args.priority != 0,
        },
    )
    answer = client.submit_batch(_load_batch_file(args.batch_file))
    if args.wait:
        answer["jobs"] = [
            view
            if _entry_is_error(view) or serve_schema.view_is_terminal(view)
            else client.wait(view["id"], timeout=args.timeout)
            for view in answer["jobs"]
        ]
    rc = 0 if answer["rejected"] == 0 else 1
    for view in answer["jobs"]:
        if not _entry_is_error(view) and view["status"] not in ("submitted", "running", "done"):
            rc = 1
    if args.json:
        json.dump(answer, sys.stdout, indent=2)
        sys.stdout.write("\n")
        return rc
    for index, view in enumerate(answer["jobs"]):
        if _entry_is_error(view):
            print(f"entry {view.get('index', index)}: error — {view['error']}", file=sys.stderr)
        else:
            _print_job(view, False)
    print(f"{answer['accepted']} accepted, {answer['rejected']} rejected")
    return rc


def _status_batch(client, args: argparse.Namespace) -> int:
    """`jobs status` with several ids or --all: one round trip."""
    answer = (
        client.status_batch(all_jobs=True) if args.all else client.status_batch(ids=args.id)
    )
    rc = 0
    for view in answer["jobs"]:
        if _entry_is_error(view):
            rc = 2
    if args.json:
        json.dump(answer, sys.stdout, indent=2)
        sys.stdout.write("\n")
        return rc
    if not answer["jobs"]:
        print("no jobs")
        return rc
    for view in answer["jobs"]:
        if _entry_is_error(view):
            print(f"job {view['id']}: error — {view['error']}", file=sys.stderr)
        else:
            _print_job(view, False)
    return rc


def _print_job(view: dict, as_json: bool) -> None:
    if as_json:
        json.dump(view, sys.stdout, indent=2)
        sys.stdout.write("\n")
        return
    line = (
        f"job {view['id']}: {view['task']} [{view['status']}]"
        f"{' (cached)' if view.get('cached') else ''}"
    )
    if view.get("error_type"):
        line += f" — {view['error_type']}"
    print(line)
    if view.get("error"):
        print(view["error"], end="" if str(view["error"]).endswith("\n") else "\n")


def cmd_jobs(args: argparse.Namespace) -> int:
    from repro.serve import schema as serve_schema
    from repro.serve.client import ServeClient

    client = ServeClient(
        host=args.host or serve_schema.DEFAULT_HOST,
        port=args.port or serve_schema.DEFAULT_PORT,
    )
    if args.jobs_command == "submit":
        if args.batch_file is not None:
            return _submit_batch(client, args)
        if args.task is None:
            raise ConfigError(
                "jobs submit needs a task (experiment, sweep, or bench) or --batch-file"
            )
        view = client.submit(_submission_payload(args))
        if args.wait and not serve_schema.view_is_terminal(view):
            view = client.wait(view["id"], timeout=args.timeout)
        _print_job(view, args.json)
        return 0 if view["status"] in ("submitted", "running", "done") else 1
    if args.jobs_command == "status":
        if args.all and args.id:
            raise ConfigError("jobs status takes ids or --all, not both")
        if not args.all and not args.id:
            raise ConfigError("jobs status needs at least one job id (or --all)")
        if args.all or len(args.id) > 1:
            return _status_batch(client, args)
        _print_job(client.job(args.id[0]), args.json)
        return 0
    if args.jobs_command == "wait":
        view = client.wait(args.id, timeout=args.timeout, interval=args.interval)
        _print_job(view, args.json)
        return 0 if view["status"] == "done" else 1
    if args.jobs_command == "result":
        view = client.result(args.id)
        if args.text:
            result = view.get("result") or {}
            if "text" not in result:
                raise ServiceError(f"job {args.id} has no artifact text (task {view['task']!r})")
            sys.stdout.write(result["text"])
            return 0 if view["status"] == "done" else 1
        json.dump(view, sys.stdout, indent=2)
        sys.stdout.write("\n")
        return 0 if view["status"] == "done" else 1
    if args.jobs_command == "cancel":
        _print_job(client.cancel(args.id), args.json)
        return 0
    # list
    views = client.jobs()
    if args.json:
        json.dump({"jobs": views}, sys.stdout, indent=2)
        sys.stdout.write("\n")
        return 0
    if not views:
        print("no jobs")
        return 0
    for view in views:
        cached = " (cached)" if view.get("cached") else ""
        print(
            f"{view['id']}  {view['task']:<10} {view['status']:<9}"
            f" p{view['priority']}{cached}"
        )
    return 0


def artifact_digest(name: str) -> str:
    """SHA-256 of one experiment's freshly rendered artifact file bytes.

    Executes outside the result cache with the orchestrator's seed
    derivation and applies ``save_result``'s trailing-newline
    normalization, so the digest matches ``sha256sum results/<name>.txt``
    after a ``repro run`` byte for byte.
    """
    record = _execute_one(name, derive_seed(0, name), {})
    artifact_bytes = (record["text"].rstrip() + "\n").encode("utf-8")
    return hashlib.sha256(artifact_bytes).hexdigest()


def cmd_digest(args: argparse.Namespace) -> int:
    path = args.check or args.update
    only = _split_names(args.only)
    if args.update:
        names = only
        if names is None:
            try:
                with open(path, "r", encoding="utf-8") as f:
                    names = sorted(json.load(f).get("experiments", {}))
            except (OSError, ValueError):
                raise ConfigError(
                    f"cannot read {path!r} to keep its experiment set; "
                    "pass --only NAME[,NAME...] to choose one"
                ) from None
        digests = {name: artifact_digest(REGISTRY.get(name).name) for name in names}
        with open(path, "w", encoding="utf-8") as f:
            json.dump({"schema": 1, "experiments": digests}, f, indent=2, sort_keys=True)
            f.write("\n")
        for name, value in sorted(digests.items()):
            print(f"{name}: {value}")
        print(f"wrote {path}")
        return 0
    try:
        with open(path, "r", encoding="utf-8") as f:
            recorded = json.load(f)
    except (OSError, ValueError) as exc:
        raise ConfigError(f"cannot read digest file {path!r}: {exc}") from exc
    expected = recorded.get("experiments", {})
    if not expected:
        raise ConfigError(f"digest file {path!r} records no experiments")
    if only:
        unknown = sorted(set(only) - set(expected))
        if unknown:
            raise ConfigError(
                f"--only names not in {path!r}: {unknown}; "
                f"recorded: {sorted(expected)}"
            )
        expected = {name: expected[name] for name in only}
    drifted = []
    for name in sorted(expected):
        actual = artifact_digest(REGISTRY.get(name).name)
        if actual == expected[name]:
            print(f"{name}: ok ({actual[:16]}…)")
        else:
            drifted.append(name)
            print(f"{name}: DRIFT expected {expected[name]} got {actual}")
    if drifted:
        print(
            f"{len(drifted)} artifact(s) drifted: {', '.join(drifted)}\n"
            f"refresh with: python -m repro digest --update {path}",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "run": cmd_run,
        "list": cmd_list,
        "clean": cmd_clean,
        "bench": cmd_bench,
        "sweep": cmd_sweep,
        "sched": cmd_sched,
        "digest": cmd_digest,
        "serve": cmd_serve,
        "worker": cmd_worker,
        "jobs": cmd_jobs,
    }[args.command]
    try:
        return handler(args)
    except (ConfigError, ServiceError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
