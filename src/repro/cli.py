"""Command-line interface: ``python -m repro {run,list,clean}``.

Examples::

    python -m repro list
    python -m repro run --jobs 4
    python -m repro run --only fig16_overall,fig17_breakdown --no-cache
    python -m repro run --tag paper --json
    python -m repro clean

See EXPERIMENTS.md for the experiment catalogue.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.errors import ConfigError
from repro.eval.orchestrator import Orchestrator, clean
from repro.eval.registry import REGISTRY


def _split_names(values: Sequence[str]) -> Optional[List[str]]:
    """Flatten repeated/comma-separated ``--only``/``--tag`` values."""
    names = [name.strip() for value in values for name in value.split(",")]
    names = [name for name in names if name]
    return names or None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's figures and tables (see EXPERIMENTS.md).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="execute experiments (parallel, cached)")
    run.add_argument(
        "--only",
        action="append",
        default=[],
        metavar="NAME[,NAME...]",
        help="run only these experiments (repeatable or comma-separated)",
    )
    run.add_argument(
        "--tag",
        action="append",
        default=[],
        metavar="TAG[,TAG...]",
        help="run only experiments carrying every given tag",
    )
    run.add_argument(
        "--jobs", "-j", type=int, default=None,
        help="worker processes (default: CPU count; 1 = in-process serial)",
    )
    run.add_argument(
        "--no-cache", action="store_true",
        help="always execute, and do not store new cache entries",
    )
    run.add_argument("--seed", type=int, default=0, help="run-level RNG seed")
    run.add_argument(
        "--json", action="store_true",
        help="print the manifest to stdout instead of progress lines",
    )
    run.add_argument(
        "--show-text", action="store_true",
        help="echo each rendered artifact (the legacy runner's output)",
    )
    run.add_argument("--quiet", "-q", action="store_true", help="no progress lines")

    lst = sub.add_parser("list", help="list registered experiments")
    lst.add_argument("--tag", action="append", default=[], metavar="TAG[,TAG...]")
    lst.add_argument("--json", action="store_true", help="machine-readable listing")

    cln = sub.add_parser("clean", help="remove rendered artifacts + manifest + cache")
    cln.add_argument(
        "--keep-cache", action="store_true", help="leave the result cache in place"
    )
    return parser


def cmd_run(args: argparse.Namespace) -> int:
    orchestrator = Orchestrator(
        jobs=args.jobs,
        use_cache=not args.no_cache,
        run_seed=args.seed,
        verbose=not (args.quiet or args.json),
        show_text=args.show_text,
    )
    report = orchestrator.run(
        only=_split_names(args.only), tags=_split_names(args.tag)
    )
    if args.json:
        json.dump(report.manifest(), sys.stdout, indent=2)
        sys.stdout.write("\n")
    return 0 if report.ok else 1


def cmd_list(args: argparse.Namespace) -> int:
    specs = REGISTRY.select(tags=_split_names(args.tag))
    if args.json:
        listing = [
            {
                "name": s.name,
                "module": s.module,
                "tags": list(s.tags),
                "cost": s.cost,
                "description": s.description,
                "params": s.param_schema(),
            }
            for s in specs
        ]
        json.dump(listing, sys.stdout, indent=2)
        sys.stdout.write("\n")
        return 0
    width = max((len(s.name) for s in specs), default=0)
    for spec in specs:
        tags = ",".join(spec.tags)
        print(f"{spec.name:<{width}}  [{spec.cost}] ({tags}) {spec.description}")
    return 0


def cmd_clean(args: argparse.Namespace) -> int:
    for path in clean(remove_cache=not args.keep_cache):
        print(f"removed {path}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {"run": cmd_run, "list": cmd_list, "clean": cmd_clean}[args.command]
    try:
        return handler(args)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
