"""The hot-path kernel benchmarks ``python -m repro bench`` runs.

Each benchmark is a factory returning a zero-argument workload over one of
the vectorized batch APIs; ``paired=True`` times the same workload in the
normal (vectorized) mode and under the ``REPRO_NO_VECTORIZE=1`` scalar
reference loops, so the report carries the speedup trajectory of every
kernel the tentpole vectorized.
"""

from __future__ import annotations

from repro.cpu.tenanalyzer.tensor_filter import detect_streams
from repro.crypto.aes import AES128
from repro.crypto.ctr import CounterModeCipher
from repro.crypto.mac import MacEngine, xor_macs
from repro.mem.mee import FunctionalMee
from repro.npu.config import NpuConfig
from repro.npu.delayed import DelayedVerificationEngine
from repro.npu.systolic import GemmShape, gemm_times
from repro.npu.vn import TensorVnTable
from repro.perf.harness import BenchContext
from repro.perf.registry import benchmark
from repro.tensor.dtype import DType
from repro.tensor.registry import TensorRegistry
from repro.units import CACHELINE_BYTES, MiB

LINE = CACHELINE_BYTES

_AES_KEY = bytes(range(16))
_MAC_KEY = bytes(range(16, 32))


@benchmark("crypto.aes_blocks", tags=("crypto", "vector"))
def bench_aes_blocks(ctx: BenchContext):
    """Batched AES-128 over a stream of counter blocks."""
    n_blocks = ctx.n(2048, 512)
    ctx.items = n_blocks
    aes = AES128(_AES_KEY)
    blocks = ctx.random_bytes(16 * n_blocks)

    def run():
        return aes.encrypt_blocks(blocks)

    return run


@benchmark("crypto.ctr_keystream", tags=("crypto", "vector"))
def bench_ctr_keystream(ctx: BenchContext):
    """Counter-mode keystream generation for a stream of (PA, VN) lines."""
    n_lines = ctx.n(512, 128)
    ctx.items = n_lines
    cipher = CounterModeCipher(_AES_KEY)
    pas = [0x1000_0000 + i * LINE for i in range(n_lines)]
    vns = [ctx.rng.randrange(1, 1 << 40) for _ in range(n_lines)]

    def run():
        # Fresh VNs per call would re-key the scalar memoisation; instead
        # drop the cache so the scalar path really recomputes every line.
        cipher._keystream_block.cache_clear()
        return cipher.keystream_lines(pas, vns)

    return run


@benchmark("crypto.mac_fold", tags=("crypto", "vector"))
def bench_mac_fold(ctx: BenchContext):
    """XOR-folding a tensor's per-line MACs into its tensor MAC."""
    n_macs = ctx.n(200_000, 25_000)
    ctx.items = n_macs
    macs = [ctx.rng.randrange(1 << 56) for _ in range(n_macs)]

    def run():
        return xor_macs(macs)

    return run


@benchmark("mem.mee_stream", tags=("mem", "vector"))
def bench_mee_stream(ctx: BenchContext):
    """MEE bulk write+read of a tensor-sized line stream (with Merkle)."""
    n_lines = ctx.n(192, 48)
    ctx.items = n_lines
    mee = FunctionalMee(_AES_KEY, _MAC_KEY, protected_bytes=4 * MiB)
    vaddrs = [i * LINE for i in range(n_lines)]
    payload = ctx.random_bytes(n_lines * LINE)

    def run():
        mee.cipher._keystream_block.cache_clear()
        mee.write_lines(vaddrs, payload, vn=None)
        return mee.read_lines(vaddrs, vn=None, verify=True)

    return run


@benchmark("npu.tensor_stream", tags=("npu", "vector"))
def bench_npu_tensor_stream(ctx: BenchContext):
    """Delayed-verification engine: write, stream-read, verify one tensor."""
    n_elements = ctx.n(2048, 512)
    registry = TensorRegistry(base_va=0x4200_0000_0000)
    mee = FunctionalMee(_AES_KEY, _MAC_KEY, with_merkle=False, protected_bytes=4 * MiB)
    engine = DelayedVerificationEngine(NpuConfig(), mee, TensorVnTable(registry))
    tensor = registry.allocate("bench", (n_elements,), DType.FP32)
    ctx.items = tensor.n_lines
    payload = ctx.random_bytes(tensor.nbytes)

    def run():
        mee.cipher._keystream_block.cache_clear()
        engine.write_tensor(tensor, payload)
        engine.read_tensor_delayed(tensor)
        failed = engine.poll_verification()
        assert not failed
        return failed

    return run


@benchmark("cpu.tenanalyzer_scan", tags=("cpu", "vector"))
def bench_tenanalyzer_scan(ctx: BenchContext):
    """Batch tensor-condition detection over a synthetic miss trace."""
    n_accesses = ctx.n(65_536, 8_192)
    ctx.items = n_accesses
    rng = ctx.rng
    vaddrs = []
    vns = []
    va = 0x1000_0000
    while len(vaddrs) < n_accesses:
        run_lines = rng.choice((4, 8, 16, 32, 64))
        vn = rng.randrange(1, 1 << 20)
        for i in range(min(run_lines, n_accesses - len(vaddrs))):
            vaddrs.append(va + i * LINE)
            vns.append(vn)
        va += (run_lines + rng.randrange(1, 8)) * LINE

    def run():
        return detect_streams(vaddrs, vns, min_run=4)

    return run


@benchmark("npu.gemm_sweep", tags=("npu", "vector"))
def bench_gemm_sweep(ctx: BenchContext):
    """Batched systolic roofline over a sweep of GEMM shapes."""
    n_shapes = ctx.n(4096, 512)
    ctx.items = n_shapes
    rng = ctx.rng
    config = NpuConfig()
    shapes = [
        GemmShape(
            m=rng.randrange(64, 8192),
            n=rng.randrange(64, 8192),
            k=rng.randrange(64, 8192),
        )
        for _ in range(n_shapes)
    ]

    def run():
        return gemm_times(config, shapes)

    return run


@benchmark("crypto.mac_engine", tags=("crypto",), paired=False)
def bench_mac_engine(ctx: BenchContext):
    """Keyed-hash line MACs for a stream (C-speed; tracked, not paired)."""
    n_lines = ctx.n(4096, 512)
    ctx.items = n_lines
    engine = MacEngine(_MAC_KEY)
    ciphertexts = ctx.random_bytes(n_lines * LINE)
    pas = [i * LINE for i in range(n_lines)]
    vns = [1] * n_lines

    def run():
        return engine.line_macs(ciphertexts, LINE, pas, vns)

    return run
