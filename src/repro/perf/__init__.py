"""Microbenchmark subsystem: registry, timing harness, and kernel benches.

``python -m repro bench`` drives this package: benchmarks register through
the :func:`repro.perf.registry.benchmark` decorator (mirroring the
experiment registry), the harness times each one with warmup/repeat
statistics in both the vectorized and the ``REPRO_NO_VECTORIZE=1`` scalar
mode, and the CLI emits a machine-readable ``BENCH_<timestamp>.json``
whose trajectory the CI ``bench-smoke`` job tracks against
``benchmarks/baseline.json``.
"""

from repro.perf.harness import (
    BENCH_SCHEMA,
    BenchContext,
    compare_reports,
    run_benchmarks,
    validate_report,
)
from repro.perf.registry import BENCH_REGISTRY, BenchSpec, benchmark
