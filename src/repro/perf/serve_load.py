"""The ``serve`` bench family: load generation against a live job queue.

Every bench here starts a real :class:`repro.serve.server.JobService` on
an ephemeral localhost port with a throwaway queue directory, drives it
over actual HTTP through :class:`repro.serve.client.ServeClient`, and
tears it down when its timing mode ends (via the workload ``close``
hook). What is measured is the serve hot path end to end — request
parsing, submission validation, the cache probe, and the fsynced journal
append — as jobs per second (the harness's ``throughput_items_per_s``
with one item per submission or claim).

The family's entries:

- ``serve.submit_unique`` / ``serve.submit_cached``: N concurrent
  submitter threads posting one job per request — the all-miss and
  all-hit extremes of the submit path;
- ``serve.submit_batch`` / ``serve.status_batch``: the batched wire
  endpoints, amortizing HTTP round trips and journal fsyncs
  (Cimple-style batching through the hot path);
- ``serve.claim_cycle``: a worker's claim→complete loop over a
  prefilled queue, recording claim latency p50/p90 into the record's
  ``extra`` field;
- ``serve.mixed_load``: concurrent submitters with a mixed cache-hit /
  cache-miss, experiment / sweep job mix plus status polling, sampling
  queue depth over time into ``extra``.

Executors are disabled (``start_executor=False``): submissions are never
run, so the benches time the service layer, not the workloads. Client
threads and server handler threads share one process (and one GIL) —
the numbers are a self-contained localhost load test, comparable against
the committed baseline on equal terms, not a distributed-throughput
claim.
"""

from __future__ import annotations

import itertools
import shutil
import tempfile
import threading
import time
from typing import Callable, Dict, List, Optional

from repro.perf.harness import BenchContext, _percentile
from repro.perf.registry import benchmark
from repro.serve.client import ServeClient
from repro.serve.server import JobService

#: Experiment every load bench submits; cheap to validate and always
#: registered (the bench never executes it).
_EXPERIMENT = "table1_config"

#: Sweep spec the mixed bench submits when the sweeps directory is
#: resolvable from the bench's working directory.
_SWEEP = "mee_geometry"

#: Body whose completed twin turns later duplicates into cache hits.
_CACHED_BODY = {"task": "bench", "only": ["crypto.mac_fold"], "quick": True}


class _Bench:
    """One throwaway serve deployment: server, temp queue, clients."""

    def __init__(self) -> None:
        self.queue_dir = tempfile.mkdtemp(prefix="repro-serve-bench-")
        self.service = JobService(
            queue_dir=self.queue_dir,
            host="127.0.0.1",
            port=0,
            workers=1,
            verbose=False,
            start_executor=False,
        )
        self.service.start()
        self._seeds = itertools.count(1)

    def client(self) -> ServeClient:
        return ServeClient(port=self.service.port)

    def unique_body(self) -> Dict[str, object]:
        """A submission no prior job fingerprints (fresh seed)."""
        return {"task": "experiment", "experiment": _EXPERIMENT, "seed": next(self._seeds)}

    def seed_cached(self, client: ServeClient) -> None:
        """Complete one bench job so duplicates of it are cache hits."""
        view = client.submit(dict(_CACHED_BODY))
        answer = client.claim(worker="bench-seeder", lease_ttl=300.0)
        job = answer["job"]
        if job is None or job["id"] != view["id"]:
            raise RuntimeError("serve bench setup could not claim its seed job")
        client.complete(job["id"], "bench-seeder", ok=True, result={"task": "bench"})
        probe = client.submit(dict(_CACHED_BODY))
        if not probe.get("cached"):
            raise RuntimeError("serve bench setup did not produce a cache hit")

    def close(self) -> None:
        self.service.close()
        shutil.rmtree(self.queue_dir, ignore_errors=True)


def _in_threads(tasks: List[Callable[[], None]]) -> None:
    """Run the callables concurrently; re-raise the first failure."""
    errors: List[BaseException] = []

    def guarded(task: Callable[[], None]) -> Callable[[], None]:
        def run() -> None:
            try:
                task()
            except BaseException as exc:  # surfaced to the harness caller
                errors.append(exc)

        return run

    threads = [threading.Thread(target=guarded(task)) for task in tasks]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


def _submitter_workload(
    ctx: BenchContext, body_for: Callable[[_Bench], Callable[[], Dict[str, object]]]
):
    """N submitter threads x M single submissions per timed call."""
    deployment = _Bench()
    submitters = 2 if ctx.quick else 4
    per_thread = ctx.n(16, 8)
    ctx.items = submitters * per_thread
    make_body = body_for(deployment)
    clients = [deployment.client() for _ in range(submitters)]

    def run() -> int:
        def submit_all(client: ServeClient) -> None:
            for _ in range(per_thread):
                client.submit(make_body())

        _in_threads([lambda c=client: submit_all(c) for client in clients])
        return ctx.items

    run.close = deployment.close
    return run


@benchmark("serve.submit_unique", tags=("serve", "wire"), paired=False)
def bench_submit_unique(ctx: BenchContext):
    """Concurrent single-job submissions, all cache misses.

    Each request pays validate + fingerprint + cache probe + one
    fsynced journal append.
    """
    return _submitter_workload(ctx, lambda deployment: deployment.unique_body)


@benchmark("serve.submit_cached", tags=("serve", "wire"), paired=False)
def bench_submit_cached(ctx: BenchContext):
    """Concurrent duplicate submissions served from the fingerprint cache.

    Every request is answered straight from a completed prior job.
    """

    def body_for(deployment: _Bench):
        deployment.seed_cached(deployment.client())
        return lambda: dict(_CACHED_BODY)

    return _submitter_workload(ctx, body_for)


@benchmark("serve.submit_batch", tags=("serve", "wire", "batch"), paired=False)
def bench_submit_batch(ctx: BenchContext):
    """One submit_batch POST carrying M unique jobs.

    M submissions, one HTTP round trip, one journal fsync.
    """
    deployment = _Bench()
    batch = ctx.n(64, 16)
    ctx.items = batch
    client = deployment.client()

    def run() -> int:
        answer = client.submit_batch([deployment.unique_body() for _ in range(batch)])
        if answer["accepted"] != batch:
            raise RuntimeError(f"batch submit rejected {answer['rejected']} of {batch} jobs")
        return batch

    run.close = deployment.close
    return run


@benchmark("serve.status_batch", tags=("serve", "wire", "batch"), paired=False)
def bench_status_batch(ctx: BenchContext):
    """One status_batch POST resolving every job on the server."""
    deployment = _Bench()
    jobs = ctx.n(64, 16)
    ctx.items = jobs
    client = deployment.client()
    answer = client.submit_batch([deployment.unique_body() for _ in range(jobs)])
    if answer["accepted"] != jobs:
        raise RuntimeError("status_batch bench could not prefill its queue")

    def run() -> int:
        views = client.status_batch(all_jobs=True)["jobs"]
        if len(views) != jobs:
            raise RuntimeError(f"status_batch answered {len(views)} of {jobs} jobs")
        return jobs

    run.close = deployment.close
    return run


@benchmark("serve.claim_cycle", tags=("serve", "wire"), paired=False)
def bench_claim_cycle(ctx: BenchContext):
    """A worker's claim-complete cycle over a prefilled queue.

    Claim latency p50/p90 lands in the record's ``extra`` field.
    """
    deployment = _Bench()
    cycles = ctx.n(32, 8)
    ctx.items = cycles
    client = deployment.client()
    # Prefill enough pending jobs for every warmup + timed call.
    backlog = cycles * 16
    for start in range(0, backlog, 200):
        count = min(200, backlog - start)
        client.submit_batch([deployment.unique_body() for _ in range(count)])
    latencies: List[float] = []

    def run() -> int:
        for _ in range(cycles):
            began = time.perf_counter()
            answer = client.claim(worker="bench-worker", lease_ttl=300.0)
            latencies.append(time.perf_counter() - began)
            job = answer["job"]
            if job is None:
                raise RuntimeError("claim_cycle bench drained its prefilled queue")
            client.complete(job["id"], "bench-worker", ok=True, result={"task": "experiment"})
        ordered = sorted(latencies)
        ctx.extra["claim_latency"] = {
            "p50_s": _percentile(ordered, 0.5),
            "p90_s": _percentile(ordered, 0.9),
            "samples": len(ordered),
        }
        return cycles

    run.close = deployment.close
    return run


@benchmark("serve.mixed_load", tags=("serve", "wire"), paired=False)
def bench_mixed_load(ctx: BenchContext):
    """Concurrent submitters mixing hits, misses, experiments, and sweeps.

    Each wave also polls status_batch; queue depth over time lands in
    the record's ``extra`` field.
    """
    deployment = _Bench()
    submitters = 2 if ctx.quick else 4
    waves = ctx.n(6, 3)
    ctx.items = submitters * waves * 3
    clients = [deployment.client() for _ in range(submitters)]
    deployment.seed_cached(clients[0])
    sweep_body: Optional[Dict[str, object]] = {"task": "sweep", "spec": _SWEEP}
    try:
        clients[0].submit(dict(sweep_body))
    except Exception:
        sweep_body = None  # no sweeps dir here; keep the mix all-experiment
    depth_lock = threading.Lock()

    def run() -> int:
        samples: List[List[float]] = []
        began = time.perf_counter()

        def drive(client: ServeClient) -> None:
            for _ in range(waves):
                miss = client.submit(deployment.unique_body())
                hit = client.submit(dict(_CACHED_BODY))
                third = client.submit(
                    dict(sweep_body) if sweep_body is not None else deployment.unique_body()
                )
                client.status_batch(ids=[miss["id"], hit["id"], third["id"]])
                health = client.health()
                counts = health.get("counts", {})
                depth = counts.get("submitted", 0) + counts.get("running", 0)
                with depth_lock:
                    samples.append([round(time.perf_counter() - began, 6), depth])
        _in_threads([lambda c=client: drive(c) for client in clients])
        depths = [depth for _, depth in samples]
        ctx.extra["queue_depth"] = {
            "samples": len(samples),
            "peak": max(depths),
            "final": samples[-1][1],
            "series": samples[:50],
        }
        return ctx.items

    run.close = deployment.close
    return run
